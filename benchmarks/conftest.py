"""Shared benchmark helpers.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): the simulations are deterministic, so repetition only measures
host noise, and some figures take minutes of simulated work.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
