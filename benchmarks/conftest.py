"""Shared benchmark helpers.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): the simulations are deterministic, so repetition only measures
host noise, and some figures take minutes of simulated work.

Sweep-shaped figures (fig13 scaling, fig15 latency, queue-sweep) accept
an orchestrator: set ``HARNESS_JOBS=N`` to shard their cells across N
worker processes.  Results are byte-identical at any job count, so the
assertions don't care.
"""

import os


from repro.harness.orchestrator import Orchestrator


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def harness_orchestrator():
    """Orchestrator honouring ``HARNESS_JOBS`` (default 1 = serial)."""
    jobs = int(os.environ.get("HARNESS_JOBS", "1"))
    return Orchestrator(jobs=jobs, timeout=600.0 if jobs > 1 else None)
