"""Ablations of MAPLE's design choices (DESIGN.md inventory).

Three mechanisms the paper's design leans on, each toggled in isolation:

1. **Memory-level parallelism** — the engine's in-flight fetch budget is
   the whole point of a *Parallel-Load* engine: capping it at 1 must
   collapse decoupling back toward serialized-DRAM behaviour.
2. **Packed 4-byte consumes** — the §5.1 mechanism behind Fig. 10's load
   reduction: disabling packing must raise the core's load count.
3. **Produce-buffer depth** — the Produce pipeline's acceptance buffer
   decouples the ack (store retirement) from slot reservation; a deeper
   buffer absorbs Access-side bursts.
"""

from conftest import run_once

from repro.harness import run_workload
from repro.params import FPGA_CONFIG


def mlp_ablation():
    results = {}
    for inflight in (1, 4, 32):
        cfg = FPGA_CONFIG.with_overrides(maple_max_inflight=inflight)
        base = run_workload("spmv", "doall", threads=2, config=cfg)
        dec = run_workload("spmv", "maple-decouple", threads=2, config=cfg)
        results[inflight] = base.cycles / dec.cycles
    return results


def test_bench_ablation_mlp(benchmark):
    speedups = run_once(benchmark, mlp_ablation)
    print("\nMLP ablation (SPMV decoupling speedup vs maple_max_inflight):")
    for inflight, speedup in speedups.items():
        print(f"  in-flight {inflight:2d}: {speedup:.2f}x")
    # A single outstanding fetch serializes DRAM: most of the win is gone.
    assert speedups[32] / speedups[1] > 1.6
    # Returns diminish once the DRAM channel saturates.
    assert speedups[4] > speedups[1]
    assert speedups[32] >= speedups[4] * 0.95


def packing_ablation():
    packed = run_workload("spmv", "lima", threads=1, lima_packed=True)
    unpacked = run_workload("spmv", "lima", threads=1, lima_packed=False)
    return packed, unpacked


def test_bench_ablation_packed_consumes(benchmark):
    packed, unpacked = run_once(benchmark, packing_ablation)
    print(f"\npacked consumes:   {packed.cycles} cycles, "
          f"{packed.total_loads()} loads")
    print(f"unpacked consumes: {unpacked.cycles} cycles, "
          f"{unpacked.total_loads()} loads")
    # Packing halves the consume count -> visibly fewer load instructions.
    assert packed.total_loads() < unpacked.total_loads()
    assert packed.cycles <= unpacked.cycles * 1.02


def produce_buffer_ablation():
    results = {}
    for depth in (1, 4, 16):
        cfg = FPGA_CONFIG.with_overrides(produce_buffer_entries=depth)
        dec = run_workload("sdhp", "maple-decouple", threads=2, config=cfg)
        results[depth] = dec.cycles
    return results


def test_bench_ablation_produce_buffer(benchmark):
    cycles = run_once(benchmark, produce_buffer_ablation)
    print("\nproduce-buffer ablation (SDHP decoupling cycles):")
    for depth, value in cycles.items():
        print(f"  depth {depth:2d}: {value}")
    # The buffer only matters under burst pressure; it must never hurt,
    # and a reasonable depth is within a few percent of a deep one.
    assert cycles[4] <= cycles[1] * 1.01
    assert cycles[16] <= cycles[4] * 1.01
