"""§5.4: area analysis of the RTL implementation.

Paper: one MAPLE instance (8 queues, 1 KB scratchpad) synthesized at
12 nm is 1.1% of the area of the Ariane cores it can supply (8).  The
area model must land on that figure for the tapeout configuration and
scale sensibly with the scratchpad.
"""

from conftest import run_once

from repro.harness.figures import area_analysis
from repro.params import FPGA_CONFIG


def test_bench_area(benchmark):
    report = run_once(benchmark, area_analysis)
    print("\nArea analysis (12 nm model, §5.4)")
    for name, mm2 in report.rows():
        print(f"  {name:35s} {mm2:8.4f} mm^2")
    print(f"  overhead vs served cores: {report.overhead_fraction * 100:.2f}%")

    # The paper's headline: ~1.1% of the eight cores one instance serves.
    assert 0.008 < report.overhead_fraction < 0.014

    # Doubling the scratchpad grows the engine but stays tiny.
    bigger = area_analysis(FPGA_CONFIG.with_overrides(scratchpad_bytes=2048))
    assert bigger.maple_mm2 > report.maple_mm2
    assert bigger.overhead_fraction < 0.02
