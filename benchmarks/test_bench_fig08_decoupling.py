"""Fig. 8: decoupling speedups over 2-thread doall (FPGA config).

Paper numbers: MAPLE decoupling 1.51x geomean over doall and 2.27x over
shared-memory software decoupling — i.e. software decoupling *loses* to
doall on in-order cores without hardware support.  The reproduction
asserts those shape claims.
"""

from conftest import harness_orchestrator, run_once

from repro.harness.figures import fig8


def test_bench_fig08_decoupling(benchmark):
    result = run_once(benchmark, fig8, orch=harness_orchestrator())
    print("\n" + result.render())

    maple = result.series_by_label("maple-decoupling")
    sw = result.series_by_label("sw-decoupling")

    # MAPLE decoupling beats doall overall; software decoupling loses.
    assert maple.geomean() > 1.2
    assert sw.geomean() < 1.0
    # MAPLE over software decoupling (paper: 2.27x geomean).
    assert maple.geomean() / sw.geomean() > 1.8
    # Per-app: MAPLE never behind software decoupling.
    for app in result.apps:
        assert maple.values[app] >= sw.values[app]
    # SPMM cannot decouple: both fall back to doall (1.0x).
    assert abs(maple.values["spmm"] - 1.0) < 0.05
    # The decoupling-friendly kernels see solid gains.
    assert maple.values["spmv"] > 1.5
    assert maple.values["sdhp"] > 1.5
