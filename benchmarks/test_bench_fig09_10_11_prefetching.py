"""Figs. 9/10/11: the single-thread prefetching study.

One simulation pass produces all three figures, exactly as the paper's
FPGA runs did (the same executions feed speedup, load counts, and load
latencies):

- Fig. 9 — LIMA prefetching speeds up every kernel (paper: 1.73x geomean,
  max on SPMV) while software prefetching does not pay off on an
  in-order core with a blocking L1;
- Fig. 10 — software prefetching inflates the load-instruction count
  while MAPLE *reduces* it (packed 4-byte consumes);
- Fig. 11 — LIMA cuts the average load latency (paper: 1.85x geomean).
"""

from conftest import harness_orchestrator, run_once

from repro.harness.figures import prefetch_study
from repro.sim.stats import geomean


def test_bench_fig09_10_11_prefetching(benchmark):
    fig9, fig10, fig11 = run_once(benchmark, prefetch_study,
                                     orch=harness_orchestrator())
    print("\n" + fig9.render())
    print("\n" + fig10.render())
    print("\n" + fig11.render())

    lima = fig9.series_by_label("maple-lima")
    swpf = fig9.series_by_label("sw-prefetch")
    # Fig. 9: LIMA wins overall and beats software prefetching soundly.
    assert lima.geomean() > 1.3
    assert lima.geomean() / swpf.geomean() > 1.5
    assert max(lima.values, key=lima.values.get) in ("spmv", "sdhp")
    for app in fig9.apps:
        assert lima.values[app] > 1.0
        assert lima.values[app] >= swpf.values[app]

    # Fig. 10: software prefetching adds load-class instructions; MAPLE
    # reduces them.
    sw_loads = fig10.series_by_label("sw-prefetch")
    lima_loads = fig10.series_by_label("maple-lima")
    assert sw_loads.geomean() > 1.15
    assert lima_loads.geomean() < 1.0

    # Fig. 11: LIMA's prefetches are timely — average load latency drops
    # substantially (paper: 1.85x geomean reduction).
    base_lat = fig11.series_by_label("no-prefetch")
    lima_lat = fig11.series_by_label("maple-lima")
    reduction = geomean([
        base_lat.values[app] / lima_lat.values[app] for app in fig11.apps])
    assert reduction > 1.3
    for app in fig11.apps:
        assert lima_lat.values[app] < base_lat.values[app]
