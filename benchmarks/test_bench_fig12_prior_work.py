"""Fig. 12: MAPLE vs DeSC vs DROPLET vs doall (simulator config).

Paper: MAPLE reaches 1.96x geomean over 2-thread doall (up to 3x on
BFS), 1.72x over DeSC, and 1.82x over DROPLET.  DeSC leads on the
decoupling-friendly SPMV/SDHP (MAPLE stays within the paper's "at least
76%" bound) but has no answer for SPMM's RMWs, and DROPLET's LLC
prefetches still leave the core paying the L1-miss path per element.
"""

from conftest import harness_orchestrator, run_once

from repro.harness.figures import fig12


def test_bench_fig12_prior_work(benchmark):
    result = run_once(benchmark, fig12, orch=harness_orchestrator())
    print("\n" + result.render())

    maple = result.series_by_label("maple")
    desc = result.series_by_label("desc")
    droplet = result.series_by_label("droplet")

    # Headline geomeans: MAPLE leads both prior hardware techniques.
    assert maple.geomean() > 1.5
    assert maple.geomean() > desc.geomean()
    assert maple.geomean() / droplet.geomean() > 1.3

    # MAPLE is at least 76% of DeSC everywhere (§5.2's bound).
    for app in result.apps:
        assert maple.values[app] / desc.values[app] >= 0.76

    # SPMM: neither decoupling technique applies (RMW) — both at doall.
    assert abs(maple.values["spmm"] - 1.0) < 0.05
    assert abs(desc.values["spmm"] - 1.0) < 0.05

    # DROPLET helps but modestly: above doall, below MAPLE overall.
    assert droplet.geomean() > 1.0
