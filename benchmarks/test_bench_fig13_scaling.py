"""Fig. 13: thread scaling with one shared MAPLE instance.

Paper: the decoupling speedup over doall is *maintained* when scaling
from 2 to 4 and 8 threads all sharing a single MAPLE — the engine's
queues and pipelines have the headroom to supply multiple pairs.
"""

from conftest import harness_orchestrator, run_once

from repro.harness.figures import fig13


def test_bench_fig13_scaling(benchmark):
    result = run_once(benchmark, fig13, orch=harness_orchestrator())
    print("\n" + result.render())

    geomeans = {s.label: s.geomean() for s in result.series}
    # Speedup over doall holds at every thread count...
    for label, value in geomeans.items():
        assert value > 1.5, f"{label} lost the decoupling win"
    # ...and does not collapse as more pairs share the instance.
    assert min(geomeans.values()) > 0.6 * max(geomeans.values())
