"""Fig. 14: the core->MAPLE->core round-trip latency breakdown.

Paper: ~25 cycles plus one cycle per hop — similar to an L2 access and
an order of magnitude below DRAM.  The analytic segment budget must
match a consume measured on the live model exactly.
"""

from conftest import run_once

from repro.harness.figures import fig14
from repro.params import FPGA_CONFIG


def test_bench_fig14_roundtrip(benchmark):
    result = run_once(benchmark, fig14)
    print("\n" + result.render())

    assert result.total == 25  # the paper's headline figure
    assert result.measured == result.total  # model agrees with budget
    # Similar to an L2 access, far below DRAM.
    assert abs(result.total - FPGA_CONFIG.l2_latency) <= 10
    assert result.total * 10 <= FPGA_CONFIG.dram_latency + 50
