"""Fig. 15: decoupling speedup vs core<->MAPLE round-trip latency.

Paper: speedups are greater with a lower NoC delay — the benefit decays
monotonically as the consume round trip grows, since every queue
operation pays it.
"""

from conftest import harness_orchestrator, run_once

from repro.harness.figures import fig15


def test_bench_fig15_latency_sweep(benchmark):
    result = run_once(benchmark, fig15, orch=harness_orchestrator())
    print("\n" + result.render())

    geomeans = [s.geomean() for s in result.series]  # ordered by latency
    # Monotone decay with latency.
    for shorter, longer in zip(geomeans, geomeans[1:]):
        assert shorter > longer
    # Still profitable at the default ~25-cycle point.
    assert geomeans[1] > 1.5
    # And sensitive: 4x the latency costs a visible chunk of the win.
    assert geomeans[0] / geomeans[-1] > 1.5
