"""§5.3: queue-size sensitivity.

Paper: performance is stable while the queues can hold enough data to
hide latency — 32 entries per queue (the tapeout configuration) are
sufficient, and smaller queues start costing runahead.
"""

from conftest import harness_orchestrator, run_once

from repro.harness.figures import queue_sweep


def test_bench_queue_size(benchmark):
    result = run_once(benchmark, queue_sweep, orch=harness_orchestrator())
    print("\n" + result.render())

    by_entries = {s.label: s.geomean() for s in result.series}
    # The tapeout configuration (32) already achieves the plateau.
    assert by_entries["32-entries"] > 0.97 * by_entries["64-entries"]
    # Shrinking below the latency-covering size costs performance.
    assert by_entries["8-entries"] < 0.97 * by_entries["32-entries"]
    # Even tiny queues keep decoupling profitable (no cliff to <1x).
    assert by_entries["8-entries"] > 1.0
