"""Simulation-core throughput: the engine perf-regression harness.

Two measurements, both against the preserved seed engine
(:class:`repro.sim.reference.ReferenceSimulator`) on the same host so
ratios are machine-independent:

1. **Engine churn** — a synthetic mix of timed yields, zero-delay
   yields, and process turnover with no model code at all.  This
   isolates the event loop itself (slot event records, same-cycle ready
   deque, batch drain, inlined generator stepping), where the fast path
   is worth 2.5-3x; the floor asserts >= 2x.

2. **Workload mix** — a fig8-sized FPGA-config run (spmv and sdhp,
   doall and MAPLE decoupling).  Events/sec comes from the engine's own
   instrumentation (``events_executed`` / ``run_wall_seconds``), which
   excludes dataset construction and SoC assembly.  Per-cell cycle
   counts and event totals must match the reference engine exactly, and
   throughput must not regress below it.  The reference run shares the
   optimized periphery (counter handles, route memoization, cache
   probes), so this ratio only reflects the event loop — the recorded
   whole-stack trajectory against the seed *commit* lives in
   ``BENCH_simcore.json`` (~88k -> ~205k ev/s, 2.3x, on the dev host).

``SIMCORE_SMOKE=1`` shrinks both measurements for CI smoke runs.
"""

import gc
import json
import os
from pathlib import Path

from conftest import run_once

import repro.system.soc as soc_module
from repro.harness.techniques import run_workload
from repro.sim.engine import Simulator
from repro.sim.reference import ReferenceSimulator

SMOKE = os.environ.get("SIMCORE_SMOKE") == "1"

#: (app, technique, threads) cells of the fig8-sized mix (34,396 engine
#: events at scale=1, 68,825 at scale=2, across the four cells).
CELLS = (
    [("spmv", "maple-decouple", 4)]
    if SMOKE
    else [
        ("spmv", "maple-decouple", 4),
        ("spmv", "doall", 4),
        ("sdhp", "maple-decouple", 8),
        ("sdhp", "doall", 8),
    ]
)

#: Dataset scale: the full run doubles fig8's default so each timing
#: window is long enough that host scheduling noise stays well inside
#: the ratio margin.
MIX_SCALE = 1 if SMOKE else 2

#: Synthetic churn size (processes x steps); measured ~2.7-3.0x over the
#: seed engine, so a 2x floor leaves real margin for host noise.
CHURN_PROCS, CHURN_STEPS = (20, 500) if SMOKE else (50, 4000)
CHURN_RATIO_FLOOR = 1.5 if SMOKE else 2.0

#: The workload mix shares the optimized periphery between both engines,
#: so only the event loop differs (~1.1-1.2x); the floor just catches
#: the fast path ever losing to the seed loop outright.
MIX_RATIO_FLOOR = 0.9 if SMOKE else 1.0

BENCH_RECORD = Path(__file__).resolve().parent.parent / "BENCH_simcore.json"


def _run_mix():
    """Run every cell; return engine-level totals and per-cell cycles."""
    events = 0
    wall = 0.0
    cycles = []
    for app, technique, threads in CELLS:
        result = run_workload(app, technique, threads=threads,
                              scale=MIX_SCALE)
        sim = result.soc.sim
        events += sim.events_executed
        wall += sim.run_wall_seconds
        cycles.append(result.cycles)
    return {
        "events": events,
        "wall_seconds": wall,
        "cycles": cycles,
        "events_per_sec": events / wall,
    }


def _run_churn(sim_cls):
    """Pure engine stress: timed yields, zero-delay yields, spawn/finish."""
    sim = sim_cls()

    def worker():
        for step in range(CHURN_STEPS):
            yield 1
            if step & 3 == 0:
                yield 0

    for _ in range(CHURN_PROCS):
        sim.spawn(worker())
    sim.run()
    return {
        "events": sim.events_executed,
        "final_cycle": sim.now,
        "events_per_sec": sim.events_executed / sim.run_wall_seconds,
    }


def test_bench_simcore_events_per_sec(benchmark, monkeypatch):
    _run_mix()  # warm imports and per-module setup before timing

    gc.collect()
    fast = run_once(benchmark, _run_mix)

    monkeypatch.setattr(soc_module, "Simulator", ReferenceSimulator)
    gc.collect()
    seed = _run_mix()

    # The fast path must be invisible at the simulation level: identical
    # final cycle counts per cell and identical executed-event totals.
    assert fast["cycles"] == seed["cycles"]
    assert fast["events"] == seed["events"]

    ratio = fast["events_per_sec"] / seed["events_per_sec"]
    print(
        f"\nsimcore mix: {fast['events']} events"
        f" | optimized {fast['events_per_sec']:,.0f} ev/s"
        f" | reference-engine {seed['events_per_sec']:,.0f} ev/s"
        f" | ratio {ratio:.2f}x (floor {MIX_RATIO_FLOOR}x)"
    )
    if BENCH_RECORD.exists():
        record = json.loads(BENCH_RECORD.read_text())
        for point in record["trajectory"]:
            print(
                f"  recorded: {point['label']}: "
                f"{point['events_per_sec']:,.0f} ev/s"
            )
        # The recorded whole-stack trajectory on this mix (seed commit vs
        # optimized, same host, engine-run time only) is the >=2x claim;
        # the live same-host enforcement of the event loop itself is
        # test_bench_simcore_engine_churn.
        assert record["speedup_over_seed"] >= 2.0

    assert ratio >= MIX_RATIO_FLOOR, (
        f"engine throughput regressed on the workload mix: {ratio:.2f}x "
        f"vs the reference engine (floor {MIX_RATIO_FLOOR}x); see "
        "tools/profile_run.py to find the hot spot"
    )


def test_bench_simcore_engine_churn(benchmark):
    # Warm both engines (imports, allocator) before timing.
    _run_churn(Simulator)
    _run_churn(ReferenceSimulator)

    gc.collect()
    fast = run_once(benchmark, _run_churn, Simulator)
    gc.collect()
    seed = _run_churn(ReferenceSimulator)

    assert fast["events"] == seed["events"]
    assert fast["final_cycle"] == seed["final_cycle"]

    ratio = fast["events_per_sec"] / seed["events_per_sec"]
    print(
        f"\nengine churn: {fast['events']} events"
        f" | fast {fast['events_per_sec']:,.0f} ev/s"
        f" | seed {seed['events_per_sec']:,.0f} ev/s"
        f" | speedup {ratio:.2f}x (floor {CHURN_RATIO_FLOOR}x)"
    )
    assert ratio >= CHURN_RATIO_FLOOR, (
        f"event-loop fast path regressed: {ratio:.2f}x over the seed "
        f"engine (floor {CHURN_RATIO_FLOOR}x)"
    )
