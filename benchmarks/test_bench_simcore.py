"""Simulation-core throughput: the engine perf-regression harness.

Three measurements, all against the preserved seed engine
(:class:`repro.sim.reference.ReferenceSimulator`) on the same host so
ratios are machine-independent:

1. **Engine churn** — a synthetic mix of timed yields, zero-delay
   yields, and process turnover with no model code at all.  This
   isolates the event loop itself (timing-wheel buckets, occupancy
   bitmap, same-cycle ready deque, inlined generator stepping), where
   the fast path is worth ~5.5-6x; the floor asserts >= 5x.  Both
   engines run interleaved best-of-N, because a single run on a busy
   1-CPU host can read 20-30% slow and turn a real 5.8x into a flaky
   4.8x.

2. **Workload mix** — a fig8-sized FPGA-config run (spmv and sdhp,
   doall and MAPLE decoupling).  Events/sec comes from the engine's own
   instrumentation (``events_executed`` / ``run_wall_seconds``), which
   excludes dataset construction and SoC assembly.  Per-cell cycle
   counts and event totals must match the reference engine exactly, and
   throughput must not regress below it.  The reference run shares the
   optimized periphery (counter handles, route memoization, compiled
   kernel expressions), so this ratio only reflects the event loop —
   recorded whole-stack numbers live in ``BENCH_simcore.json`` with
   their measurement-day context.

3. **Idle mesh** — the same small workload on 4x4 / 8x8 / 16x16 meshes
   (up to 255 instantiated cores).  Components are event-driven, nothing
   polls on ``yield 1``, so executed events must track *active traffic*:
   the event count stays flat while the tile count grows 16x.

``SIMCORE_SMOKE=1`` shrinks every measurement for CI smoke runs.
"""

import gc
import json
import os
from pathlib import Path

import pytest

from conftest import run_once

import repro.system.soc as soc_module
from repro.harness.techniques import run_workload
from repro.sim.engine import Simulator
from repro.sim.reference import ReferenceSimulator
from repro.system.soc import stress_mesh_config

SMOKE = os.environ.get("SIMCORE_SMOKE") == "1"

#: (app, technique, threads) cells of the fig8-sized mix (34,396 engine
#: events at scale=1, 68,825 at scale=2, across the four cells).
CELLS = (
    [("spmv", "maple-decouple", 4)]
    if SMOKE
    else [
        ("spmv", "maple-decouple", 4),
        ("spmv", "doall", 4),
        ("sdhp", "maple-decouple", 8),
        ("sdhp", "doall", 8),
    ]
)

#: Dataset scale: the full run doubles fig8's default so each timing
#: window is long enough that host scheduling noise stays well inside
#: the ratio margin.
MIX_SCALE = 1 if SMOKE else 2

#: Synthetic churn size (processes x steps) and how many interleaved
#: fast/seed pairs to run; the ratio compares best-of-N on both sides.
CHURN_PROCS, CHURN_STEPS = (20, 500) if SMOKE else (50, 4000)
CHURN_ROUNDS = 2 if SMOKE else 5
#: Timing-wheel engine vs seed engine on pure churn: measured ~5.5-6x
#: interleaved best-of-5 (see BENCH_simcore.json "engine_churn").
CHURN_RATIO_FLOOR = 2.0 if SMOKE else 5.0

#: The workload mix shares the optimized periphery between both engines,
#: so only the event loop differs; the floor just catches the fast path
#: ever losing to the seed loop outright.
MIX_RATIO_FLOOR = 0.9 if SMOKE else 1.0

#: Idle-mesh scaling: mesh sides to sweep and the slack allowed on the
#: largest mesh's event count relative to the smallest (the measured
#: delta is ~0.1%, from slightly longer NoC routes).
IDLE_MESH_SIDES = (4, 8) if SMOKE else (4, 8, 16)
IDLE_MESH_EVENT_SLACK = 1.05

BENCH_RECORD = Path(__file__).resolve().parent.parent / "BENCH_simcore.json"


def _run_mix():
    """Run every cell; return engine-level totals and per-cell cycles."""
    events = 0
    wall = 0.0
    cycles = []
    for app, technique, threads in CELLS:
        result = run_workload(app, technique, threads=threads,
                              scale=MIX_SCALE)
        sim = result.soc.sim
        events += sim.events_executed
        wall += sim.run_wall_seconds
        cycles.append(result.cycles)
    return {
        "events": events,
        "wall_seconds": wall,
        "cycles": cycles,
        "events_per_sec": events / wall,
    }


def _run_churn(sim_cls):
    """Pure engine stress: timed yields, zero-delay yields, spawn/finish."""
    sim = sim_cls()

    def worker():
        for step in range(CHURN_STEPS):
            yield 1
            if step & 3 == 0:
                yield 0

    for _ in range(CHURN_PROCS):
        sim.spawn(worker())
    sim.run()
    return {
        "events": sim.events_executed,
        "final_cycle": sim.now,
        "events_per_sec": sim.events_executed / sim.run_wall_seconds,
    }


def test_bench_simcore_events_per_sec(benchmark, monkeypatch):
    _run_mix()  # warm imports and per-module setup before timing

    gc.collect()
    fast = run_once(benchmark, _run_mix)

    monkeypatch.setattr(soc_module, "Simulator", ReferenceSimulator)
    gc.collect()
    seed = _run_mix()

    # The fast path must be invisible at the simulation level: identical
    # final cycle counts per cell and identical executed-event totals.
    assert fast["cycles"] == seed["cycles"]
    assert fast["events"] == seed["events"]

    ratio = fast["events_per_sec"] / seed["events_per_sec"]
    print(
        f"\nsimcore mix: {fast['events']} events"
        f" | optimized {fast['events_per_sec']:,.0f} ev/s"
        f" | reference-engine {seed['events_per_sec']:,.0f} ev/s"
        f" | ratio {ratio:.2f}x (floor {MIX_RATIO_FLOOR}x)"
    )
    if BENCH_RECORD.exists():
        record = json.loads(BENCH_RECORD.read_text())
        for point in record["trajectory"]:
            print(
                f"  recorded: {point['label']}: "
                f"{point['events_per_sec']:,.0f} ev/s"
            )
        # Whole-stack ev/s in the record carry their measurement-day
        # context and are not re-asserted here (host drift between
        # measurement days exceeds the engine's share of mix time); the
        # live same-host enforcement of the event loop itself is
        # test_bench_simcore_engine_churn, whose recorded floor must
        # stay in step with this file.
        assert record["engine_churn"]["ratio_floor_asserted"] >= 5.0

    assert ratio >= MIX_RATIO_FLOOR, (
        f"engine throughput regressed on the workload mix: {ratio:.2f}x "
        f"vs the reference engine (floor {MIX_RATIO_FLOOR}x); see "
        "tools/profile_run.py to find the hot spot"
    )


@pytest.mark.perf_smoke
def test_bench_simcore_engine_churn(benchmark):
    # Warm both engines (imports, allocator) before timing.
    _run_churn(Simulator)
    _run_churn(ReferenceSimulator)

    # Interleaved best-of-N on both sides: the deterministic workload
    # makes repetition measure only host noise, so the max of each side
    # is its quiet-host rate and the ratio is stable where a single
    # pair of runs flakes by 20-30% on a loaded host.
    gc.collect()
    fast = run_once(benchmark, _run_churn, Simulator)
    gc.collect()
    seed = _run_churn(ReferenceSimulator)
    for _ in range(CHURN_ROUNDS - 1):
        gc.collect()
        trial = _run_churn(Simulator)
        if trial["events_per_sec"] > fast["events_per_sec"]:
            fast = trial
        gc.collect()
        trial = _run_churn(ReferenceSimulator)
        if trial["events_per_sec"] > seed["events_per_sec"]:
            seed = trial

    assert fast["events"] == seed["events"]
    assert fast["final_cycle"] == seed["final_cycle"]

    ratio = fast["events_per_sec"] / seed["events_per_sec"]
    print(
        f"\nengine churn: {fast['events']} events"
        f" | fast {fast['events_per_sec']:,.0f} ev/s"
        f" | seed {seed['events_per_sec']:,.0f} ev/s"
        f" | speedup {ratio:.2f}x (floor {CHURN_RATIO_FLOOR}x,"
        f" best of {CHURN_ROUNDS} interleaved)"
    )
    assert ratio >= CHURN_RATIO_FLOOR, (
        f"event-loop fast path regressed: {ratio:.2f}x over the seed "
        f"engine (floor {CHURN_RATIO_FLOOR}x)"
    )


@pytest.mark.perf_smoke
def test_bench_simcore_idle_mesh_scaling():
    """Events must track active traffic, not tile count.

    The same 2-thread workload runs on growing meshes (every non-MAPLE
    tile seats a full core: TLB, PTW, MSHRs, ports).  Because every
    component is event-driven — idle cores, routers, and cache banks
    schedule nothing — the executed-event count stays flat while the
    tile count grows 16x, and port-registry quiescence checks stay
    O(busy ports) rather than O(all ports).
    """
    events = {}
    for side in IDLE_MESH_SIDES:
        cfg = stress_mesh_config(side)
        result = run_workload("spmv", "maple-decouple", config=cfg,
                              threads=2, scale=1)
        events[side] = result.soc.sim.events_executed

    smallest, largest = IDLE_MESH_SIDES[0], IDLE_MESH_SIDES[-1]
    tile_growth = (largest * largest) / (smallest * smallest)
    event_growth = events[largest] / events[smallest]
    print(
        f"\nidle mesh: events {events} | tiles x{tile_growth:.0f}"
        f" -> events x{event_growth:.3f}"
    )
    assert event_growth <= IDLE_MESH_EVENT_SLACK, (
        f"idle-mesh events grew {event_growth:.2f}x while tiles grew "
        f"{tile_growth:.0f}x: something schedules work per tile instead "
        "of per active transaction"
    )
