"""Table 1: the prior-work taxonomy.

MAPLE must be the only technique satisfying all four adoption features,
and the per-row feature pattern must match the paper's checkmarks.
"""

from conftest import run_once

from repro.core.taxonomy import TABLE1, techniques_satisfying_all, render_table1


def test_bench_table1_taxonomy(benchmark):
    table = run_once(benchmark, render_table1)
    print("\n" + table)

    assert techniques_satisfying_all() == ["MAPLE"]
    rows = {row.name: row for row in TABLE1}
    # Spot-check the paper's pattern.
    assert rows["DeSC/MTDCAE"].hw_sw_codesign and not rows["DeSC/MTDCAE"].unmodified_cores
    assert rows["HW Prefetching"].unmodified_isa and not rows["HW Prefetching"].hw_sw_codesign
    assert rows["Clairvoyance"].unmodified_cores and not rows["Clairvoyance"].simple_cores
    assert rows["Prodigy"].hw_sw_codesign and not rows["Prodigy"].unmodified_cores
    assert len(TABLE1) == 16
