"""Table 2: the FPGA SoC configuration, rendered from live parameters."""

from conftest import run_once

from repro.harness.tables import table2, table2_rows
from repro.params import FPGA_CONFIG


def test_bench_table2_config(benchmark):
    text = run_once(benchmark, table2)
    print("\n" + text)

    rows = dict(table2_rows())
    assert rows["MAPLE Instances / Scratchpad Size"] == "1 / 1KB"
    assert rows["Core Count / Threads per core"] == "2 / 1"
    assert "8KB 4-way / 2-cycle" in rows["L1D per core / Latency"]
    assert "64KB 8-way / 30-cycle" in rows["L2-size (shared) / Latency"]
    assert rows["DRAM Latency / Max in-flight"].startswith("300-cycle")
    # The tapeout queue geometry (§5.3): 8 queues x 32 x 4B = 1KB.
    assert rows["Queues / Entries / Entry size"] == "8 / 32 / 4B"
    assert FPGA_CONFIG.queue_entries == 32
