"""Table 3: the simulated-system configuration used against prior work."""

from conftest import run_once

from repro.harness.tables import table3, table3_rows
from repro.params import MOSAIC_CONFIG


def test_bench_table3_config(benchmark):
    text = run_once(benchmark, table3)
    print("\n" + text)

    rows = dict(table3_rows())
    assert rows["Instruction Window / ROB Size"] == "1 / 1, In-Order"
    assert rows["Core Count / Threads per core"] == "2 / 1"
    assert "8KB / 4-way / 2-cycle" in rows["L1D (per core) / Latency"]
    assert "64KB / 8-way / 30-cycle" in rows["L2-size (shared) / Latency"]
    assert MOSAIC_CONFIG.dram_latency == 300
