"""Reproduce the paper's non-performance artifacts.

- Table 1: the taxonomy of prior IMA-latency techniques against the four
  adoption features (MAPLE is the only row with all four).
- Tables 2/3: the SoC configurations, rendered from the live simulator
  parameters.
- §5.4: the 12 nm area model — one MAPLE instance vs the 8 Ariane cores
  it can supply (paper: 1.1%).

Run:  python examples/area_and_taxonomy.py
"""

from repro.harness import tables
from repro.harness.figures import area_analysis


def main() -> None:
    print(tables.table1())
    print()
    print(tables.table2())
    print()
    print(tables.table3())
    print()
    report = area_analysis()
    print("Area analysis (12 nm model, §5.4)")
    print("---------------------------------")
    for name, mm2 in report.rows():
        print(f"  {name:35s} {mm2:8.4f} mm^2")
    print(f"  MAPLE overhead vs served cores:     "
          f"{report.overhead_fraction * 100:.2f}%  (paper: 1.1%)")


if __name__ == "__main__":
    main()
