"""Decoupled SPMV through the compiler pipeline (§3.3, Fig. 5).

Shows the whole §3 flow on the paper's best-case kernel:

1. express SPMV in the loop-nest IR;
2. run the DeSC-style slicing analysis (which load is the IMA, which is
   terminal, is the kernel decouplable);
3. lower to Access/Execute thread programs over a MAPLE queue;
4. run both the 2-thread doall baseline and the decoupled version on
   fresh SoCs, validate the numerics, and compare cycles.

Run:  python examples/decoupled_spmv.py
"""

from repro.compiler import Technique, analyze, plan_for
from repro.harness import run_workload
from repro.kernels.spmv import build_spmv_kernel


def describe_compilation() -> None:
    kernel = build_spmv_kernel()
    analysis = analyze(kernel)
    print(f"kernel: {kernel.name}")
    print(f"decouplable: {analysis.decouplable} ({analysis.reason})")
    for info in analysis.loads.values():
        chain = " [A[B[i]] chain]" if info.chain else ""
        kind = "IMA" if info.depth else "regular"
        role = "PRODUCE_PTR/CONSUME" if info.terminal else "replicated"
        print(f"  load {info.stmt.array:8s} depth={info.depth} ({kind:7s}) "
              f"-> {role}{chain}")
    plan = plan_for(analysis, Technique.MAPLE_DECOUPLE)
    print(f"slicing: {len(plan.access_stmts)} statements on Access, "
          f"{len(plan.execute_stmts)} on Execute\n")


def main() -> None:
    describe_compilation()
    baseline = run_workload("spmv", "doall", threads=2)
    decoupled = run_workload("spmv", "maple-decouple", threads=2)
    software = run_workload("spmv", "sw-decouple", threads=2)
    print(f"doall (2 threads):        {baseline.cycles:>9} cycles")
    print(f"MAPLE decoupling:         {decoupled.cycles:>9} cycles "
          f"({baseline.cycles / decoupled.cycles:.2f}x)")
    print(f"software decoupling:      {software.cycles:>9} cycles "
          f"({baseline.cycles / software.cycles:.2f}x — slower than doall, "
          "as in Fig. 8)")
    stats = decoupled.soc.stats
    print(f"\nMAPLE pointer fetches: {stats.get('maple0.produce_ptrs')}, "
          f"mean queue occupancy: "
          f"{stats.histogram('maple0.occupancy').mean:.1f} entries")
    print("results validated against the numpy reference on every run")


if __name__ == "__main__":
    main()
