"""LIMA prefetching on a graph workload (§3.2, Fig. 4).

BFS's inner loop gathers ``dist[neighbors[j]]`` — a loop of indirect
memory accesses.  One LIMA_RUN MMIO store per frontier vertex programs
MAPLE to expand the whole loop in hardware: B fetched in 64-byte chunks,
each index dereferenced, the data landing in a hardware queue the core
consumes (packed, two 4-byte entries per load).

Compares single-thread BFS with no prefetching, software prefetching
(distance-4 insertion, with its instruction overhead), and LIMA.

Run:  python examples/lima_prefetch_graph.py    (takes ~a minute)
"""

from repro.harness import run_workload


def main() -> None:
    scale = 1
    base = run_workload("bfs", "doall", threads=1, scale=scale)
    swpf = run_workload("bfs", "sw-prefetch", threads=1, scale=scale)
    lima = run_workload("bfs", "lima", threads=1, scale=scale)

    print(f"{'technique':16s} {'cycles':>12s} {'speedup':>8s} "
          f"{'loads':>8s} {'avg load latency':>17s}")
    for name, result in (("no-prefetch", base), ("sw-prefetch", swpf),
                         ("maple-lima", lima)):
        print(f"{name:16s} {result.cycles:>12} "
              f"{base.cycles / result.cycles:>7.2f}x "
              f"{result.total_loads():>8} "
              f"{result.avg_load_latency():>15.1f}cy")

    stats = lima.soc.stats
    print(f"\nLIMA expansions: {stats.get('maple0.lima_ops')} "
          f"(one MMIO store per frontier vertex), "
          f"{stats.get('maple0.lima_elements')} elements fetched in hardware")
    print("distances validated against the reference BFS on every run")


if __name__ == "__main__":
    main()
