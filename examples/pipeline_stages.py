"""Extension (§7): software pipelining over MAPLE queues.

The paper envisions MAPLE's queues being "reused and extended ... to do
pipelining, where each program stage is executed in a different
off-the-shelf core or accelerator."  This example builds exactly that: a
three-stage pipeline over two hardware queues of one MAPLE instance —

  core 0 (fetch)     : PRODUCE_PTR the gather addresses into queue 0
                       (MAPLE performs the irregular loads),
  core 1 (transform) : CONSUME queue 0, compute, PRODUCE into queue 1,
  core 2 (reduce)    : CONSUME queue 1 and accumulate/store.

No stage ever waits for DRAM directly — MAPLE's reserve/fill/pop
discipline keeps all three cores' work overlapped, and the queues give
back-pressure for free.

Run:  python examples/pipeline_stages.py
"""

from repro.core.api import QueueHandle
from repro.cpu import Alu, Store, Thread
from repro.params import SoCConfig
from repro.system import Soc


def main() -> None:
    soc = Soc(SoCConfig(num_cores=3))
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)

    n = 64
    indices = [(13 * i) % (n * 8) for i in range(n)]
    data = soc.array(aspace, [float(i) for i in range(n * 8)], name="data")
    out = soc.array(aspace, n, name="out")

    def fetch_stage():
        q0 = yield from api.open(0)
        for idx in indices:
            yield from q0.produce_ptr(data.addr(idx))

    def transform_stage():
        q0 = QueueHandle(api, 0)
        q1 = yield from api.open(1)
        for _ in range(n):
            value = yield from q0.consume()
            yield Alu(3)  # the "compute" of this stage
            yield from q1.produce(value * 2 + 1)

    def reduce_stage():
        q1 = QueueHandle(api, 1)
        for i in range(n):
            value = yield from q1.consume()
            yield Store(out.addr(i), value)

    elapsed = soc.run_threads([
        (0, Thread(fetch_stage(), aspace, "fetch")),
        (1, Thread(transform_stage(), aspace, "transform")),
        (2, Thread(reduce_stage(), aspace, "reduce")),
    ])

    expected = [float(idx) * 2 + 1 for idx in indices]
    assert out.to_list() == expected
    serialized = n * (soc.config.dram_latency + 3)
    print(f"3-stage pipeline over 2 MAPLE queues: {n} elements in "
          f"{elapsed} cycles")
    print(f"fully serialized execution would take >= {serialized} cycles "
          f"-> {serialized / elapsed:.1f}x overlap")
    print(f"queue 0 mean occupancy: "
          f"{soc.stats.histogram('maple0.occupancy').mean:.1f} entries")


if __name__ == "__main__":
    main()
