"""Quickstart: talk to MAPLE through its memory-mapped API.

Builds the Table-2 SoC (2 in-order cores + 1 MAPLE instance on a 2x2
mesh), maps MAPLE into a process, and runs the canonical decoupled
pattern of Fig. 2: an Access thread produces *pointers*, MAPLE fetches
them from DRAM with high memory-level parallelism, and an Execute thread
consumes the values in program order.

Run:  python examples/quickstart.py
"""

from repro.core.api import QueueHandle
from repro.cpu import Thread
from repro.system import FPGA_CONFIG, Soc


def main() -> None:
    soc = Soc(FPGA_CONFIG)
    aspace = soc.new_process()

    # The driver maps the nearest MAPLE instance's MMIO page into the
    # process and points MAPLE's MMU at its page table (SMP-Linux style).
    api = soc.driver.attach(aspace, core_tile=0)
    print(f"MAPLE page mapped at {api.page_vaddr:#x} "
          f"(physical {soc.maples[0].page_paddr:#x})")
    print(f"analytic consume round trip from core 0: "
          f"{soc.maples[0].round_trip_cycles(core_tile=0)} cycles")

    # Data: 32 values, one per cache line, so every fetch is a distinct
    # DRAM access.
    n = 32
    data = soc.array(aspace, [float(10 * i) for i in range(n * 8)], name="A")
    consumed = []

    def access_thread():
        """Runs on core 0: produce pointers, never stall on DRAM."""
        queue = yield from api.open(0)
        for i in range(n):
            yield from queue.produce_ptr(data.addr(8 * i))

    def execute_thread():
        """Runs on core 1: consume values, in program order."""
        queue = QueueHandle(api, 0)
        for _ in range(n):
            value = yield from queue.consume()
            consumed.append(value)

    elapsed = soc.run_threads([
        (0, Thread(access_thread(), aspace, "access")),
        (1, Thread(execute_thread(), aspace, "execute")),
    ])

    assert consumed == [float(80 * i) for i in range(n)]
    serialized = n * soc.config.dram_latency
    print(f"\nfetched {n} cache-line-apart values in {elapsed} cycles")
    print(f"serialized DRAM time would be {serialized} cycles "
          f"-> overlap factor {serialized / elapsed:.1f}x")
    print(f"peak fetch MLP inside MAPLE: "
          f"{soc.stats.histogram('maple0.fetch_mlp').max:.0f}")


if __name__ == "__main__":
    main()
