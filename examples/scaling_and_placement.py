"""Thread scaling and MAPLE placement (§5.3, Figs. 13/15).

Part 1 — scaling: 2/4/8 threads, every Access/Execute pair sharing ONE
MAPLE instance, versus doall at the same thread count (Fig. 13: the
speedup holds as threads scale).

Part 2 — placement: the OS maps each thread to the *nearest* MAPLE
instance in mesh hops; this sweeps the core<->MAPLE round trip and shows
speedup shrinking as the engine moves away (Fig. 15).

Run:  python examples/scaling_and_placement.py
"""

from repro.harness import run_workload
from repro.harness.figures import roundtrip_config
from repro.params import FPGA_CONFIG


def scaling() -> None:
    print("thread scaling (SPMV, one shared MAPLE):")
    for threads in (2, 4, 8):
        base = run_workload("spmv", "doall", threads=threads, scale=2)
        dec = run_workload("spmv", "maple-decouple", threads=threads, scale=2)
        pairs = threads // 2
        print(f"  {threads} threads ({pairs} Access/Execute pair"
              f"{'s' if pairs > 1 else ''}): "
              f"{base.cycles / dec.cycles:.2f}x over doall")


def placement() -> None:
    print("\nround-trip latency sensitivity (SPMV decoupling):")
    for target in (11, 25, 51, 101):
        cfg = roundtrip_config(FPGA_CONFIG, target)
        base = run_workload("spmv", "doall", threads=2, config=cfg)
        dec = run_workload("spmv", "maple-decouple", threads=2, config=cfg)
        print(f"  ~{target:3d}-cycle round trip: "
              f"{base.cycles / dec.cycles:.2f}x over doall")


if __name__ == "__main__":
    scaling()
    placement()
