"""MAPLE: a full-system reproduction of "Tiny but Mighty" (ISCA 2022).

Public API surface:

- :class:`repro.system.Soc` — build the simulated SoC (cores + MAPLE
  instances + NoC + memory + OS) from a :class:`repro.params.SoCConfig`.
- :class:`repro.core.MapleApi` / :class:`repro.core.QueueHandle` — the
  user-mode MMIO API (§3.1/§3.2): OPEN, PRODUCE, PRODUCE_PTR, CONSUME,
  LIMA, PREFETCH.
- :mod:`repro.compiler` — the slicing compiler targeting that API (§3.3).
- :func:`repro.harness.run_workload` — run one (workload, technique)
  experiment; :mod:`repro.harness.figures` regenerates the paper's
  figures.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.params import FPGA_CONFIG, MOSAIC_CONFIG, SoCConfig

__version__ = "1.0.0"

__all__ = ["FPGA_CONFIG", "MOSAIC_CONFIG", "SoCConfig", "__version__"]
