"""Comparator techniques the paper evaluates MAPLE against.

- :mod:`repro.baselines.swqueue` — software-only decoupling over a
  shared-memory SPSC ring (the Fig. 8 baseline).  The Access thread pays
  the IMA stalls itself and every transfer bounces cache lines between
  the two cores.
- :mod:`repro.baselines.desc` — DeSC [Ham et al.]: architecturally
  visible low-latency queues, a Supply slice that performs *all* loads
  (terminal ones hoisted into a non-blocking side structure) and receives
  the Compute slice's stores.
- :mod:`repro.baselines.droplet` — DROPLET [Basak et al.]: a memory-side
  data-aware prefetcher that watches index-array lines fill the LLC,
  dereferences them, and prefetches the data array into the LLC.
"""

from repro.baselines.desc import DescBackend
from repro.baselines.droplet import DropletPrefetcher
from repro.baselines.swqueue import SwQueueBackend, SwQueueRing

__all__ = ["DescBackend", "DropletPrefetcher", "SwQueueBackend", "SwQueueRing"]
