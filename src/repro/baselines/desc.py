"""A behavioural model of DeSC (Ham, Aragón, Martonosi — MICRO'15).

DeSC couples a Supply (Access) core and a Compute (Execute) core with
architecturally visible queues.  The properties the paper compares
against (§5.2):

- queue operations are cheap (a couple of cycles), far below MAPLE's
  ~25-cycle MMIO round trip — DeSC wins on pure decoupling latency;
- loads whose values are used only by Compute are hoisted into a
  non-blocking side structure on the Supply core (modeled here by the
  reserve/fill/pop discipline of :class:`~repro.core.queues.HwQueue`
  with fetches through Supply's cache hierarchy);
- the Compute core has **no visibility into the memory hierarchy**: its
  stores are shipped back to Supply, which issues them — the source of
  DeSC's loss of runahead on BFS;
- Supply/Compute are hardwired core roles: a DeSC machine cannot
  re-purpose them at runtime the way MAPLE threads can.
"""

from __future__ import annotations

from repro.compiler.interp import QueueBackend
from repro.core.queues import HwQueue
from repro.cpu import isa
from repro.sim import Semaphore
from repro.vm.os_model import AddressSpace


class DescBackend(QueueBackend):
    """The Supply<->Compute queue pair plus the decoupled-load engine."""

    #: Architectural queue access latency, cycles (tightly coupled).
    COMM_LATENCY = 2

    def __init__(self, soc, aspace: AddressSpace, supply_core_id: int,
                 capacity: int = 64, max_inflight: int = 16,
                 store_queue: int = 16):
        self._soc = soc
        self._sim = soc.sim
        self._memsys = soc.memsys
        self._aspace = aspace
        self._supply_core = supply_core_id
        self.stats = soc.stats.scoped("desc")
        self.queue = HwQueue(soc.sim, 0, capacity, self.stats)
        self._inflight = Semaphore(soc.sim, max_inflight, name="desc.inflight")
        self._store_slots = Semaphore(soc.sim, store_queue, name="desc.stq")
        # Supply has a single store port: shipped stores issue in order,
        # one at a time (stores cannot be speculated or overlapped the way
        # the hoisted loads can).
        self._store_port = Semaphore(soc.sim, 1, name="desc.stport")

    def _translate(self, vaddr: int):
        """Generator: Supply-side translation.  A miss traps to the OS
        fault path (Supply is an ordinary core with an ordinary MMU), so
        lazily mapped or injected-evicted pages resolve instead of
        crashing; truly unmapped addresses raise SegmentationFault."""
        while True:
            paddr = self._aspace.page_table.lookup(vaddr)
            if paddr is not None:
                return paddr
            yield from self._soc.os.handle_fault(self._aspace, vaddr)

    # -- Supply side -------------------------------------------------------------

    def produce(self, value):
        """Push a value Supply already holds (bounds, computed data)."""
        slot = yield from self.queue.reserve()
        yield isa.Alu(1)  # queue issue slot
        self.stats.bump("produces")
        self._sim.spawn(self._fill_later(slot, value), name="desc.produce")

    def _fill_later(self, slot: int, value):
        yield self.COMM_LATENCY
        self.queue.fill(slot, value)

    def produce_ptr(self, addr):
        """The DeSC hoisted load: reserve a slot, fetch through Supply's
        cache hierarchy without stalling the Supply pipeline.

        Conservative memory disambiguation: a hoisted load must not bypass
        stores shipped back from Compute that might alias it (DeSC does
        not speculate on memory ordering).  Kernels that stream stores
        through Supply — BFS's dist updates — therefore stall the fetch
        engine behind the store queue: the "loss of runahead" §5.2 blames
        for DeSC's poor BFS showing.  MAPLE sidesteps this with the
        software-level benign-race contract (§3.6).
        """
        yield from self.load_fence()
        slot = yield from self.queue.reserve()
        yield isa.Alu(1)
        self.stats.bump("produce_ptrs")
        self._sim.spawn(self._fetch_into(slot, addr), name="desc.fetch")

    def _fetch_into(self, slot: int, addr):
        yield from self._inflight.acquire()
        try:
            paddr = yield from self._translate(addr)
            value = yield from self._memsys.load(self._supply_core, paddr)
        finally:
            self._inflight.release()
        yield self.COMM_LATENCY
        self.queue.fill(slot, value)

    # -- Compute side -----------------------------------------------------------------

    def consume(self):
        yield isa.Alu(self.COMM_LATENCY)
        value = yield from self.queue.pop()
        self.stats.bump("consumes")
        return value

    def store(self, addr, value):
        """Compute has no memory path: ship the store to Supply."""
        yield isa.Alu(self.COMM_LATENCY)
        yield from self._store_slots.acquire()
        self.stats.bump("stores_via_supply")
        self._sim.spawn(self._issue_store(addr, value), name="desc.store")

    def _issue_store(self, addr, value):
        try:
            yield from self._store_port.acquire()
            try:
                paddr = yield from self._translate(addr)
                yield from self._memsys.store(self._supply_core, paddr, value)
            finally:
                self._store_port.release()
        finally:
            self._store_slots.release()

    def load_fence(self):
        """Supply-side memory ordering: any load (its own or hoisted) must
        wait while shipped stores with unresolved addresses are pending."""
        while self._store_slots.in_use:
            self.stats.bump("disambiguation_stalls")
            yield 5

    def fetch_add(self, addr, amount):
        """Compute-side atomic: shipped to Supply and executed there; the
        Compute slice blocks for the result (it needs the old value)."""
        yield isa.Alu(self.COMM_LATENCY)
        paddr = yield from self._translate(addr)
        old = yield from self._memsys.amo(self._supply_core, paddr,
                                          lambda v, a=amount: v + a)
        yield isa.Alu(self.COMM_LATENCY)
        self.stats.bump("amos_via_supply")
        return old

    def drain_stores(self):
        """Generator: wait until every shipped store has been issued —
        required before an epoch barrier (this is where BFS loses)."""
        while self._store_slots.in_use:
            yield 5
