"""A behavioural model of DROPLET (Basak et al., HPCA'19).

DROPLET is a data-aware, memory-side prefetcher for graph workloads: it
is told where the index arrays (CSR offsets / neighbor lists) live, and
when a line of an index array arrives at the LLC it (a) streams the next
index lines ahead and (b) *dereferences* the indices it just saw,
prefetching the corresponding data-array lines into the LLC.

The model hooks :attr:`MemorySystem.l2_fill_listeners`: demand fills of a
registered index region trigger stream-ahead; every index-region fill
(demand or prefetched) is dereferenced.  Demand loads of the data array
then hit in the L2 (30 cycles) instead of DRAM (300) when the prefetch
was timely — but, unlike MAPLE, the core still pays the L1-miss path per
element and the prefetcher can only run ahead as far as its stream
window, which is what Fig. 12 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mem.hierarchy import MemorySystem
from repro.vm.alloc import SimArray
from repro.vm.os_model import AddressSpace


@dataclass
class _Indirection:
    """index array physical region -> data array dereference rule."""

    index_start: int   # physical, inclusive
    index_end: int     # physical, exclusive
    data_base_vaddr: int
    aspace: AddressSpace
    elem_offset: int = 0  # constant added to each index before dereference
    #: Lines already processed.  DROPLET follows the demand stream through
    #: the index array once; re-fetches of already-consumed lines (L2
    #: evictions) must not re-trigger dereferencing, or the prefetcher
    #: floods the LLC with dead traffic.
    done_lines: set = None

    def __post_init__(self):
        self.done_lines = set()


class DropletPrefetcher:
    """Memory-side stream + indirect prefetcher attached to the LLC.

    ``prefetch_queue`` bounds the outstanding dereference prefetches, as
    the hardware's data-prefetch buffer does: when a burst of indices
    arrives faster than DRAM returns lines, the excess requests are
    dropped (counted in ``droplet.dropped``).  This bounded timeliness —
    together with every covered element still paying the L1-miss-to-LLC
    path — is why DROPLET trails MAPLE in Fig. 12 despite knowing the
    exact indirection pattern.
    """

    STREAM_AHEAD_LINES = 2

    def __init__(self, memsys: MemorySystem, prefetch_queue: int = 4):
        self._memsys = memsys
        self._rules: List[_Indirection] = []
        self.stats = memsys.stats.scoped("droplet")
        self._prefetch_queue = prefetch_queue
        self._inflight = 0
        memsys.l2_fill_listeners.append(self._on_l2_fill)

    def register_indirection(self, aspace: AddressSpace, index_array: SimArray,
                             data_array: SimArray, elem_offset: int = 0) -> None:
        """Teach the prefetcher one A[B[i]] relation (its data-awareness).

        The index array must be physically contiguous pagewise for the
        region check; our OS allocates frames in ascending order, so an
        eagerly mapped array satisfies this.
        """
        start = aspace.page_table.lookup(index_array.base)
        end_vaddr = index_array.addr(index_array.length - 1)
        end = aspace.page_table.lookup(end_vaddr)
        if start is None or end is None:
            raise ValueError("index array must be fully mapped")
        self._rules.append(_Indirection(start, end + 8, data_array.base,
                                        aspace, elem_offset))
        self.stats.bump("registered_regions")

    # -- LLC fill hook -------------------------------------------------------

    def _on_l2_fill(self, line_addr: int, was_prefetch: bool) -> None:
        line_size = self._memsys.config.line_size
        for rule in self._rules:
            if not (rule.index_start <= line_addr < rule.index_end):
                continue
            if line_addr in rule.done_lines:
                continue
            rule.done_lines.add(line_addr)
            self._dereference(rule, line_addr, line_size)
            if not was_prefetch:
                self._stream_ahead(rule, line_addr, line_size)

    def _dereference(self, rule: _Indirection, line_addr: int,
                     line_size: int) -> None:
        words = self._memsys.mem.read_line(line_addr, line_size)
        for word in words:
            if not isinstance(word, int):
                continue  # padding / foreign data sharing the line
            target_vaddr = rule.data_base_vaddr + 8 * (word + rule.elem_offset)
            target_paddr = rule.aspace.page_table.lookup(target_vaddr)
            if target_paddr is None:
                continue
            if self._inflight >= self._prefetch_queue:
                self.stats.bump("dropped")
                continue
            self.stats.bump("dereferences")
            self._issue(target_paddr)

    def _issue(self, paddr: int) -> None:
        self._inflight += 1

        def done() -> None:
            self._inflight -= 1

        self._memsys.prefetch_l2(paddr, on_complete=done)

    def _stream_ahead(self, rule: _Indirection, line_addr: int,
                      line_size: int) -> None:
        for ahead in range(1, self.STREAM_AHEAD_LINES + 1):
            next_line = line_addr + ahead * line_size
            if next_line >= rule.index_end:
                break
            self.stats.bump("stream_prefetches")
            self._memsys.prefetch_l2(next_line)
