"""Shared-memory software decoupling (the Fig. 8 software baseline).

A single-producer single-consumer ring buffer in ordinary coherent
memory: the classic Lamport queue with locally cached head/tail and
periodic publication.  Every published index and every payload slot
bounces between the producer's and consumer's L1s (upgrade +
forward coherence round trips), and — decisively — ``produce_ptr`` must
perform the indirect load on the Access core itself, stalling it for the
full DRAM latency.  This is why software-only decoupling *loses* to
plain doall parallelism on in-order cores (§5.1).
"""

from __future__ import annotations

from repro.compiler.interp import QueueBackend
from repro.cpu import isa
from repro.vm.alloc import SimArray


class SwQueueRing:
    """The in-memory ring: payload buffer plus head/tail cells.

    Head and tail live in separate arrays, hence separate pages and cache
    lines — the standard false-sharing precaution; the ping-pong this
    model charges is the *true* sharing cost of the protocol.
    """

    def __init__(self, soc, aspace, capacity: int = 64,
                 publish_interval: int = 4, name: str = "swq"):
        if capacity < publish_interval:
            raise ValueError("ring capacity must cover the publish interval")
        self.capacity = capacity
        self.publish_interval = publish_interval
        self.buffer: SimArray = soc.array(aspace, capacity, name=f"{name}.buf")
        self.head_cell: SimArray = soc.array(aspace, 1, name=f"{name}.head")
        self.tail_cell: SimArray = soc.array(aspace, 1, name=f"{name}.tail")

    def producer(self) -> "SwQueueBackend":
        return SwQueueBackend(self, producer=True)

    def consumer(self) -> "SwQueueBackend":
        return SwQueueBackend(self, producer=False)


class SwQueueBackend(QueueBackend):
    """One endpoint of the ring (producer or consumer)."""

    SPIN_BACKOFF_CYCLES = 10

    def __init__(self, ring: SwQueueRing, producer: bool):
        self._ring = ring
        self._is_producer = producer
        self._local = 0        # producer: tail; consumer: head
        self._cached_remote = 0  # producer: last head seen; consumer: last tail

    # -- producer side -------------------------------------------------------

    def produce(self, value):
        if not self._is_producer:
            raise RuntimeError("consumer endpoint cannot produce")
        ring = self._ring
        while self._local - self._cached_remote >= ring.capacity:
            self._cached_remote = yield isa.Load(ring.head_cell.addr(0))
            if self._local - self._cached_remote >= ring.capacity:
                yield isa.Alu(self.SPIN_BACKOFF_CYCLES)
        yield isa.Store(ring.buffer.addr(self._local % ring.capacity), value)
        self._local += 1
        yield isa.Alu(1)  # index arithmetic
        if self._local % ring.publish_interval == 0:
            yield isa.Store(ring.tail_cell.addr(0), self._local)

    def produce_ptr(self, addr):
        """Software queues cannot fetch pointers: load here, then push the
        value — the Access-thread stall MAPLE exists to remove."""
        value = yield isa.Load(addr)
        yield from self.produce(value)

    # -- consumer side ------------------------------------------------------------

    def consume(self):
        if self._is_producer:
            raise RuntimeError("producer endpoint cannot consume")
        ring = self._ring
        while self._local >= self._cached_remote:
            self._cached_remote = yield isa.Load(ring.tail_cell.addr(0))
            if self._local >= self._cached_remote:
                yield isa.Alu(self.SPIN_BACKOFF_CYCLES)
        value = yield isa.Load(ring.buffer.addr(self._local % ring.capacity))
        self._local += 1
        yield isa.Alu(1)
        if self._local % ring.publish_interval == 0:
            yield isa.Store(ring.head_cell.addr(0), self._local)
        return value

    # -- end-of-slice flush ------------------------------------------------------

    def flush(self):
        """Publish any unannounced progress (call when a slice finishes)."""
        if self._is_producer:
            yield isa.Store(self._ring.tail_cell.addr(0), self._local)
        else:
            yield isa.Store(self._ring.head_cell.addr(0), self._local)
