"""The compiler stack targeting MAPLE's API (§3.3).

The paper adapts DeSC's LLVM slicing: programs are split into Access and
Execute slices, loads become PRODUCE/CONSUME pairs, and loads with no
dependents on the Access side (terminal loads) become PRODUCE_PTR so
MAPLE fetches them.  Here the same transformation runs on a small
loop-nest IR (:mod:`repro.compiler.ir`):

1. :mod:`repro.compiler.analysis` classifies every load (regular vs
   indirect, terminal vs address-feeding), detects indirect
   read-modify-writes (which make a kernel non-decouplable — the SPMM
   case), and computes which statements each slice needs.
2. :mod:`repro.compiler.plan` turns the analysis into per-technique
   slicing plans (doall, MAPLE/shared-memory/DeSC decoupling, software
   prefetching, LIMA).
3. :mod:`repro.compiler.interp` lowers a plan to executable thread
   programs — generators of ISA instructions a core runs.
"""

from repro.compiler.analysis import KernelAnalysis, analyze
from repro.compiler.ir import (
    Bin,
    ComputeStmt,
    Const,
    ForStmt,
    IfStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    Var,
)
from repro.compiler.plan import LoadAction, SlicePlan, Technique, plan_for
from repro.compiler.interp import Runtime, interpret

__all__ = [
    "Bin",
    "ComputeStmt",
    "Const",
    "ForStmt",
    "IfStmt",
    "Kernel",
    "KernelAnalysis",
    "LoadAction",
    "LoadStmt",
    "Runtime",
    "SlicePlan",
    "StoreStmt",
    "Technique",
    "Var",
    "analyze",
    "interpret",
    "plan_for",
]
