"""Dataflow analysis over kernel IR: the brains of the slicing pass.

Answers the questions DeSC's compiler asks (§3.3):

- which loads are *indirect* (their address depends on another load's
  value — the IMAs);
- which of those are *terminal* (the loaded value feeds only value
  computation, never further addresses or loop bounds) and can therefore
  be offloaded as PRODUCE_PTR;
- whether the kernel performs an indirect read-modify-write, which makes
  decoupling unsound (the paper's SPMM case — the compiler "falls back to
  doall parallelism");
- which statements each slice (Access / Execute) must run;
- the ``A[B[i]]`` chains that software prefetching re-evaluates at
  distance D and that LIMA can expand in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.compiler.ir import (
    Bin,
    ComputeStmt,
    Expr,
    FetchAddStmt,
    ForStmt,
    IfStmt,
    Kernel,
    LoadStmt,
    Stmt,
    StoreStmt,
    Var,
    expr_equal,
    expr_vars,
)

#: Use categories a temp's value can flow into.
ADDRESS = "address"       # index of another load
BOUND = "bound"           # loop bound
VALUE = "value"           # arithmetic / store value
STORE_INDEX = "store_index"
COND = "cond"             # if-condition

_EXECUTE_CATS = {VALUE, STORE_INDEX, COND}


@dataclass
class ImaChain:
    """An ``A[B[f(j)] + offset]`` pattern over an innermost loop ``j``.

    ``offset_expr`` (possibly None) is loop-invariant w.r.t. the inner
    loop — e.g. SPMM's dense-temp index ``c*rows + i`` where ``c`` is the
    outer loop variable.  LIMA folds it into the effective base address.
    """

    ima_load: LoadStmt
    index_load: LoadStmt
    loop: ForStmt
    lima_compatible: bool  # index_load reads B[j] with j the loop var
    offset_expr: Optional["Expr"] = None


@dataclass
class LoadInfo:
    stmt: LoadStmt
    depth: int
    categories: Set[str]
    terminal: bool
    chain: Optional[ImaChain] = None


@dataclass
class KernelAnalysis:
    kernel: Kernel
    loads: Dict[int, LoadInfo]
    indirect_rmw: bool
    decouplable: bool
    reason: str
    in_access: Set[int]          # stmt ids the Access slice runs (initial set)
    in_execute: Set[int]         # stmt ids the Execute slice runs (initial set)
    produce_ptr_loads: Set[int]  # terminal IMAs (Access: ptr, Execute: consume)
    access_stalling_loads: Set[int]  # indirect loads Access must do itself
    defs: Dict[str, List[Stmt]] = None  # temp name -> defining statements

    def load_info(self, stmt: LoadStmt) -> LoadInfo:
        return self.loads[stmt.stmt_id]


def analyze(kernel: Kernel) -> KernelAnalysis:
    defs = _collect_defs(kernel)
    depth = _load_depths(kernel, defs)
    categories = _use_categories(kernel, defs)

    loads: Dict[int, LoadInfo] = {}
    for stmt, parents in kernel.all_statements():
        if not isinstance(stmt, LoadStmt):
            continue
        cats = categories.get(stmt.dest, set())
        terminal = depth[stmt.stmt_id] >= 1 and cats <= _EXECUTE_CATS and bool(cats)
        loads[stmt.stmt_id] = LoadInfo(stmt, depth[stmt.stmt_id], cats, terminal)

    for info in loads.values():
        if info.depth >= 1:
            info.chain = _match_chain(kernel, info.stmt, defs)

    indirect_rmw = _has_indirect_rmw(kernel, defs, depth)
    has_terminal = any(info.terminal for info in loads.values())

    in_access, in_execute, stalling = _slice_membership(kernel, defs, categories,
                                                        loads)
    access_in_if = _access_statements_under_if(kernel, in_access, loads)

    if indirect_rmw:
        decouplable, reason = False, "indirect read-modify-write (RMW IMAs cannot be decoupled)"
    elif not has_terminal:
        decouplable, reason = False, "no terminal indirect loads to offload"
    elif access_in_if:
        decouplable, reason = False, "Access-side work under value-dependent control"
    else:
        decouplable, reason = True, "terminal IMAs found"

    produce_ptrs = {sid for sid, info in loads.items() if info.terminal}
    return KernelAnalysis(
        kernel=kernel,
        loads=loads,
        indirect_rmw=indirect_rmw,
        decouplable=decouplable,
        reason=reason,
        in_access=in_access,
        in_execute=in_execute,
        produce_ptr_loads=produce_ptrs if decouplable else set(),
        access_stalling_loads=stalling,
        defs=defs,
    )


# -- helpers ---------------------------------------------------------------


def _collect_defs(kernel: Kernel) -> Dict[str, List[Stmt]]:
    defs: Dict[str, List[Stmt]] = {}
    for stmt, _parents in kernel.all_statements():
        if isinstance(stmt, (LoadStmt, ComputeStmt, FetchAddStmt)):
            defs.setdefault(stmt.dest, []).append(stmt)
    return defs


def _load_depths(kernel: Kernel, defs: Dict[str, List[Stmt]]) -> Dict[int, int]:
    """Indirection depth of every load (0 = address from loop vars only)."""
    memo: Dict[int, int] = {}

    def name_depth(name: str, visiting: Set[int]) -> int:
        best = 0
        for stmt in defs.get(name, []):
            if stmt.stmt_id in visiting:
                continue  # accumulator cycle: contributes no extra depth
            if isinstance(stmt, LoadStmt):
                best = max(best, load_depth(stmt, visiting) + 1)
            elif isinstance(stmt, ComputeStmt):
                for var in expr_vars(stmt.expr):
                    best = max(best, name_depth(var, visiting | {stmt.stmt_id}))
            elif isinstance(stmt, FetchAddStmt):
                for var in expr_vars(stmt.index):
                    best = max(best, name_depth(var, visiting | {stmt.stmt_id}))
        return best

    def load_depth(stmt: LoadStmt, visiting: Set[int]) -> int:
        if stmt.stmt_id in memo:
            return memo[stmt.stmt_id]
        depth = 0
        for var in expr_vars(stmt.index):
            depth = max(depth, name_depth(var, visiting | {stmt.stmt_id}))
        memo[stmt.stmt_id] = depth
        return depth

    return {
        stmt.stmt_id: load_depth(stmt, set())
        for stmt, _p in kernel.all_statements()
        if isinstance(stmt, LoadStmt)
    }


def _use_categories(kernel: Kernel, defs: Dict[str, List[Stmt]]
                    ) -> Dict[str, Set[str]]:
    """For every temp, the set of use categories its value flows into,
    closed transitively through compute statements."""
    categories: Dict[str, Set[str]] = {}

    def mark(names: Set[str], category: str) -> None:
        for name in names:
            categories.setdefault(name, set()).add(category)

    for stmt, _parents in kernel.all_statements():
        if isinstance(stmt, LoadStmt):
            mark(expr_vars(stmt.index), ADDRESS)
        elif isinstance(stmt, StoreStmt):
            mark(expr_vars(stmt.index), STORE_INDEX)
            mark(expr_vars(stmt.value), VALUE)
        elif isinstance(stmt, ForStmt):
            mark(expr_vars(stmt.lo) | expr_vars(stmt.hi), BOUND)
        elif isinstance(stmt, IfStmt):
            mark(expr_vars(stmt.cond), COND)
        elif isinstance(stmt, FetchAddStmt):
            mark(expr_vars(stmt.index), STORE_INDEX)
            mark(expr_vars(stmt.amount), VALUE)

    # Fixpoint: operands of a compute inherit the categories of its dest.
    changed = True
    while changed:
        changed = False
        for stmt, _parents in kernel.all_statements():
            if not isinstance(stmt, ComputeStmt):
                continue
            dest_cats = categories.get(stmt.dest, set())
            for var in expr_vars(stmt.expr):
                if var == stmt.dest:
                    continue
                var_cats = categories.setdefault(var, set())
                if not dest_cats <= var_cats:
                    var_cats |= dest_cats
                    changed = True
    return categories


def _match_chain(kernel: Kernel, ima: LoadStmt,
                 defs: Dict[str, List[Stmt]]) -> Optional[ImaChain]:
    """Recognize ``A[B[f(j)] (+ invariant)]`` over an innermost loop j."""
    temp_name, offset_expr = _split_index(ima.index, defs)
    if temp_name is None:
        return None
    feeders = defs.get(temp_name, [])
    if len(feeders) != 1 or not isinstance(feeders[0], LoadStmt):
        return None
    index_load = feeders[0]
    # Innermost loop enclosing both loads.
    ima_parents = _parents_of(kernel, ima)
    idx_parents = _parents_of(kernel, index_load)
    loops = [p for p in ima_parents if isinstance(p, ForStmt)]
    if not loops or idx_parents != ima_parents:
        return None
    loop = loops[-1]
    if expr_vars(index_load.index) != {loop.var}:
        return None
    if offset_expr is not None:
        # The offset must be invariant in the inner loop: its names may
        # only be params or variables of *enclosing* loops.
        enclosing_vars = {p.var for p in ima_parents if isinstance(p, ForStmt)
                          and p is not loop}
        allowed = enclosing_vars | set(kernel.params)
        if not expr_vars(offset_expr) <= allowed:
            return None
    lima_compatible = expr_equal(index_load.index, Var(loop.var))
    return ImaChain(ima, index_load, loop, lima_compatible, offset_expr)


def _split_index(index, defs: Dict[str, List[Stmt]]):
    """Split an IMA index into (loaded-temp name, invariant offset expr)."""
    if isinstance(index, Var):
        if any(isinstance(d, LoadStmt) for d in defs.get(index.name, [])):
            return index.name, None
        return None, None
    if isinstance(index, Bin) and index.op == "+":
        for temp_side, offset_side in ((index.lhs, index.rhs),
                                       (index.rhs, index.lhs)):
            if (isinstance(temp_side, Var)
                    and any(isinstance(d, LoadStmt)
                            for d in defs.get(temp_side.name, []))
                    and temp_side.name not in expr_vars(offset_side)):
                return temp_side.name, offset_side
    return None, None


def _parents_of(kernel: Kernel, target: Stmt) -> Tuple[Stmt, ...]:
    for stmt, parents in kernel.all_statements():
        if stmt is target:
            return parents
    raise ValueError(f"statement {target!r} not in kernel {kernel.name}")


def _has_indirect_rmw(kernel: Kernel, defs: Dict[str, List[Stmt]],
                      depth: Dict[int, int]) -> bool:
    """A store to X[e] paired with a load of X[e] where e is indirect.

    Arrays the kernel annotates as benign-race (idempotent epoch-level
    check-and-set, like BFS's dist) are exempt — that is the software
    contract §3.6 places on users of MAPLE's non-coherent loads.
    """
    benign = set(kernel.benign_race_arrays)
    for store, _parents in kernel.all_statements():
        if not isinstance(store, StoreStmt) or store.array in benign:
            continue
        index_indirect = any(
            isinstance(d, LoadStmt)
            for var in expr_vars(store.index)
            for d in defs.get(var, [])
        )
        if not index_indirect:
            continue
        for load, _p in kernel.all_statements():
            if (isinstance(load, LoadStmt) and load.array == store.array
                    and expr_equal(load.index, store.index)):
                return True
    return False


def _slice_membership(kernel: Kernel, defs: Dict[str, List[Stmt]],
                      categories: Dict[str, Set[str]],
                      loads: Dict[int, LoadInfo]
                      ) -> Tuple[Set[int], Set[int], Set[int]]:
    in_access: Set[int] = set()
    in_execute: Set[int] = set()
    stalling: Set[int] = set()
    for stmt, _parents in kernel.all_statements():
        if isinstance(stmt, (ForStmt,)):
            in_access.add(stmt.stmt_id)
            in_execute.add(stmt.stmt_id)
        elif isinstance(stmt, (StoreStmt, IfStmt, FetchAddStmt)):
            in_execute.add(stmt.stmt_id)
        elif isinstance(stmt, ComputeStmt):
            cats = categories.get(stmt.dest, set())
            if cats & (_EXECUTE_CATS | {BOUND}):
                in_execute.add(stmt.stmt_id)
            if cats & {ADDRESS, BOUND}:
                in_access.add(stmt.stmt_id)
        elif isinstance(stmt, LoadStmt):
            info = loads[stmt.stmt_id]
            if info.terminal:
                in_access.add(stmt.stmt_id)   # as PRODUCE_PTR
                in_execute.add(stmt.stmt_id)  # as CONSUME
                continue
            if info.categories & (_EXECUTE_CATS | {BOUND}):
                in_execute.add(stmt.stmt_id)
            if info.categories & {ADDRESS, BOUND}:
                in_access.add(stmt.stmt_id)
                if info.depth >= 1:
                    # Access must perform an IMA itself — the decoupling
                    # still works but the Access thread stalls on it.
                    stalling.add(stmt.stmt_id)
    return in_access, in_execute, stalling


def _access_statements_under_if(kernel: Kernel, in_access: Set[int],
                                loads: Dict[int, LoadInfo]) -> bool:
    for stmt, parents in kernel.all_statements():
        if stmt.stmt_id in in_access and not isinstance(stmt, ForStmt):
            if any(isinstance(p, IfStmt) for p in parents):
                return True
    return False
