"""Lowering: execute a slicing plan as a stream of ISA instructions.

The interpreter walks the kernel IR with a per-slice :class:`Role` that
decides what each statement becomes on the core: a plain load, a MAPLE
API operation, a software-queue transfer, a prefetch sequence, or nothing
(the statement belongs to the other slice).  The result is a generator a
:class:`~repro.cpu.core.Core` runs directly, so all timing — MMIO round
trips, queue backpressure, cache behaviour — is the real model's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.compiler.analysis import ImaChain
from repro.compiler.ir import (
    ComputeStmt,
    FetchAddStmt,
    ForStmt,
    IfStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    compile_expr,
    eval_expr,
)
from repro.compiler.plan import LoadAction, SlicePlan
from repro.core.api import QueueHandle
from repro.cpu import isa
from repro.vm.alloc import SimArray


@dataclass
class Runtime:
    """Binding of kernel array/param names to simulated state."""

    arrays: Dict[str, SimArray]
    params: Dict[str, float] = field(default_factory=dict)

    def array(self, name: str) -> SimArray:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(f"kernel array {name!r} not bound in runtime")

    def with_params(self, **params) -> "Runtime":
        merged = dict(self.params)
        merged.update(params)
        return Runtime(self.arrays, merged)


class QueueBackend:
    """How a decoupled pair communicates. Subclasses: MAPLE MMIO, the
    shared-memory ring, DeSC architectural queues."""

    def produce(self, value):
        raise NotImplementedError

    def produce_ptr(self, addr):
        raise NotImplementedError

    def consume(self):
        raise NotImplementedError

    def store(self, addr, value):
        """Default: Execute stores directly (MAPLE keeps cores coherent)."""
        yield isa.Store(addr, value)


class MapleBackend(QueueBackend):
    """Decoupling over a MAPLE hardware queue (§3.1)."""

    def __init__(self, handle: QueueHandle):
        self.handle = handle

    def produce(self, value):
        yield from self.handle.produce(value)

    def produce_ptr(self, addr):
        yield from self.handle.produce_ptr(addr)

    def consume(self):
        value = yield from self.handle.consume()
        return value


# -- roles --------------------------------------------------------------------


class Role:
    """Per-slice behaviour hooks for the interpreter."""

    def __init__(self, plan: SlicePlan):
        self.plan = plan

    def includes(self, stmt) -> bool:
        raise NotImplementedError

    def load_action(self, stmt: LoadStmt) -> LoadAction:
        raise NotImplementedError

    def produce(self, value):
        raise NotImplementedError("this role does not produce")

    def produce_ptr(self, addr):
        raise NotImplementedError("this role does not produce pointers")

    def consume(self):
        raise NotImplementedError("this role does not consume")

    def store(self, addr, value):
        yield isa.Store(addr, value)

    def fetch_add(self, addr, amount):
        old = yield isa.Amo(addr, lambda value, a=amount: value + a)
        return old

    def before_load(self):
        """Hook run before a slice-local LOAD (memory-ordering fences)."""
        return
        yield  # pragma: no cover - generator shape

    def on_loop_enter(self, stmt: ForStmt, lo: int, hi: int, env: dict,
                      runtime: Runtime):
        return
        yield  # pragma: no cover - generator shape

    def on_iteration(self, stmt: ForStmt, index: int, hi: int, env: dict,
                     runtime: Runtime):
        return
        yield  # pragma: no cover - generator shape


class DoallRole(Role):
    """Plain execution of every statement (the baseline)."""

    def includes(self, stmt) -> bool:
        return stmt.stmt_id in self.plan.execute_stmts

    def load_action(self, stmt: LoadStmt) -> LoadAction:
        return self.plan.execute_actions.get(stmt.stmt_id, LoadAction.LOAD)


class PrefetchRole(DoallRole):
    """Software prefetching at distance D (Fig. 9 baseline).

    For every ``A[B[f(j)]]`` chain, each iteration j re-evaluates the chain
    at ``j+D``: an extra load of ``B[f(j+D)]``, an address-computation ALU
    op, and a prefetch of ``&A[B[f(j+D)]]`` into the L1 — the instruction
    overhead ("code bloat") the paper charges this technique with.
    """

    def __init__(self, plan: SlicePlan, distance: int = 8):
        super().__init__(plan)
        if distance < 1:
            raise ValueError("prefetch distance must be >= 1")
        self.distance = distance
        self._chains_by_loop: Dict[int, List[ImaChain]] = {}
        for chain in plan.prefetch_chains:
            self._chains_by_loop.setdefault(chain.loop.stmt_id, []).append(chain)

    def on_iteration(self, stmt: ForStmt, index: int, hi: int, env: dict,
                     runtime: Runtime):
        for chain in self._chains_by_loop.get(stmt.stmt_id, ()):
            ahead = index + self.distance
            if ahead >= hi:
                continue
            shifted = dict(env)
            shifted[stmt.var] = ahead
            b_array = runtime.array(chain.index_load.array)
            b_index = eval_expr(chain.index_load.index, shifted)
            future = yield isa.Load(b_array.addr(b_index))
            # The per-iteration overhead of compiler-inserted prefetching
            # (bounds clamping, address arithmetic, loop bookkeeping) —
            # the "code bloat" of Ainsworth & Jones that §2 cites.
            yield isa.Alu(5)
            shifted[chain.index_load.dest] = future
            a_array = runtime.array(chain.ima_load.array)
            a_index = int(eval_expr(chain.ima_load.index, shifted))
            yield isa.Prefetch(a_array.addr(a_index))


class LimaRole(DoallRole):
    """LIMA-assisted prefetching (§3.2): one MMIO op per inner loop.

    ``mode="queue"``: the IMA loads become consumes from the hardware
    queue (packed two-per-load when entries are 4 bytes, which is how
    MAPLE ends up *reducing* load counts in Fig. 10).
    ``mode="llc"``: loads stay coherent; LIMA just warms the LLC.

    Chains with a :class:`~repro.compiler.plan.LimaLookahead` recipe are
    issued ``distance`` outer iterations ahead (the Fig. 4 pattern
    ``LIMA(A, B, ptr[i+D], ptr[i+1+D])``), so MAPLE's fetches overlap the
    previous rows' computation.
    """

    def __init__(self, plan: SlicePlan, handles: Dict[int, QueueHandle],
                 packed: bool = True, distance: int = 2):
        super().__init__(plan)
        self.mode = plan.lima_mode
        self.distance = distance
        self._handles = handles  # chain's ima_load stmt_id -> QueueHandle
        self._packed = packed and self.mode == "queue"
        self._chains_by_loop: Dict[int, List[ImaChain]] = {}
        self._lookahead_by_outer: Dict[int, List[ImaChain]] = {}
        for chain in plan.lima_chains:
            sid = chain.ima_load.stmt_id
            if sid not in handles:
                raise ValueError(
                    f"no queue handle for LIMA chain {chain.ima_load!r}")
            info = plan.lima_lookahead.get(sid)
            if info is not None:
                self._lookahead_by_outer.setdefault(
                    info.outer_loop.stmt_id, []).append(chain)
            else:
                self._chains_by_loop.setdefault(chain.loop.stmt_id, []).append(chain)
        self._configured_base: Dict[int, int] = {}
        self._remaining: Dict[int, int] = {}
        self._buffer: Dict[int, List] = {}
        self._next_issue: Dict[int, int] = {}

    def on_loop_enter(self, stmt: ForStmt, lo: int, hi: int, env: dict,
                      runtime: Runtime):
        if stmt.stmt_id in self._lookahead_by_outer:
            for chain in self._lookahead_by_outer[stmt.stmt_id]:
                self._next_issue[chain.ima_load.stmt_id] = lo
        for chain in self._chains_by_loop.get(stmt.stmt_id, ()):
            yield from self._issue_run(chain, lo, hi, env, runtime)

    def on_iteration(self, stmt: ForStmt, index: int, hi: int, env: dict,
                     runtime: Runtime):
        for chain in self._lookahead_by_outer.get(stmt.stmt_id, ()):
            sid = chain.ima_load.stmt_id
            info = self.plan.lima_lookahead[sid]
            while self._next_issue[sid] <= min(index + self.distance, hi - 1):
                future = self._next_issue[sid]
                shifted = dict(env)
                shifted[info.outer_loop.var] = future
                for bound_load in info.bound_loads:
                    array = runtime.array(bound_load.array)
                    addr = array.addr(int(eval_expr(bound_load.index, shifted)))
                    shifted[bound_load.dest] = yield isa.Load(addr)
                run_lo = int(eval_expr(chain.loop.lo, shifted))
                run_hi = int(eval_expr(chain.loop.hi, shifted))
                yield from self._issue_run(chain, run_lo, run_hi, shifted,
                                           runtime)
                self._next_issue[sid] = future + 1

    def _issue_run(self, chain: ImaChain, lo: int, hi: int, env: dict,
                   runtime: Runtime):
        sid = chain.ima_load.stmt_id
        handle = self._handles[sid]
        a_array = runtime.array(chain.ima_load.array)
        base_a = a_array.base
        if chain.offset_expr is not None:
            # Fold the loop-invariant part of the index (e.g. SPMM's
            # c*rows) into the effective base address.
            base_a += 8 * int(eval_expr(chain.offset_expr, env))
        if self._configured_base.get(sid) != base_a:
            b_array = runtime.array(chain.index_load.array)
            yield from handle.lima_configure(base_a, b_array.base)
            self._configured_base[sid] = base_a
        if hi > lo:
            yield from handle.lima_run(lo, hi, mode=self.mode)
            self._remaining[sid] = self._remaining.get(sid, 0) + (hi - lo)

    def consume_for(self, stmt: LoadStmt):
        sid = stmt.stmt_id
        handle = self._handles[sid]
        buffer = self._buffer.setdefault(sid, [])
        if buffer:
            self._remaining[sid] -= 1
            return buffer.pop(0)
        if self._packed and self._remaining.get(sid, 0) >= 2:
            pair = yield from handle.consume_packed()
            buffer.append(pair[1])
            self._remaining[sid] -= 1
            return pair[0]
        value = yield from handle.consume()
        self._remaining[sid] -= 1
        return value


class AccessRole(Role):
    """The Access (Supply) slice of a decoupled pair."""

    def __init__(self, plan: SlicePlan, backend: QueueBackend):
        super().__init__(plan)
        self.backend = backend
        #: Backends with in-flight stores of unresolved address (DeSC's
        #: Compute->Supply store queue) fence every Supply load behind
        #: them — the loss-of-decoupling rule.
        self._load_fence = getattr(backend, "load_fence", None)

    def includes(self, stmt) -> bool:
        return stmt.stmt_id in self.plan.access_stmts

    def load_action(self, stmt: LoadStmt) -> LoadAction:
        return self.plan.access_actions.get(stmt.stmt_id, LoadAction.SKIP)

    def before_load(self):
        if self._load_fence is not None:
            yield from self._load_fence()

    def produce(self, value):
        yield from self.backend.produce(value)

    def produce_ptr(self, addr):
        yield from self.backend.produce_ptr(addr)


class ExecuteRole(Role):
    """The Execute (Compute) slice of a decoupled pair."""

    def __init__(self, plan: SlicePlan, backend: QueueBackend):
        super().__init__(plan)
        self.backend = backend

    def includes(self, stmt) -> bool:
        return stmt.stmt_id in self.plan.execute_stmts

    def load_action(self, stmt: LoadStmt) -> LoadAction:
        return self.plan.execute_actions.get(stmt.stmt_id, LoadAction.SKIP)

    def consume(self):
        value = yield from self.backend.consume()
        return value

    def store(self, addr, value):
        if self.plan.store_via_supply:
            yield from self.backend.store(addr, value)
        else:
            yield isa.Store(addr, value)

    def fetch_add(self, addr, amount):
        if self.plan.store_via_supply:
            old = yield from self.backend.fetch_add(addr, amount)
        else:
            old = yield isa.Amo(addr, lambda value, a=amount: value + a)
        return old


# -- the interpreter ---------------------------------------------------------------


def interpret(kernel: Kernel, runtime: Runtime, role: Role):
    """Generator of ISA instructions for one slice of one kernel."""
    env = dict(runtime.params)
    yield from _exec_body(kernel.body, env, role, runtime)


def _exec_body(body, env: dict, role: Role, runtime: Runtime):
    # Exact-class dispatch: Stmt is a closed union (see ir.Stmt), so
    # ``type(stmt)`` comparisons replace the isinstance chain on the
    # per-statement hot path with identical behavior.
    for stmt in body:
        if not role.includes(stmt):
            continue
        cls = stmt.__class__
        # Statement expressions are compiled to closures on first touch and
        # cached on the statement object (statements live as long as their
        # kernel, and an inner-loop statement re-evaluates the same
        # expressions every iteration).
        if cls is ForStmt:
            cc = stmt.__dict__.get("_compiled")
            if cc is None:
                cc = stmt._compiled = (compile_expr(stmt.lo),
                                       compile_expr(stmt.hi))
            lo = int(cc[0](env))
            hi = int(cc[1](env))
            yield from role.on_loop_enter(stmt, lo, hi, env, runtime)
            for index in range(lo, hi):
                env[stmt.var] = index
                yield from role.on_iteration(stmt, index, hi, env, runtime)
                yield from _exec_body(stmt.body, env, role, runtime)
        elif cls is LoadStmt:
            yield from _exec_load(stmt, env, role, runtime)
        elif cls is ComputeStmt:
            cc = stmt.__dict__.get("_compiled")
            if cc is None:
                cc = stmt._compiled = compile_expr(stmt.expr)
            env[stmt.dest] = cc(env)
            yield isa.Alu(stmt.cycles)
        elif cls is StoreStmt:
            cc = stmt.__dict__.get("_compiled")
            if cc is None:
                cc = stmt._compiled = (compile_expr(stmt.index),
                                       compile_expr(stmt.value))
            array = runtime.array(stmt.array)
            addr = array.addr(int(cc[0](env)))
            yield from role.store(addr, cc[1](env))
        elif cls is IfStmt:
            cc = stmt.__dict__.get("_compiled")
            if cc is None:
                cc = stmt._compiled = compile_expr(stmt.cond)
            if cc(env):
                yield from _exec_body(stmt.body, env, role, runtime)
        elif cls is FetchAddStmt:
            cc = stmt.__dict__.get("_compiled")
            if cc is None:
                cc = stmt._compiled = (compile_expr(stmt.index),
                                       compile_expr(stmt.amount))
            array = runtime.array(stmt.array)
            addr = array.addr(int(cc[0](env)))
            amount = cc[1](env)
            env[stmt.dest] = yield from role.fetch_add(addr, amount)
        else:
            raise TypeError(f"not a statement: {stmt!r}")


def _exec_load(stmt: LoadStmt, env: dict, role: Role, runtime: Runtime):
    action = role.load_action(stmt)
    if action is LoadAction.SKIP:
        return
    if action is LoadAction.CONSUME:
        if isinstance(role, LimaRole):
            env[stmt.dest] = yield from role.consume_for(stmt)
        else:
            env[stmt.dest] = yield from role.consume()
        return
    cc = stmt.__dict__.get("_compiled")
    if cc is None:
        cc = stmt._compiled = compile_expr(stmt.index)
    array = runtime.array(stmt.array)
    addr = array.addr(int(cc(env)))
    if action is LoadAction.PRODUCE_PTR:
        yield from role.produce_ptr(addr)
        return
    yield from role.before_load()
    value = yield isa.Load(addr)
    env[stmt.dest] = value
    if action is LoadAction.LOAD_AND_PRODUCE:
        yield from role.produce(value)
