"""A small loop-nest IR for data-analytic kernels.

Rich enough to express the paper's four workloads (CSR/CSC traversals
with indirect gathers, dense accumulators, conditional updates) while
keeping the slicing analysis decidable.  Statements get stable integer
ids at kernel construction, which the analysis and plans key on.

Conventions:

- temps are written once per innermost iteration, except accumulators,
  which may be re-assigned (``acc = acc + x``);
- loop bounds are expressions over params, loop vars, and temps (CSR
  inner loops read their bounds from row_ptr loads);
- arrays are named; the runtime binds names to simulated arrays.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Set, Tuple, Union

# -- expressions ------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    value: Union[int, float]


@dataclass(frozen=True)
class Var:
    """A loop variable, kernel parameter, or temp."""

    name: str


@dataclass(frozen=True)
class Bin:
    op: str  # one of _BIN_OPS
    lhs: "Expr"
    rhs: "Expr"


Expr = Union[Const, Var, Bin]

_BIN_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "min": min,
    "max": max,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


def eval_expr(expr: Expr, env: dict):
    """Evaluate an expression against a {name: value} environment."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise NameError(f"unbound name {expr.name!r} in kernel expression")
    if isinstance(expr, Bin):
        op = _BIN_OPS.get(expr.op)
        if op is None:
            raise ValueError(f"unknown operator {expr.op!r}")
        return op(eval_expr(expr.lhs, env), eval_expr(expr.rhs, env))
    raise TypeError(f"not an expression: {expr!r}")


def compile_expr(expr: Expr):
    """Compile an expression to an ``env -> value`` closure.

    Semantically identical to :func:`eval_expr` (same operators, same
    error behavior for unbound names / unknown operators), but the tree
    walk and dispatch happen once, at compile time, instead of on every
    evaluation — the interpreter caches the closures per statement.
    """
    if isinstance(expr, Const):
        value = expr.value
        return lambda env: value
    if isinstance(expr, Var):
        name = expr.name

        def _load_var(env, _name=name):
            try:
                return env[_name]
            except KeyError:
                raise NameError(f"unbound name {_name!r} in kernel expression")
        return _load_var
    if isinstance(expr, Bin):
        op = _BIN_OPS.get(expr.op)
        if op is None:
            raise ValueError(f"unknown operator {expr.op!r}")
        lhs = compile_expr(expr.lhs)
        rhs = compile_expr(expr.rhs)
        return lambda env: op(lhs(env), rhs(env))
    raise TypeError(f"not an expression: {expr!r}")


def expr_vars(expr: Expr) -> Set[str]:
    if isinstance(expr, Const):
        return set()
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Bin):
        return expr_vars(expr.lhs) | expr_vars(expr.rhs)
    raise TypeError(f"not an expression: {expr!r}")


def expr_equal(a: Expr, b: Expr) -> bool:
    """Structural equality (frozen dataclasses make this ==)."""
    return a == b


# -- statements -------------------------------------------------------------


@dataclass
class LoadStmt:
    """``dest = array[index]``"""

    dest: str
    array: str
    index: Expr
    stmt_id: int = field(default=-1, compare=False)


@dataclass
class StoreStmt:
    """``array[index] = value``"""

    array: str
    index: Expr
    value: Expr
    stmt_id: int = field(default=-1, compare=False)


@dataclass
class ComputeStmt:
    """``dest = expr`` taking ``cycles`` ALU cycles."""

    dest: str
    expr: Expr
    cycles: int = 1
    stmt_id: int = field(default=-1, compare=False)


@dataclass
class ForStmt:
    """``for var in range(lo, hi): body``"""

    var: str
    lo: Expr
    hi: Expr
    body: List["Stmt"]
    stmt_id: int = field(default=-1, compare=False)


@dataclass
class IfStmt:
    """``if cond: body`` — value-dependent control (Execute-side only)."""

    cond: Expr
    body: List["Stmt"]
    stmt_id: int = field(default=-1, compare=False)


@dataclass
class FetchAddStmt:
    """``dest = atomic_fetch_add(array[index], amount)``.

    The OpenMP-style shared-counter append used by parallel BFS frontier
    construction.  A memory-write operation, so it always belongs to the
    Execute slice.
    """

    dest: str
    array: str
    index: Expr
    amount: Expr
    stmt_id: int = field(default=-1, compare=False)


Stmt = Union[LoadStmt, StoreStmt, ComputeStmt, ForStmt, IfStmt, FetchAddStmt]


@dataclass
class Kernel:
    """A named kernel over declared arrays and scalar params.

    ``benign_race_arrays`` is the software-level contract of §3.6: the
    programmer/DSL asserts that in-epoch writes to these arrays are
    idempotent check-and-set updates (BFS's ``dist``), so reading a stale
    value through MAPLE is safe.  The RMW analysis trusts the annotation;
    unannotated indirect RMWs (SPMM's accumulator) block decoupling.
    """

    name: str
    arrays: Sequence[str]
    params: Sequence[str]
    body: List[Stmt]
    benign_race_arrays: Sequence[str] = ()

    def __post_init__(self) -> None:
        counter = itertools.count()
        for stmt, _parents in walk(self.body):
            if not isinstance(stmt, (LoadStmt, StoreStmt, ComputeStmt,
                                     ForStmt, IfStmt, FetchAddStmt)):
                raise TypeError(f"not a statement: {stmt!r}")
            stmt.stmt_id = next(counter)
        self._validate()

    def _validate(self) -> None:
        arrays = set(self.arrays)
        bound = set(self.params)
        self._validate_body(self.body, arrays, set(bound))

    def _validate_body(self, body: List[Stmt], arrays: Set[str],
                       bound: Set[str]) -> None:
        for stmt in body:
            if isinstance(stmt, LoadStmt):
                self._check_names(stmt, expr_vars(stmt.index), bound)
                self._check_array(stmt, stmt.array, arrays)
                bound.add(stmt.dest)
            elif isinstance(stmt, ComputeStmt):
                self._check_names(stmt, expr_vars(stmt.expr) - {stmt.dest}, bound)
                bound.add(stmt.dest)
            elif isinstance(stmt, StoreStmt):
                self._check_names(stmt, expr_vars(stmt.index) | expr_vars(stmt.value),
                                  bound)
                self._check_array(stmt, stmt.array, arrays)
            elif isinstance(stmt, ForStmt):
                self._check_names(stmt, expr_vars(stmt.lo) | expr_vars(stmt.hi), bound)
                inner = set(bound)
                inner.add(stmt.var)
                self._validate_body(stmt.body, arrays, inner)
                # Temps defined inside a loop stay out of the outer scope,
                # except accumulators seeded before the loop (already bound).
            elif isinstance(stmt, IfStmt):
                self._check_names(stmt, expr_vars(stmt.cond), bound)
                self._validate_body(stmt.body, arrays, set(bound))
            elif isinstance(stmt, FetchAddStmt):
                self._check_names(stmt, expr_vars(stmt.index) | expr_vars(stmt.amount),
                                  bound)
                self._check_array(stmt, stmt.array, arrays)
                bound.add(stmt.dest)
            else:
                raise TypeError(f"not a statement: {stmt!r}")

    def _check_names(self, stmt: Stmt, names: Set[str], bound: Set[str]) -> None:
        missing = names - bound
        if missing:
            raise ValueError(
                f"kernel {self.name}: statement {stmt!r} uses unbound "
                f"name(s) {sorted(missing)}"
            )

    def _check_array(self, stmt: Stmt, array: str, arrays: Set[str]) -> None:
        if array not in arrays:
            raise ValueError(
                f"kernel {self.name}: statement {stmt!r} references "
                f"undeclared array {array!r}"
            )

    def all_statements(self) -> Iterator[Tuple[Stmt, Tuple[Stmt, ...]]]:
        return walk(self.body)


def walk(body: List[Stmt], parents: Tuple[Stmt, ...] = ()
         ) -> Iterator[Tuple[Stmt, Tuple[Stmt, ...]]]:
    """Yield (stmt, enclosing-statements) depth-first in program order."""
    for stmt in body:
        yield stmt, parents
        if isinstance(stmt, (ForStmt, IfStmt)):
            yield from walk(stmt.body, parents + (stmt,))
