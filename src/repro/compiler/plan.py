"""Per-technique slicing plans.

A plan assigns every statement to slices and every load an action, for one
of the latency-tolerance techniques the paper evaluates:

- ``DOALL`` — the baseline: one slice, plain loads.
- ``MAPLE_DECOUPLE`` — §3.1: Access produces pointers (PRODUCE_PTR) for
  terminal IMAs, Execute consumes; Execute keeps its own cache-friendly
  loads (MAPLE's flexibility over DeSC).
- ``SW_DECOUPLE`` — the shared-memory baseline of Fig. 8: same slicing,
  but the Access thread must perform the IMA loads itself (stalling) and
  push *values* through an in-memory queue.
- ``DESC_DECOUPLE`` — the DeSC comparator of Fig. 12: the Compute slice
  has no memory visibility, so *every* load becomes a consume and stores
  are shipped back to the Supply slice.
- ``SW_PREFETCH`` — Fig. 9 baseline: re-evaluate each ``A[B[i]]`` chain at
  distance D and prefetch into the L1 (with the instruction overhead that
  entails).
- ``LIMA_PREFETCH`` — §3.2 non-speculative: one LIMA op per inner loop,
  IMA loads become queue consumes.
- ``LIMA_LLC`` — §3.2 speculative: LIMA prefetches into the LLC, demand
  loads stay coherent (the only prefetch mode sound for RMW kernels like
  SPMM).

A plan that cannot apply (non-decouplable kernel, no LIMA-compatible
chain) sets ``fallback_doall`` — exactly the compiler behaviour the paper
describes for SPMM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.compiler.analysis import (
    ADDRESS,
    ImaChain,
    KernelAnalysis,
)
from repro.compiler.ir import (
    ComputeStmt,
    FetchAddStmt,
    ForStmt,
    IfStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    expr_vars,
)


class Technique(enum.Enum):
    DOALL = "doall"
    MAPLE_DECOUPLE = "maple-decouple"
    SW_DECOUPLE = "sw-decouple"
    DESC_DECOUPLE = "desc-decouple"
    SW_PREFETCH = "sw-prefetch"
    LIMA_PREFETCH = "lima-prefetch"
    LIMA_LLC = "lima-llc"


@dataclass
class LimaLookahead:
    """How to issue a chain's LIMA op D outer-iterations ahead (Fig. 4).

    ``bound_loads`` are the loads defining the inner loop's bounds
    (``ptr[i]``/``ptr[i+1]``); re-evaluating them with the outer variable
    shifted by D yields the future range to pass to LIMA_RUN.
    """

    outer_loop: ForStmt
    bound_loads: List[LoadStmt]


class LoadAction(enum.Enum):
    LOAD = "load"
    SKIP = "skip"
    CONSUME = "consume"
    PRODUCE_PTR = "produce_ptr"
    LOAD_AND_PRODUCE = "load_and_produce"


@dataclass
class SlicePlan:
    technique: Technique
    kernel: Kernel
    analysis: KernelAnalysis
    fallback_doall: bool = False
    fallback_reason: str = ""
    #: stmt_id -> action, one map per slice (doall-style plans use `execute`).
    access_actions: Dict[int, LoadAction] = field(default_factory=dict)
    execute_actions: Dict[int, LoadAction] = field(default_factory=dict)
    access_stmts: Set[int] = field(default_factory=set)
    execute_stmts: Set[int] = field(default_factory=set)
    store_via_supply: bool = False
    prefetch_chains: List[ImaChain] = field(default_factory=list)
    lima_chains: List[ImaChain] = field(default_factory=list)
    lima_mode: str = "queue"
    #: ima_load stmt_id -> lookahead recipe, for chains whose inner loop is
    #: nested in an outer loop with load-defined bounds (CSR row loops).
    lima_lookahead: Dict[int, LimaLookahead] = field(default_factory=dict)

    @property
    def decoupled(self) -> bool:
        return self.technique in (Technique.MAPLE_DECOUPLE, Technique.SW_DECOUPLE,
                                  Technique.DESC_DECOUPLE) and not self.fallback_doall


def plan_for(analysis: KernelAnalysis, technique: Technique) -> SlicePlan:
    builders = {
        Technique.DOALL: _plan_doall,
        Technique.MAPLE_DECOUPLE: _plan_maple_decouple,
        Technique.SW_DECOUPLE: _plan_sw_decouple,
        Technique.DESC_DECOUPLE: _plan_desc,
        Technique.SW_PREFETCH: _plan_sw_prefetch,
        Technique.LIMA_PREFETCH: _plan_lima_queue,
        Technique.LIMA_LLC: _plan_lima_llc,
    }
    return builders[technique](analysis)


# -- builders ----------------------------------------------------------------


def _all_stmt_ids(kernel: Kernel) -> Set[int]:
    return {stmt.stmt_id for stmt, _p in kernel.all_statements()}


def _plan_doall(analysis: KernelAnalysis) -> SlicePlan:
    kernel = analysis.kernel
    actions = {sid: LoadAction.LOAD for sid in analysis.loads}
    return SlicePlan(Technique.DOALL, kernel, analysis,
                     execute_actions=actions,
                     execute_stmts=_all_stmt_ids(kernel))


def _plan_maple_decouple(analysis: KernelAnalysis) -> SlicePlan:
    plan = SlicePlan(Technique.MAPLE_DECOUPLE, analysis.kernel, analysis)
    if not analysis.decouplable:
        return _fallback(plan, analysis.reason)
    plan.access_stmts = set(analysis.in_access)
    plan.execute_stmts = set(analysis.in_execute)
    for sid, info in analysis.loads.items():
        if info.terminal:
            plan.access_actions[sid] = LoadAction.PRODUCE_PTR
            plan.execute_actions[sid] = LoadAction.CONSUME
            continue
        in_access = sid in analysis.in_access
        in_execute = sid in analysis.in_execute
        if in_access and in_execute and info.depth >= 1:
            # An *indirect* load both slices need (BFS's row_ptr[v]
            # bounds): the Access slice must stall for it anyway, so it
            # forwards the value rather than making Execute stall too.
            # Regular (depth-0) shared loads stay replicated — they are
            # cache-friendly, and a local load beats a queue round trip.
            plan.access_actions[sid] = LoadAction.LOAD_AND_PRODUCE
            plan.execute_actions[sid] = LoadAction.CONSUME
            continue
        plan.access_actions[sid] = (
            LoadAction.LOAD if in_access else LoadAction.SKIP)
        plan.execute_actions[sid] = (
            LoadAction.LOAD if in_execute else LoadAction.SKIP)
    _close_slice(plan, analysis, "access",
                 lambda sid: LoadAction.LOAD)
    _close_slice(plan, analysis, "execute",
                 lambda sid: LoadAction.LOAD)
    return plan


def _plan_sw_decouple(analysis: KernelAnalysis) -> SlicePlan:
    plan = _plan_maple_decouple(analysis)
    plan.technique = Technique.SW_DECOUPLE
    if plan.fallback_doall:
        return plan
    # A software queue cannot fetch pointers: the Access thread loads the
    # IMA itself (paying the DRAM stall) and pushes the value.
    for sid, action in plan.access_actions.items():
        if action is LoadAction.PRODUCE_PTR:
            plan.access_actions[sid] = LoadAction.LOAD_AND_PRODUCE
    return plan


def _plan_desc(analysis: KernelAnalysis) -> SlicePlan:
    plan = SlicePlan(Technique.DESC_DECOUPLE, analysis.kernel, analysis)
    if not analysis.decouplable:
        return _fallback(plan, analysis.reason)
    kernel = analysis.kernel
    plan.store_via_supply = True
    # Supply runs everything except value computation; Compute has no
    # memory visibility at all.
    for stmt, _parents in kernel.all_statements():
        sid = stmt.stmt_id
        if isinstance(stmt, LoadStmt):
            info = analysis.loads[sid]
            execute_needs_value = sid in analysis.in_execute
            plan.access_stmts.add(sid)
            if info.terminal:
                plan.access_actions[sid] = LoadAction.PRODUCE_PTR
                plan.execute_actions[sid] = LoadAction.CONSUME
                plan.execute_stmts.add(sid)
            elif execute_needs_value:
                plan.access_actions[sid] = LoadAction.LOAD_AND_PRODUCE
                plan.execute_actions[sid] = LoadAction.CONSUME
                plan.execute_stmts.add(sid)
            else:
                plan.access_actions[sid] = LoadAction.LOAD
                plan.execute_actions[sid] = LoadAction.SKIP
        elif isinstance(stmt, ForStmt):
            plan.access_stmts.add(sid)
            plan.execute_stmts.add(sid)
        elif isinstance(stmt, (StoreStmt, IfStmt)):
            plan.execute_stmts.add(sid)
        else:  # ComputeStmt, FetchAddStmt
            if isinstance(stmt, FetchAddStmt):
                plan.execute_stmts.add(sid)
                continue
            if sid in analysis.in_access:
                plan.access_stmts.add(sid)
            if sid in analysis.in_execute:
                plan.execute_stmts.add(sid)

    def execute_include(sid: int) -> LoadAction:
        # DeSC's Compute slice cannot touch memory: any load it turns out
        # to need becomes a consume, and the Supply slice must feed it.
        current = plan.access_actions.get(sid)
        if current in (None, LoadAction.SKIP, LoadAction.LOAD):
            plan.access_actions[sid] = LoadAction.LOAD_AND_PRODUCE
            plan.access_stmts.add(sid)
        return LoadAction.CONSUME

    # Iterate: closing Execute may add Supply produces, which the Supply
    # closure must then cover.
    for _round in range(4):
        _close_slice(plan, analysis, "access", lambda sid: LoadAction.LOAD)
        _close_slice(plan, analysis, "execute", execute_include)
    return plan


def _plan_sw_prefetch(analysis: KernelAnalysis) -> SlicePlan:
    plan = _plan_doall(analysis)
    plan.technique = Technique.SW_PREFETCH
    plan.prefetch_chains = [
        info.chain for info in analysis.loads.values()
        if info.chain is not None
    ]
    if not plan.prefetch_chains:
        return _fallback(plan, "no A[B[i]] chains to prefetch")
    return plan


def _plan_lima_queue(analysis: KernelAnalysis) -> SlicePlan:
    plan = _plan_doall(analysis)
    plan.technique = Technique.LIMA_PREFETCH
    plan.lima_mode = "queue"
    if analysis.indirect_rmw:
        return _fallback(plan, "RMW IMAs need coherent loads (use LIMA_LLC)")
    chains = [info.chain for info in analysis.loads.values()
              if info.chain is not None and info.chain.lima_compatible
              and info.terminal]
    if not chains:
        return _fallback(plan, "no LIMA-compatible terminal chain")
    plan.lima_chains = chains
    for chain in chains:
        plan.execute_actions[chain.ima_load.stmt_id] = LoadAction.CONSUME
        index_info = analysis.loads[chain.index_load.stmt_id]
        if index_info.categories == {ADDRESS}:
            # The index array is only read to form the IMA address, which
            # LIMA now does in hardware: the core drops the load entirely.
            plan.execute_actions[chain.index_load.stmt_id] = LoadAction.SKIP
    _attach_lima_lookahead(plan, analysis)
    return plan


def _plan_lima_llc(analysis: KernelAnalysis) -> SlicePlan:
    plan = _plan_doall(analysis)
    plan.technique = Technique.LIMA_LLC
    plan.lima_mode = "llc"
    chains = [info.chain for info in analysis.loads.values()
              if info.chain is not None and info.chain.lima_compatible]
    if not chains:
        return _fallback(plan, "no LIMA-compatible chain")
    plan.lima_chains = chains
    # Demand accesses stay as coherent loads; LIMA only warms the LLC.
    _attach_lima_lookahead(plan, analysis)
    return plan


def _attach_lima_lookahead(plan: SlicePlan, analysis: KernelAnalysis) -> None:
    """Recognize chains whose inner loop can be issued D iterations ahead."""
    kernel = plan.kernel
    parents = {stmt.stmt_id: p for stmt, p in kernel.all_statements()}
    for chain in plan.lima_chains:
        loops = [p for p in parents[chain.loop.stmt_id] if isinstance(p, ForStmt)]
        if not loops:
            continue  # top-level loop: one LIMA op covers the whole range
        outer = loops[-1]
        bound_loads = []
        compatible = True
        for bound in (chain.loop.lo, chain.loop.hi):
            for name in expr_vars(bound):
                if name == outer.var or name in kernel.params:
                    continue
                defs = analysis.defs.get(name, [])
                if (len(defs) == 1 and isinstance(defs[0], LoadStmt)
                        and expr_vars(defs[0].index)
                        <= {outer.var} | set(kernel.params)):
                    bound_loads.append(defs[0])
                else:
                    compatible = False
        if compatible:
            plan.lima_lookahead[chain.ima_load.stmt_id] = LimaLookahead(
                outer, bound_loads)


def _needed_vars(stmt, action) -> Set[str]:
    """Names a slice must have bound to execute this statement."""
    if isinstance(stmt, LoadStmt):
        if action in (LoadAction.LOAD, LoadAction.LOAD_AND_PRODUCE,
                      LoadAction.PRODUCE_PTR):
            return expr_vars(stmt.index)
        return set()  # CONSUME / SKIP evaluate nothing
    if isinstance(stmt, StoreStmt):
        return expr_vars(stmt.index) | expr_vars(stmt.value)
    if isinstance(stmt, ComputeStmt):
        return expr_vars(stmt.expr)
    if isinstance(stmt, ForStmt):
        return expr_vars(stmt.lo) | expr_vars(stmt.hi)
    if isinstance(stmt, IfStmt):
        return expr_vars(stmt.cond)
    if isinstance(stmt, FetchAddStmt):
        return expr_vars(stmt.index) | expr_vars(stmt.amount)
    raise TypeError(f"not a statement: {stmt!r}")


def _close_slice(plan: SlicePlan, analysis: KernelAnalysis, which: str,
                 include_load) -> None:
    """Transitively include the definitions of every name a slice uses.

    A slice that evaluates an expression needs the statements defining
    its temps: computes join the slice, loads join with the action
    ``include_load(stmt_id)`` unless they already have a queue action.
    Enclosing If/For statements of any included statement join too.
    """
    kernel = plan.kernel
    stmts = plan.access_stmts if which == "access" else plan.execute_stmts
    actions = plan.access_actions if which == "access" else plan.execute_actions
    parents_of = {stmt.stmt_id: parents for stmt, parents in kernel.all_statements()}
    by_id = {stmt.stmt_id: stmt for stmt, _p in kernel.all_statements()}

    changed = True
    while changed:
        changed = False
        for sid in list(stmts):
            stmt = by_id[sid]
            for name in _needed_vars(stmt, actions.get(sid)):
                for definition in analysis.defs.get(name, ()):
                    did = definition.stmt_id
                    if isinstance(definition, LoadStmt):
                        action = actions.get(did)
                        if action in (None, LoadAction.SKIP):
                            actions[did] = include_load(did)
                            changed = True
                        if did not in stmts:
                            stmts.add(did)
                            changed = True
                    elif did not in stmts:
                        stmts.add(did)
                        changed = True
        # Control context: a slice running a statement must also run the
        # loops/ifs enclosing it.
        for sid in list(stmts):
            for parent in parents_of[sid]:
                if parent.stmt_id not in stmts:
                    stmts.add(parent.stmt_id)
                    changed = True


def _fallback(plan: SlicePlan, reason: str) -> SlicePlan:
    doall = _plan_doall(plan.analysis)
    plan.fallback_doall = True
    plan.fallback_reason = reason
    plan.execute_actions = doall.execute_actions
    plan.execute_stmts = doall.execute_stmts
    plan.access_actions = {}
    plan.access_stmts = set()
    plan.prefetch_chains = []
    plan.lima_chains = []
    return plan
