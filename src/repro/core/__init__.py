"""MAPLE — the Memory Access Parallel-Load Engine (the paper's contribution).

A MAPLE instance sits on its own mesh tile behind NoC encoders/decoders.
Cores talk to it with ordinary loads and stores to a memory-mapped page;
the word offset within the page encodes the operation and target queue
(§3.6).  Internally, three decoupled pipelines (Configuration, Produce,
Consume) share a scratchpad of circular FIFO queues, an MMU with its own
TLB and page-table walker translates the pointers software produces, and
the LIMA unit expands a whole loop of indirect accesses from a single
MMIO operation (§3.4).
"""

from repro.core.api import MapleApi, QueueHandle
from repro.core.driver import MapleDriver
from repro.core.engine import Maple
from repro.core.opcodes import LoadOp, StoreOp, decode_offset, encode_addr
from repro.core.queues import HwQueue, Scratchpad

__all__ = [
    "HwQueue",
    "LoadOp",
    "Maple",
    "MapleApi",
    "MapleDriver",
    "QueueHandle",
    "Scratchpad",
    "StoreOp",
    "decode_offset",
    "encode_addr",
]
