"""MAPLE's software API (§3.1, §3.2).

The paper's API operations — INIT, OPEN/CLOSE, PRODUCE, CONSUME,
PRODUCE_PTR, LIMA, PREFETCH — are *not* new ISA instructions: they compile
down to ordinary loads and stores against the MAPLE page the OS mapped
into the process (§3.6).  Accordingly, every method here is a generator
that yields :class:`~repro.cpu.isa.Load`/:class:`~repro.cpu.isa.Store`
descriptors; thread programs compose them with ``yield from``::

    handle = yield from api.open(queue_id=0)
    yield from handle.produce_ptr(b_array.addr(i))
    value = yield from handle.consume()

so the exact MMIO traffic (and its round-trip cost) is what the core model
executes.
"""

from __future__ import annotations

from repro.core.opcodes import LoadOp, StoreOp, encode_addr
from repro.cpu.isa import Load, Store


class MapleApiError(RuntimeError):
    """User-level API misuse (queue busy, double close, ...)."""


class MapleApi:
    """A process's handle on one mapped MAPLE page."""

    def __init__(self, page_vaddr: int):
        if page_vaddr & 0xFFF:
            raise ValueError("MAPLE page vaddr must be page aligned")
        self.page_vaddr = page_vaddr

    def _addr(self, opcode: int, queue_id: int = 0) -> int:
        return encode_addr(self.page_vaddr, opcode, queue_id)

    def init(self):
        """INIT(queues): reset every hardware queue of this instance."""
        yield Store(self._addr(StoreOp.INIT), 0)

    def open(self, queue_id: int):
        """OPEN(id): bind a queue; returns a :class:`QueueHandle`."""
        granted = yield Load(self._addr(LoadOp.OPEN, queue_id))
        if not granted:
            raise MapleApiError(f"queue {queue_id} is bound to another thread")
        return QueueHandle(self, queue_id)

    def prefetch(self, pointer: int):
        """PREFETCH(ptr): speculative prefetch of ``*ptr`` into the LLC."""
        yield Store(self._addr(StoreOp.PREFETCH), pointer)


class QueueHandle:
    """An opened queue: the produce/consume endpoints of the API."""

    def __init__(self, api: MapleApi, queue_id: int):
        self._api = api
        self.queue_id = queue_id
        self._closed = False

    def _addr(self, opcode: int) -> int:
        return self._api._addr(opcode, self.queue_id)

    def _check_open(self) -> None:
        if self._closed:
            raise MapleApiError(f"queue {self.queue_id} used after close")

    # -- decoupling operations (§3.1) ---------------------------------------

    def produce(self, value):
        """PRODUCE(id, data): push a computed value into the queue."""
        self._check_open()
        yield Store(self._addr(StoreOp.PRODUCE), value)

    def produce_ptr(self, pointer: int, coherent: bool = False):
        """PRODUCE_PTR(id, ptr): MAPLE fetches ``*ptr`` asynchronously and
        fills the queue slot in program order.

        ``coherent=True`` selects the LLC-path opcode: the fetch goes
        through the shared cache instead of straight to DRAM (§3.6 —
        "determined by the decoded operation-code")."""
        self._check_open()
        opcode = StoreOp.PRODUCE_PTR_LLC if coherent else StoreOp.PRODUCE_PTR
        yield Store(self._addr(opcode), pointer)

    def consume(self):
        """CONSUME(id): pop the head entry (blocks until data arrives)."""
        self._check_open()
        value = yield Load(self._addr(LoadOp.CONSUME))
        return value

    def consume_packed(self):
        """Pop two 4-byte entries with a single 8-byte load (§5.1: this is
        why MAPLE *reduces* total load count in Fig. 10)."""
        self._check_open()
        pair = yield Load(self._addr(LoadOp.CONSUME_PACKED))
        return pair

    def close(self):
        """CLOSE(id): release the binding."""
        self._check_open()
        self._closed = True
        yield Store(self._addr(StoreOp.CLOSE), 0)

    # -- LIMA prefetching (§3.2) -----------------------------------------------

    def lima_configure(self, base_a: int, base_b: int):
        """Program the A/B base registers (once per array pair)."""
        self._check_open()
        yield Store(self._addr(StoreOp.LIMA_BASE_A), base_a)
        yield Store(self._addr(StoreOp.LIMA_BASE_B), base_b)

    def lima_run(self, lo: int, hi: int, mode: str = "queue"):
        """Expand ``A[B[i]] for i in [lo, hi)`` with ONE store (Fig. 4).

        ``mode="queue"`` is the non-speculative LIMA_PRODUCE used in the
        evaluation; ``mode="llc"`` prefetches speculatively into the LLC.
        """
        self._check_open()
        yield Store(self._addr(StoreOp.LIMA_RUN), (lo, hi, mode))

    # -- performance counters / debug (§3.1, §4.4) ---------------------------------

    def stat_produced(self):
        value = yield Load(self._addr(LoadOp.STAT_PRODUCED))
        return value

    def stat_consumed(self):
        value = yield Load(self._addr(LoadOp.STAT_CONSUMED))
        return value

    def stat_occupancy(self):
        value = yield Load(self._addr(LoadOp.STAT_OCCUPANCY))
        return value

    def stat_ptr_fetches(self):
        value = yield Load(self._addr(LoadOp.STAT_PTR_FETCHES))
        return value
