"""Area model of the RTL implementation (§5.4).

The paper reports numbers from the 12 nm synthesis of the April-2021
tapeout: one MAPLE instance (8 circular queues sharing a 1 KB scratchpad)
occupies 1.1% of the area of the Ariane cores it can supply (up to 8).
This module reconstructs that accounting from component-level estimates so
the sensitivity bench can sweep the scratchpad/queue configuration, and so
the area claim is reproducible rather than a constant.

Calibration anchors (public figures):
- Ariane in 22 nm FDSOI is ~0.21 mm^2 core-only; scaled to 12 nm and
  including its caches the paper's synthesis corresponds to ~0.125 mm^2
  per core used here.
- SRAM density at 12 nm: ~4.5 Mb/mm^2 for small scratchpads (compiled,
  with periphery), i.e. ~0.18 mm^2/KB including overhead at these sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import SoCConfig

#: mm^2 for one Ariane-class in-order core + L1s at the 12 nm node.
ARIANE_CORE_MM2 = 0.125

#: mm^2 per KB of scratchpad SRAM (small-array density, with periphery).
SRAM_MM2_PER_KB = 0.0062

#: mm^2 for MAPLE's fixed logic: the three pipelines, NoC encoder/decoder,
#: LIMA FSM, and MMU datapath (excluding the TLB CAM).
PIPELINE_LOGIC_MM2 = 0.0030

#: mm^2 per fully-associative TLB entry (CAM cell + comparators).
TLB_MM2_PER_ENTRY = 0.00006

#: mm^2 of queue-control state (head/tail/state bits + mux) per queue.
QUEUE_CONTROL_MM2 = 0.00008


@dataclass
class AreaReport:
    """Area accounting for one MAPLE instance vs the cores it serves."""

    scratchpad_mm2: float
    tlb_mm2: float
    queue_control_mm2: float
    logic_mm2: float
    cores_served: int

    @property
    def maple_mm2(self) -> float:
        return (self.scratchpad_mm2 + self.tlb_mm2 + self.queue_control_mm2
                + self.logic_mm2)

    @property
    def served_cores_mm2(self) -> float:
        return self.cores_served * ARIANE_CORE_MM2

    @property
    def overhead_fraction(self) -> float:
        """MAPLE area as a fraction of the cores it supplies (§5.4: 1.1%)."""
        return self.maple_mm2 / self.served_cores_mm2

    def rows(self):
        """(component, mm^2) rows for the area table."""
        return [
            ("scratchpad SRAM", self.scratchpad_mm2),
            ("MMU TLB (fully associative)", self.tlb_mm2),
            ("queue control", self.queue_control_mm2),
            ("pipelines + NoC + LIMA logic", self.logic_mm2),
            ("MAPLE total", self.maple_mm2),
            (f"{self.cores_served} Ariane cores served", self.served_cores_mm2),
        ]


def estimate_area(config: SoCConfig, cores_served: int = 8) -> AreaReport:
    """Synthesize the area report for one MAPLE instance.

    With the tapeout configuration (1 KB scratchpad, 8 queues, 16-entry
    TLB) this lands at ~1.1% of the eight Ariane cores one instance can
    supply, matching §5.4.
    """
    if cores_served < 1:
        raise ValueError("MAPLE must serve at least one core")
    scratchpad_kb = config.scratchpad_bytes / 1024
    return AreaReport(
        scratchpad_mm2=scratchpad_kb * SRAM_MM2_PER_KB,
        tlb_mm2=config.maple_tlb_entries * TLB_MM2_PER_ENTRY,
        queue_control_mm2=config.maple_num_queues * QUEUE_CONTROL_MM2,
        logic_mm2=PIPELINE_LOGIC_MM2,
        cores_served=cores_served,
    )
