"""The MAPLE Linux driver model (§3.5, §3.6).

The driver is the kernel half of the co-design:

- **attach**: maps a free MAPLE instance's physical page into the calling
  process (MMIO), points the instance's MMU at the process's page table,
  and installs the page-fault path — MAPLE's walker faults trap here, the
  driver reads the faulting address (Configuration pipeline) and maps the
  page if the access is valid.
- **placement**: when several instances exist, the nearest one (in mesh
  hops) to the requesting core is chosen, the policy §5.3 describes.
- **shootdowns**: the driver registers the Linux ``mmu_notifier``-style
  callback so ``munmap`` invalidates MAPLE's TLB along with the cores'.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.api import MapleApi
from repro.core.engine import Maple
from repro.noc import Mesh
from repro.vm.os_model import AddressSpace, SimOS


class MapleDriver:
    """Kernel-side management of every MAPLE instance in the SoC."""

    def __init__(self, os: SimOS, maples: List[Maple], mesh: Mesh):
        if not maples:
            raise ValueError("driver needs at least one MAPLE instance")
        self._os = os
        self._maples = maples
        self._mesh = mesh
        for maple in maples:
            os.register_shootdown_callback(maple.mmu.shootdown)
        self._attached = {}
        # Deterministic core->instance binding, fixed at boot the way the
        # §5.3 OS policy would compute it: every core tile binds to the
        # instance minimizing (mesh hops, instance id).  Pure geometry —
        # the same SoC layout yields the same map on every host, so the
        # map is part of a run's deterministic identity.
        self._assignment: Dict[int, int] = {
            tile.tile_id: self._nearest_instance(tile.tile_id).instance_id
            for tile in mesh.tiles.values()
            if tile.occupant is not None and tile.occupant.startswith("core")
        }

    @property
    def instances(self) -> List[Maple]:
        return list(self._maples)

    def attachments(self) -> List[tuple]:
        """Current ``(asid, instance_id)`` attachments (diagnostics)."""
        return sorted(self._attached)

    def _nearest_instance(self, core_tile: int) -> Maple:
        return min(self._maples,
                   key=lambda m: (self._mesh.hops(core_tile, m.tile_id),
                                  m.instance_id))

    def assignment_map(self) -> Dict[int, int]:
        """The boot-time binding: core tile -> nearest instance id."""
        return dict(self._assignment)

    def mean_hops(self) -> float:
        """Mean core->assigned-MAPLE hop count across every core tile —
        the figure of merit the placement-policy sweeps compare."""
        if not self._assignment:
            return 0.0
        by_id = {m.instance_id: m for m in self._maples}
        total = sum(self._mesh.hops(tile, by_id[instance].tile_id)
                    for tile, instance in self._assignment.items())
        return total / len(self._assignment)

    def pick_instance(self, core_tile: Optional[int] = None) -> Maple:
        """Nearest instance to the requesting core; first one otherwise.

        Known core tiles resolve through the boot-time assignment map;
        unknown tiles (devices, tests poking arbitrary coordinates) fall
        back to computing the same (hops, instance id) minimum.
        """
        if core_tile is None or len(self._maples) == 1:
            return self._maples[0]
        instance = self._assignment.get(core_tile)
        if instance is not None:
            return self._maples[instance]
        return self._nearest_instance(core_tile)

    def attach(self, aspace: AddressSpace, core_tile: Optional[int] = None,
               maple: Optional[Maple] = None) -> MapleApi:
        """Give ``aspace`` protected user-mode access to a MAPLE instance.

        Returns the user-level :class:`MapleApi` bound to the new mapping.
        Re-attaching the same address space reuses the existing mapping.
        """
        if maple is None:
            maple = self.pick_instance(core_tile)
        key = (aspace.asid, maple.instance_id)
        if key in self._attached:
            return self._attached[key]
        maple.mmu.set_root(aspace.root_paddr)
        maple.mmu.install_fault_handler(
            lambda vaddr: self._os.handle_fault(aspace, vaddr))
        page_vaddr = self._os.map_device_page(
            aspace, maple.page_paddr, name=f"maple{maple.instance_id}")
        api = MapleApi(page_vaddr)
        self._attached[key] = api
        return api

    def detach(self, aspace: AddressSpace, maple: Maple) -> None:
        """Unmap the instance from the process and drop its MMU state."""
        key = (aspace.asid, maple.instance_id)
        api = self._attached.pop(key, None)
        if api is None:
            raise KeyError("address space was not attached to this instance")
        self._os.munmap(aspace, api.page_vaddr, self._os.config.page_size)
        maple.mmu.tlb.flush()
