"""The MAPLE device: NoC-facing decoder and the three pipelines (§3.4).

Request flow (Fig. 3): a core's MMIO load/store leaves its private-cache
path, crosses the request NoC, is decoded (opcode + queue from the page
offset), and is routed to one of three pipelines:

- **Configuration** — queue binding, INIT, MMU root, LIMA registers,
  performance/debug counter reads.  Non-blocking by construction.
- **Produce** — data-produce fills the reserved slot immediately;
  pointer-produce acknowledges the store as soon as the transaction is
  buffered (so the Access core retires it and keeps running), then
  translates the pointer and issues the DRAM fetch with the slot index as
  transaction ID.  A full queue back-pressures through the per-queue
  produce buffer: once the buffer is full the ack itself is delayed.
- **Consume** — pops the head entry, or buffers the load (no polling)
  until data arrives.

Separate pipelines mean a full queue never blocks consumes or
configuration — the deadlock-freedom property the paper formally verified.
The engine enforces the same invariants with runtime checks instead of SVA.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.lima import LimaUnit
from repro.core.mmu import MapleMmu
from repro.core.opcodes import LoadOp, StoreOp, decode_offset
from repro.core.queues import HwQueue, Scratchpad
from repro.mem.dram import is_poisoned
from repro.mem.hierarchy import MemorySystem, MMIORegion
from repro.noc import Network, Plane
from repro.params import SoCConfig
from repro.sim import Message, PortRegistry, Semaphore, Simulator
from repro.sim.port import DataIntegrityError
from repro.sim.stats import Stats
from repro.vm.address import PAGE_SIZE


class MapleError(RuntimeError):
    """Protocol violation at the MAPLE interface."""


class Maple:
    """One MAPLE instance on its own mesh tile."""

    def __init__(self, instance_id: int, tile_id: int, sim: Simulator,
                 memsys: MemorySystem, network: Network, config: SoCConfig,
                 stats: Stats, mmio_base: int, ports: Optional[PortRegistry] = None):
        self.instance_id = instance_id
        self.tile_id = tile_id
        self._sim = sim
        self._network = network
        self.config = config
        self.stats = stats.scoped(f"maple{instance_id}")
        # Bound handles for the per-request pipelines (see sim.stats).
        self._c_consumes = self.stats.counter("consumes")
        self._c_consumes_packed = self.stats.counter("consumes_packed")
        self._c_consume_stalls = self.stats.counter("consume_stalls")
        self._c_produces = self.stats.counter("produces")
        self._c_produce_ptrs = self.stats.counter("produce_ptrs")
        self._c_produce_backpressure = self.stats.counter("produce_backpressure")
        self._h_fetch_mlp = self.stats.histogram("fetch_mlp")
        # Per-request pipeline constant, hoisted out of _serve_mmio.
        self._pipeline_latency = config.maple_pipeline_latency
        self.page_paddr = mmio_base + instance_id * PAGE_SIZE

        # Port wiring: one memory port for every fetch MAPLE issues
        # (pointer fetches, LIMA chunks, PTE walks, LLC prefetch posts)
        # and one NoC-transported MMIO port pair that carries every core
        # access.  A standalone registry keeps direct construction (tests)
        # working outside a Soc.
        if ports is None:
            ports = PortRegistry(sim)
        self.ports = ports
        # Depth bound: fetch workers hold the in-flight semaphore and LIMA
        # runs one drain per queue, so this can never be the constraint.
        self.mem_port = memsys.connect_device_port(
            ports, f"maple{instance_id}", tile_id,
            depth=config.maple_max_inflight + config.maple_num_queues + 2)

        self.scratchpad = Scratchpad(
            sim, config.scratchpad_bytes, config.maple_num_queues,
            config.queue_entry_bytes, self.stats, ecc=config.ecc,
        )
        self.mmu = MapleMmu(self.mem_port, config, self.stats,
                            name=f"maple{instance_id}.mmu")
        self.lima = LimaUnit(self)

        #: Outstanding pointer fetches — the MLP the engine can sustain.
        self._inflight = Semaphore(sim, config.maple_max_inflight,
                                   name=f"maple{instance_id}.inflight")
        self._produce_buffers: Dict[int, Semaphore] = {
            qid: Semaphore(sim, config.produce_buffer_entries,
                           name=f"maple{instance_id}.q{qid}.buf")
            for qid in range(config.maple_num_queues)
        }
        self._consume_mutexes: Dict[int, Semaphore] = {
            qid: Semaphore(sim, 1, name=f"maple{instance_id}.q{qid}.consume")
            for qid in range(config.maple_num_queues)
        }
        #: core_id -> tile_id, provided by the SoC builder for NoC routing.
        self.core_tiles: Dict[int, int] = {}

        # The MMIO seam: the dispatch side sits at the memory system's
        # uncacheable decode, the device side at this tile; the request
        # link charges the core-side private-cache path plus the request
        # NoC, the response link the response NoC plus the return path —
        # the exact Fig. 14 segments, now derivable from the port trace.
        self.mmio_port = ports.port(f"maple{instance_id}.mmio", tile=tile_id)
        self._mmio_dispatch = ports.port(
            f"maple{instance_id}.mmio.dispatch", tile=-1,
            depth=config.num_cores + 2)
        self.mmio_port.bind(self._serve_mmio)
        ports.connect(
            self._mmio_dispatch, self.mmio_port,
            request_link=network.link(Plane.REQUEST,
                                      pre=config.mmio_path_latency),
            response_link=network.link(Plane.RESPONSE,
                                       post=config.mmio_path_latency),
        )

        memsys.register_mmio(MMIORegion(
            self.page_paddr, self.page_paddr + PAGE_SIZE, self._mmio_entry,
            name=f"maple{instance_id}",
        ))

    def debug_state(self) -> dict:
        """Liveness snapshot for watchdog dumps: pipeline occupancy, queue
        state, and the translation machinery's in-flight work."""
        return {
            "fetches_inflight": self._inflight.in_use,
            "fetch_waiters": self._inflight.waiting,
            "produce_buffer_in_use": {
                qid: buf.in_use for qid, buf in self._produce_buffers.items()
                if buf.in_use
            },
            "consume_blocked": sorted(
                qid for qid, mutex in self._consume_mutexes.items()
                if mutex.in_use
            ),
            "queues": {
                q.queue_id: q.debug_state()
                for q in self.scratchpad.queues if q.occupied or q.owner
            },
            "lima": self.lima.debug_state(),
            "ptw_inflight": self.mmu.walker.inflight,
        }

    # -- NoC-facing request handling -------------------------------------------

    def round_trip_cycles(self, core_tile: int) -> int:
        """Analytic core->MAPLE->core latency for a ready consume (Fig. 14)."""
        cfg = self.config
        return (
            2 * cfg.mmio_path_latency
            + self._network.one_way_latency(core_tile, self.tile_id)
            + cfg.maple_pipeline_latency
            + self._network.one_way_latency(self.tile_id, core_tile)
        )

    def _mmio_entry(self, op: str, paddr: int, value, core_id: int):
        """The MMIORegion handler: forward the access onto the MMIO port
        pair (returns the transaction generator).  The request link pays
        core pipeline -> L1 -> L1.5 -> request NoC; the response link the
        response NoC plus the return path (Fig. 14)."""
        core_tile = self.core_tiles.get(core_id, core_id)
        kind = "mmio_load" if op == "load" else "mmio_store"
        return self._mmio_dispatch.request(kind, (paddr, value, core_id),
                                           src=core_tile)

    def _serve_mmio(self, msg: Message):
        """Generator: decode + dispatch one MMIO transaction (device side)."""
        paddr, value, core_id = msg.payload
        opcode, queue_id = decode_offset(paddr - self.page_paddr)
        yield self._pipeline_latency  # decode + pipeline stages
        if msg.kind == "mmio_load":
            return (yield from self._dispatch_load(LoadOp(opcode), queue_id,
                                                   core_id))
        return (yield from self._dispatch_store(StoreOp(opcode), queue_id,
                                                value, core_id))

    # -- Consume pipeline ----------------------------------------------------------

    def _dispatch_load(self, opcode: LoadOp, queue_id: int, core_id: int):
        queue = self.scratchpad.queue(queue_id)
        if opcode == LoadOp.CONSUME:
            self._c_consumes.value += 1
            return (yield from self._consume(queue, count=1))
        if opcode == LoadOp.CONSUME_PACKED:
            if self.config.queue_entry_bytes != 4:
                raise MapleError("packed consume requires 4-byte queue entries")
            self._c_consumes_packed.value += 1
            return (yield from self._consume(queue, count=2))
        if opcode == LoadOp.OPEN:
            return self._open_queue(queue, core_id)
        if opcode == LoadOp.STAT_PRODUCED:
            return queue.produced
        if opcode == LoadOp.STAT_CONSUMED:
            return queue.consumed
        if opcode == LoadOp.STAT_OCCUPANCY:
            return queue.occupied
        if opcode == LoadOp.STAT_PTR_FETCHES:
            return queue.ptr_fetches
        if opcode == LoadOp.STAT_TLB_MISSES:
            return self.stats.get("misses")
        if opcode == LoadOp.FAULT_VADDR:
            return self.mmu.last_fault_vaddr or 0
        raise MapleError(f"unimplemented load opcode {opcode!r}")

    def _consume(self, queue: HwQueue, count: int):
        """Pop ``count`` entries in order; buffered while the queue is empty."""
        mutex = self._consume_mutexes[queue.queue_id]
        if not mutex.try_acquire():
            yield from mutex.acquire()
        try:
            if not queue.head_ready():
                self._c_consume_stalls.value += 1
            values = []
            for _ in range(count):
                value = yield from queue.pop()
                if is_poisoned(value):
                    # The producing pointer is gone once the slot was
                    # filled — an uncorrectable scratchpad error cannot be
                    # re-fetched, so it must fail loudly, never silently.
                    raise DataIntegrityError(
                        f"maple{self.instance_id} q{queue.queue_id}: consume "
                        f"of poisoned scratchpad slot",
                        component=f"maple{self.instance_id}.q{queue.queue_id}",
                        kind="scratchpad_poison")
                values.append(value)
        finally:
            mutex.release()
        return values[0] if count == 1 else tuple(values)

    def _open_queue(self, queue: HwQueue, core_id: int) -> int:
        owner = f"core{core_id}"
        if queue.owner is not None and queue.owner != owner:
            return 0  # busy
        queue.owner = owner
        self.stats.bump("opens")
        return 1

    # -- Produce + Configuration pipelines ---------------------------------------------

    def _dispatch_store(self, opcode: StoreOp, queue_id: int, value, core_id: int):
        if opcode in (StoreOp.PRODUCE, StoreOp.PRODUCE_PTR,
                      StoreOp.PRODUCE_PTR_LLC):
            yield from self._accept_produce(opcode, queue_id, value)
            return None
        if opcode == StoreOp.PREFETCH:
            self.stats.bump("prefetch_ops")
            self._sim.spawn(self._prefetch_worker(value),
                            name=f"maple{self.instance_id}.prefetch")
            return None
        if opcode == StoreOp.CLOSE:
            self.scratchpad.queue(queue_id).owner = None
            self.stats.bump("closes")
            return None
        if opcode == StoreOp.INIT:
            self.scratchpad.reset_all()
            self.stats.bump("inits")
            return None
        if opcode == StoreOp.SET_ROOT:
            self.mmu.set_root(value)
            return None
        if opcode == StoreOp.LIMA_BASE_A:
            self.lima.set_base_a(queue_id, value)
            return None
        if opcode == StoreOp.LIMA_BASE_B:
            self.lima.set_base_b(queue_id, value)
            return None
        if opcode == StoreOp.LIMA_RANGE:
            lo, hi = value
            self.lima.set_range(queue_id, lo, hi)
            return None
        if opcode == StoreOp.LIMA_START:
            self.stats.bump("lima_ops")
            self.lima.start(queue_id, mode=value)
            return None
        if opcode == StoreOp.LIMA_RUN:
            lo, hi, mode = value
            self.lima.set_range(queue_id, lo, hi)
            self.stats.bump("lima_ops")
            self.lima.start(queue_id, mode=mode)
            return None
        raise MapleError(f"unimplemented store opcode {opcode!r}")

    def _accept_produce(self, opcode: StoreOp, queue_id: int, value):
        """Admit a produce into the per-queue buffer; the store's ack (and
        therefore the Access core) is released as soon as it is buffered."""
        queue = self.scratchpad.queue(queue_id)
        buffer = self._produce_buffers[queue_id]
        if buffer.available == 0:
            self._c_produce_backpressure.value += 1
        yield from buffer.acquire()
        if opcode == StoreOp.PRODUCE:
            self._c_produces.value += 1
            self._sim.spawn(self._produce_data_worker(queue, buffer, value),
                            name=f"maple{self.instance_id}.produce")
        else:
            self._c_produce_ptrs.value += 1
            via_llc = opcode == StoreOp.PRODUCE_PTR_LLC
            self._sim.spawn(
                self._produce_ptr_worker(queue, buffer, value, via_llc=via_llc),
                name=f"maple{self.instance_id}.produce_ptr")

    def _produce_data_worker(self, queue: HwQueue, buffer: Semaphore, value):
        index = yield from queue.reserve()
        queue.fill(index, value)
        buffer.release()

    def _produce_ptr_worker(self, queue: HwQueue, buffer: Semaphore, ptr: int,
                            via_llc: bool = False):
        index = yield from queue.reserve()
        buffer.release()
        yield from self.fetch_into_slot(queue, index, ptr, via_llc=via_llc)

    def fetch_into_slot(self, queue: HwQueue, index: int, ptr: int,
                        via_llc: bool = False):
        """Generator: translate + fetch ``ptr`` and fill slot ``index``.

        Shared by the Produce pipeline and LIMA.  The slot index is the
        memory transaction ID, so out-of-order DRAM responses land in the
        right place and the queue still delivers in program order.
        """
        if not self._inflight.try_acquire():
            yield from self._inflight.acquire()
        try:
            queue.ptr_fetches += 1
            self._h_fetch_mlp.add(self._inflight.in_use)
            paddr = yield from self.mmu.translate(ptr)
            kind = "llc_load" if via_llc else "dram_load"
            limit = self.config.poison_refetch_limit
            for _attempt in range(limit + 1):
                data = yield from self.mem_port.request(kind, paddr)
                if not is_poisoned(data):
                    break
                # Poisoned produce fill: the pointer is still in hand, so
                # re-issue the fetch (a fresh DRAM read draws a fresh
                # flip fate) instead of parking garbage in the queue.
                self.stats.bump("poison_refetches")
            else:
                raise DataIntegrityError(
                    f"maple{self.instance_id}: pointer fetch of {ptr:#x} "
                    f"poisoned across {limit + 1} attempts",
                    component=f"maple{self.instance_id}", kind=kind,
                    addr=paddr, attempts=limit + 1)
        finally:
            self._inflight.release()
        queue.fill(index, data)

    def _prefetch_worker(self, ptr: int):
        """Speculative prefetch: translate and push the line into the LLC."""
        yield from self._inflight.acquire()
        try:
            paddr = yield from self.mmu.translate(ptr)
        finally:
            self._inflight.release()
        self.mem_port.post("l2_prefetch", paddr)
