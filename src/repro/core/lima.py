"""The LIMA unit: Loops of Indirect Memory Accesses (§3.2, §3.4).

One software operation programs a whole ``A[B[i]] for i in [lo, hi)``
pattern.  LIMA fetches the index array B in 64-byte chunks into the
scratchpad, walks the chunk word by word (one per cycle), forms each
final address ``&A[B[i]]``, and feeds it into the Produce path:

- ``mode="queue"`` (non-speculative): the data lands in the hardware
  queue, consumed in order — LIMA_PRODUCE in the paper's evaluation.
- ``mode="llc"`` (speculative): the line is prefetched into the shared
  LLC without touching the L1 — the PREFETCH variant of Fig. 4.

Because MAPLE is ISA-agnostic, the speculative path issues plain network
requests toward the shared cache rather than ISA prefetch instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.mem.dram import is_poisoned
from repro.sim.port import DataIntegrityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import Maple

WORD_BYTES = 8

VALID_MODES = ("queue", "llc")


@dataclass
class LimaConfig:
    """Per-queue LIMA configuration registers."""

    base_a: Optional[int] = None
    base_b: Optional[int] = None
    lo: Optional[int] = None
    hi: Optional[int] = None

    def ready(self) -> bool:
        return None not in (self.base_a, self.base_b, self.lo, self.hi)


class LimaUnit:
    """Configuration registers + the chunked expansion engine."""

    def __init__(self, maple: "Maple"):
        self._maple = maple
        self._configs: Dict[int, LimaConfig] = {}
        self.active = 0  # currently running LIMA expansions
        # Runs targeting the same queue execute strictly in issue order —
        # interleaving two runs' slot reservations would scramble the FIFO.
        self._pending: Dict[int, list] = {}
        self._busy: Dict[int, bool] = {}

    def debug_state(self) -> dict:
        """Liveness snapshot: running expansions and per-queue backlog."""
        return {
            "active": self.active,
            "pending": {qid: len(runs) for qid, runs in self._pending.items()
                        if runs},
            "busy_queues": sorted(qid for qid, busy in self._busy.items()
                                  if busy),
        }

    def _config_for(self, queue_id: int) -> LimaConfig:
        return self._configs.setdefault(queue_id, LimaConfig())

    def set_base_a(self, queue_id: int, vaddr: int) -> None:
        self._config_for(queue_id).base_a = vaddr

    def set_base_b(self, queue_id: int, vaddr: int) -> None:
        self._config_for(queue_id).base_b = vaddr

    def set_range(self, queue_id: int, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError(f"LIMA range [{lo}, {hi}) is negative")
        config = self._config_for(queue_id)
        config.lo, config.hi = lo, hi

    def start(self, queue_id: int, mode: str) -> None:
        """Kick off one expansion (the LIMA_START MMIO store)."""
        if mode not in VALID_MODES:
            raise ValueError(f"LIMA mode {mode!r} not in {VALID_MODES}")
        config = self._config_for(queue_id)
        if not config.ready():
            raise RuntimeError(f"LIMA start on queue {queue_id} before configuration")
        snapshot = LimaConfig(config.base_a, config.base_b, config.lo, config.hi)
        self.active += 1
        self._pending.setdefault(queue_id, []).append((snapshot, mode))
        if not self._busy.get(queue_id):
            self._busy[queue_id] = True
            self._maple._sim.spawn(
                self._drain(queue_id),
                name=f"maple{self._maple.instance_id}.lima.q{queue_id}",
            )

    def _drain(self, queue_id: int):
        """Process queued runs for one queue strictly in issue order."""
        pending = self._pending[queue_id]
        while pending:
            snapshot, mode = pending.pop(0)
            yield from self._run(queue_id, snapshot, mode)
        self._busy[queue_id] = False

    def _run(self, queue_id: int, config: LimaConfig, mode: str):
        maple = self._maple
        mem_port = maple.mem_port
        line_size = maple.config.line_size
        queue = maple.scratchpad.queue(queue_id)
        maple.stats.bump("lima_started")
        current_line = None
        line_words = []
        for i in range(config.lo, config.hi):
            vaddr_b = config.base_b + WORD_BYTES * i
            paddr_b = yield from maple.mmu.translate(vaddr_b)
            line = paddr_b & ~(line_size - 1)
            if line != current_line:
                # Fetch the next 64 B chunk of B into the scratchpad.
                line_words = yield from mem_port.request("dram_line", line)
                current_line = line
                maple.stats.bump("lima_chunks")
            index = line_words[(paddr_b - line) // WORD_BYTES]
            if is_poisoned(index):
                # The index array is still in DRAM: re-fetch the chunk (a
                # fresh read draws a fresh ECC fate) before giving up.
                limit = maple.config.poison_refetch_limit
                for _ in range(limit):
                    maple.stats.bump("lima_poison_refetches")
                    line_words = yield from mem_port.request("dram_line", line)
                    index = line_words[(paddr_b - line) // WORD_BYTES]
                    if not is_poisoned(index):
                        break
                else:
                    raise DataIntegrityError(
                        f"maple{maple.instance_id} lima.q{queue_id}: index "
                        f"chunk at {line:#x} poisoned across {limit + 1} "
                        f"fetch attempts",
                        component=f"maple{maple.instance_id}.lima",
                        kind="dram_line", addr=line, attempts=limit + 1)
            if not isinstance(index, int):
                raise TypeError(
                    f"LIMA index B[{i}] = {index!r} is not an integer"
                )
            target = config.base_a + WORD_BYTES * index
            yield 1  # one element per cycle through the indirection logic
            if mode == "queue":
                slot = yield from queue.reserve()
                maple._sim.spawn(
                    maple.fetch_into_slot(queue, slot, target),
                    name=f"maple{maple.instance_id}.lima.fetch",
                )
            else:
                paddr_a = yield from maple.mmu.translate(target)
                mem_port.post("l2_prefetch", paddr_a)
            maple.stats.bump("lima_elements")
        self.active -= 1
