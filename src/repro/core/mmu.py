"""MAPLE's MMU: a private TLB and hardware page-table walker (§3.5).

MAPLE receives *virtual* pointers from software, so it translates them
itself: a fully-associative 16-entry TLB (same size as the cores'), a
walker that fetches PTEs through the memory hierarchy, and a fault path —
on an invalid page the MMU records the faulting address, raises an
interrupt, and the MAPLE driver resolves it and retries.  The driver's
shootdown callback invalidates TLB entries so no stale translations
survive an ``munmap``.
"""

from __future__ import annotations

from typing import Optional

from repro.params import SoCConfig
from repro.sim.stats import ScopedStats
from repro.vm.ptw import PageTableWalker, TranslationFault
from repro.vm.tlb import Tlb


class MapleMmu:
    """Translation front-end shared by the Produce pipeline and LIMA.

    ``mem`` is the engine's memory :class:`~repro.sim.port.Port` (walk
    reads become ``ptw_read`` transactions on it); a bare
    :class:`~repro.mem.hierarchy.MemorySystem` also works standalone.
    """

    def __init__(self, mem, config: SoCConfig,
                 stats: ScopedStats, name: str = "maple-mmu"):
        self.name = name
        self._config = config
        self._stats = stats
        self.tlb = Tlb(config.maple_tlb_entries, stats, name=f"{name}.tlb")
        self._ptw = PageTableWalker(mem, stats, name=f"{name}.ptw")
        self.root_paddr: Optional[int] = None
        self.last_fault_vaddr: Optional[int] = None
        self._fault_handler = None  # installed by the driver

    @property
    def walker(self) -> PageTableWalker:
        """The hardware walker (liveness probes read its inflight count)."""
        return self._ptw

    def set_root(self, root_paddr: int) -> None:
        """Point at a process's page table (driver-only configuration)."""
        self.root_paddr = root_paddr
        self.tlb.flush()

    def install_fault_handler(self, handler) -> None:
        """``handler(vaddr)`` is a generator the driver provides; it maps
        the page (with kernel-trap timing) or raises SegmentationFault."""
        self._fault_handler = handler

    def shootdown(self, vaddr: int) -> None:
        """The Linux callback path: invalidate one page (§3.5)."""
        self.tlb.invalidate_page(vaddr)
        self._stats.bump("shootdowns")

    def translate(self, vaddr: int):
        """Generator: vaddr -> paddr with TLB/walk/fault-retry timing."""
        if self.root_paddr is None:
            raise RuntimeError(f"{self.name}: translate before SET_ROOT")
        hit = self.tlb.translate(vaddr)
        if hit is not None:
            return hit[0]
        # Loop, not retry-once: under injected eviction the page can be
        # unmapped again mid-retry; the interrupt/resolve path simply
        # fires again, exactly as the driver would re-trap (§3.5).
        while True:
            try:
                paddr, flags = yield from self._ptw.walk(self.root_paddr,
                                                         vaddr)
                break
            except TranslationFault:
                self.last_fault_vaddr = vaddr
                self._stats.bump("page_faults")
                if self._fault_handler is None:
                    raise
                yield from self._fault_handler(vaddr)
        page_mask = self._config.page_size - 1
        self.tlb.insert(vaddr, paddr & ~page_mask, flags)
        return paddr
