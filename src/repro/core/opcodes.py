"""MMIO operation encoding (§3.6, "Extensible").

Each MAPLE instance owns one 4 KB page.  The byte offset of an access
within that page is re-purposed as an instruction word:

- bits 3..8  (6 bits): operation code — up to 64 load ops and 64 store
  ops, since the access type (load vs store) selects the opcode space;
- bits 9..11 (3 bits): queue id — 8 hardware queues per instance.

Accesses are 8-byte aligned, so bits 0..2 are always zero.
"""

from __future__ import annotations

import enum

OPCODE_SHIFT = 3
OPCODE_BITS = 6
QUEUE_SHIFT = OPCODE_SHIFT + OPCODE_BITS  # 9
QUEUE_BITS = 3
MAX_OPCODES = 1 << OPCODE_BITS
MAX_QUEUES = 1 << QUEUE_BITS
PAGE_MASK = 0xFFF


class LoadOp(enum.IntEnum):
    """Operations carried by MMIO *loads* (the response is the result)."""

    CONSUME = 0           # pop one queue entry
    CONSUME_PACKED = 1    # pop two 4-byte entries in one 8-byte load (§5.1)
    OPEN = 2              # bind the queue to the calling thread
    STAT_PRODUCED = 8     # performance counters (§3.1 "debugging")
    STAT_CONSUMED = 9
    STAT_OCCUPANCY = 10
    STAT_PTR_FETCHES = 11
    STAT_TLB_MISSES = 12
    FAULT_VADDR = 13      # driver reads the faulting address (§3.5)


class StoreOp(enum.IntEnum):
    """Operations carried by MMIO *stores* (the payload is the operand)."""

    PRODUCE = 0          # push payload data into the queue
    PRODUCE_PTR = 1      # push a pointer; MAPLE fetches and fills in order
    CLOSE = 2            # release the queue binding
    INIT = 3             # reset all queues (API INIT)
    PREFETCH = 4         # speculative prefetch of payload pointer into LLC
    PRODUCE_PTR_LLC = 5  # pointer-produce fetching coherently via the LLC
                         # (§3.6: DRAM-direct or LLC, chosen by opcode)
    SET_ROOT = 16        # driver-only: configure the MMU root (satp-like)
    LIMA_BASE_A = 17     # LIMA configuration registers (§3.4)
    LIMA_BASE_B = 18
    LIMA_RANGE = 19      # payload: (lo, hi) index range
    LIMA_START = 20      # payload: "queue" (non-speculative) or "llc"
    LIMA_RUN = 21        # payload: (lo, hi, mode) — range + start in one op,
                         # the single-store form used inside tight loops (Fig. 4)


def encode_addr(page_base: int, opcode: int, queue_id: int = 0) -> int:
    """The MMIO address that performs ``opcode`` on ``queue_id``."""
    if page_base & PAGE_MASK:
        raise ValueError(f"page base {page_base:#x} not page aligned")
    if not 0 <= opcode < MAX_OPCODES:
        raise ValueError(f"opcode {opcode} out of range")
    if not 0 <= queue_id < MAX_QUEUES:
        raise ValueError(f"queue id {queue_id} out of range")
    return page_base | (queue_id << QUEUE_SHIFT) | (opcode << OPCODE_SHIFT)


def decode_offset(offset: int) -> tuple:
    """(opcode, queue_id) from a byte offset within the MAPLE page."""
    if not 0 <= offset <= PAGE_MASK:
        raise ValueError(f"offset {offset:#x} outside the MMIO page")
    if offset & ((1 << OPCODE_SHIFT) - 1):
        raise ValueError(f"offset {offset:#x} not 8-byte aligned")
    opcode = (offset >> OPCODE_SHIFT) & (MAX_OPCODES - 1)
    queue_id = (offset >> QUEUE_SHIFT) & (MAX_QUEUES - 1)
    return opcode, queue_id
