"""Scratchpad-backed circular FIFO hardware queues (§3.1, §3.4).

Each queue supports the reserve / fill / pop discipline the paper's
Produce pipeline uses: a produce *reserves* the tail slot (its index is
the memory transaction ID), the DRAM response *fills* that slot whenever
it arrives, and consumes *pop* strictly from the head — so data is
delivered in program order even though memory responses return out of
order.  Back-pressure is structural: reserve blocks while the queue is
full, pop blocks while the head entry has not arrived ("buffered, not
polled").

Quiescence audit (engine contract, see DESIGN.md): every blocking path
here waits on a :class:`~repro.sim.signal.Gate` toggled by the state
change it needs — nothing re-schedules itself to re-check ("yield 1"
spinning), so an idle queue contributes zero events.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional

from repro.mem.dram import Poison
from repro.sim import Gate, Semaphore, Simulator
from repro.sim.faults import corrupt_value
from repro.sim.stats import ScopedStats


class SlotState(enum.Enum):
    EMPTY = 0
    RESERVED = 1
    VALID = 2


class QueueError(RuntimeError):
    """Protocol violation on a hardware queue (a model bug or misuse)."""


class HwQueue:
    """One circular FIFO in the MAPLE scratchpad."""

    def __init__(self, sim: Simulator, queue_id: int, capacity: int,
                 stats: ScopedStats, ecc: bool = True):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self._sim = sim
        self.queue_id = queue_id
        self.capacity = capacity
        self._stats = stats
        #: SECDED on the scratchpad SRAM: single-bit slot flips are
        #: corrected, double-bit flips poison the slot (the consume path
        #: surfaces a typed error — the producing pointer is gone, so
        #: re-fetch is impossible).  Without ECC flips silently corrupt.
        self.ecc = ecc
        self.ecc_corrected = 0
        self.ecc_poisoned = 0
        self.silent_corruptions = 0
        self._states: List[SlotState] = [SlotState.EMPTY] * capacity
        self._values: List[Any] = [None] * capacity
        self._head = 0
        self._tail = 0
        self._occupied = 0  # reserved + valid
        #: Free-slot pool with strict FIFO handoff: the order reservations
        #: are granted IS the program order of the queue.
        self.space = Semaphore(sim, capacity, name=f"q{queue_id}.space")
        self.ready = Gate(sim, opened=False, name=f"q{queue_id}.ready")
        self.owner: Optional[str] = None
        self.produced = 0
        self.consumed = 0
        self.ptr_fetches = 0
        #: Invariant-checker hook: an object with ``on_reserve(queue,
        #: index)`` / ``on_fill(queue, index, value)`` / ``on_pop(queue,
        #: value)`` / ``on_reset(queue)``.  ``None`` (the default) keeps
        #: the produce/consume paths untouched.
        self.observer = None

    # -- state inspection -----------------------------------------------------

    @property
    def occupied(self) -> int:
        return self._occupied

    @property
    def free_slots(self) -> int:
        return self.capacity - self._occupied

    def valid_entries(self) -> int:
        return sum(1 for state in self._states if state is SlotState.VALID)

    def filled_slots(self) -> List[int]:
        """Indices holding valid data (fault injection targets these)."""
        return [i for i, state in enumerate(self._states)
                if state is SlotState.VALID]

    def head_ready(self) -> bool:
        return self._states[self._head] is SlotState.VALID

    # -- fault injection -------------------------------------------------------

    def corrupt_slot(self, index: int, nflips: int, leaf: float,
                     bit: float) -> str:
        """Flip bits in slot ``index`` under the ECC policy.

        Returns the outcome: ``"dead"`` (slot held no valid data),
        ``"corrected"``, ``"poisoned"``, or ``"silent"``.  The invariant
        observer is told about any value change so the golden shadow
        model tracks the *hardware's* (corrupted) view, not the clean
        history.
        """
        if self._states[index] is not SlotState.VALID:
            return "dead"
        if self.ecc and nflips == 1:
            self.ecc_corrected += 1
            return "corrected"
        if self.ecc:
            self.ecc_poisoned += 1
            self._values[index] = Poison(index)
            outcome = "poisoned"
        else:
            self.silent_corruptions += 1
            self._values[index] = corrupt_value(self._values[index], leaf, bit)
            outcome = "silent"
        if self.observer is not None:
            self.observer.on_corrupt(self, index, self._values[index])
        return outcome

    # -- produce side ------------------------------------------------------------

    def reserve(self):
        """Generator: claim the tail slot, blocking while full.

        Returns the slot index — the transaction ID for the memory fetch.
        Reservations are granted strictly in request order (FIFO handoff),
        since the grant order defines the queue's program order.
        """
        yield from self.space.acquire()
        return self._alloc()

    def try_reserve(self) -> Optional[int]:
        if not self.space.try_acquire():
            return None
        return self._alloc()

    def _alloc(self) -> int:
        if self._occupied >= self.capacity:
            raise QueueError(f"queue {self.queue_id} reserve past capacity")
        index = self._tail
        self._states[index] = SlotState.RESERVED
        self._tail = (self._tail + 1) % self.capacity
        self._occupied += 1
        self._stats.observe("occupancy", self._occupied)
        if self.observer is not None:
            self.observer.on_reserve(self, index)
        return index

    def fill(self, index: int, value: Any) -> None:
        """Complete a reserved slot with its data (out-of-order safe)."""
        if self._states[index] is not SlotState.RESERVED:
            raise QueueError(
                f"queue {self.queue_id} fill of slot {index} in state "
                f"{self._states[index].name}"
            )
        self._states[index] = SlotState.VALID
        self._values[index] = value
        self.produced += 1
        if self.observer is not None:
            self.observer.on_fill(self, index, value)
        if index == self._head:
            self.ready.open()

    # -- consume side ----------------------------------------------------------------

    def pop(self):
        """Generator: wait for the head entry to be valid, then take it."""
        while not self.head_ready():
            # ready may be stale-open from a previous head; resync.
            if not self.head_ready():
                self.ready.close()
            yield from self.ready.wait()
        value = self._values[self._head]
        self._states[self._head] = SlotState.EMPTY
        self._values[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._occupied -= 1
        self.consumed += 1
        if self.observer is not None:
            self.observer.on_pop(self, value)
        self.space.release()
        if not self.head_ready():
            self.ready.close()
        return value

    def try_pop(self) -> Optional[Any]:
        if not self.head_ready():
            return None
        # Delegate to pop()'s body without blocking: head is ready, so the
        # generator completes synchronously.
        gen = self.pop()
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value
        raise QueueError("pop blocked despite head_ready")  # pragma: no cover

    # -- lifecycle ---------------------------------------------------------------------

    def reset(self) -> None:
        if any(state is SlotState.RESERVED for state in self._states):
            raise QueueError(
                f"queue {self.queue_id} reset with in-flight fetches"
            )
        self._states = [SlotState.EMPTY] * self.capacity
        self._values = [None] * self.capacity
        self._head = self._tail = 0
        self._occupied = 0
        self.space = Semaphore(self._sim, self.capacity,
                               name=f"q{self.queue_id}.space")
        self.ready.close()
        self.owner = None
        if self.observer is not None:
            self.observer.on_reset(self)

    def debug_state(self) -> dict:
        """Liveness snapshot for watchdog dumps: occupancy, head state,
        the slot indices still waiting on memory, and the flow counters."""
        reserved = [i for i, s in enumerate(self._states)
                    if s is SlotState.RESERVED]
        return {
            "occupied": self._occupied,
            "valid": self.valid_entries(),
            "reserved_slots": reserved,
            "head_ready": self.head_ready(),
            "produced": self.produced,
            "consumed": self.consumed,
            "ptr_fetches": self.ptr_fetches,
            "owner": self.owner,
            "space_waiters": self.space.waiting,
            "ecc_corrected": self.ecc_corrected,
            "ecc_poisoned": self.ecc_poisoned,
            "silent_corruptions": self.silent_corruptions,
        }

    def __repr__(self) -> str:
        return (
            f"<HwQueue {self.queue_id} {self.valid_entries()}v/"
            f"{self._occupied}o/{self.capacity}>"
        )


class Scratchpad:
    """The shared SRAM hosting all queues of one MAPLE instance (§3.4).

    The geometry mirrors the tapeout: ``scratchpad_bytes`` split evenly
    across ``num_queues`` queues of ``entry_bytes`` entries (1 KB / 8
    queues / 4 B = 32 entries, §5.3).
    """

    def __init__(self, sim: Simulator, scratchpad_bytes: int, num_queues: int,
                 entry_bytes: int, stats: ScopedStats, ecc: bool = True):
        if scratchpad_bytes % (num_queues * entry_bytes):
            raise ValueError("scratchpad does not divide into equal queues")
        self.bytes = scratchpad_bytes
        self.entry_bytes = entry_bytes
        entries = scratchpad_bytes // num_queues // entry_bytes
        self.queues: List[HwQueue] = [
            HwQueue(sim, queue_id, entries, stats, ecc=ecc)
            for queue_id in range(num_queues)
        ]

    def queue(self, queue_id: int) -> HwQueue:
        if not 0 <= queue_id < len(self.queues):
            raise KeyError(f"queue id {queue_id} out of range")
        return self.queues[queue_id]

    def reset_all(self) -> None:
        for queue in self.queues:
            queue.reset()

    def __len__(self) -> int:
        return len(self.queues)
