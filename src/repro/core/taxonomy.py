"""Table 1: classification of prior IMA-latency-mitigation techniques.

The paper scores four decades of prior work against the four features
that make a technique practical to adopt in an SoC: unmodified cores,
unmodified ISA, compatibility with simple (in-order, area-efficient)
cores, and being a hardware-software co-design that can exploit program
knowledge.  MAPLE is the only row satisfying all four.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

FEATURES = (
    "unmodified_cores",
    "unmodified_isa",
    "simple_cores",
    "hw_sw_codesign",
)

FEATURE_TITLES = {
    "unmodified_cores": "Unmodif. Cores",
    "unmodified_isa": "Unmodif. ISA",
    "simple_cores": "Simple Cores",
    "hw_sw_codesign": "HW-SW Co-design",
}


@dataclass(frozen=True)
class TechniqueRow:
    name: str
    citation: str
    unmodified_cores: bool
    unmodified_isa: bool
    simple_cores: bool
    hw_sw_codesign: bool

    def feature(self, key: str) -> bool:
        return getattr(self, key)

    def satisfies_all(self) -> bool:
        return all(self.feature(key) for key in FEATURES)


#: Table 1, row for row (checkmark pattern from the paper).
TABLE1: Tuple[TechniqueRow, ...] = (
    TechniqueRow("HW DAE", "[21, 36, 49]", False, False, True, True),
    TechniqueRow("DeSC/MTDCAE", "[22, 55]", False, False, True, True),
    TechniqueRow("SW Pre-execution", "[35]", False, False, False, True),
    TechniqueRow("Triggered inst.", "[43]", False, False, True, True),
    TechniqueRow("Slipstream", "[52, 54]", False, True, True, False),
    TechniqueRow("HW Prefetching", "[9]", False, True, True, False),
    TechniqueRow("Graph Pref, IMP", "[1, 62]", False, True, True, False),
    TechniqueRow("Programmable Pref.", "[3]", False, False, True, True),
    TechniqueRow("DSWP", "[45]", False, False, False, True),
    TechniqueRow("Outrider", "[15]", False, False, False, True),
    TechniqueRow("Clairvoyance", "[58]", True, True, False, False),
    TechniqueRow("SWOOP", "[59]", False, True, True, True),
    TechniqueRow("MAD", "[24]", False, True, True, True),
    TechniqueRow("Pipette", "[41]", False, False, False, True),
    TechniqueRow("Prodigy", "[56]", False, True, True, True),
    TechniqueRow("MAPLE", "(this work)", True, True, True, True),
)


def render_table1() -> str:
    """The taxonomy as fixed-width text, one line per technique."""
    header = f"{'Technique':22s} " + " ".join(
        f"{FEATURE_TITLES[key]:>16s}" for key in FEATURES)
    lines = [header, "-" * len(header)]
    for row in TABLE1:
        marks = " ".join(
            f"{'yes' if row.feature(key) else 'no':>16s}" for key in FEATURES)
        lines.append(f"{row.name:22s} {marks}")
    return "\n".join(lines)


def techniques_satisfying_all() -> List[str]:
    return [row.name for row in TABLE1 if row.satisfies_all()]
