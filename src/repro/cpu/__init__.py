"""In-order core substrate.

Programs are Python generators that *yield instruction descriptors*
(:mod:`repro.cpu.isa`) to a :class:`~repro.cpu.core.Core`, which charges
cycles for each one: ALU ops take their latency, loads and stores block
in-order through the TLB and cache hierarchy (instruction window of 1,
matching Table 3), prefetches issue without blocking.  Yielding a ``Load``
evaluates to the loaded value, so kernels read like straight-line code.
"""

from repro.cpu.core import Core, Thread
from repro.cpu.isa import Alu, Amo, Load, Prefetch, Store, Sync

__all__ = ["Alu", "Amo", "Core", "Load", "Prefetch", "Store", "Sync", "Thread"]
