"""The single-issue in-order core timing model.

One instruction at a time, blocking memory operations — the Ariane-class
baseline of Tables 2/3 (instruction window / ROB of 1).  The core owns a
16-entry TLB and a hardware page-table walker; faults trap into the OS and
retry.  Per-core statistics feed Figs. 10 (load counts) and 11 (average
load latency): every load-class instruction, including MMIO consumes from
MAPLE, lands in the same counters, exactly as the paper's hardware
counters measure.

All memory traffic — loads, stores, AMOs, software prefetches, and the
page-table walker's PTE reads — leaves the core through a single
:class:`~repro.sim.port.Port` into the memory system.  The core never
touches :class:`~repro.mem.hierarchy.MemorySystem` directly: uncacheable
(MMIO) checks and L1 peeks are zero-time port probes, functional store
data is a port post, and every timed access is a port transaction, so one
telemetry tap sees the core's whole memory-side behavior.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu.isa import Alu, Amo, Load, Prefetch, Store, Sync
from repro.params import SoCConfig
from repro.sim import Port, Semaphore, Simulator
from repro.sim.stats import Stats
from repro.vm.os_model import AddressSpace, SimOS
from repro.vm.ptw import PageTableWalker, TranslationFault
from repro.vm.tlb import Tlb


class Thread:
    """A software thread: a program generator bound to an address space."""

    def __init__(self, program: Generator, aspace: AddressSpace, name: str = "thread"):
        self.program = program
        self.aspace = aspace
        self.name = name


class Core:
    """One in-order core at a mesh tile."""

    def __init__(self, core_id: int, tile_id: int, sim: Simulator,
                 mem_port: Port, os: SimOS, config: SoCConfig,
                 stats: Stats):
        self.core_id = core_id
        self.tile_id = tile_id
        self._sim = sim
        self._mem_port = mem_port
        self._os = os
        self.config = config
        self.stats = stats.scoped(f"core{core_id}")
        # Pre-resolved stat handles for the per-instruction hot path.
        self._c_instructions = self.stats.counter("instructions")
        self._c_alu_ops = self.stats.counter("alu_ops")
        self._c_loads = self.stats.counter("loads")
        self._c_stores = self.stats.counter("stores")
        self._c_prefetches = self.stats.counter("prefetches")
        self._c_amos = self.stats.counter("amos")
        self._c_syncs = self.stats.counter("syncs")
        self._h_load_latency = self.stats.histogram("load_latency")
        self.tlb = Tlb(config.core_tlb_entries, self.stats, name=f"tlb{core_id}")
        self._ptw = PageTableWalker(mem_port, self.stats, name=f"ptw{core_id}")
        #: Outstanding-L1-miss budget shared by demand loads and software
        #: prefetches (Ariane's blocking cache: 1).
        self._mshrs = Semaphore(sim, config.core_mshrs, name=f"mshr{core_id}")
        self._store_buffer = Semaphore(sim, config.store_buffer_entries,
                                       name=f"stb{core_id}")
        # Spawn names, built once (stores/prefetches spawn per instruction).
        self._stb_name = f"core{core_id}.stb"
        self._prefetch_name = f"core{core_id}.prefetch"
        os.register_tlb(self.tlb)

    def run(self, thread: Thread):
        """Spawn the thread on this core; returns the sim Process handle."""
        return self._sim.spawn(self._execute(thread), name=f"core{self.core_id}.{thread.name}")

    def l1_line_state(self, paddr: int):
        """MESI state of this core's L1 line covering ``paddr`` (a
        zero-time port probe; INVALID when absent).  Coherence tests and
        audits read tag-array truth through this official seam instead
        of reaching into the memory system."""
        return self._mem_port.probe("l1_state", paddr)

    # -- execution loop ------------------------------------------------------

    def _execute(self, thread: Thread):
        program = thread.program
        to_send = None
        while True:
            try:
                inst = program.send(to_send)
            except StopIteration as stop:
                return stop.value
            to_send = yield from self._perform(inst, thread.aspace)

    def _perform(self, inst, aspace: AddressSpace):
        # Exact-class dispatch for the per-instruction hot path; anything
        # unusual (raw simulation waits, isa subclasses) falls through to
        # the general chain in _perform_slow with unchanged semantics.
        kind = inst.__class__
        if kind is Load:
            self._c_instructions.value += 1
            return (yield from self._do_load(inst.vaddr, aspace))
        if kind is Alu:
            self._c_instructions.value += 1
            self._c_alu_ops.value += 1
            yield inst.cycles
            return None
        if kind is Store:
            self._c_instructions.value += 1
            return (yield from self._do_store(inst.vaddr, inst.value, aspace))
        if kind is Prefetch:
            self._c_instructions.value += 1
            self._c_prefetches.value += 1
            paddr = yield from self._translate(aspace, inst.vaddr)
            self._sim.spawn(self._prefetch_through_mshr(paddr),
                            name=self._prefetch_name)
            yield 1  # issue slot
            return None
        if kind is Amo:
            self._c_instructions.value += 1
            self._c_amos.value += 1
            paddr = yield from self._translate(aspace, inst.vaddr)
            old = yield from self._mem_port.request("amo", (paddr, inst.op))
            return old
        if kind is Sync:
            self._c_instructions.value += 1
            self._c_syncs.value += 1
            yield from inst.barrier.wait()
            return None
        return (yield from self._perform_slow(inst, aspace))

    def _perform_slow(self, inst, aspace: AddressSpace):
        """The original dispatch chain, for everything off the fast path."""
        if isinstance(inst, int) or hasattr(inst, "_add_waiter") or hasattr(inst, "_add_joiner"):
            # A raw simulation wait (delay / Signal / Process join) from a
            # hardware-model backend the thread is blocked on: the core
            # stalls until it resolves. Not an architectural instruction.
            result = yield inst
            return result
        self._c_instructions.value += 1
        if isinstance(inst, Alu):
            self._c_alu_ops.value += 1
            yield inst.cycles
            return None
        if isinstance(inst, Load):
            return (yield from self._do_load(inst.vaddr, aspace))
        if isinstance(inst, Store):
            return (yield from self._do_store(inst.vaddr, inst.value, aspace))
        if isinstance(inst, Prefetch):
            self._c_prefetches.value += 1
            paddr = yield from self._translate(aspace, inst.vaddr)
            self._sim.spawn(self._prefetch_through_mshr(paddr),
                            name=self._prefetch_name)
            yield 1  # issue slot
            return None
        if isinstance(inst, Amo):
            self._c_amos.value += 1
            paddr = yield from self._translate(aspace, inst.vaddr)
            old = yield from self._mem_port.request("amo", (paddr, inst.op))
            return old
        if isinstance(inst, Sync):
            self._c_syncs.value += 1
            yield from inst.barrier.wait()
            return None
        raise TypeError(f"core {self.core_id}: unknown instruction {inst!r}")

    def _do_load(self, vaddr: int, aspace: AddressSpace):
        self._c_loads.value += 1
        sim = self._sim
        start = sim._now
        # TLB-hit translations are synchronous: resolve inline and only
        # pay for a generator on the miss/walk path.
        hit = self.tlb.translate(vaddr)
        paddr = (hit[0] if hit is not None
                 else (yield from self._translate_miss(aspace, vaddr)))
        port = self._mem_port
        if (not port.probe("is_uncacheable", paddr)
                and not port.probe("l1_would_hit", paddr)):
            # A demand miss takes an MSHR — and waits if software
            # prefetches already occupy them (the blocking-cache effect).
            if not self._mshrs.try_acquire():
                yield from self._mshrs.acquire()
            try:
                value = yield from port.request("load", paddr)
            finally:
                self._mshrs.release()
        else:
            value = yield from port.request("load", paddr)
        self._h_load_latency.add(sim._now - start)
        return value

    def _do_store(self, vaddr: int, value, aspace: AddressSpace):
        """One store, plain or fenced — the single retire path."""
        self._c_stores.value += 1
        hit = self.tlb.translate(vaddr)
        paddr = (hit[0] if hit is not None
                 else (yield from self._translate_miss(aspace, vaddr)))
        port = self._mem_port
        if port.probe("is_uncacheable", paddr):
            # MMIO stores (MAPLE produces) are synchronous: the store
            # retires only once the device acknowledges it (§3.6).
            yield from port.request("store", (paddr, value, True))
            return None
        # Ordinary stores retire into the store buffer: the value is
        # architecturally visible now; cache/coherence work completes
        # in the background, stalling only when the buffer is full.
        port.post("write_word", (paddr, value))
        if not self._store_buffer.try_acquire():
            yield from self._store_buffer.acquire()
        self._sim.spawn(self._drain_store(paddr, value), name=self._stb_name)
        yield 1
        return None

    def _drain_store(self, paddr: int, value):
        try:
            yield from self._mem_port.request("store", (paddr, value, False))
        finally:
            self._store_buffer.release()

    def _prefetch_through_mshr(self, paddr: int):
        if not self._mshrs.try_acquire():
            yield from self._mshrs.acquire()
        try:
            yield from self._mem_port.request("prefetch_fill", paddr)
        finally:
            self._mshrs.release()

    # -- MMU -------------------------------------------------------------------

    def _translate(self, aspace: AddressSpace, vaddr: int):
        """Generator: TLB hit is free (folded into L1 latency); a miss
        walks; a fault traps to the OS and the walk retries.

        The retry loops rather than running once: with page eviction in
        play (fault injection) the page can be evicted *again* between
        the handler mapping it and the retry walk reading the PTE —
        hardware simply re-traps.  An invalid access still terminates:
        ``handle_fault`` raises SegmentationFault.  A pathological
        evict/fault livelock is the watchdog's to catch, not a hang.
        """
        hit = self.tlb.translate(vaddr)
        if hit is not None:
            return hit[0]
        return (yield from self._translate_miss(aspace, vaddr))

    def _translate_miss(self, aspace: AddressSpace, vaddr: int):
        """Generator: the walk/retry path after a TLB miss has already
        been looked up (and counted) by the caller."""
        while True:
            try:
                paddr, flags = yield from self._ptw.walk(aspace.root_paddr,
                                                         vaddr)
                break
            except TranslationFault:
                yield from self._os.handle_fault(aspace, vaddr)  # may raise
        self.tlb.insert(vaddr, paddr & ~(self.config.page_size - 1), flags)
        return paddr
