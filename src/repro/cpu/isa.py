"""Instruction descriptors yielded by thread programs.

These are deliberately ISA-agnostic — MAPLE's core requirement is only
that the host core can issue loads and stores (§3.6), so the model needs
nothing richer.  Virtual addresses are used everywhere; the core's MMU
translates.
"""

from __future__ import annotations

from typing import Any, Callable


class Alu:
    """``cycles`` of computation (address arithmetic, FP ops, branches)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int = 1):
        if cycles < 1:
            raise ValueError("Alu must take at least one cycle")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Alu({self.cycles})"


class Load:
    """A blocking load from a virtual address; yields the value."""

    __slots__ = ("vaddr",)

    def __init__(self, vaddr: int):
        self.vaddr = vaddr

    def __repr__(self) -> str:
        return f"Load({self.vaddr:#x})"


class Store:
    """A blocking store of ``value`` to a virtual address."""

    __slots__ = ("vaddr", "value")

    def __init__(self, vaddr: int, value: Any):
        self.vaddr = vaddr
        self.value = value

    def __repr__(self) -> str:
        return f"Store({self.vaddr:#x})"


class Prefetch:
    """A non-blocking software prefetch into the local L1."""

    __slots__ = ("vaddr",)

    def __init__(self, vaddr: int):
        self.vaddr = vaddr

    def __repr__(self) -> str:
        return f"Prefetch({self.vaddr:#x})"


class Amo:
    """Atomic read-modify-write; yields the old value."""

    __slots__ = ("vaddr", "op")

    def __init__(self, vaddr: int, op: Callable[[Any], Any]):
        self.vaddr = vaddr
        self.op = op

    def __repr__(self) -> str:
        return f"Amo({self.vaddr:#x})"


class Sync:
    """Wait at a shared barrier (OpenMP-style epoch synchronization)."""

    __slots__ = ("barrier",)

    def __init__(self, barrier):
        self.barrier = barrier

    def __repr__(self) -> str:
        return f"Sync({self.barrier.name})"
