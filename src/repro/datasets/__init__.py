"""Datasets for the evaluation workloads (§4.1).

The paper evaluates on SuiteSparse matrices, a Kronecker network, the
Wikipedia/YouTube/LiveJournal graphs, and synthetic matrices from
riscv-tests.  Real-world dumps are not redistributable here, so this
package provides *seeded, deterministic surrogates* with the property the
experiments actually depend on: irregularly-indexed working sets much
larger than the L1/L2, so indirect accesses defeat cache locality.
Substitutions are documented in DESIGN.md.
"""

from repro.datasets.graphs import (
    Graph,
    livejournal_surrogate,
    power_law_graph,
    wikipedia_surrogate,
    youtube_surrogate,
)
from repro.datasets.kronecker import kronecker_graph
from repro.datasets.sparse import CscMatrix, CsrMatrix, random_csr
from repro.datasets.synthetic import riscv_tests_matrix, riscv_tests_vector

__all__ = [
    "CscMatrix",
    "CsrMatrix",
    "Graph",
    "kronecker_graph",
    "livejournal_surrogate",
    "power_law_graph",
    "random_csr",
    "riscv_tests_matrix",
    "riscv_tests_vector",
    "wikipedia_surrogate",
    "youtube_surrogate",
]
