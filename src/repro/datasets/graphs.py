"""Graph datasets for BFS (§4.1).

The paper traverses Wikipedia, YouTube, and LiveJournal.  Those dumps are
multi-GB and not redistributable; the surrogates here are seeded
power-law graphs (preferential-attachment style) scaled so that the
distance array and adjacency lists dwarf the simulated 8 KB L1 / 64 KB L2
— which is the property BFS's indirect `dist[neighbor]` accesses need in
order to be DRAM-bound, as on the real datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class Graph:
    """Directed graph in CSR adjacency form."""

    name: str
    num_vertices: int
    row_ptr: np.ndarray  # len = num_vertices + 1
    neighbors: np.ndarray  # len = num_edges

    def __post_init__(self) -> None:
        self.row_ptr = np.asarray(self.row_ptr, dtype=np.int64)
        self.neighbors = np.asarray(self.neighbors, dtype=np.int64)
        if len(self.row_ptr) != self.num_vertices + 1:
            raise ValueError("row_ptr must have num_vertices+1 entries")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.neighbors):
            raise ValueError("row_ptr extents are inconsistent")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if len(self.neighbors) and (self.neighbors.min() < 0
                                    or self.neighbors.max() >= self.num_vertices):
            raise ValueError("neighbor id out of range")

    @property
    def num_edges(self) -> int:
        return len(self.neighbors)

    def out_degree(self, vertex: int) -> int:
        return int(self.row_ptr[vertex + 1] - self.row_ptr[vertex])

    def neighbors_of(self, vertex: int) -> np.ndarray:
        return self.neighbors[self.row_ptr[vertex]:self.row_ptr[vertex + 1]]


def _edges_to_graph(name: str, num_vertices: int, sources, targets) -> Graph:
    order = np.lexsort((targets, sources))
    sources = np.asarray(sources)[order]
    targets = np.asarray(targets)[order]
    row_ptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.add.at(row_ptr, sources + 1, 1)
    row_ptr = np.cumsum(row_ptr)
    return Graph(name, num_vertices, row_ptr, targets)


def power_law_graph(num_vertices: int, avg_degree: int, seed: int,
                    name: str = "powerlaw") -> Graph:
    """A seeded scale-free-ish directed graph.

    Targets are drawn with probability proportional to a Zipf-like rank
    weight, producing the skewed degree distribution (hubs) that makes
    real-web BFS frontiers irregular.
    """
    if num_vertices < 2:
        raise ValueError("graph needs at least two vertices")
    rng = np.random.default_rng(seed)
    num_edges = num_vertices * avg_degree
    # Zipf-ish target popularity over a permuted vertex order, so hub ids
    # are scattered (no accidental locality).
    weights = 1.0 / np.arange(1, num_vertices + 1) ** 0.8
    weights /= weights.sum()
    permutation = rng.permutation(num_vertices)
    sources = rng.integers(0, num_vertices, size=num_edges)
    targets = permutation[rng.choice(num_vertices, size=num_edges, p=weights)]
    keep = sources != targets
    return _edges_to_graph(name, num_vertices, sources[keep], targets[keep])


def wikipedia_surrogate(scale: int = 2048, seed: int = 1) -> Graph:
    """Stands in for the Wikipedia link graph (dense hubs, avg degree ~12)."""
    return power_law_graph(scale, avg_degree=12, seed=seed, name="wikipedia")


def youtube_surrogate(scale: int = 2048, seed: int = 2) -> Graph:
    """Stands in for the YouTube social graph (sparser, avg degree ~5)."""
    return power_law_graph(scale, avg_degree=5, seed=seed, name="youtube")


def livejournal_surrogate(scale: int = 2048, seed: int = 3) -> Graph:
    """Stands in for LiveJournal (avg degree ~17)."""
    return power_law_graph(scale, avg_degree=17, seed=seed, name="livejournal")


def reference_bfs(graph: Graph, root: int) -> List[int]:
    """Level-synchronous BFS distances (numpy-free reference oracle)."""
    INF = -1
    dist = [INF] * graph.num_vertices
    dist[root] = 0
    frontier = [root]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for vertex in frontier:
            for neighbor in graph.neighbors_of(vertex):
                if dist[neighbor] == INF:
                    dist[neighbor] = level
                    next_frontier.append(int(neighbor))
        frontier = next_frontier
    return dist
