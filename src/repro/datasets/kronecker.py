"""Stochastic Kronecker graph generator (Leskovec et al., used by SDHP §4.1).

The R-MAT style recursive construction: each edge picks one quadrant of
the adjacency matrix per scale level, according to the 2x2 initiator
probabilities (a, b; c, d).  Defaults are the classic R-MAT parameters
(0.57, 0.19, 0.19, 0.05), which yield the heavy-tailed structure the
paper's Kronecker dataset has.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.graphs import Graph, _edges_to_graph


def kronecker_graph(scale: int, edges_per_vertex: int, seed: int,
                    initiator=(0.57, 0.19, 0.19, 0.05)) -> Graph:
    """A 2^scale-vertex stochastic Kronecker (R-MAT) graph."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if abs(sum(initiator) - 1.0) > 1e-9:
        raise ValueError("initiator probabilities must sum to 1")
    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    num_edges = num_vertices * edges_per_vertex
    a, b, c, _d = initiator
    # Per edge, per level: pick a quadrant. Vectorized over edges.
    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    for _level in range(scale):
        draw = rng.random(num_edges)
        right = draw >= a + c  # column bit: quadrants b and d
        lower = ((draw >= a) & (draw < a + c)) | (draw >= a + b + c)  # row bit
        sources = (sources << 1) | lower.astype(np.int64)
        targets = (targets << 1) | right.astype(np.int64)
    keep = sources != targets
    return _edges_to_graph(f"kronecker{scale}", num_vertices,
                           sources[keep], targets[keep])
