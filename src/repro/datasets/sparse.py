"""Compressed sparse matrix containers (§4.1).

CSR and CSC exactly as the paper describes them: three one-dimensional
arrays — extents (row/column pointers), indices of non-zeros, and the
non-zero values.  Dense operands are flat one-dimensional arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class CsrMatrix:
    """Compressed Sparse Row: row_ptr[rows+1], col_idx[nnz], values[nnz]."""

    rows: int
    cols: int
    row_ptr: np.ndarray
    col_idx: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.row_ptr = np.asarray(self.row_ptr, dtype=np.int64)
        self.col_idx = np.asarray(self.col_idx, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if len(self.row_ptr) != self.rows + 1:
            raise ValueError("row_ptr must have rows+1 entries")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.col_idx):
            raise ValueError("row_ptr extents are inconsistent")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if len(self.col_idx) != len(self.values):
            raise ValueError("col_idx and values must have equal length")
        if len(self.col_idx) and (self.col_idx.min() < 0
                                  or self.col_idx.max() >= self.cols):
            raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        return len(self.values)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.rows, self.cols))
        for row in range(self.rows):
            for k in range(self.row_ptr[row], self.row_ptr[row + 1]):
                dense[row, self.col_idx[k]] += self.values[k]
        return dense

    def row_of_nnz(self) -> np.ndarray:
        """For each non-zero, the row it belongs to (used by SDHP)."""
        out = np.empty(self.nnz, dtype=np.int64)
        for row in range(self.rows):
            out[self.row_ptr[row]:self.row_ptr[row + 1]] = row
        return out

    def to_csc(self) -> "CscMatrix":
        order = np.lexsort((self.row_of_nnz(), self.col_idx))
        rows_sorted = self.row_of_nnz()[order]
        vals_sorted = self.values[order]
        cols_sorted = self.col_idx[order]
        col_ptr = np.zeros(self.cols + 1, dtype=np.int64)
        np.add.at(col_ptr, cols_sorted + 1, 1)
        col_ptr = np.cumsum(col_ptr)
        return CscMatrix(self.rows, self.cols, col_ptr, rows_sorted, vals_sorted)

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CsrMatrix":
        dense = np.asarray(dense)
        rows, cols = dense.shape
        row_ptr: List[int] = [0]
        col_idx: List[int] = []
        values: List[float] = []
        for row in range(rows):
            nz = np.nonzero(dense[row])[0]
            col_idx.extend(int(c) for c in nz)
            values.extend(float(v) for v in dense[row, nz])
            row_ptr.append(len(col_idx))
        return CsrMatrix(rows, cols, np.array(row_ptr), np.array(col_idx),
                         np.array(values))


@dataclass
class CscMatrix:
    """Compressed Sparse Column: col_ptr[cols+1], row_idx[nnz], values[nnz]."""

    rows: int
    cols: int
    col_ptr: np.ndarray
    row_idx: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.col_ptr = np.asarray(self.col_ptr, dtype=np.int64)
        self.row_idx = np.asarray(self.row_idx, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if len(self.col_ptr) != self.cols + 1:
            raise ValueError("col_ptr must have cols+1 entries")
        if self.col_ptr[0] != 0 or self.col_ptr[-1] != len(self.row_idx):
            raise ValueError("col_ptr extents are inconsistent")
        if np.any(np.diff(self.col_ptr) < 0):
            raise ValueError("col_ptr must be non-decreasing")
        if len(self.row_idx) and (self.row_idx.min() < 0
                                  or self.row_idx.max() >= self.rows):
            raise ValueError("row index out of range")

    @property
    def nnz(self) -> int:
        return len(self.values)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.rows, self.cols))
        for col in range(self.cols):
            for k in range(self.col_ptr[col], self.col_ptr[col + 1]):
                dense[self.row_idx[k], col] += self.values[k]
        return dense


def random_csr(rows: int, cols: int, nnz_per_row: int, seed: int) -> CsrMatrix:
    """A seeded random CSR matrix with ~nnz_per_row non-zeros per row.

    Column indices are uniform (maximally cache-averse for the dense
    operand, which is what makes SDHP/SPMV IMA-bound).
    """
    rng = np.random.default_rng(seed)
    row_ptr = [0]
    col_idx: List[int] = []
    values: List[float] = []
    for _ in range(rows):
        count = min(cols, max(1, int(rng.poisson(nnz_per_row))))
        chosen = rng.choice(cols, size=count, replace=False)
        chosen.sort()
        col_idx.extend(int(c) for c in chosen)
        values.extend(float(v) for v in rng.uniform(0.5, 1.5, size=count))
        row_ptr.append(len(col_idx))
    return CsrMatrix(rows, cols, np.array(row_ptr), np.array(col_idx),
                     np.array(values))
