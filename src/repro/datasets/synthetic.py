"""Synthetic matrices in the style of riscv-tests (§4.1: SPMM and SPMV).

The riscv-tests benchmark inputs are small uniform-random sparse matrices
with a fixed density; these generators reproduce that recipe with seeds,
sized so the dense operand exceeds the simulated caches.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.sparse import CsrMatrix, random_csr


def riscv_tests_matrix(rows: int = 256, cols: int = 16384, nnz_per_row: int = 8,
                       seed: int = 7) -> CsrMatrix:
    """A uniform-random CSR matrix as used for the SPMV/SPMM runs.

    The default 16384 columns make the dense multiplicand 128 KB — twice
    the 64 KB L2 and sixteen times the 8 KB L1, so the `x[col_idx[k]]`
    gathers miss all the way to DRAM.
    """
    return random_csr(rows, cols, nnz_per_row, seed)


def riscv_tests_vector(length: int = 16384, seed: int = 11) -> np.ndarray:
    """The dense multiplicand vector (values in [1, 2))."""
    rng = np.random.default_rng(seed)
    return rng.uniform(1.0, 2.0, size=length)
