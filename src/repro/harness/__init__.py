"""Evaluation harness: experiment runner and figure/table regenerators.

:mod:`repro.harness.techniques` runs one (workload, technique) cell —
building a fresh SoC, compiling/slicing the kernel, wiring MAPLE or a
baseline, executing, and validating results against the reference.
:mod:`repro.harness.orchestrator` shards independent cells across worker
processes with an on-disk result cache (every cell is deterministic, so
job count never changes a number).  :mod:`repro.harness.figures`
composes cells into every figure of the paper's evaluation;
:mod:`repro.harness.tables` renders the three tables.
"""

from repro.harness.orchestrator import (
    DiskCache,
    Orchestrator,
    RunResult,
    RunSpec,
    execute_spec,
    make_orchestrator,
    spec_key,
)
from repro.harness.techniques import (
    ExperimentResult,
    HARNESS_TECHNIQUES,
    run_workload,
)
from repro.harness import figures, tables

__all__ = ["DiskCache", "ExperimentResult", "HARNESS_TECHNIQUES",
           "Orchestrator", "RunResult", "RunSpec", "execute_spec", "figures",
           "make_orchestrator", "run_workload", "spec_key", "tables"]
