"""Evaluation harness: experiment runner and figure/table regenerators.

:mod:`repro.harness.techniques` runs one (workload, technique) cell —
building a fresh SoC, compiling/slicing the kernel, wiring MAPLE or a
baseline, executing, and validating results against the reference.
:mod:`repro.harness.figures` composes cells into every figure of the
paper's evaluation; :mod:`repro.harness.tables` renders the three tables.
"""

from repro.harness.techniques import (
    ExperimentResult,
    HARNESS_TECHNIQUES,
    run_workload,
)
from repro.harness import figures, tables

__all__ = ["ExperimentResult", "HARNESS_TECHNIQUES", "figures", "run_workload",
           "tables"]
