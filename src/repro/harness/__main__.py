"""Command-line figure/table regenerator.

Usage::

    python -m repro.harness fig8
    python -m repro.harness fig12 --scale 1
    python -m repro.harness fig14 table1 table2 table3 area
    python -m repro.harness all          # everything (several minutes)
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import figures, tables

_TARGETS = ("fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "queue-sweep", "area", "table1", "table2", "table3")


def _render(target: str, scale: int) -> str:
    if target == "fig8":
        return figures.fig8(scale=scale).render()
    if target in ("fig9", "fig10", "fig11"):
        trio = figures.prefetch_study(scale=scale)
        index = {"fig9": 0, "fig10": 1, "fig11": 2}[target]
        return trio[index].render()
    if target == "fig12":
        return figures.fig12(scale=scale).render()
    if target == "fig13":
        return figures.fig13(scale=scale).render()
    if target == "fig14":
        return figures.fig14().render()
    if target == "fig15":
        return figures.fig15(scale=scale).render()
    if target == "queue-sweep":
        return figures.queue_sweep(scale=scale).render()
    if target == "area":
        report = figures.area_analysis()
        lines = ["area analysis (12 nm model, §5.4)"]
        lines += [f"  {name:35s} {mm2:8.4f} mm^2" for name, mm2 in report.rows()]
        lines.append(f"  overhead vs served cores: "
                     f"{report.overhead_fraction * 100:.2f}%")
        return "\n".join(lines)
    if target == "table1":
        return tables.table1()
    if target == "table2":
        return tables.table2()
    if target == "table3":
        return tables.table3()
    raise ValueError(f"unknown target {target!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate tables/figures of the MAPLE evaluation.")
    parser.add_argument("targets", nargs="+",
                        help=f"one of {', '.join(_TARGETS)}, or 'all'")
    parser.add_argument("--scale", type=int, default=1,
                        help="dataset scale factor (default 1)")
    args = parser.parse_args(argv)

    targets = list(args.targets)
    if targets == ["all"]:
        targets = list(_TARGETS)
    unknown = [t for t in targets if t not in _TARGETS]
    if unknown:
        parser.error(f"unknown target(s): {', '.join(unknown)}")

    for target in targets:
        start = time.time()
        print(_render(target, args.scale))
        print(f"[{target}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
