"""Command-line figure/table regenerator.

Usage::

    python -m repro.harness fig8
    python -m repro.harness fig12 --scale 1
    python -m repro.harness fig14 table1 table2 table3 area
    python -m repro.harness all --jobs 4   # shard cells across 4 workers
    python -m repro.harness all --no-cache # force re-simulation

Every figure decomposes into independent, deterministic simulation
cells, so ``--jobs N`` executes them on a worker pool without changing a
single rendered byte (see ``repro/harness/orchestrator.py``).  Results
are cached on disk under ``~/.cache/repro-harness`` (override with
``--cache-dir`` or ``$REPRO_CACHE_DIR``) keyed by the full SoC
configuration, so re-renders after unrelated edits are instant;
``--no-cache`` disables both read and write.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.harness import figures, tables
from repro.harness.orchestrator import Orchestrator, make_orchestrator

_TARGETS = ("fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "queue-sweep", "mesh-speedup", "mesh-noc",
            "mesh-coherence", "area", "table1", "table2", "table3")


def _render(target: str, scale: int,
             orch: Orchestrator | None = None) -> str:
    if target == "fig8":
        return figures.fig8(scale=scale, orch=orch).render()
    if target in ("fig9", "fig10", "fig11"):
        trio = figures.prefetch_study(scale=scale, orch=orch)
        index = {"fig9": 0, "fig10": 1, "fig11": 2}[target]
        return trio[index].render()
    if target == "fig12":
        return figures.fig12(scale=scale, orch=orch).render()
    if target == "fig13":
        return figures.fig13(scale=scale, orch=orch).render()
    if target == "fig14":
        return figures.fig14().render()
    if target == "fig15":
        return figures.fig15(scale=scale, orch=orch).render()
    if target == "queue-sweep":
        return figures.queue_sweep(scale=scale, orch=orch).render()
    if target in ("mesh-speedup", "mesh-noc"):
        pair = figures.mesh_scaling_study(scale=scale, orch=orch)
        return pair[0 if target == "mesh-speedup" else 1].render()
    if target == "mesh-coherence":
        return figures.mesh_coherence_study(scale=scale, orch=orch).render()
    if target == "area":
        report = figures.area_analysis()
        lines = ["area analysis (12 nm model, §5.4)"]
        lines += [f"  {name:35s} {mm2:8.4f} mm^2" for name, mm2 in report.rows()]
        lines.append(f"  overhead vs served cores: "
                     f"{report.overhead_fraction * 100:.2f}%")
        return "\n".join(lines)
    if target == "table1":
        return tables.table1()
    if target == "table2":
        return tables.table2()
    if target == "table3":
        return tables.table3()
    raise ValueError(f"unknown target {target!r}")


def _progress_printer(event: dict) -> None:
    """Structured progress on stderr (stdout stays byte-stable output)."""
    kind = event.get("event")
    if kind == "start":
        print(f"[orchestrator] {event['total']} cells on "
              f"{event['jobs']} worker(s)", file=sys.stderr)
    elif kind == "done":
        src = "cache" if event["cached"] else f"{event['wall_seconds']:.2f}s"
        print(f"[orchestrator]   {event['label']:48s} {src}",
              file=sys.stderr)
    elif kind == "timeout":
        print(f"[orchestrator]   {event['label']:48s} TIMEOUT "
              f"(attempt {event['attempt']})", file=sys.stderr)
    elif kind == "finish":
        print(f"[orchestrator] done: {event['executed']} simulated, "
              f"{event['cached']} cached, {event['timeouts']} timeouts, "
              f"{event['wall_seconds']:.1f}s wall "
              f"({event['sim_seconds']:.1f}s of simulation)",
              file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate tables/figures of the MAPLE evaluation.")
    parser.add_argument("targets", nargs="+",
                        help=f"one of {', '.join(_TARGETS)}, or 'all'")
    parser.add_argument("--scale", type=int, default=1,
                        help="dataset scale factor (default 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for simulation cells "
                             "(default 1 = serial in-process)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk experiment result cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="cache location (default ~/.cache/repro-harness "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-cell seconds before a hung worker is "
                             "retried (parallel runs only; default 600)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines on stderr")
    args = parser.parse_args(argv)

    targets = list(args.targets)
    if targets == ["all"]:
        targets = list(_TARGETS)
    unknown = [t for t in targets if t not in _TARGETS]
    if unknown:
        parser.error(f"unknown target(s): {', '.join(unknown)}")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    orch = make_orchestrator(
        jobs=args.jobs, use_cache=not args.no_cache,
        cache_dir=args.cache_dir, timeout=args.timeout,
        progress=None if args.quiet else _progress_printer)

    for target in targets:
        start = time.time()
        print(_render(target, args.scale, orch))
        print()
        # Timing goes to stderr so stdout stays byte-identical across
        # serial/sharded/cached runs.
        print(f"[{target}: {time.time() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
