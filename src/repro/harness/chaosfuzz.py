"""Chaos fuzzing: seeded process-kill and file-corruption campaigns.

The fault/integrity fuzz sweeps attack the *simulated* SoC; this module
attacks the system that runs it.  Each case draws one adversity from a
weighted family list — SIGKILL a worker mid-job (with and without a
checkpoint to resume from), SIGSTOP it so only its heartbeat dies, hang
it past its runtime deadline, exhaust its retries, truncate or bit-flip
an on-disk cache entry or checkpoint file, or fail its cache write with
ENOSPC — and then holds the robustness layer to the same discipline the
SoC-level fuzzers enforce:

- every run that completes must pass the **golden-output oracle** (its
  :meth:`~repro.harness.orchestrator.RunResult.identity` equals the
  uninterrupted serial baseline, bit for bit);
- every run that cannot complete must surface as a **typed, structured
  error** (:class:`~repro.harness.orchestrator.OrchestratorError` with a
  :class:`~repro.harness.orchestrator.JobError` and a JSON dump, or a
  :class:`~repro.sim.checkpoint.CheckpointError` subclass) — never a
  hang, a bare crash, or a silently wrong number;
- afterwards there are **no orphan worker processes and no stray
  ``.tmp``/``.lock`` files**; corrupt files sit in ``quarantine/`` for
  post-mortem instead of being re-read or destroyed.

Everything derives from ``CHAOS_MASTER_SEED + case``, so a failing case
number reproduces exactly (the same contract as the other fuzz sweeps).
``tests/test_chaos_fuzz.py`` runs the ≥150-case gate; CI uploads each
case's quarantine and dump directories on failure.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import signal
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.harness.orchestrator import (
    DiskCache,
    Orchestrator,
    OrchestratorError,
    RunResult,
    RunSpec,
    execute_spec,
    spec_key,
)
from repro.sim.checkpoint import Checkpoint, CheckpointCorruptError

CHAOS_MASTER_SEED = 20260808
N_CASES = 160

#: Weighted adversity mix.  File-corruption families dominate (they are
#: cheap and their state space is the largest); the process families
#: each get enough draws that every supervision path fires many times.
FAMILIES = (
    "worker-kill-resume", "worker-kill-resume",
    "worker-kill-start",
    "worker-wedge",
    "worker-hang",
    "worker-kill-exhausted",
    "cache-truncate", "cache-truncate", "cache-truncate",
    "cache-bitflip", "cache-bitflip", "cache-bitflip",
    "ckpt-truncate", "ckpt-truncate",
    "ckpt-bitflip", "ckpt-bitflip",
    "cache-write-fail",
)

#: Cheap, deterministic victim cells spanning techniques, plus a
#: checkpoint interval that lands 2+ checkpoints before each finishes.
_POOL = (
    (RunSpec("spmv", "lima", threads=1), 15_000),
    (RunSpec("spmv", "maple-decouple", threads=2), 15_000),
    (RunSpec("sdhp", "doall", threads=2), 50_000),
)

# Module-level memos: the golden baseline and one valid checkpoint file
# per pool spec are computed once and reused by every case (the
# campaign's cost is the adversities, not 160 re-simulations).
_GOLDEN: Dict[str, RunResult] = {}
_GOLDEN_CKPT: Dict[str, bytes] = {}


def golden_result(spec: RunSpec) -> RunResult:
    """The uninterrupted serial baseline for ``spec`` (memoized)."""
    key = spec_key(spec)
    if key not in _GOLDEN:
        _GOLDEN[key] = execute_spec(spec)
    return _GOLDEN[key]


def golden_checkpoint_bytes(spec: RunSpec, every: int) -> bytes:
    """Bytes of a valid mid-run checkpoint of ``spec`` (memoized).

    The corruption families start from these and damage copies; the
    pristine bytes double as the benign-outcome reference.
    """
    import tempfile

    key = spec_key(spec)
    if key not in _GOLDEN_CKPT:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "golden.ckpt.json"
            execute_spec(replace(spec, checkpoint_every=every),
                         checkpoint_path=str(path))
            _GOLDEN_CKPT[key] = path.read_bytes()
    return _GOLDEN_CKPT[key]


@dataclass(frozen=True)
class ChaosCase:
    """One materialized chaos case; a pure function of the seed."""

    case: int
    family: str
    spec: RunSpec
    checkpoint_every: int
    retries: int

    def describe(self) -> str:
        return (f"case {self.case}: {self.family} vs {self.spec.label()} "
                f"(retries={self.retries})")


@dataclass
class ChaosOutcome:
    """What one case did and how it was judged."""

    case: int
    family: str
    label: str
    ok: bool
    oracle: str
    typed_error: Optional[str] = None
    detail: str = ""


def chaos_case(case: int, master_seed: int = CHAOS_MASTER_SEED) -> ChaosCase:
    """Materialize case ``case``; pure function of ``(master_seed, case)``."""
    rng = random.Random(master_seed + case)
    family = rng.choice(FAMILIES)
    spec, every = rng.choice(_POOL)
    return ChaosCase(case=case, family=family, spec=spec,
                     checkpoint_every=every, retries=rng.choice((0, 1, 2)))


def _assert_hygiene(workdir: Path) -> None:
    """The postcondition every case must leave behind: no orphan worker
    processes and no stray tmp/lock litter (quarantined files are fine —
    they are the deliverable, not litter)."""
    children = multiprocessing.active_children()
    assert not children, f"orphan worker processes left behind: {children}"
    strays = [p for pattern in ("*.tmp", "*.lock")
              for p in Path(workdir).rglob(pattern)]
    assert not strays, f"stray tmp/lock files left behind: {strays}"


def _corrupt(rng: random.Random, data: bytes) -> bytes:
    """Truncate helper is inline; this flips exactly one random bit."""
    flipped = bytearray(data)
    index = rng.randrange(len(flipped))
    flipped[index] ^= 1 << rng.randrange(8)
    return bytes(flipped)


# -- family implementations -------------------------------------------------------


def _run_worker_kill_resume(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """SIGKILL the worker right after its first checkpoint lands; the
    reschedule must resume from it and still match the baseline."""
    spec = replace(cc.spec, checkpoint_every=cc.checkpoint_every)
    golden = golden_result(cc.spec).identity()
    orch = Orchestrator(jobs=2, retries=max(1, cc.retries),
                        checkpoint_dir=wd / "ckpt", dump_dir=str(wd / "dumps"),
                        inject_kill=frozenset({spec_key(spec)}))
    results = orch.run([spec])
    assert results[0].identity() == golden, "resumed run diverged from baseline"
    assert orch.report["crashes"] >= 1, "injected SIGKILL was not detected"
    assert results[0].resumed, "reschedule did not resume from the checkpoint"
    assert orch.report["resumed"] >= 1
    return ChaosOutcome(cc.case, cc.family, spec.label(), ok=True,
                        oracle="golden-identity",
                        detail=f"crashes={orch.report['crashes']} "
                               f"attempts={results[0].attempts} resumed")


def _run_worker_kill_start(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """SIGKILL at attempt start (no checkpoint): rerun from cycle 0."""
    golden = golden_result(cc.spec).identity()
    orch = Orchestrator(jobs=2, retries=max(1, cc.retries),
                        dump_dir=str(wd / "dumps"),
                        inject_kill=frozenset({spec_key(cc.spec)}))
    results = orch.run([cc.spec])
    assert results[0].identity() == golden, "rerun diverged from baseline"
    assert orch.report["crashes"] >= 1
    assert not results[0].resumed
    return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                        oracle="golden-identity",
                        detail=f"crashes={orch.report['crashes']}")


def _run_worker_wedge(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """SIGSTOP the worker: the process lives but its heartbeat dies; the
    supervisor must kill and reschedule it."""
    golden = golden_result(cc.spec).identity()
    orch = Orchestrator(jobs=2, retries=max(1, cc.retries),
                        heartbeat_timeout=0.6, heartbeat_interval=0.05,
                        dump_dir=str(wd / "dumps"),
                        inject_stop=frozenset({spec_key(cc.spec)}))
    results = orch.run([cc.spec])
    assert results[0].identity() == golden, "post-wedge rerun diverged"
    assert orch.report["wedged"] >= 1, "wedged worker was not detected"
    return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                        oracle="golden-identity",
                        detail=f"wedged={orch.report['wedged']}")


def _run_worker_hang(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """Hang the worker (heartbeats keep flowing): the *runtime* deadline
    must catch it, distinct from the wedge detector."""
    golden = golden_result(cc.spec).identity()
    orch = Orchestrator(jobs=2, timeout=0.5, retries=max(1, cc.retries),
                        dump_dir=str(wd / "dumps"),
                        inject_hang=frozenset({spec_key(cc.spec)}))
    results = orch.run([cc.spec])
    assert results[0].identity() == golden, "post-timeout rerun diverged"
    assert orch.report["timeouts"] >= 1, "hung worker missed its deadline"
    return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                        oracle="golden-identity",
                        detail=f"timeouts={orch.report['timeouts']}")


def _run_worker_kill_exhausted(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """Kill every attempt (negative control): the failure must surface
    as a typed OrchestratorError with a structured dump — never a hang
    or an untyped crash."""
    dumps = wd / "dumps"
    orch = Orchestrator(jobs=2, retries=cc.retries, dump_dir=str(dumps),
                        inject_kill_all=frozenset({spec_key(cc.spec)}))
    try:
        orch.run([cc.spec])
    except OrchestratorError as err:
        job = err.job_error
        assert job.exc_type == "WorkerCrashed" and job.detection == "crash"
        assert job.exit_code == -signal.SIGKILL
        assert job.attempt == cc.retries + 1
        assert job.dump_path and Path(job.dump_path).exists()
        dumped = json.loads(Path(job.dump_path).read_text())
        assert dumped["reason"] == "orchestrator-job-failure"
        assert dumped["job_error"]["detection"] == "crash"
        return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                            oracle="typed-error",
                            typed_error=job.exc_type,
                            detail=f"exit={job.exit_code} "
                                   f"dump={Path(job.dump_path).name}")
    raise AssertionError("kill_all run completed instead of failing typed")


def _run_cache_truncate(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """Truncate a valid cache entry at a random byte: the read must
    quarantine + miss, and the sweep must self-heal to golden output."""
    golden = golden_result(cc.spec)
    cache = DiskCache(wd / "cache")
    key = spec_key(cc.spec)
    cache.put(key, golden)
    path = cache._path(key)
    data = path.read_bytes()
    path.write_bytes(data[:rng.randrange(len(data))])

    assert cache.get(key) is None, "truncated entry must read as a miss"
    assert cache.quarantined == 1, "truncated entry was not quarantined"
    assert list(cache.quarantine_dir.glob("*.quarantined"))

    results = Orchestrator(jobs=1, cache=cache).run([cc.spec])
    assert results[0].identity() == golden.identity()
    assert not results[0].from_cache
    healed = cache.get(key)
    assert healed is not None and healed.identity() == golden.identity()
    return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                        oracle="quarantine+self-heal",
                        detail="truncated entry quarantined, cell re-ran")


def _run_cache_bitflip(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """Flip one random bit in a cache entry: the read must either
    quarantine + miss or (benign flip) return the exact golden payload —
    never a plausible-but-wrong result."""
    golden = golden_result(cc.spec)
    cache = DiskCache(wd / "cache")
    key = spec_key(cc.spec)
    cache.put(key, golden)
    path = cache._path(key)
    path.write_bytes(_corrupt(rng, path.read_bytes()))

    got = cache.get(key)
    if got is None:
        results = Orchestrator(jobs=1, cache=cache).run([cc.spec])
        assert results[0].identity() == golden.identity()
        return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                            oracle="quarantine-or-exact",
                            detail=f"flip rejected "
                                   f"(quarantined={cache.quarantined})")
    assert got.identity() == golden.identity(), \
        "bit-flipped cache entry was served with wrong contents"
    return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                        oracle="quarantine-or-exact",
                        detail="flip was content-neutral; exact hit served")


def _run_ckpt_truncate(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """Truncate a checkpoint: loading must raise the typed corrupt
    error, and an orchestrator finding it must quarantine + rerun."""
    blob = golden_checkpoint_bytes(cc.spec, cc.checkpoint_every)
    spec = replace(cc.spec, checkpoint_every=cc.checkpoint_every)
    ckpt_dir = wd / "ckpt"
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    path = ckpt_dir / f"{spec_key(spec)}.ckpt.json"
    path.write_bytes(blob[:rng.randrange(len(blob))])

    try:
        Checkpoint.load(path)
        raise AssertionError("truncated checkpoint loaded without error")
    except CheckpointCorruptError as err:
        assert err.path == str(path)
        typed = type(err).__name__

    # The orchestrator path: corrupt checkpoint -> quarantine -> fresh
    # run from cycle 0, still golden.
    orch = Orchestrator(jobs=1, checkpoint_dir=ckpt_dir)
    results = orch.run([spec])
    assert results[0].identity() == golden_result(cc.spec).identity()
    assert not results[0].resumed
    assert list((ckpt_dir / "quarantine").glob("*.quarantined"))
    return ChaosOutcome(cc.case, cc.family, spec.label(), ok=True,
                        oracle="typed-error+self-heal", typed_error=typed,
                        detail="corrupt checkpoint quarantined, fresh rerun")


def _run_ckpt_bitflip(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """Flip one bit in a checkpoint: loading must fail typed, or (benign
    flip) yield a checkpoint with the exact golden content digest."""
    blob = golden_checkpoint_bytes(cc.spec, cc.checkpoint_every)
    wd.mkdir(parents=True, exist_ok=True)
    path = wd / "flipped.ckpt.json"
    path.write_bytes(_corrupt(rng, blob))

    try:
        loaded = Checkpoint.load(path)
    except CheckpointCorruptError as err:
        return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                            oracle="typed-error-or-exact",
                            typed_error=type(err).__name__,
                            detail=str(err)[:80])
    # The flip survived the content digest: it can only have hit
    # JSON-insignificant bytes, so the checkpoint must be semantically
    # identical to the pristine one.
    pristine = wd / "pristine.ckpt.json"
    pristine.write_bytes(blob)
    assert loaded.content_digest() == Checkpoint.load(pristine).content_digest(), \
        "bit-flipped checkpoint loaded with different contents"
    return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                        oracle="typed-error-or-exact",
                        detail="flip was content-neutral; digest verified")


def _run_cache_write_fail(cc: ChaosCase, rng, wd: Path) -> ChaosOutcome:
    """ENOSPC on the cache write: the run must still complete golden,
    the failure is counted, and no torn file or tmp litter remains.
    Rides along: stale tmp/lock reaping at cache construction."""
    root = wd / "cache"
    root.mkdir(parents=True, exist_ok=True)
    # Plant dead-writer litter old enough to reap.
    import os
    for name in ("dead.tmp", "dead.lock"):
        stale = root / name
        stale.write_text("")
        os.utime(stale, (0, 0))
    key = spec_key(cc.spec)
    cache = DiskCache(root, reap_after=60.0,
                      inject_write_error=frozenset({key}))
    assert cache.reaped == 2, "stale tmp/lock litter was not reaped"

    results = Orchestrator(jobs=1, cache=cache).run([cc.spec])
    assert results[0].identity() == golden_result(cc.spec).identity()
    assert cache.write_errors == 1, "injected ENOSPC was not recorded"
    assert cache.get(key) is None, "failed write left a readable entry"
    return ChaosOutcome(cc.case, cc.family, cc.spec.label(), ok=True,
                        oracle="golden-identity",
                        detail="write failed, run kept its result")


_RUNNERS = {
    "worker-kill-resume": _run_worker_kill_resume,
    "worker-kill-start": _run_worker_kill_start,
    "worker-wedge": _run_worker_wedge,
    "worker-hang": _run_worker_hang,
    "worker-kill-exhausted": _run_worker_kill_exhausted,
    "cache-truncate": _run_cache_truncate,
    "cache-bitflip": _run_cache_bitflip,
    "ckpt-truncate": _run_ckpt_truncate,
    "ckpt-bitflip": _run_ckpt_bitflip,
    "cache-write-fail": _run_cache_write_fail,
}


def run_chaos_case(case: int, workdir,
                   master_seed: int = CHAOS_MASTER_SEED) -> ChaosOutcome:
    """Run one chaos case under ``workdir``; raises ``AssertionError``
    on any gate violation, returns the structured outcome otherwise.

    The hygiene postcondition (no orphan processes, no stray tmp/lock
    files under ``workdir``) is asserted for every family.
    """
    cc = chaos_case(case, master_seed)
    rng = random.Random(master_seed ^ (case * 2654435761))
    wd = Path(workdir)
    wd.mkdir(parents=True, exist_ok=True)
    outcome = _RUNNERS[cc.family](cc, rng, wd)
    _assert_hygiene(wd)
    return outcome


def run_campaign(cases: Sequence[int], workdir,
                 master_seed: int = CHAOS_MASTER_SEED) -> List[ChaosOutcome]:
    """Run a batch of cases, writing ``chaos_report.json`` under
    ``workdir`` (per-family tallies + every outcome) for CI artifacts."""
    workdir = Path(workdir)
    outcomes = []
    for case in cases:
        outcomes.append(run_chaos_case(case, workdir / f"case-{case:03d}",
                                       master_seed))
    tally: Dict[str, int] = {}
    for outcome in outcomes:
        tally[outcome.family] = tally.get(outcome.family, 0) + 1
    report = {
        "master_seed": master_seed,
        "cases": len(outcomes),
        "families": tally,
        "outcomes": [vars(outcome) for outcome in outcomes],
    }
    workdir.mkdir(parents=True, exist_ok=True)
    (workdir / "chaos_report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True))
    return outcomes
