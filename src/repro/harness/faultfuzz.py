"""Fault-fuzz case generation: random (config, workload, fault-plan) pairs.

The differential fuzz suite (``tests/test_fuzz_differential.py``) pins
the *timing* contract — fast engine == reference engine, bit for bit —
on fault-free runs.  This module generates the *robustness* sweep: each
case draws a random SoC configuration, kernel, technique, and a random
seeded :class:`~repro.sim.faults.FaultPlan`, then runs with live queue
shadows, the quiescence invariant audit, and the liveness watchdog all
armed.  The claim under test is the paper's: decoupling survives queue
pressure, TLB shootdowns, mid-kernel page faults, and OS noise with
*correct results* and no protocol violation or hang (§3.3, §3.5, §4).

Everything derives from ``FUZZ_MASTER_SEED + case``; a failing case
number reproduces exactly (``tools/fault_replay.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.datasets.graphs import power_law_graph
from repro.datasets.sparse import CscMatrix, random_csr
from repro.harness.orchestrator import RunSpec
from repro.harness.techniques import ExperimentResult, run_workload
from repro.kernels.sdhp import _make_dataset as make_sdhp_dataset
from repro.kernels.spmm import SpmmDataset
from repro.kernels.spmv import SpmvDataset
from repro.params import SoCConfig
from repro.sim import FaultPlan

FUZZ_MASTER_SEED = 20260807

#: Decoupling techniques dominate: they exercise the queues, the MMU,
#: and the MMIO path — where injected faults can actually break protocol.
TECHNIQUES = ("maple-decouple", "maple-decouple", "maple-decouple",
              "lima", "lima-llc", "sw-decouple", "desc", "doall",
              "sw-prefetch", "droplet")
KERNELS = ("spmv", "spmv", "spmv", "sdhp", "sdhp", "spmm", "bfs")

#: Watchdog parameters for fuzz runs: generous enough that heavy fault
#: plans on slow configs never false-trip, tight enough that a hang is
#: caught in well under a second of wall clock.
FUZZ_WATCHDOG = {"check_interval": 5000, "stall_window": 200_000,
                 "max_cycles": 50_000_000}


def random_config(rng: random.Random) -> SoCConfig:
    """A valid random SoCConfig spanning the knobs the sweeps touch."""
    num_queues = rng.choice((4, 8))
    entries = rng.choice((4, 8, 16, 32))
    return SoCConfig(
        name=f"faultfuzz-{rng.randrange(1 << 30)}",
        num_cores=rng.choice((2, 4)),
        mesh_cols=rng.choice((2, 3)),
        mesh_rows=rng.choice((2, 3)),
        hop_latency=rng.choice((1, 2)),
        mmio_path_latency=rng.choice((4, 8)),
        l1_size=rng.choice((4, 8)) * 1024,
        l1_ways=rng.choice((2, 4)),
        l1_latency=rng.choice((1, 2)),
        l2_size=rng.choice((32, 64)) * 1024,
        l2_latency=rng.choice((20, 30)),
        core_mshrs=rng.choice((1, 2)),
        store_buffer_entries=rng.choice((4, 8)),
        dram_latency=rng.choice((100, 300)),
        dram_max_inflight=rng.choice((8, 16)),
        maple_num_queues=num_queues,
        scratchpad_bytes=entries * num_queues * 4,
        maple_tlb_entries=rng.choice((8, 16)),
        maple_max_inflight=rng.choice((8, 32)),
        produce_buffer_entries=rng.choice((2, 4)),
        core_tlb_entries=rng.choice((8, 16)),
    )


def random_dataset(rng: random.Random, workload: str):
    """A tiny seeded dataset so each faulted simulation stays fast."""
    seed = rng.randrange(10_000)
    if workload == "spmv":
        cols = rng.choice((128, 256))
        matrix = random_csr(rows=rng.randrange(4, 10), cols=cols,
                            nnz_per_row=rng.randrange(2, 6), seed=seed)
        x = np.random.default_rng(seed + 1).uniform(1.0, 2.0, size=cols)
        return SpmvDataset(matrix, x)
    if workload == "sdhp":
        matrix = random_csr(rows=rng.randrange(2, 6),
                            cols=rng.choice((256, 512)),
                            nnz_per_row=rng.randrange(2, 8), seed=seed)
        return make_sdhp_dataset(matrix, seed=seed + 1)
    if workload == "spmm":
        a_csr = random_csr(rows=8, cols=rng.choice((128, 256)),
                           nnz_per_row=rng.randrange(2, 5), seed=seed)
        a = CscMatrix(a_csr.cols, 8, a_csr.row_ptr, a_csr.col_idx,
                      a_csr.values)
        b_csr = random_csr(rows=rng.randrange(1, 3), cols=8,
                           nnz_per_row=rng.randrange(2, 5), seed=seed + 1)
        b = CscMatrix(8, b_csr.rows, b_csr.row_ptr, b_csr.col_idx,
                      b_csr.values)
        return SpmmDataset(a, b)
    if workload == "bfs":
        return power_law_graph(rng.randrange(48, 97),
                               avg_degree=rng.randrange(3, 6), seed=seed)
    raise AssertionError(workload)


@dataclass
class FuzzCase:
    """One fully materialized fault-fuzz case."""

    case: int
    config: SoCConfig
    workload: str
    technique: str
    threads: int
    dataset: Any
    seed: int
    plan: FaultPlan

    def describe(self) -> str:
        return (f"case {self.case}: {self.workload}/{self.technique} "
                f"x{self.threads} [{self.config.name}] "
                f"faults[{self.plan.describe()}]")


def fuzz_case(case: int, master_seed: int = FUZZ_MASTER_SEED) -> FuzzCase:
    """Materialize case ``case``; pure function of ``(master_seed, case)``."""
    rng = random.Random(master_seed + case)
    config = random_config(rng)
    workload = rng.choice(KERNELS)
    technique = rng.choice(TECHNIQUES)
    if technique in ("maple-decouple", "sw-decouple", "desc"):
        threads = 2
    elif technique in ("lima", "lima-llc"):
        threads = 1
    else:
        threads = rng.choice((1, 2))
    dataset = random_dataset(rng, workload)
    plan = FaultPlan.random(rng.randrange(1 << 30))
    return FuzzCase(case, config, workload, technique, threads, dataset,
                    rng.randrange(100), plan)


def run_fuzz_case(case: int, master_seed: int = FUZZ_MASTER_SEED,
                  watchdog: Optional[dict] = None) -> ExperimentResult:
    """Run one case with faults, invariants, and watchdog armed.

    Raises on anything the robustness layer can detect: wrong results
    (``binding.check``), an invariant violation, or a liveness trip.
    """
    fc = fuzz_case(case, master_seed)
    return run_workload(
        fc.workload, fc.technique, config=fc.config, threads=fc.threads,
        dataset=fc.dataset, seed=fc.seed, check=True,
        fault_plan=fc.plan, check_invariants=True,
        watchdog=dict(watchdog if watchdog is not None else FUZZ_WATCHDOG))


def fuzz_specs(count: int, master_seed: int = FUZZ_MASTER_SEED,
               scale: int = 1) -> List[RunSpec]:
    """Orchestrator-ready specs: the same fault sweep as pickling-safe
    :class:`RunSpec` cells (default datasets, since live dataset objects
    stay out of spec keys).  Used by the parallel==serial fuzz gate."""
    specs = []
    for case in range(count):
        rng = random.Random(master_seed + case)
        workload = rng.choice(KERNELS)
        technique = rng.choice(TECHNIQUES)
        if technique in ("maple-decouple", "sw-decouple", "desc"):
            threads = 2
        elif technique in ("lima", "lima-llc"):
            threads = 1
        else:
            threads = rng.choice((1, 2))
        specs.append(RunSpec(
            workload=workload, technique=technique, threads=threads,
            scale=scale, seed=rng.randrange(100),
            fault_plan=FaultPlan.random(rng.randrange(1 << 30)),
            check_invariants=True, watchdog=True))
    return specs
