"""Regenerate every figure of the paper's evaluation (§5).

Each ``figN`` function decomposes its figure into independent
:class:`~repro.harness.orchestrator.RunSpec` cells, executes them through
an :class:`~repro.harness.orchestrator.Orchestrator` (serial by default;
pass ``orch=`` or use ``--jobs N`` on the CLI to shard across worker
processes), and assembles a :class:`FigureResult` with the same series
the paper reports (per-app bars plus geomeans).  Because every cell is
deterministic, the rendered figure is byte-identical at any job count.
Absolute cycle counts come from this repository's simulator, so the
*shapes* — who wins, by roughly what factor — are the reproduction
target, not the paper's absolute numbers (see EXPERIMENTS.md for the
side-by-side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.area import estimate_area
from repro.harness.orchestrator import (
    Orchestrator,
    RunResult,
    RunSpec,
    freeze_dataset_kwargs,
)
from repro.params import FPGA_CONFIG, MOSAIC_CONFIG, SoCConfig
from repro.sim.stats import geomean

DEFAULT_APPS = ("sdhp", "spmm", "spmv", "bfs")
#: Decoupling-friendly subset used by the thread-scaling study.
SCALING_APPS = ("sdhp", "spmv")


@dataclass
class Series:
    """One group of bars: {app: value}."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)

    def geomean(self) -> float:
        return geomean(list(self.values.values()))


@dataclass
class FigureResult:
    figure_id: str
    title: str
    apps: Sequence[str]
    series: List[Series]
    notes: str = ""

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def render(self) -> str:
        width = max(len(s.label) for s in self.series) + 2
        lines = [f"{self.figure_id}: {self.title}",
                 " " * width + " ".join(f"{app:>8s}" for app in self.apps)
                 + f" {'geomean':>8s}"]
        for s in self.series:
            cells = " ".join(f"{s.values[app]:8.2f}" for app in self.apps)
            lines.append(f"{s.label:{width}s}{cells} {s.geomean():8.2f}")
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _gather(specs: Sequence[RunSpec],
            orch: Optional[Orchestrator]) -> List[RunResult]:
    """Execute a figure's cells (serial in-process unless ``orch`` shards).

    Within one batch the orchestrator dedupes identical specs, so figure
    code may list the same doall baseline against several techniques and
    still simulate it once.
    """
    return (orch or Orchestrator()).run(specs)


def _speedup_specs(app: str, technique: str, threads: int, config: SoCConfig,
                   scale: int,
                   variants: Optional[Sequence[dict]]) -> List[RunSpec]:
    """(doall, technique) spec pairs, one pair per dataset variant.

    The paper computes each application's bar as the geomean across its
    datasets (§5.2); ``variants`` is a list of ``dataset_kwargs`` dicts
    (None = the app's single default dataset).
    """
    specs = []
    for kwargs in (variants or [None]):
        frozen = freeze_dataset_kwargs(kwargs)
        specs.append(RunSpec(app, "doall", threads=threads, scale=scale,
                             config=config, dataset_kwargs=frozen))
        specs.append(RunSpec(app, technique, threads=threads, scale=scale,
                             config=config, dataset_kwargs=frozen))
    return specs


def _speedup_from(results: List[RunResult]) -> float:
    """Geomean speedup over paired (doall, technique) results."""
    return geomean([base.cycles / other.cycles
                    for base, other in zip(results[::2], results[1::2])])


# -- Fig. 8: decoupling on the FPGA config -------------------------------------


#: The paper's dataset roster per application (§4.1): SDHP on SuiteSparse
#: surrogates and a Kronecker network; BFS on the Wikipedia, YouTube and
#: LiveJournal surrogates.  Pass as ``datasets=PAPER_DATASETS`` to fig8 or
#: fig12 to geomean each app's bar across its datasets as the paper does
#: (single-dataset runs are the default: they are 3x cheaper and the
#: shapes match).
PAPER_DATASETS = {
    "sdhp": [{"kind": "suitesparse"}, {"kind": "kronecker"}],
    "bfs": [{"which": "wikipedia"}, {"which": "youtube"},
            {"which": "livejournal"}],
}


def fig8(scale: int = 1, apps: Sequence[str] = DEFAULT_APPS,
         config: Optional[SoCConfig] = None,
         datasets: Optional[dict] = None,
         orch: Optional[Orchestrator] = None) -> FigureResult:
    """Decoupling (1 Access + 1 Execute) vs 2-thread doall, plus the
    shared-memory software-decoupling baseline.

    Paper: MAPLE 1.51x over doall and 2.27x over SW decoupling (geomean).
    ``datasets`` maps app -> list of dataset_kwargs to geomean across
    (e.g. :data:`PAPER_DATASETS`).
    """
    cfg = config or FPGA_CONFIG
    datasets = datasets or {}
    cells = {}
    specs: List[RunSpec] = []
    for app in apps:
        variants = datasets.get(app)
        for technique in ("maple-decouple", "sw-decouple"):
            cells[app, technique] = _speedup_specs(
                app, technique, 2, cfg, scale, variants)
            specs += cells[app, technique]
    results = iter(_gather(specs, orch))
    maple = Series("maple-decoupling")
    sw = Series("sw-decoupling")
    for (app, technique), chunk in cells.items():
        series = maple if technique == "maple-decouple" else sw
        series.values[app] = _speedup_from([next(results)
                                            for _ in chunk])
    return FigureResult(
        "fig8", "Decoupling speedup over 2-thread doall (FPGA config)",
        apps, [maple, sw],
        notes="SPMM cannot be decoupled (RMW IMAs) and falls back to doall.")


# -- Figs. 9/10/11: the prefetching study (single thread) ------------------------


def prefetch_study(scale: int = 1, apps: Sequence[str] = DEFAULT_APPS,
                   config: Optional[SoCConfig] = None,
                   orch: Optional[Orchestrator] = None
                   ) -> Tuple[FigureResult, FigureResult, FigureResult]:
    """One pass producing Figs. 9 (speedup), 10 (load-instruction overhead)
    and 11 (average load latency), all single-thread, normalized to the
    no-prefetching baseline.

    Paper: LIMA 1.73x geomean speedup (2.35x over SW prefetching); SW
    prefetching ~2x the loads while MAPLE slightly reduces them; LIMA
    cuts average load latency ~1.85x.
    """
    cfg = config or FPGA_CONFIG
    speedup = {"maple-lima": Series("maple-lima"),
               "sw-prefetch": Series("sw-prefetch")}
    loads = {"maple-lima": Series("maple-lima"),
             "sw-prefetch": Series("sw-prefetch"),
             "no-prefetch": Series("no-prefetch")}
    latency = {"maple-lima": Series("maple-lima"),
               "sw-prefetch": Series("sw-prefetch"),
               "no-prefetch": Series("no-prefetch")}
    specs = [RunSpec(app, technique, threads=1, scale=scale, config=cfg)
             for app in apps
             for technique in ("doall", "lima", "sw-prefetch")]
    results = iter(_gather(specs, orch))
    for app in apps:
        base, lima, swpf = next(results), next(results), next(results)
        speedup["maple-lima"].values[app] = base.cycles / lima.cycles
        speedup["sw-prefetch"].values[app] = base.cycles / swpf.cycles
        loads["no-prefetch"].values[app] = 1.0
        loads["maple-lima"].values[app] = lima.total_loads / base.total_loads
        loads["sw-prefetch"].values[app] = swpf.total_loads / base.total_loads
        latency["no-prefetch"].values[app] = base.avg_load_latency
        latency["maple-lima"].values[app] = lima.avg_load_latency
        latency["sw-prefetch"].values[app] = swpf.avg_load_latency
    fig9 = FigureResult(
        "fig9", "Prefetching speedup over no prefetching (1 thread)",
        apps, [speedup["maple-lima"], speedup["sw-prefetch"]],
        notes="SPMM uses LIMA's speculative LLC mode (RMW-safe).")
    fig10 = FigureResult(
        "fig10", "Load-class instructions, normalized to no prefetching",
        apps, [loads["no-prefetch"], loads["sw-prefetch"], loads["maple-lima"]],
        notes="Packed 4-byte consumes are why MAPLE reduces load counts.")
    fig11 = FigureResult(
        "fig11", "Average load latency (cycles)",
        apps, [latency["no-prefetch"], latency["sw-prefetch"],
               latency["maple-lima"]])
    return fig9, fig10, fig11


def fig9(scale: int = 1, apps: Sequence[str] = DEFAULT_APPS,
         orch: Optional[Orchestrator] = None) -> FigureResult:
    return prefetch_study(scale, apps, orch=orch)[0]


def fig10(scale: int = 1, apps: Sequence[str] = DEFAULT_APPS,
          orch: Optional[Orchestrator] = None) -> FigureResult:
    return prefetch_study(scale, apps, orch=orch)[1]


def fig11(scale: int = 1, apps: Sequence[str] = DEFAULT_APPS,
          orch: Optional[Orchestrator] = None) -> FigureResult:
    return prefetch_study(scale, apps, orch=orch)[2]


# -- Fig. 12: prior hardware techniques (MosaicSim config) --------------------------


def fig12(scale: int = 1, apps: Sequence[str] = DEFAULT_APPS,
          config: Optional[SoCConfig] = None,
          datasets: Optional[dict] = None,
          orch: Optional[Orchestrator] = None) -> FigureResult:
    """MAPLE vs DeSC decoupling vs DROPLET prefetching, 2 threads.

    Paper: MAPLE 1.96x geomean over doall (up to 3x on BFS), 1.72x over
    DeSC, 1.82x over DROPLET; DeSC leads on the decoupling-friendly
    SPMV/SDHP but loses runahead on BFS; SPMM decouples for nobody.
    Each app's bar is the geomean across its ``datasets`` variants, as in
    the paper (§5.2).
    """
    cfg = config or MOSAIC_CONFIG
    datasets = datasets or {}
    pairs = (("maple", "maple-decouple"), ("desc", "desc"),
             ("droplet", "droplet"))
    cells = {}
    specs: List[RunSpec] = []
    for app in apps:
        variants = datasets.get(app)
        for label, technique in pairs:
            cells[app, label] = _speedup_specs(
                app, technique, 2, cfg, scale, variants)
            specs += cells[app, label]
    results = iter(_gather(specs, orch))
    series = {name: Series(name) for name in ("maple", "desc", "droplet")}
    for (app, label), chunk in cells.items():
        series[label].values[app] = _speedup_from([next(results)
                                                   for _ in chunk])
    return FigureResult(
        "fig12", "Speedup over 2-thread doall (simulator config)",
        apps, list(series.values()))


# -- Fig. 13: thread scaling sharing one MAPLE ----------------------------------------


def fig13(scale: int = 1, apps: Sequence[str] = SCALING_APPS,
          thread_counts: Sequence[int] = (2, 4, 8),
          config: Optional[SoCConfig] = None,
          orch: Optional[Orchestrator] = None) -> FigureResult:
    """Decoupling speedup over doall at matched thread counts, with every
    Access/Execute pair sharing a single MAPLE instance.

    Paper: the speedup is maintained from 2 to 8 threads.
    """
    cfg = (config or FPGA_CONFIG).with_overrides(maple_instances=1)
    specs = [RunSpec(app, technique, threads=threads, scale=scale, config=cfg)
             for threads in thread_counts
             for app in apps
             for technique in ("doall", "maple-decouple")]
    results = iter(_gather(specs, orch))
    series = []
    for threads in thread_counts:
        s = Series(f"{threads}-threads")
        for app in apps:
            base, dec = next(results), next(results)
            s.values[app] = base.cycles / dec.cycles
        series.append(s)
    return FigureResult(
        "fig13", "Decoupling speedup over doall vs thread count "
        "(one shared MAPLE)", apps, series)


# -- Fig. 14: round-trip latency breakdown ----------------------------------------------


@dataclass
class RoundTrip:
    """Core->MAPLE->core latency, segment by segment (Fig. 14)."""

    segments: List[Tuple[str, int]]
    measured: Optional[int] = None

    @property
    def total(self) -> int:
        return sum(cycles for _name, cycles in self.segments)

    def render(self) -> str:
        lines = ["fig14: consume round-trip latency breakdown"]
        for name, cycles in self.segments:
            lines.append(f"  {name:42s} {cycles:3d}")
        lines.append(f"  {'TOTAL (analytic)':42s} {self.total:3d}")
        if self.measured is not None:
            lines.append(f"  {'TOTAL (measured on the SoC model)':42s} "
                         f"{self.measured:3d}")
        return "\n".join(lines)


def fig14(config: Optional[SoCConfig] = None) -> RoundTrip:
    """Paper: ~25 cycles plus one per hop — comparable to an L2 access,
    an order of magnitude below DRAM."""
    from repro.cpu import Alu, Thread
    from repro.system import Soc

    soc = Soc(config or FPGA_CONFIG)
    cfg = soc.config
    maple = soc.maples[0]
    hops_out = soc.mesh.hops(soc.cores[0].tile_id, maple.tile_id)
    hops_back = soc.mesh.hops(maple.tile_id, soc.cores[0].tile_id)
    segments = [
        ("core pipeline -> L1 -> L1.5 (request path)", cfg.mmio_path_latency),
        ("NoC encode + request traversal + decode",
         cfg.noc_encode_latency + hops_out * cfg.hop_latency
         + cfg.noc_decode_latency),
        ("MAPLE decode + pipeline + queue pop", cfg.maple_pipeline_latency),
        ("NoC encode + response traversal + decode",
         cfg.noc_encode_latency + hops_back * cfg.hop_latency
         + cfg.noc_decode_latency),
        ("L1.5 -> L1 -> core (response path)", cfg.mmio_path_latency),
    ]

    # Measure the same round trip on the live model.
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    measured = {}

    def probe():
        handle = yield from api.open(0)
        yield from handle.produce(1)
        yield Alu(500)  # let the fill land: measure a non-blocking consume
        start = soc.sim.now
        yield from handle.consume()
        measured["cycles"] = soc.sim.now - start

    soc.run_threads([(0, Thread(probe(), aspace, "probe"))])
    return RoundTrip(segments, measured=measured["cycles"])


# -- Fig. 15: sensitivity to core<->MAPLE latency --------------------------------------------


def roundtrip_config(base: SoCConfig, target: int) -> SoCConfig:
    """A config whose core0<->MAPLE round trip is ``target`` cycles.

    The fixed NoC/pipeline portion cannot shrink; the private-cache path
    absorbs the rest (Fig. 14 notes latency could be lower if requests
    skipped the L1.5)."""
    hops = 2  # core0 <-> maple round trip in the default placement
    fixed = (2 * (base.noc_encode_latency + base.noc_decode_latency)
             + hops * base.hop_latency + base.maple_pipeline_latency)
    path = max(0, (target - fixed) // 2)
    return base.with_overrides(mmio_path_latency=path)


def fig15(scale: int = 1, apps: Sequence[str] = SCALING_APPS,
          targets: Sequence[int] = (11, 25, 51, 101),
          config: Optional[SoCConfig] = None,
          orch: Optional[Orchestrator] = None) -> FigureResult:
    """Decoupling speedup as the core<->MAPLE round trip grows.

    Paper: speedups are greater with a lower NoC delay.
    """
    base = config or FPGA_CONFIG
    specs = [RunSpec(app, technique, threads=2, scale=scale,
                     config=roundtrip_config(base, target))
             for target in targets
             for app in apps
             for technique in ("doall", "maple-decouple")]
    results = iter(_gather(specs, orch))
    series = []
    for target in targets:
        s = Series(f"maple-{target}cy")
        for app in apps:
            doall, dec = next(results), next(results)
            s.values[app] = doall.cycles / dec.cycles
        series.append(s)
    return FigureResult(
        "fig15", "Decoupling speedup vs core<->MAPLE round-trip latency",
        apps, series)


# -- §5.3: queue-size sensitivity -------------------------------------------------------------


def queue_sweep(scale: int = 1, apps: Sequence[str] = SCALING_APPS,
                entries: Sequence[int] = (8, 16, 32, 64),
                config: Optional[SoCConfig] = None,
                orch: Optional[Orchestrator] = None) -> FigureResult:
    """Decoupling speedup vs per-queue entry count.

    Paper: 32 entries suffice; 16 cost 5-10%; performance is stable once
    the queue covers the latency."""
    base = config or FPGA_CONFIG
    configs = {count: base.with_overrides(
        scratchpad_bytes=count * base.maple_num_queues
        * base.queue_entry_bytes) for count in entries}
    specs = [RunSpec(app, technique, threads=2, scale=scale,
                     config=configs[count])
             for count in entries
             for app in apps
             for technique in ("doall", "maple-decouple")]
    results = iter(_gather(specs, orch))
    series = []
    for count in entries:
        s = Series(f"{count}-entries")
        for app in apps:
            doall, dec = next(results), next(results)
            s.values[app] = doall.cycles / dec.cycles
        series.append(s)
    return FigureResult(
        "queue-sweep", "Decoupling speedup vs queue entries (§5.3)",
        apps, series,
        notes=f"{base.queue_entry_bytes}B entries; scratchpad scales with "
              "the queue size.")


# -- Large-mesh scaling: MAPLE placement on MemPool-class meshes -------------------------------


#: Default axes for the large-mesh study.  The 32x32 point is exercised
#: by the ``slow``-marked scaling tests; the orchestrator smoke run stops
#: at 16x16 to stay fast.
MESH_SIDES = (4, 8, 16)
MESH_PLACEMENTS = ("edge", "center", "per-quadrant")
NOC_PLANES = ("request", "response", "memory")


def mesh_scaling_study(scale: int = 1, app: str = "spmv", threads: int = 4,
                       sides: Sequence[int] = MESH_SIDES,
                       placements: Sequence[str] = MESH_PLACEMENTS,
                       maple_instances: int = 4,
                       directory: bool = False,
                       config: Optional[SoCConfig] = None,
                       orch: Optional[Orchestrator] = None
                       ) -> Tuple[FigureResult, FigureResult]:
    """Speedup and per-plane NoC utilization vs tile count, with MAPLE
    placement as the sweep axis (ROADMAP item 1: does latency tolerance
    survive MemPool-class meshes?).

    Every non-MAPLE tile seats a core (the stress-mesh geometry), the
    ``threads`` worker threads run on cores 0..threads-1 — tiles in the
    top-left region — and each Access/Execute pair binds to the MAPLE
    instance nearest its access core via the driver's assignment map.
    The columns are mesh sides, not applications: ``"8x8"`` is a 64-tile
    mesh.  Utilization is NoC hops per elapsed cycle on each of the three
    planes, from the ``maple-decouple`` cell of each configuration.

    Pass ``directory=True`` to route coherence upgrades/transfers over
    the NoC as real messages (adds directory traffic to the utilization
    planes; off by default to keep the sweep comparable with the
    bit-identity baseline).
    """
    from repro.system.soc import stress_mesh_config

    base = config or FPGA_CONFIG
    specs: List[RunSpec] = []
    for side in sides:
        for placement in placements:
            cfg = stress_mesh_config(side, maple_instances, base) \
                .with_overrides(maple_placement=placement,
                                directory=directory)
            specs.append(RunSpec(app, "doall", threads=threads, scale=scale,
                                 config=cfg))
            specs.append(RunSpec(app, "maple-decouple", threads=threads,
                                 scale=scale, config=cfg))
    results = iter(_gather(specs, orch))
    labels = [f"{side}x{side}" for side in sides]
    speedup = {p: Series(p) for p in placements}
    util: Dict[str, Series] = {}
    for side in sides:
        col = f"{side}x{side}"
        for placement in placements:
            doall, dec = next(results), next(results)
            speedup[placement].values[col] = doall.cycles / dec.cycles
            for plane in NOC_PLANES:
                key = f"{placement}/{plane}"
                series = util.setdefault(key, Series(key))
                series.values[col] = (dec.stats.get(f"noc.{plane}.hops", 0.0)
                                      / dec.cycles)
    fig_speedup = FigureResult(
        "mesh-speedup",
        f"Decoupling speedup vs mesh size ({app}, {threads} threads, "
        f"{maple_instances} MAPLEs)",
        labels, [speedup[p] for p in placements],
        notes="threads sit in the top-left tile region, so placements "
              "far from it pay the full core<->MAPLE distance")
    # A plane with zero traffic everywhere (e.g. the memory plane when
    # the workload's fetches never ride a MEMORY-plane link) cannot be
    # plotted on a geomean scale — drop it and say so.
    active = [s for s in (util[f"{p}/{plane}"] for p in placements
                          for plane in NOC_PLANES)
              if any(s.values.values())]
    idle_planes = sorted({s.label.split("/", 1)[1]
                          for key, s in util.items() if s not in active})
    fig_util = FigureResult(
        "mesh-noc",
        f"NoC utilization (hops/cycle) vs mesh size ({app}, "
        f"maple-decouple)",
        labels, active,
        notes="per-plane hop counters over elapsed cycles"
              + (f"; idle plane(s) omitted: {', '.join(idle_planes)}"
                 if idle_planes else ""))
    return fig_speedup, fig_util


def mesh_speedup(scale: int = 1,
                 orch: Optional[Orchestrator] = None) -> FigureResult:
    return mesh_scaling_study(scale=scale, orch=orch)[0]


def mesh_noc(scale: int = 1,
             orch: Optional[Orchestrator] = None) -> FigureResult:
    return mesh_scaling_study(scale=scale, orch=orch)[1]


def mesh_coherence_study(scale: int = 1, app: str = "spmv", threads: int = 4,
                         sides: Sequence[int] = MESH_SIDES,
                         placements: Sequence[str] = ("edge", "per-quadrant"),
                         maple_instances: int = 4,
                         directory_slices: int = 4,
                         config: Optional[SoCConfig] = None,
                         orch: Optional[Orchestrator] = None) -> FigureResult:
    """Decoupling speedup with the coherence backend as the sweep axis:
    flat-latency charges (``dir-off``) vs the protocol-accurate home-node
    directory with refill/writeback traffic on the MEMORY plane
    (``dir-on``), across placements and mesh sizes.

    The question this answers: does MAPLE's latency tolerance survive
    when coherence round trips become *real* NoC messages that contend
    with the decoupled traffic, instead of fixed L2 charges?  Each
    ``dir-on`` cell pays per-hop invalidation fan-out, ownership
    recalls at the home slices, and home->memory-controller refill
    round trips; the paired ``dir-off`` cell is the bit-identity
    baseline on the same geometry.
    """
    from repro.system.soc import stress_mesh_config

    base = config or FPGA_CONFIG
    specs: List[RunSpec] = []
    for side in sides:
        for placement in placements:
            for directory in (False, True):
                cfg = stress_mesh_config(side, maple_instances, base) \
                    .with_overrides(maple_placement=placement,
                                    directory=directory,
                                    directory_slices=directory_slices,
                                    directory_mem_traffic=directory)
                specs.append(RunSpec(app, "doall", threads=threads,
                                     scale=scale, config=cfg))
                specs.append(RunSpec(app, "maple-decouple", threads=threads,
                                     scale=scale, config=cfg))
    results = iter(_gather(specs, orch))
    labels = [f"{side}x{side}" for side in sides]
    series = {f"{p}/dir-{'on' if d else 'off'}":
              Series(f"{p}/dir-{'on' if d else 'off'}")
              for p in placements for d in (False, True)}
    for side in sides:
        col = f"{side}x{side}"
        for placement in placements:
            for directory in (False, True):
                doall, dec = next(results), next(results)
                key = f"{placement}/dir-{'on' if directory else 'off'}"
                series[key].values[col] = doall.cycles / dec.cycles
    return FigureResult(
        "mesh-coherence",
        f"Decoupling speedup: flat vs directory MESI backend ({app}, "
        f"{threads} threads, {maple_instances} MAPLEs, "
        f"{directory_slices} home slices)",
        labels, list(series.values()),
        notes="dir-on routes invalidations, recalls, and L2 refills/"
              "writebacks over the NoC planes; dir-off charges flat L2 "
              "latencies (the bit-identity baseline)")


# -- §5.4: area --------------------------------------------------------------------------------


def area_analysis(config: Optional[SoCConfig] = None, cores_served: int = 8):
    """Paper: one MAPLE (8 queues, 1 KB scratchpad) is 1.1% of the eight
    Ariane cores it can supply."""
    return estimate_area(config or FPGA_CONFIG, cores_served=cores_served)
