"""Corruption-fuzz case generation: random (config, workload, integrity-plan).

The fault-fuzz sweep (:mod:`repro.harness.faultfuzz`) injects *timing*
and *OS-event* noise; every byte still arrives intact, exactly once.
This module generates the *data-integrity* sweep: each case draws a
random SoC configuration with the protection stack armed (reliable
ports + SECDED ECC), a kernel x technique, and a random seeded
corruption plan — lossy-link drops/duplicates/bit-flips, DRAM bit
flips, scratchpad slot flips.  The contract under test:

- every run that completes passes the kernel's golden-output oracle
  (``binding.check``) — corruption is either corrected, retransmitted,
  or re-fetched, never silently consumed;
- unrecoverable corruption (an uncorrectable scratchpad slot, a
  persistently poisoned line, an exhausted retransmit budget) surfaces
  as a typed :class:`~repro.sim.port.DataIntegrityError` /
  :class:`~repro.sim.port.DeliveryError` carrying a structured
  diagnosis (dumped to ``$REPRO_WATCHDOG_DUMP_DIR``), never as a hang
  or a wrong number;
- negative controls with the protection stack *disarmed* make the same
  oracle fail (or crash on a mangled address) — proving the oracle
  actually detects what the protections are suppressing.

Everything derives from ``INTEGRITY_MASTER_SEED + case``; a failing
case number reproduces exactly (``tools/fault_replay.py --integrity``).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.harness.faultfuzz import (
    FUZZ_WATCHDOG,
    FuzzCase,
    KERNELS,
    TECHNIQUES,
    random_config,
    random_dataset,
)
from repro.harness.orchestrator import RunSpec
from repro.harness.techniques import ExperimentResult, run_workload
from repro.sim import DataIntegrityError, FaultPlan, PortCorruptFault
from repro.sim.faults import DramBitFlipFault

INTEGRITY_MASTER_SEED = 20260806


def integrity_case(case: int,
                   master_seed: int = INTEGRITY_MASTER_SEED) -> FuzzCase:
    """Materialize case ``case``; pure function of ``(master_seed, case)``.

    The configuration always has the full protection stack armed —
    reliable ports and ECC — since the sweep's claim is that the armed
    stack survives (or fails loudly); the disarmed behaviour is covered
    by :func:`run_negative_control`.
    """
    rng = random.Random(master_seed + case)
    config = random_config(rng).with_overrides(
        name=f"integrityfuzz-{rng.randrange(1 << 30)}",
        reliable_ports=True, ecc=True)
    workload = rng.choice(KERNELS)
    technique = rng.choice(TECHNIQUES)
    if technique in ("maple-decouple", "sw-decouple", "desc"):
        threads = 2
    elif technique in ("lima", "lima-llc"):
        threads = 1
    else:
        threads = rng.choice((1, 2))
    dataset = random_dataset(rng, workload)
    plan = FaultPlan.random_integrity(rng.randrange(1 << 30))
    return FuzzCase(case, config, workload, technique, threads, dataset,
                    rng.randrange(100), plan)


def run_integrity_case(case: int,
                       master_seed: int = INTEGRITY_MASTER_SEED,
                       watchdog: Optional[dict] = None) -> ExperimentResult:
    """Run one armed case; raises whatever the stack detects."""
    fc = integrity_case(case, master_seed)
    return run_workload(
        fc.workload, fc.technique, config=fc.config, threads=fc.threads,
        dataset=fc.dataset, seed=fc.seed, check=True,
        integrity_plan=fc.plan, check_invariants=True,
        watchdog=dict(watchdog if watchdog is not None else FUZZ_WATCHDOG))


def classify_integrity_case(case: int,
                            master_seed: int = INTEGRITY_MASTER_SEED,
                            watchdog: Optional[dict] = None,
                            ) -> Tuple[str, object]:
    """Run one armed case and classify the only two legal outcomes.

    Returns ``("completed", result)`` — the run finished and the golden
    oracle passed — or ``("integrity-error", err)`` for a typed
    :class:`DataIntegrityError`.  Anything else (oracle failure, hang,
    invariant violation) propagates: with protection armed those are
    model bugs, not injected-fault outcomes.
    """
    try:
        return ("completed", run_integrity_case(case, master_seed, watchdog))
    except DataIntegrityError as err:
        return ("integrity-error", err)


def negative_control_plan(seed: int) -> FaultPlan:
    """A corrupt-only plan for disarmed runs.

    Drops/duplicates are deliberately excluded: on unprotected ports a
    lost message is a *hang*, which the liveness watchdog already owns
    (PR 4).  The negative control isolates the silent-corruption claim:
    the run completes and the oracle — not any protocol machinery — is
    what catches the damage.  Corruption targets the MMIO consume
    responses (the values kernels actually compute with) plus raw DRAM
    reads, at rates high enough that a run almost surely takes a hit.
    """
    rng = random.Random(seed ^ 0x0FF_ECC)
    return FaultPlan(
        seed=seed,
        port_corrupts=(
            PortCorruptFault(port_pattern="maple*.mmio.dispatch",
                             kind_pattern="mmio_load",
                             rate=rng.uniform(0.1, 0.4), leg="resp"),
            PortCorruptFault(port_pattern="core*.mem",
                             kind_pattern="load",
                             rate=rng.uniform(0.01, 0.05), leg="resp"),
        ),
        dram_flips=DramBitFlipFault(rate=rng.uniform(0.05, 0.15),
                                    double_rate=0.0),
    )


def run_negative_control(case: int,
                         master_seed: int = INTEGRITY_MASTER_SEED,
                         watchdog: Optional[dict] = None,
                         ) -> Tuple[str, object]:
    """Run case ``case`` with the protection stack disarmed.

    Same derivation as :func:`integrity_case` but ``reliable_ports`` and
    ``ecc`` are forced off and the plan is corrupt-only.  Returns
    ``("oracle", err)`` when the golden-output check catches the
    corruption, ``("crashed", err)`` when the mangled data blew up the
    program first (a corrupted index or pointer), or ``("completed",
    result)`` when the injected flips happened to be inconsequential
    (e.g. low mantissa bits under the oracle's tolerance).
    """
    fc = integrity_case(case, master_seed)
    config = fc.config.with_overrides(reliable_ports=False, ecc=False)
    try:
        result = run_workload(
            fc.workload, fc.technique, config=config, threads=fc.threads,
            dataset=fc.dataset, seed=fc.seed, check=True,
            integrity_plan=negative_control_plan(master_seed + case),
            watchdog=dict(watchdog if watchdog is not None
                          else FUZZ_WATCHDOG))
    except AssertionError as err:
        return ("oracle", err)
    except Exception as err:  # noqa: BLE001 — classification, not handling
        return ("crashed", err)
    return ("completed", result)


def integrity_specs(count: int,
                    master_seed: int = INTEGRITY_MASTER_SEED,
                    scale: int = 1) -> List[RunSpec]:
    """Orchestrator-ready integrity cells (default datasets, so the live
    dataset objects stay out of spec keys), for parallel sweeps."""
    specs = []
    for case in range(count):
        rng = random.Random(master_seed + case)
        config = random_config(rng).with_overrides(
            name=f"integrityfuzz-{rng.randrange(1 << 30)}",
            reliable_ports=True, ecc=True)
        workload = rng.choice(KERNELS)
        technique = rng.choice(TECHNIQUES)
        if technique in ("maple-decouple", "sw-decouple", "desc"):
            threads = 2
        elif technique in ("lima", "lima-llc"):
            threads = 1
        else:
            threads = rng.choice((1, 2))
        specs.append(RunSpec(
            workload=workload, technique=technique, threads=threads,
            scale=scale, seed=rng.randrange(100), config=config,
            integrity_plan=FaultPlan.random_integrity(rng.randrange(1 << 30)),
            check_invariants=True, watchdog=True))
    return specs
