"""Sharded parallel experiment orchestration.

The evaluation surface (Figs. 8-15, the tables, the queue/latency
sweeps) is a bag of *independent, deterministic* simulations: every cell
builds a fresh :class:`~repro.system.Soc`, runs one (workload,
technique) pair, and reports plain numbers.  That independence is the
host-side analogue of the parallelism MAPLE itself exploits — so this
module shards cells across worker processes the same way the engine
shards outstanding loads across queue slots.

The moving parts:

:class:`RunSpec`
    A frozen, picklable description of one experiment cell.  Its
    :func:`spec_key` is a stable hash over the full :class:`SoCConfig`
    plus technique/kernel/scale/seed, so identical cells dedupe within a
    batch, hit the on-disk cache across runs, and seed their workers
    deterministically.

:class:`RunResult`
    The measurements a cell produces (cycles, load counts, latencies,
    the full stats dump) plus execution metadata (wall time, attempts,
    cache provenance).  Metadata never feeds figure rendering, which is
    what makes parallel output byte-identical to serial output.

:class:`DiskCache`
    One JSON file per spec key.  Every entry embeds a sha256 over its
    own payload, verified on read; corrupt, truncated, or
    digest-mismatched files are quarantined (moved aside + logged) and
    read as misses, stale-schema files as plain misses.  Writes are
    atomic (tmp + rename) and write failures (ENOSPC and friends) are
    absorbed — the cache can only ever cost a re-simulation, never a
    wrong number or a crashed sweep.  Stale ``.tmp``/``.lock`` litter
    from dead writers is reaped at construction.

:class:`Orchestrator`
    ``run(specs)`` returns results **in submission order** regardless of
    completion order.  ``jobs=1`` is a pure in-process serial loop (no
    pool, no pickling); ``jobs>1`` runs **supervised workers**: one
    process per job attempt, each heartbeating into a shared array from
    a daemon thread.  The supervisor multiplexes result pipes, process
    sentinels, runtime deadlines, and heartbeat deadlines — so it
    distinguishes a *crashed* worker (SIGKILL/OOM: process died, no
    result), a *wedged* one (alive but no heartbeat past the deadline),
    and a merely *slow* one (deadline exceeded) — and reschedules with
    the existing exponential backoff.  Jobs with
    ``RunSpec.checkpoint_every`` set periodically checkpoint under
    ``checkpoint_dir`` (:mod:`repro.sim.checkpoint`) and are resumed
    from their last checkpoint instead of restarting from cycle 0.
    Every exit path — success, exception, ``KeyboardInterrupt`` —
    terminates and joins all live workers; terminal failures carry a
    structured :class:`JobError` and a JSON dump.

Determinism contract: a :class:`RunSpec` fully determines its
:class:`RunResult` (the simulator is single-threaded and seeded), so
``--jobs N`` changes wall-clock only — never a number.  The
parallel-equals-serial test in ``tests/test_orchestrator.py`` and the
differential fuzz suite pin this.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import multiprocessing
import os
import random
import signal
import threading
import time
import traceback as _traceback
from collections import deque
from dataclasses import asdict, dataclass
from multiprocessing import connection as _mpconn
from pathlib import Path
from typing import (
    Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple,
)

from repro.params import SoCConfig
from repro.sim.faults import FaultPlan

#: Bump when RunResult's serialized shape changes: old cache files then
#: read as misses instead of mis-parsing.  4: entries carry their own
#: sha256 (verified on read).
CACHE_SCHEMA = 4

_log = logging.getLogger("repro.harness.orchestrator")

ProgressFn = Callable[[Dict[str, Any]], None]


# -- job specification -----------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One experiment cell: everything ``run_workload`` needs, picklable.

    ``dataset_kwargs`` is a sorted tuple of ``(key, value)`` pairs (use
    :func:`freeze_dataset_kwargs`) so specs stay hashable and their JSON
    form is canonical.  ``config=None`` means the harness default
    :class:`SoCConfig`.
    """

    workload: str
    technique: str
    threads: int = 2
    scale: int = 1
    seed: int = 0
    prefetch_distance: int = 4
    hop_latency_override: Optional[int] = None
    dataset_kwargs: Tuple[Tuple[str, Any], ...] = ()
    lima_packed: bool = True
    check: bool = True
    config: Optional[SoCConfig] = None
    #: Seeded fault plan to install for the run (None = fault free).
    fault_plan: Optional[FaultPlan] = None
    #: Seeded corruption plan (drops/dups/bit flips); mutually exclusive
    #: with ``fault_plan`` — a separate cell field so corruption sweeps
    #: never collide with timing-noise sweeps in the cache.
    integrity_plan: Optional[FaultPlan] = None
    #: Arm live queue shadows + the quiescence audit for this cell.
    check_invariants: bool = False
    #: Arm the liveness watchdog (default parameters) for this cell.
    watchdog: bool = False
    #: Checkpoint the run every N cycles (requires the orchestrator's
    #: ``checkpoint_dir``); a crashed/killed worker then resumes from
    #: its last checkpoint instead of cycle 0.  Deliberately **not**
    #: part of :func:`spec_key`: checkpointing is bit-identity-neutral
    #: (the engine chunks are invisible to the model), so the same cell
    #: with and without it must share one cache entry.
    checkpoint_every: Optional[int] = None

    def label(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.dataset_kwargs)
        cfg = self.config.name if self.config is not None else "default"
        fault = (f" faults#{self.fault_plan.seed}"
                 if self.fault_plan is not None else "")
        integrity = (f" integrity#{self.integrity_plan.seed}"
                     if self.integrity_plan is not None else "")
        return (f"{self.workload}/{self.technique} x{self.threads} "
                f"[{cfg}]{extra}{fault}{integrity}")

    def run_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``run_workload`` (minus workload/technique)."""
        return {
            "config": self.config,
            "threads": self.threads,
            "scale": self.scale,
            "seed": self.seed,
            "prefetch_distance": self.prefetch_distance,
            "hop_latency_override": self.hop_latency_override,
            "dataset_kwargs": dict(self.dataset_kwargs),
            "lima_packed": self.lima_packed,
            "check": self.check,
            "fault_plan": self.fault_plan,
            "integrity_plan": self.integrity_plan,
            "check_invariants": self.check_invariants,
            "watchdog": self.watchdog,
        }


def freeze_dataset_kwargs(kwargs: Optional[dict]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical (sorted, hashable) form of a dataset_kwargs dict."""
    return tuple(sorted((kwargs or {}).items()))


def spec_key(spec: RunSpec) -> str:
    """Stable hex digest identifying a spec across processes and runs.

    Hashes the canonical JSON of every spec field with the config
    expanded to its full :meth:`SoCConfig.stable_dict` — so any knob
    change (queue depth, cache geometry, hop latency, ...) is a new key.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "workload": spec.workload,
        "technique": spec.technique,
        "threads": spec.threads,
        "scale": spec.scale,
        "seed": spec.seed,
        "prefetch_distance": spec.prefetch_distance,
        "hop_latency_override": spec.hop_latency_override,
        "dataset_kwargs": list(list(pair) for pair in spec.dataset_kwargs),
        "lima_packed": spec.lima_packed,
        "check": spec.check,
        "config": (spec.config.stable_dict()
                   if spec.config is not None else None),
        "fault_plan": (spec.fault_plan.stable_dict()
                       if spec.fault_plan is not None else None),
        "integrity_plan": (spec.integrity_plan.stable_dict()
                           if spec.integrity_plan is not None else None),
        "check_invariants": spec.check_invariants,
        "watchdog": spec.watchdog,
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


# -- job result -------------------------------------------------------------------


@dataclass
class RunResult:
    """Measurements of one cell plus execution metadata.

    Only :meth:`identity` fields are determined by the spec; the
    metadata (``wall_seconds``, ``attempts``, ``from_cache``,
    ``worker_pid``) varies run to run and must never feed rendering.
    """

    workload: str
    technique: str
    threads: int
    cycles: int
    fallback_doall: bool
    total_loads: int
    avg_load_latency: float
    events_executed: int
    stats: Dict[str, float]
    fault_seed: Optional[int] = None
    fault_events: int = 0
    invariants_checked: Optional[List[int]] = None
    key: str = ""
    wall_seconds: float = 0.0
    attempts: int = 1
    from_cache: bool = False
    worker_pid: int = 0
    #: True when this run continued from a checkpoint instead of
    #: starting at cycle 0.  Pure metadata — the numbers are identical
    #: either way (that is the whole point), so it stays out of
    #: :meth:`identity` and the cache file.
    resumed: bool = False

    def identity(self) -> Dict[str, Any]:
        """The deterministic payload (what caching/equality compare)."""
        return {
            "workload": self.workload,
            "technique": self.technique,
            "threads": self.threads,
            "cycles": self.cycles,
            "fallback_doall": self.fallback_doall,
            "total_loads": self.total_loads,
            "avg_load_latency": self.avg_load_latency,
            "events_executed": self.events_executed,
            "fault_seed": self.fault_seed,
            "fault_events": self.fault_events,
            "invariants_checked": self.invariants_checked,
            "stats": self.stats,
        }

    def to_json(self) -> Dict[str, Any]:
        payload = self.identity()
        payload["schema"] = CACHE_SCHEMA
        payload["key"] = self.key
        payload["wall_seconds"] = self.wall_seconds
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RunResult":
        if payload.get("schema") != CACHE_SCHEMA:
            raise ValueError("cache schema mismatch")
        return cls(
            workload=payload["workload"],
            technique=payload["technique"],
            threads=payload["threads"],
            cycles=payload["cycles"],
            fallback_doall=payload["fallback_doall"],
            total_loads=payload["total_loads"],
            avg_load_latency=payload["avg_load_latency"],
            events_executed=payload["events_executed"],
            stats=dict(payload["stats"]),
            fault_seed=payload.get("fault_seed"),
            fault_events=payload.get("fault_events", 0),
            invariants_checked=payload.get("invariants_checked"),
            key=payload.get("key", ""),
            wall_seconds=payload.get("wall_seconds", 0.0),
            from_cache=True,
        )


def seed_rngs_for(key: str) -> None:
    """Seed the global RNG streams deterministically from a spec key.

    The simulator itself never consults them, but this insulates dataset
    generation (and any future component) from whatever the host process
    did before us — and it is what makes a checkpoint's ``rng`` digest
    reproducible on resume in a fresh process.
    """
    derived = int(key[:16], 16)
    random.seed(derived)
    try:
        import numpy
        numpy.random.seed(derived & 0xFFFFFFFF)
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass


def execute_spec(spec: RunSpec, checkpoint_path=None, on_checkpoint=None,
                 resume_from=None) -> RunResult:
    """Run one cell in the current process (the picklable entry point).

    Seeds the global RNGs from the spec key first (worker N's result
    cannot depend on which jobs it ran earlier).  With
    ``checkpoint_path`` and ``spec.checkpoint_every`` set the run
    checkpoints periodically; ``resume_from`` continues a previous
    attempt's checkpoint under digest verification.  Neither changes a
    single number — only how much work a rerun has to repeat.
    """
    from repro.harness.techniques import run_workload

    seed_rngs_for(spec_key(spec))

    checkpointing = checkpoint_path is not None and spec.checkpoint_every
    start = time.perf_counter()
    result = run_workload(
        spec.workload, spec.technique, **spec.run_kwargs(),
        checkpoint_every=spec.checkpoint_every if checkpointing else None,
        checkpoint_path=checkpoint_path if checkpointing else None,
        checkpoint_spec=spec if checkpointing else None,
        on_checkpoint=on_checkpoint if checkpointing else None,
        resume_from=resume_from)
    summary = result.summary()
    checked = summary.get("invariants_checked")
    return RunResult(
        workload=summary["workload"],
        technique=summary["technique"],
        threads=summary["threads"],
        cycles=summary["cycles"],
        fallback_doall=summary["fallback_doall"],
        total_loads=summary["total_loads"],
        avg_load_latency=summary["avg_load_latency"],
        events_executed=summary["events_executed"],
        stats=summary["stats"],
        fault_seed=summary.get("fault_seed"),
        fault_events=summary.get("fault_events", 0),
        # Lists, not tuples: identity() must round-trip through JSON.
        invariants_checked=list(checked) if checked is not None else None,
        key=spec_key(spec),
        wall_seconds=time.perf_counter() - start,
        worker_pid=os.getpid(),
        resumed=resume_from is not None,
    )


@dataclass
class JobError:
    """Structured failure record for one attempt at one cell.

    Everything needed to reproduce and triage without the worker's
    process: the exception type and message, the full traceback text,
    the fault seed (faulted fuzz cells), and which attempt/PID failed.
    Picklable, so it crosses the pool boundary intact where a custom
    exception instance might not.
    """

    label: str
    key: str
    exc_type: str
    message: str
    traceback: str
    attempt: int = 1
    fault_seed: Optional[int] = None
    worker_pid: int = 0
    #: How the supervisor learned of the failure: "exception" (worker
    #: reported it), "crash" (process died without a result — SIGKILL,
    #: OOM), or "wedged" (alive but no heartbeat past the deadline).
    detection: str = "exception"
    #: The dead worker's exit code for crashes (negative = signal).
    exit_code: Optional[int] = None
    #: Path of the structured JSON dump written for a terminal failure.
    dump_path: Optional[str] = None

    def summary(self) -> str:
        fault = (f" [fault seed {self.fault_seed}]"
                 if self.fault_seed is not None else "")
        return (f"{self.label}{fault} failed on attempt {self.attempt} "
                f"with {self.exc_type}: {self.message}")


class OrchestratorError(RuntimeError):
    """A cell failed on every attempt; carries the final :class:`JobError`."""

    def __init__(self, job_error: JobError):
        self.job_error = job_error
        super().__init__(
            f"{job_error.summary()}\n--- worker traceback ---\n"
            f"{job_error.traceback}")


def _job_error(spec: RunSpec, exc: BaseException, attempt: int) -> JobError:
    return JobError(
        label=spec.label(),
        key=spec_key(spec),
        exc_type=type(exc).__name__,
        message=str(exc),
        traceback=_traceback.format_exc(),
        attempt=attempt,
        fault_seed=(spec.fault_plan.seed if spec.fault_plan is not None
                    else spec.integrity_plan.seed
                    if spec.integrity_plan is not None else None),
        worker_pid=os.getpid(),
    )


#: Typed exception names for supervisor-detected (no worker traceback)
#: failures, keyed by how the supervisor learned of them.
_DETECTION_TYPES = {
    "crash": "WorkerCrashed",
    "wedged": "WorkerWedged",
    "timeout": "JobTimeout",
    "deadline": "JobDeadlineExceeded",
    "cancelled": "JobCancelled",
}


def _job_error_shell(spec: RunSpec, detection: str, attempt: int,
                     exit_code: Optional[int] = None,
                     pid: int = 0,
                     message: Optional[str] = None) -> JobError:
    """A :class:`JobError` for failures with no worker-side exception —
    the process died, went silent, blew its deadline, or was cancelled
    before it could report one."""
    if message is None:
        if detection in ("crash", "wedged"):
            message = (f"worker pid {pid} ended without reporting a result "
                       f"(detection={detection}, exit code {exit_code})")
        elif detection == "timeout":
            message = (f"attempt {attempt} exceeded the per-attempt runtime "
                       "deadline and retries are exhausted "
                       "(deadline_action='fail')")
        elif detection == "deadline":
            message = "the job's overall deadline budget expired mid-run"
        else:
            message = "the run was cancelled by its caller"
    return JobError(
        label=spec.label(),
        key=spec_key(spec),
        exc_type=_DETECTION_TYPES[detection],
        message=message,
        traceback="",
        attempt=attempt,
        fault_seed=(spec.fault_plan.seed if spec.fault_plan is not None
                    else spec.integrity_plan.seed
                    if spec.integrity_plan is not None else None),
        worker_pid=pid,
        detection=detection,
        exit_code=exit_code,
    )


def _execute_or_resume(spec: RunSpec, checkpoint_path=None,
                       on_checkpoint=None) -> RunResult:
    """Run a cell, continuing from its on-disk checkpoint when a valid
    matching one exists.

    Corrupt checkpoint files are quarantined (renamed aside) and the
    cell reruns from cycle 0; a checkpoint whose replay diverges is
    likewise quarantined and retried fresh — resumability is an
    optimization, never a way to lose a run.
    """
    from repro.sim.checkpoint import (
        Checkpoint, CheckpointDivergenceError, CheckpointError,
    )

    resume_from = None
    if checkpoint_path is not None and spec.checkpoint_every:
        path = Path(checkpoint_path)
        if path.exists():
            try:
                ckpt = Checkpoint.load(path)
                if ckpt.spec_key == spec_key(spec):
                    resume_from = ckpt
            except CheckpointError as err:
                _log.warning("quarantining corrupt checkpoint: %s", err)
                _quarantine_file(path)
    try:
        return execute_spec(spec, checkpoint_path=checkpoint_path,
                            on_checkpoint=on_checkpoint,
                            resume_from=resume_from)
    except CheckpointDivergenceError as err:
        if resume_from is None:
            raise
        _log.warning("checkpoint replay diverged (%s); quarantining and "
                     "rerunning from cycle 0", err)
        _quarantine_file(Path(checkpoint_path))
        return execute_spec(spec, checkpoint_path=checkpoint_path,
                            on_checkpoint=on_checkpoint)


def _quarantine_file(path: Path) -> Optional[Path]:
    """Move a corrupt file into a ``quarantine/`` sibling directory
    (kept for post-mortem, out of every reader's way)."""
    dest_dir = path.parent / "quarantine"
    try:
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / (path.name + ".quarantined")
        path.replace(dest)
        return dest
    except OSError:  # pragma: no cover - racing unlink/permissions
        try:
            path.unlink()
        except OSError:
            pass
        return None


def _supervised_worker(spec: RunSpec, attempt: int, conn, hb, slot: int,
                       hb_interval: float, inject: Dict[str, Any],
                       checkpoint_path) -> None:
    """Module-level worker target (picklable under fork and spawn).

    Heartbeats into ``hb[slot]`` from a daemon thread every
    ``hb_interval`` seconds for the whole life of the attempt — the
    supervisor treats a stale slot as a wedged worker.  The result (a
    :class:`RunResult` or a :class:`JobError` — never a raised
    exception) goes back over ``conn``; the pipe write blocks until the
    parent drains it, so a worker that sent its result is by definition
    not lost.

    ``inject`` carries the chaos hooks, all keyed by spec key and (for
    the single-shot ones) firing on attempt 0 only so a retry succeeds
    deterministically: ``hang`` sleeps through the deadline (heartbeats
    keep flowing — this exercises the *runtime* deadline, not the wedge
    detector), ``stop`` SIGSTOPs itself (all threads freeze, so
    heartbeats stop — the wedge signature), ``kill`` SIGKILLs itself —
    immediately when the job is not checkpointing, else right after its
    first checkpoint hits disk (the crash-recovery-with-resume path).
    ``kill_all`` kills on *every* attempt (the retries-exhausted
    negative control).
    """
    stop_beating = threading.Event()
    supervisor = os.getppid()

    def beat():
        while not stop_beating.is_set():
            if os.getppid() != supervisor:
                # The supervisor died without cleaning us up (SIGKILL on
                # the whole service/orchestrator process): a worker must
                # never outlive its parent as an orphan burning CPU.
                os._exit(1)
            hb[slot] = time.monotonic()
            stop_beating.wait(hb_interval)

    threading.Thread(target=beat, daemon=True, name="heartbeat").start()

    key = spec_key(spec)
    kill_always = key in inject.get("kill_all", ())
    kill_once = kill_always or (attempt == 0 and key in inject.get("kill", ()))
    on_checkpoint = None
    if kill_once and checkpoint_path is not None and spec.checkpoint_every:
        def on_checkpoint(path, ckpt):
            os.kill(os.getpid(), signal.SIGKILL)
    elif kill_once:
        os.kill(os.getpid(), signal.SIGKILL)
    if attempt == 0 and key in inject.get("stop", ()):
        os.kill(os.getpid(), signal.SIGSTOP)
    if attempt == 0 and key in inject.get("hang", ()):
        time.sleep(inject.get("hang_seconds", 60.0))

    try:
        result = _execute_or_resume(spec, checkpoint_path=checkpoint_path,
                                    on_checkpoint=on_checkpoint)
    except Exception as exc:
        conn.send(_job_error(spec, exc, attempt + 1))
    else:
        result.attempts = attempt + 1
        conn.send(result)
    finally:
        conn.close()
        stop_beating.set()


# -- on-disk result cache ---------------------------------------------------------


def _entry_digest(payload: Dict[str, Any]) -> str:
    """sha256 over a cache entry's canonical JSON, minus the digest
    field itself."""
    body = {k: v for k, v in payload.items() if k != "sha256"}
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


class DiskCache:
    """One self-verifying JSON file per spec key under ``root``.

    Robustness contract (the cache can only ever cost a re-simulation,
    never a wrong number or a crashed sweep):

    - every entry embeds a sha256 over its own payload, recomputed and
      compared on read — a truncated or bit-flipped file cannot parse
      into a plausible-but-wrong result;
    - unreadable / torn / digest-mismatched files are **quarantined**
      (moved to ``quarantine/`` for post-mortem), logged, counted, and
      reported as misses so the cell simply reruns;
    - stale-schema files are plain misses (old format, not corruption);
    - writes are atomic (tmp + rename) and ``OSError`` during a write
      (ENOSPC, read-only filesystem) is absorbed and counted — losing a
      cache entry must never sink the run that produced the result;
    - ``.tmp``/``.lock`` litter older than ``reap_after`` seconds (dead
      writers) is deleted at construction;
    - with ``max_bytes`` set the cache is **size-capped LRU**: every hit
      touches its entry's mtime (the recency clock) and every write
      evicts least-recently-used entries until the total ``*.json``
      footprint fits — the cache can no longer grow without bound under
      sweep traffic.  Evictions are counted (``evicted`` /
      ``evicted_bytes``) and surface in the orchestrator's progress
      report.  Quarantined files do not count against the cap (they are
      post-mortem evidence, reaped by humans).
    """

    def __init__(self, root: Path, reap_after: float = 300.0,
                 inject_write_error: FrozenSet[str] = frozenset(),
                 max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.write_errors = 0
        self.evicted = 0
        self.evicted_bytes = 0
        #: Chaos hook: keys whose put() raises ENOSPC (then absorbed).
        self.inject_write_error = frozenset(inject_write_error)
        self.reaped = self._reap_stale(reap_after)

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _reap_stale(self, reap_after: float) -> int:
        """Delete ``.tmp``/``.lock`` files no live writer can own."""
        cutoff = time.time() - reap_after
        reaped = 0
        for pattern in ("*.tmp", "*.lock"):
            for stale in self.root.glob(pattern):
                try:
                    if stale.stat().st_mtime <= cutoff:
                        stale.unlink()
                        reaped += 1
                except OSError:  # racing writer/reaper: leave it
                    continue
        if reaped:
            _log.info("cache %s: reaped %d stale tmp/lock file(s)",
                      self.root, reaped)
        return reaped

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantined += 1
        self.misses += 1
        dest = _quarantine_file(path)
        _log.warning("cache entry %s is corrupt (%s); quarantined to %s "
                     "— the cell will re-run", path.name, reason, dest)

    def get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as err:
            self._quarantine(path, f"unreadable/torn: {err}")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "not a JSON object")
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            self.misses += 1  # old format: a miss, not corruption
            return None
        if payload.get("sha256") != _entry_digest(payload):
            self._quarantine(path, "sha256 mismatch")
            return None
        try:
            result = RunResult.from_json(payload)
        except (ValueError, KeyError, TypeError) as err:
            self._quarantine(path, f"malformed payload: {err!r}")
            return None
        self.hits += 1
        if self.max_bytes is not None:
            try:  # touch: mtime is the LRU recency clock
                os.utime(path)
            except OSError:  # racing eviction/unlink: the read stands
                pass
        return result

    def put(self, key: str, result: RunResult) -> None:
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        payload = result.to_json()
        payload["sha256"] = _entry_digest(payload)
        try:
            if key in self.inject_write_error:
                raise OSError(errno.ENOSPC, "injected cache write failure")
            tmp.write_text(json.dumps(payload, sort_keys=True))
            tmp.replace(path)
        except OSError as err:
            self.write_errors += 1
            _log.warning("cache write for %s failed (%s); result kept "
                         "in memory only", key[:12], err)
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self._evict_to_fit(keep=path)

    def _evict_to_fit(self, keep: Path) -> None:
        """Drop least-recently-used entries until the footprint fits
        ``max_bytes``.  The just-written entry is never evicted (a cache
        that immediately evicts its own writes caches nothing)."""
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:  # racing writer/eviction
                continue
            total += stat.st_size
            if path != keep:
                entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        dropped = 0
        while total > self.max_bytes and entries:
            _, size, victim = entries.pop(0)
            try:
                victim.unlink()
            except OSError:
                continue
            total -= size
            dropped += 1
            self.evicted += 1
            self.evicted_bytes += size
        if dropped:
            _log.info("cache %s: evicted %d LRU entr%s to fit %d bytes",
                      self.root, dropped, "y" if dropped == 1 else "ies",
                      self.max_bytes)

    def size_bytes(self) -> int:
        """Current ``*.json`` footprint (quarantine excluded)."""
        return sum(p.stat().st_size for p in self.root.glob("*.json"))

    def counters(self) -> Dict[str, int]:
        """Robustness/occupancy counters, for reports and health probes."""
        return {"hits": self.hits, "misses": self.misses,
                "quarantined": self.quarantined,
                "write_errors": self.write_errors,
                "evicted": self.evicted,
                "evicted_bytes": self.evicted_bytes,
                "reaped": self.reaped}

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-harness``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-harness"


# -- the orchestrator -------------------------------------------------------------


class Orchestrator:
    """Shard independent :class:`RunSpec` cells across worker processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs everything serially
        in-process — no pool, no pickling, bit-identical results.
    cache:
        A :class:`DiskCache` (or ``None`` to disable).  Cells found in
        the cache are not re-simulated.
    timeout:
        Per-job seconds before a worker is presumed hung and the cell is
        retried (``None`` = wait forever).  Only meaningful for
        ``jobs > 1``.
    retries:
        Pool resubmissions after a timeout or worker failure before the
        final in-process fallback attempt (timeouts) or the structured
        :class:`OrchestratorError` (failures).
    backoff:
        Base seconds slept before retry ``n`` (exponential:
        ``backoff * 2**(n-1)``); ``0`` disables sleeping.
    progress:
        Optional callback receiving structured event dicts (``start`` /
        ``spawn`` / ``done`` / ``timeout`` / ``crash`` / ``wedged`` /
        ``failure`` / ``finish``).
    heartbeat_timeout:
        Seconds without a worker heartbeat before the supervisor
        declares it wedged, kills it, and reschedules.  Distinct from
        ``timeout``: a slow-but-alive worker heartbeats happily; a
        SIGSTOPped or scheduler-starved one goes silent.
    heartbeat_interval:
        How often each worker's daemon thread stamps its heartbeat slot.
    deadline_action:
        What exhausted timeouts/wedges do.  ``"fallback"`` (default, the
        historical contract) makes one final in-process attempt, so a
        batch sweep always makes progress.  ``"fail"`` raises a typed
        :class:`OrchestratorError` (``JobTimeout``/``WorkerWedged``)
        instead — the contract a serving layer needs, where a deadline
        is a promise to the client, not a hint.
    checkpoint_dir:
        Directory for per-job checkpoint files.  Jobs whose spec sets
        ``checkpoint_every`` save there periodically and — after a
        crash, wedge, or timeout — resume from the last checkpoint
        instead of cycle 0.  ``None`` disables checkpointing.
    dump_dir:
        Where terminal-failure JSON dumps land (falls back to
        ``$REPRO_WATCHDOG_DUMP_DIR``, like the liveness watchdog).
    inject_hang / inject_kill / inject_stop / inject_kill_all:
        Chaos hooks, all sets of spec keys (see
        :func:`_supervised_worker`): first attempt sleeps through its
        deadline / SIGKILLs itself (after its first checkpoint when
        checkpointing) / SIGSTOPs itself; ``inject_kill_all`` kills on
        every attempt (the retries-exhausted negative control).
    """

    def __init__(self, jobs: int = 1, cache: Optional[DiskCache] = None,
                 timeout: Optional[float] = None, retries: int = 1,
                 backoff: float = 0.0,
                 progress: Optional[ProgressFn] = None,
                 inject_hang: FrozenSet[str] = frozenset(),
                 heartbeat_timeout: float = 30.0,
                 heartbeat_interval: float = 0.25,
                 checkpoint_dir: Optional[Path] = None,
                 dump_dir: Optional[str] = None,
                 inject_kill: FrozenSet[str] = frozenset(),
                 inject_stop: FrozenSet[str] = frozenset(),
                 inject_kill_all: FrozenSet[str] = frozenset(),
                 deadline_action: str = "fallback"):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        if heartbeat_timeout <= 0 or heartbeat_interval <= 0:
            raise ValueError("heartbeat timings must be > 0")
        if deadline_action not in ("fallback", "fail"):
            raise ValueError("deadline_action must be 'fallback' or 'fail'")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.progress = progress
        self.inject_hang = frozenset(inject_hang)
        self.inject_kill = frozenset(inject_kill)
        self.inject_stop = frozenset(inject_stop)
        self.inject_kill_all = frozenset(inject_kill_all)
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        self.deadline_action = deadline_action
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.dump_dir = dump_dir
        self.report: Dict[str, Any] = {}
        #: Structured record of every failed attempt this run observed
        #: (the final one is also raised as :class:`OrchestratorError`).
        self.failures: List[JobError] = []
        # Supervision counters for the current run() (surface in report).
        self._crashes = 0
        self._wedged = 0

    # -- public API ---------------------------------------------------------------

    def run(self, specs: Sequence[RunSpec],
            cancel: Optional[threading.Event] = None,
            deadline: Optional[float] = None) -> List[RunResult]:
        """Execute every spec; results come back in submission order.

        Identical specs (same key) within one batch are simulated once
        and fanned out — the figure code can stay naive about shared
        baselines.

        ``cancel`` (a :class:`threading.Event`, settable from any
        thread) aborts the whole run at the next supervision tick: live
        workers are killed + joined and a typed ``JobCancelled``
        :class:`OrchestratorError` is raised.  ``deadline`` (a
        ``time.monotonic()`` timestamp) bounds the *whole call* — per
        attempt ``timeout`` still applies on top — and blows up as a
        typed ``JobDeadlineExceeded``.  In the serial (``jobs=1``) path
        both are checked between cells only: an in-process cell cannot
        be preempted, which is exactly why the serving layer runs the
        supervised pool.
        """
        started = time.perf_counter()
        self._crashes = 0
        self._wedged = 0
        keys = [spec_key(spec) for spec in specs]
        self._emit({"event": "start", "total": len(specs),
                    "jobs": self.jobs})

        results: Dict[str, RunResult] = {}
        timeouts = 0
        retried = 0

        # Cache probe + in-batch dedup: `pending` keeps first-occurrence
        # order, which is the deterministic submission order workers see.
        pending: List[Tuple[str, RunSpec]] = []
        seen = set()
        for key, spec in zip(keys, specs):
            if key in seen:
                continue
            seen.add(key)
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    self._emit({"event": "done", "label": spec.label(),
                                "key": key[:12], "cached": True,
                                "wall_seconds": 0.0, "attempts": 0})
                    continue
            pending.append((key, spec))

        if pending:
            if self.jobs == 1:
                executed = self._run_serial(pending, cancel, deadline)
            else:
                executed, timeouts, retried = self._run_pool(
                    pending, cancel, deadline)
            for key, result in executed.items():
                results[key] = result
                if self.cache is not None:
                    self.cache.put(key, result)

        wall = time.perf_counter() - started
        self.report = {
            "total": len(specs),
            "unique": len(seen),
            "cached": sum(1 for r in results.values() if r.from_cache),
            "executed": len(pending),
            "timeouts": timeouts,
            "retries": retried,
            "crashes": self._crashes,
            "wedged": self._wedged,
            "resumed": sum(1 for r in results.values() if r.resumed),
            "cache_evictions": self.cache.evicted if self.cache else 0,
            "cache_counters": (self.cache.counters()
                               if self.cache is not None else None),
            "jobs": self.jobs,
            "wall_seconds": wall,
            "sim_seconds": sum(r.wall_seconds for r in results.values()),
            "per_job": [
                {"label": spec.label(), "key": key[:12],
                 "wall_seconds": results[key].wall_seconds,
                 "attempts": results[key].attempts,
                 "cached": results[key].from_cache}
                for key, spec in zip(keys, specs)
            ],
        }
        self._emit({"event": "finish", **{k: v for k, v in self.report.items()
                                          if k != "per_job"}})
        return [results[key] for key in keys]

    # -- execution strategies -----------------------------------------------------

    def _run_serial(self, pending, cancel=None,
                    deadline=None) -> Dict[str, RunResult]:
        executed: Dict[str, RunResult] = {}
        for key, spec in pending:
            if cancel is not None and cancel.is_set():
                raise self._terminal_failure(
                    _job_error_shell(spec, "cancelled", attempt=1))
            if deadline is not None and time.monotonic() > deadline:
                raise self._terminal_failure(
                    _job_error_shell(spec, "deadline", attempt=1))
            path = self._checkpoint_path(key, spec)
            try:
                result = _execute_or_resume(spec, checkpoint_path=path)
            except Exception as exc:
                # Same structured failure shape the pool path produces,
                # so callers triage serial and parallel runs identically.
                error = _job_error(spec, exc, attempt=1)
                raise self._terminal_failure(error) from exc
            executed[key] = result
            self._cleanup_checkpoint(path)
            self._emit({"event": "done", "label": spec.label(),
                        "key": key[:12], "cached": False,
                        "wall_seconds": result.wall_seconds, "attempts": 1})
        return executed

    def _sleep_backoff(self, attempt: int) -> None:
        """Exponential pause before retry ``attempt`` (1-based)."""
        if self.backoff > 0:
            time.sleep(self.backoff * (2 ** (attempt - 1)))

    # -- supervised pool ----------------------------------------------------------

    def _checkpoint_path(self, key: str, spec: RunSpec) -> Optional[Path]:
        if self.checkpoint_dir is None or not spec.checkpoint_every:
            return None
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        return self.checkpoint_dir / f"{key}.ckpt.json"

    @staticmethod
    def _cleanup_checkpoint(path: Optional[Path]) -> None:
        """A completed job's checkpoint is dead weight; drop it (and any
        torn ``.tmp`` a killed attempt left mid-write)."""
        if path is None:
            return
        for stale in (path, path.with_suffix(path.suffix + ".tmp")):
            try:
                stale.unlink()
            except OSError:
                pass

    def _terminal_failure(self, error: JobError,
                          emit: bool = True) -> "OrchestratorError":
        """Dump, record (unless the per-attempt loop already did), and
        wrap a job's final failure."""
        from repro.sim.watchdog import write_dump

        error.dump_path = write_dump(
            {"reason": "orchestrator-job-failure", "job_error": asdict(error)},
            self.dump_dir)
        if emit:
            self.failures.append(error)
            self._emit({"event": "failure", "label": error.label,
                        "key": error.key[:12], "attempt": error.attempt,
                        "exc_type": error.exc_type, "message": error.message})
        return OrchestratorError(error)

    def _run_pool(self, pending, cancel=None, deadline=None):
        """Supervised fan-out: one process per job attempt, heartbeats,
        crash/wedge/timeout detection, checkpoint-aware rescheduling.

        Every worker heartbeats into a shared array and sends exactly
        one result (:class:`RunResult` or :class:`JobError`) down its
        own pipe.  The supervisor waits on all pipes and process
        sentinels at once and classifies each ending:

        - **result**: done, or a reported failure → retry with backoff,
          exhausted failures raise :class:`OrchestratorError` (+ dump);
        - **crash** (sentinel fired, pipe empty — SIGKILL/OOM): retry
          with backoff, resuming from the job's last checkpoint when it
          has one; exhausted crashes raise (running a crasher in-process
          could take the supervisor down with it);
        - **wedge** (no heartbeat past ``heartbeat_timeout``) and
          **timeout** (runtime past ``timeout``): kill + retry; when
          retries are exhausted these fall back to one in-process
          attempt, preserving the old guaranteed-progress contract.

        The ``finally`` kills and joins every live worker on *all* exit
        paths — success, failure, ``KeyboardInterrupt`` — so no chaos
        scenario leaves an orphan process behind.
        """
        ctx = multiprocessing.get_context()
        slots = min(self.jobs, len(pending))
        hb = ctx.Array("d", slots)
        inject = {"hang": self.inject_hang,
                  "hang_seconds": min((self.timeout or 1.0) * 10, 60.0),
                  "kill": self.inject_kill,
                  "stop": self.inject_stop,
                  "kill_all": self.inject_kill_all}

        executed: Dict[str, RunResult] = {}
        timeouts = 0
        retried = 0
        work = deque((key, spec, 0) for key, spec in pending)
        active: Dict[int, Dict[str, Any]] = {}  # slot -> live attempt
        free = list(range(slots - 1, -1, -1))

        def launch(key, spec, attempt):
            slot = free.pop()
            recv, send = ctx.Pipe(duplex=False)
            path = self._checkpoint_path(key, spec)
            proc = ctx.Process(
                target=_supervised_worker,
                args=(spec, attempt, send, hb, slot,
                      self.heartbeat_interval, inject,
                      str(path) if path is not None else None),
                daemon=True)  # die with the supervisor, like pool workers
            hb[slot] = time.monotonic()
            proc.start()
            send.close()  # child's end; parent keeps recv only
            active[slot] = {"key": key, "spec": spec, "attempt": attempt,
                            "proc": proc, "conn": recv, "path": path,
                            "started": time.monotonic()}
            self._emit({"event": "spawn", "label": spec.label(),
                        "key": key[:12], "attempt": attempt + 1,
                        "pid": proc.pid})

        def retire(slot, kill=False):
            job = active.pop(slot)
            if kill:
                # Kill *before* join: a stopped or sleeping worker never
                # exits on its own, so join() first would block forever.
                # SIGKILL works on SIGSTOPped processes too.
                job["proc"].kill()
            job["conn"].close()
            job["proc"].join()
            free.append(slot)
            return job

        def reschedule(job, kind):
            """Requeue or finish a killed/dead attempt's job according
            to the retry budget."""
            nonlocal retried
            attempt = job["attempt"] + 1
            self._emit({"event": kind, "label": job["spec"].label(),
                        "key": job["key"][:12], "attempt": attempt,
                        **({"exit_code": job["proc"].exitcode}
                           if kind == "crash" else {})})
            if attempt <= self.retries:
                retried += 1
                self._sleep_backoff(attempt)
                work.append((job["key"], job["spec"], attempt))
                return None
            if kind == "crash":
                # Exhausted crashes are terminal: whatever killed the
                # worker (OOM, a broken native extension) could take the
                # supervisor down if rerun in-process.
                error = _job_error_shell(
                    job["spec"], detection="crash", attempt=attempt,
                    exit_code=job["proc"].exitcode, pid=job["proc"].pid)
                raise self._terminal_failure(error)
            if self.deadline_action == "fail":
                # Serving contract: a blown deadline is a typed answer,
                # not a license to keep burning the supervisor's time.
                error = _job_error_shell(
                    job["spec"],
                    detection="timeout" if kind == "timeout" else "wedged",
                    attempt=attempt, pid=job["proc"].pid)
                raise self._terminal_failure(error)
            # Timeouts/wedges keep the guaranteed-progress contract:
            # one final in-process attempt (resuming from checkpoint).
            try:
                result = _execute_or_resume(
                    job["spec"],
                    checkpoint_path=job["path"])
            except Exception as exc:
                error = _job_error(job["spec"], exc, attempt + 1)
                raise self._terminal_failure(error) from exc
            result.attempts = attempt + 1
            return result

        def finish(job, result):
            executed[job["key"]] = result
            self._cleanup_checkpoint(job["path"])
            self._emit({"event": "done", "label": job["spec"].label(),
                        "key": job["key"][:12], "cached": False,
                        "wall_seconds": result.wall_seconds,
                        "attempts": result.attempts,
                        "resumed": result.resumed})

        def abort_target():
            """The job an abort is attributed to: the oldest live
            attempt, else the head of the work queue."""
            if active:
                job = active[min(active)]
                return job["spec"], job["attempt"] + 1
            key, spec, attempt = work[0]
            return spec, attempt + 1

        try:
            while work or active:
                if cancel is not None and cancel.is_set():
                    spec, attempt = abort_target()
                    raise self._terminal_failure(
                        _job_error_shell(spec, "cancelled", attempt=attempt))
                if deadline is not None and time.monotonic() > deadline:
                    spec, attempt = abort_target()
                    raise self._terminal_failure(
                        _job_error_shell(spec, "deadline", attempt=attempt))
                while work and free:
                    launch(*work.popleft())
                # One multiplexed wait on every result pipe and process
                # sentinel; the timeout bounds deadline-check latency.
                # (Never time.sleep here: backoff must own that call.)
                waitables = [job["conn"] for job in active.values()]
                waitables += [job["proc"].sentinel for job in active.values()]
                if waitables:
                    _mpconn.wait(waitables, timeout=0.05)
                now = time.monotonic()
                for slot in sorted(active):
                    job = active[slot]
                    result = None
                    if job["conn"].poll():
                        try:
                            result = job["conn"].recv()
                        except (EOFError, OSError):
                            result = None  # died mid-send: a crash
                    if result is not None:
                        job = retire(slot)
                        if isinstance(result, JobError):
                            self.failures.append(result)
                            self._emit({"event": "failure",
                                        "label": job["spec"].label(),
                                        "key": job["key"][:12],
                                        "attempt": result.attempt,
                                        "exc_type": result.exc_type,
                                        "message": result.message})
                            attempt = job["attempt"] + 1
                            if attempt <= self.retries:
                                retried += 1
                                self._sleep_backoff(attempt)
                                work.append((job["key"], job["spec"],
                                             attempt))
                            else:
                                # Already appended/emitted above.
                                raise self._terminal_failure(result,
                                                             emit=False)
                        else:
                            finish(job, result)
                        continue
                    if not job["proc"].is_alive():
                        self._crashes += 1
                        job = retire(slot)
                        done = reschedule(job, "crash")
                        if done is not None:  # pragma: no cover - crash
                            finish(job, done)  # path never falls back
                        continue
                    if (self.timeout is not None
                            and now - job["started"] > self.timeout):
                        timeouts += 1
                        job = retire(slot, kill=True)
                        done = reschedule(job, "timeout")
                        if done is not None:
                            finish(job, done)
                        continue
                    if now - hb[slot] > self.heartbeat_timeout:
                        self._wedged += 1
                        job = retire(slot, kill=True)
                        done = reschedule(job, "wedged")
                        if done is not None:
                            finish(job, done)
        finally:
            # The no-orphans guarantee: kill + join every live worker on
            # every exit path (KeyboardInterrupt included).
            for job in active.values():
                job["proc"].kill()
            for job in active.values():
                job["proc"].join()
                job["conn"].close()
        return executed, timeouts, retried

    # -- plumbing -----------------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.progress is not None:
            self.progress(event)


def make_orchestrator(jobs: int = 1, use_cache: bool = False,
                      cache_dir: Optional[Path] = None,
                      timeout: Optional[float] = None, retries: int = 1,
                      backoff: float = 0.0,
                      progress: Optional[ProgressFn] = None,
                      checkpoint_dir: Optional[Path] = None,
                      dump_dir: Optional[str] = None,
                      cache_max_bytes: Optional[int] = None) -> Orchestrator:
    """CLI/benchmark convenience constructor."""
    cache = None
    if use_cache:
        cache = DiskCache(cache_dir or default_cache_dir(),
                          max_bytes=cache_max_bytes)
    return Orchestrator(jobs=jobs, cache=cache, timeout=timeout,
                        retries=retries, backoff=backoff, progress=progress,
                        checkpoint_dir=checkpoint_dir, dump_dir=dump_dir)
