"""Sharded parallel experiment orchestration.

The evaluation surface (Figs. 8-15, the tables, the queue/latency
sweeps) is a bag of *independent, deterministic* simulations: every cell
builds a fresh :class:`~repro.system.Soc`, runs one (workload,
technique) pair, and reports plain numbers.  That independence is the
host-side analogue of the parallelism MAPLE itself exploits — so this
module shards cells across worker processes the same way the engine
shards outstanding loads across queue slots.

The moving parts:

:class:`RunSpec`
    A frozen, picklable description of one experiment cell.  Its
    :func:`spec_key` is a stable hash over the full :class:`SoCConfig`
    plus technique/kernel/scale/seed, so identical cells dedupe within a
    batch, hit the on-disk cache across runs, and seed their workers
    deterministically.

:class:`RunResult`
    The measurements a cell produces (cycles, load counts, latencies,
    the full stats dump) plus execution metadata (wall time, attempts,
    cache provenance).  Metadata never feeds figure rendering, which is
    what makes parallel output byte-identical to serial output.

:class:`DiskCache`
    One JSON file per spec key.  Corrupt or stale-schema files read as
    misses; writes are atomic (tmp + rename) so a killed run never
    poisons the cache.

:class:`Orchestrator`
    ``run(specs)`` returns results **in submission order** regardless of
    completion order.  ``jobs=1`` is a pure in-process serial loop (no
    pool, no pickling); ``jobs>1`` fans out over a ``multiprocessing``
    pool with a per-job timeout and bounded retry, falling back to an
    in-process attempt so a hung worker can stall but never sink a run.

Determinism contract: a :class:`RunSpec` fully determines its
:class:`RunResult` (the simulator is single-threaded and seeded), so
``--jobs N`` changes wall-clock only — never a number.  The
parallel-equals-serial test in ``tests/test_orchestrator.py`` and the
differential fuzz suite pin this.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import random
import time
import traceback as _traceback
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple,
)

from repro.params import SoCConfig
from repro.sim.faults import FaultPlan

#: Bump when RunResult's serialized shape changes: old cache files then
#: read as misses instead of mis-parsing.
CACHE_SCHEMA = 3

ProgressFn = Callable[[Dict[str, Any]], None]


# -- job specification -----------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One experiment cell: everything ``run_workload`` needs, picklable.

    ``dataset_kwargs`` is a sorted tuple of ``(key, value)`` pairs (use
    :func:`freeze_dataset_kwargs`) so specs stay hashable and their JSON
    form is canonical.  ``config=None`` means the harness default
    :class:`SoCConfig`.
    """

    workload: str
    technique: str
    threads: int = 2
    scale: int = 1
    seed: int = 0
    prefetch_distance: int = 4
    hop_latency_override: Optional[int] = None
    dataset_kwargs: Tuple[Tuple[str, Any], ...] = ()
    lima_packed: bool = True
    check: bool = True
    config: Optional[SoCConfig] = None
    #: Seeded fault plan to install for the run (None = fault free).
    fault_plan: Optional[FaultPlan] = None
    #: Seeded corruption plan (drops/dups/bit flips); mutually exclusive
    #: with ``fault_plan`` — a separate cell field so corruption sweeps
    #: never collide with timing-noise sweeps in the cache.
    integrity_plan: Optional[FaultPlan] = None
    #: Arm live queue shadows + the quiescence audit for this cell.
    check_invariants: bool = False
    #: Arm the liveness watchdog (default parameters) for this cell.
    watchdog: bool = False

    def label(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.dataset_kwargs)
        cfg = self.config.name if self.config is not None else "default"
        fault = (f" faults#{self.fault_plan.seed}"
                 if self.fault_plan is not None else "")
        integrity = (f" integrity#{self.integrity_plan.seed}"
                     if self.integrity_plan is not None else "")
        return (f"{self.workload}/{self.technique} x{self.threads} "
                f"[{cfg}]{extra}{fault}{integrity}")

    def run_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``run_workload`` (minus workload/technique)."""
        return {
            "config": self.config,
            "threads": self.threads,
            "scale": self.scale,
            "seed": self.seed,
            "prefetch_distance": self.prefetch_distance,
            "hop_latency_override": self.hop_latency_override,
            "dataset_kwargs": dict(self.dataset_kwargs),
            "lima_packed": self.lima_packed,
            "check": self.check,
            "fault_plan": self.fault_plan,
            "integrity_plan": self.integrity_plan,
            "check_invariants": self.check_invariants,
            "watchdog": self.watchdog,
        }


def freeze_dataset_kwargs(kwargs: Optional[dict]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical (sorted, hashable) form of a dataset_kwargs dict."""
    return tuple(sorted((kwargs or {}).items()))


def spec_key(spec: RunSpec) -> str:
    """Stable hex digest identifying a spec across processes and runs.

    Hashes the canonical JSON of every spec field with the config
    expanded to its full :meth:`SoCConfig.stable_dict` — so any knob
    change (queue depth, cache geometry, hop latency, ...) is a new key.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "workload": spec.workload,
        "technique": spec.technique,
        "threads": spec.threads,
        "scale": spec.scale,
        "seed": spec.seed,
        "prefetch_distance": spec.prefetch_distance,
        "hop_latency_override": spec.hop_latency_override,
        "dataset_kwargs": list(list(pair) for pair in spec.dataset_kwargs),
        "lima_packed": spec.lima_packed,
        "check": spec.check,
        "config": (spec.config.stable_dict()
                   if spec.config is not None else None),
        "fault_plan": (spec.fault_plan.stable_dict()
                       if spec.fault_plan is not None else None),
        "integrity_plan": (spec.integrity_plan.stable_dict()
                           if spec.integrity_plan is not None else None),
        "check_invariants": spec.check_invariants,
        "watchdog": spec.watchdog,
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


# -- job result -------------------------------------------------------------------


@dataclass
class RunResult:
    """Measurements of one cell plus execution metadata.

    Only :meth:`identity` fields are determined by the spec; the
    metadata (``wall_seconds``, ``attempts``, ``from_cache``,
    ``worker_pid``) varies run to run and must never feed rendering.
    """

    workload: str
    technique: str
    threads: int
    cycles: int
    fallback_doall: bool
    total_loads: int
    avg_load_latency: float
    events_executed: int
    stats: Dict[str, float]
    fault_seed: Optional[int] = None
    fault_events: int = 0
    invariants_checked: Optional[List[int]] = None
    key: str = ""
    wall_seconds: float = 0.0
    attempts: int = 1
    from_cache: bool = False
    worker_pid: int = 0

    def identity(self) -> Dict[str, Any]:
        """The deterministic payload (what caching/equality compare)."""
        return {
            "workload": self.workload,
            "technique": self.technique,
            "threads": self.threads,
            "cycles": self.cycles,
            "fallback_doall": self.fallback_doall,
            "total_loads": self.total_loads,
            "avg_load_latency": self.avg_load_latency,
            "events_executed": self.events_executed,
            "fault_seed": self.fault_seed,
            "fault_events": self.fault_events,
            "invariants_checked": self.invariants_checked,
            "stats": self.stats,
        }

    def to_json(self) -> Dict[str, Any]:
        payload = self.identity()
        payload["schema"] = CACHE_SCHEMA
        payload["key"] = self.key
        payload["wall_seconds"] = self.wall_seconds
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RunResult":
        if payload.get("schema") != CACHE_SCHEMA:
            raise ValueError("cache schema mismatch")
        return cls(
            workload=payload["workload"],
            technique=payload["technique"],
            threads=payload["threads"],
            cycles=payload["cycles"],
            fallback_doall=payload["fallback_doall"],
            total_loads=payload["total_loads"],
            avg_load_latency=payload["avg_load_latency"],
            events_executed=payload["events_executed"],
            stats=dict(payload["stats"]),
            fault_seed=payload.get("fault_seed"),
            fault_events=payload.get("fault_events", 0),
            invariants_checked=payload.get("invariants_checked"),
            key=payload.get("key", ""),
            wall_seconds=payload.get("wall_seconds", 0.0),
            from_cache=True,
        )


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one cell in the current process (the picklable entry point).

    Seeds the global RNGs from the spec key first: the simulator itself
    never consults them, but this insulates dataset generation (and any
    future component) from whatever the host process did before us —
    worker N's result cannot depend on which jobs it ran earlier.
    """
    from repro.harness.techniques import run_workload

    derived = int(spec_key(spec)[:16], 16)
    random.seed(derived)
    try:
        import numpy
        numpy.random.seed(derived & 0xFFFFFFFF)
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass

    start = time.perf_counter()
    result = run_workload(spec.workload, spec.technique, **spec.run_kwargs())
    summary = result.summary()
    checked = summary.get("invariants_checked")
    return RunResult(
        workload=summary["workload"],
        technique=summary["technique"],
        threads=summary["threads"],
        cycles=summary["cycles"],
        fallback_doall=summary["fallback_doall"],
        total_loads=summary["total_loads"],
        avg_load_latency=summary["avg_load_latency"],
        events_executed=summary["events_executed"],
        stats=summary["stats"],
        fault_seed=summary.get("fault_seed"),
        fault_events=summary.get("fault_events", 0),
        # Lists, not tuples: identity() must round-trip through JSON.
        invariants_checked=list(checked) if checked is not None else None,
        key=spec_key(spec),
        wall_seconds=time.perf_counter() - start,
        worker_pid=os.getpid(),
    )


@dataclass
class JobError:
    """Structured failure record for one attempt at one cell.

    Everything needed to reproduce and triage without the worker's
    process: the exception type and message, the full traceback text,
    the fault seed (faulted fuzz cells), and which attempt/PID failed.
    Picklable, so it crosses the pool boundary intact where a custom
    exception instance might not.
    """

    label: str
    key: str
    exc_type: str
    message: str
    traceback: str
    attempt: int = 1
    fault_seed: Optional[int] = None
    worker_pid: int = 0

    def summary(self) -> str:
        fault = (f" [fault seed {self.fault_seed}]"
                 if self.fault_seed is not None else "")
        return (f"{self.label}{fault} failed on attempt {self.attempt} "
                f"with {self.exc_type}: {self.message}")


class OrchestratorError(RuntimeError):
    """A cell failed on every attempt; carries the final :class:`JobError`."""

    def __init__(self, job_error: JobError):
        self.job_error = job_error
        super().__init__(
            f"{job_error.summary()}\n--- worker traceback ---\n"
            f"{job_error.traceback}")


def _job_error(spec: RunSpec, exc: BaseException, attempt: int) -> JobError:
    return JobError(
        label=spec.label(),
        key=spec_key(spec),
        exc_type=type(exc).__name__,
        message=str(exc),
        traceback=_traceback.format_exc(),
        attempt=attempt,
        fault_seed=(spec.fault_plan.seed if spec.fault_plan is not None
                    else spec.integrity_plan.seed
                    if spec.integrity_plan is not None else None),
        worker_pid=os.getpid(),
    )


def _pool_worker(payload):
    """Module-level pool target (picklable under fork and spawn starts).

    ``hang_keys`` is the fault-injection hook the timeout/retry tests
    use: listed specs sleep through their deadline on their *first*
    attempt only, so a retry then succeeds deterministically.

    Returns a :class:`RunResult` on success or a :class:`JobError` on
    failure — never raises, so the parent always gets structured info
    (exception type, traceback, fault seed) instead of a bare remote
    traceback.
    """
    spec, attempt, hang_keys, hang_seconds = payload
    if attempt == 0 and spec_key(spec) in hang_keys:
        time.sleep(hang_seconds)
    try:
        result = execute_spec(spec)
    except Exception as exc:
        return _job_error(spec, exc, attempt + 1)
    result.attempts = attempt + 1
    return result


# -- on-disk result cache ---------------------------------------------------------


class DiskCache:
    """One JSON file per spec key under ``root`` (atomic writes).

    Unreadable, corrupt, or schema-mismatched files count as misses —
    the cache can only ever cost a re-simulation, never a wrong number.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            result = RunResult.from_json(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(result.to_json(), sort_keys=True))
        tmp.replace(path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-harness``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-harness"


# -- the orchestrator -------------------------------------------------------------


class Orchestrator:
    """Shard independent :class:`RunSpec` cells across worker processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs everything serially
        in-process — no pool, no pickling, bit-identical results.
    cache:
        A :class:`DiskCache` (or ``None`` to disable).  Cells found in
        the cache are not re-simulated.
    timeout:
        Per-job seconds before a worker is presumed hung and the cell is
        retried (``None`` = wait forever).  Only meaningful for
        ``jobs > 1``.
    retries:
        Pool resubmissions after a timeout or worker failure before the
        final in-process fallback attempt (timeouts) or the structured
        :class:`OrchestratorError` (failures).
    backoff:
        Base seconds slept before retry ``n`` (exponential:
        ``backoff * 2**(n-1)``); ``0`` disables sleeping.
    progress:
        Optional callback receiving structured event dicts
        (``start`` / ``done`` / ``timeout`` / ``failure`` / ``finish``).
    inject_hang:
        Test hook: spec keys whose first attempt sleeps through the
        deadline (see :func:`_pool_worker`).
    """

    def __init__(self, jobs: int = 1, cache: Optional[DiskCache] = None,
                 timeout: Optional[float] = None, retries: int = 1,
                 backoff: float = 0.0,
                 progress: Optional[ProgressFn] = None,
                 inject_hang: FrozenSet[str] = frozenset()):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.progress = progress
        self.inject_hang = frozenset(inject_hang)
        self.report: Dict[str, Any] = {}
        #: Structured record of every failed attempt this run observed
        #: (the final one is also raised as :class:`OrchestratorError`).
        self.failures: List[JobError] = []

    # -- public API ---------------------------------------------------------------

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec; results come back in submission order.

        Identical specs (same key) within one batch are simulated once
        and fanned out — the figure code can stay naive about shared
        baselines.
        """
        started = time.perf_counter()
        keys = [spec_key(spec) for spec in specs]
        self._emit({"event": "start", "total": len(specs),
                    "jobs": self.jobs})

        results: Dict[str, RunResult] = {}
        timeouts = 0
        retried = 0

        # Cache probe + in-batch dedup: `pending` keeps first-occurrence
        # order, which is the deterministic submission order workers see.
        pending: List[Tuple[str, RunSpec]] = []
        seen = set()
        for key, spec in zip(keys, specs):
            if key in seen:
                continue
            seen.add(key)
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    self._emit({"event": "done", "label": spec.label(),
                                "key": key[:12], "cached": True,
                                "wall_seconds": 0.0, "attempts": 0})
                    continue
            pending.append((key, spec))

        if pending:
            if self.jobs == 1:
                executed = self._run_serial(pending)
            else:
                executed, timeouts, retried = self._run_pool(pending)
            for key, result in executed.items():
                results[key] = result
                if self.cache is not None:
                    self.cache.put(key, result)

        wall = time.perf_counter() - started
        self.report = {
            "total": len(specs),
            "unique": len(seen),
            "cached": sum(1 for r in results.values() if r.from_cache),
            "executed": len(pending),
            "timeouts": timeouts,
            "retries": retried,
            "jobs": self.jobs,
            "wall_seconds": wall,
            "sim_seconds": sum(r.wall_seconds for r in results.values()),
            "per_job": [
                {"label": spec.label(), "key": key[:12],
                 "wall_seconds": results[key].wall_seconds,
                 "attempts": results[key].attempts,
                 "cached": results[key].from_cache}
                for key, spec in zip(keys, specs)
            ],
        }
        self._emit({"event": "finish", **{k: v for k, v in self.report.items()
                                          if k != "per_job"}})
        return [results[key] for key in keys]

    # -- execution strategies -----------------------------------------------------

    def _run_serial(self, pending) -> Dict[str, RunResult]:
        executed: Dict[str, RunResult] = {}
        for key, spec in pending:
            try:
                result = execute_spec(spec)
            except Exception as exc:
                # Same structured failure shape the pool path produces,
                # so callers triage serial and parallel runs identically.
                error = _job_error(spec, exc, attempt=1)
                self.failures.append(error)
                self._emit({"event": "failure", "label": spec.label(),
                            "key": key[:12], "attempt": 1,
                            "exc_type": error.exc_type,
                            "message": error.message})
                raise OrchestratorError(error) from exc
            executed[key] = result
            self._emit({"event": "done", "label": spec.label(),
                        "key": key[:12], "cached": False,
                        "wall_seconds": result.wall_seconds, "attempts": 1})
        return executed

    def _sleep_backoff(self, attempt: int) -> None:
        """Exponential pause before retry ``attempt`` (1-based)."""
        if self.backoff > 0:
            time.sleep(self.backoff * (2 ** (attempt - 1)))

    def _run_pool(self, pending):
        """Fan out over a process pool; collect in submission order.

        A cell that misses its deadline is resubmitted up to
        ``retries`` times (fault injection only fires on attempt 0, and
        a genuinely hung worker just keeps sleeping in its slot), then
        run in-process as the final fallback.  A cell whose worker
        *failed* comes back as a :class:`JobError`; it is retried with
        exponential backoff (transient host trouble) and, if it fails
        every attempt, raised as :class:`OrchestratorError` carrying the
        worker's exception type, traceback, and fault seed.  The pool is
        terminated — not joined — when any worker was presumed hung.
        """
        hang_seconds = min((self.timeout or 1.0) * 10, 60.0)
        ctx = multiprocessing.get_context()
        executed: Dict[str, RunResult] = {}
        timeouts = 0
        retried = 0
        pool = ctx.Pool(processes=min(self.jobs, len(pending)))
        try:
            futures = [
                (key, spec, pool.apply_async(
                    _pool_worker, ((spec, 0, self.inject_hang, hang_seconds),)))
                for key, spec in pending
            ]
            for key, spec, future in futures:
                attempt = 0
                while True:
                    try:
                        result = future.get(self.timeout)
                    except multiprocessing.TimeoutError:
                        timeouts += 1
                        attempt += 1
                        self._emit({"event": "timeout", "label": spec.label(),
                                    "key": key[:12], "attempt": attempt})
                        if attempt <= self.retries:
                            retried += 1
                            self._sleep_backoff(attempt)
                            future = pool.apply_async(
                                _pool_worker,
                                ((spec, attempt, self.inject_hang,
                                  hang_seconds),))
                            continue
                        # Last resort: guaranteed-progress local attempt
                        # (wrapped so even it reports structured failure).
                        try:
                            result = execute_spec(spec)
                        except Exception as exc:
                            error = _job_error(spec, exc, attempt + 1)
                            self.failures.append(error)
                            self._emit({"event": "failure",
                                        "label": spec.label(),
                                        "key": key[:12],
                                        "attempt": attempt + 1,
                                        "exc_type": error.exc_type,
                                        "message": error.message})
                            raise OrchestratorError(error) from exc
                        result.attempts = attempt + 1
                        break
                    if isinstance(result, JobError):
                        self.failures.append(result)
                        attempt += 1
                        self._emit({"event": "failure", "label": spec.label(),
                                    "key": key[:12], "attempt": attempt,
                                    "exc_type": result.exc_type,
                                    "message": result.message})
                        if attempt <= self.retries:
                            retried += 1
                            self._sleep_backoff(attempt)
                            future = pool.apply_async(
                                _pool_worker,
                                ((spec, attempt, self.inject_hang,
                                  hang_seconds),))
                            continue
                        raise OrchestratorError(result)
                    break
                executed[key] = result
                self._emit({"event": "done", "label": spec.label(),
                            "key": key[:12], "cached": False,
                            "wall_seconds": result.wall_seconds,
                            "attempts": result.attempts})
        finally:
            if timeouts:
                pool.terminate()  # a hung worker would block close/join
            else:
                pool.close()
            pool.join()
        return executed, timeouts, retried

    # -- plumbing -----------------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.progress is not None:
            self.progress(event)


def make_orchestrator(jobs: int = 1, use_cache: bool = False,
                      cache_dir: Optional[Path] = None,
                      timeout: Optional[float] = None, retries: int = 1,
                      backoff: float = 0.0,
                      progress: Optional[ProgressFn] = None) -> Orchestrator:
    """CLI/benchmark convenience constructor."""
    cache = None
    if use_cache:
        cache = DiskCache(cache_dir or default_cache_dir())
    return Orchestrator(jobs=jobs, cache=cache, timeout=timeout,
                        retries=retries, backoff=backoff, progress=progress)
