"""Fault-tolerant simulation-as-a-service over the experiment orchestrator.

ROADMAP item 3 made concrete: a long-running, stdlib-asyncio HTTP front
end that turns the supervised :class:`~repro.harness.orchestrator.
Orchestrator` into a batch-serving layer whose headline is **robustness
under overload and failure**, built from the same idioms the simulated
SoC uses:

- **Bounded admission with credit backpressure** — the
  :mod:`repro.sim.port` credit idiom applied at the service edge.  The
  admission queue holds at most ``queue_depth`` live jobs (queued +
  running); a submission that finds no credit is *rejected now* with
  ``429`` and a ``Retry-After`` estimate instead of queueing unboundedly
  and timing out later.  Within the queue, jobs drain in (priority,
  arrival) order.
- **Deadline budgets** — every job carries ``deadline_s``; the budget
  covers queueing *and* execution and propagates into the orchestrator
  as a per-attempt ``timeout`` plus an absolute ``deadline`` with
  ``deadline_action="fail"``, so a job that blows its budget mid-run is
  killed (no orphans) and retired as a typed ``JobTimeout`` /
  ``JobDeadlineExceeded`` — a promise to the client, not a hint.
- **Request coalescing** — the job id *is* the sha256
  :func:`~repro.harness.orchestrator.spec_key`, so N identical
  submissions share one :class:`Job` and fund one simulation; completed
  keys are served straight from the :class:`~repro.harness.orchestrator.
  DiskCache` (size-capped LRU) without burning a credit.
- **Circuit breaking + graceful degradation** — repeated
  *infrastructure* failures (worker crashes, cache ENOSPC) trip a
  closed → open → half-open breaker.  While open, new work is shed with
  ``503`` + ``Retry-After``, but cached results keep being served with
  an explicit ``stale: true`` marker; after the cooldown one probe job
  is let through and its outcome closes or re-opens the breaker.
- **Crash-resumable jobs** — every admission is appended to a durable
  write-ahead journal (JSONL, fsync'd) before it is acknowledged.  A
  killed-and-restarted service replays the journal, re-enqueues every
  job without a terminal event, and the orchestrator resumes each one
  from its last :mod:`repro.sim.checkpoint` checkpoint instead of cycle
  0.  Torn tails and corrupt lines are tolerated (counted, skipped) and
  the journal is compacted at boot so it cannot grow without bound.

The serving contract is held to the same oracle discipline as the rest
of the harness: every job a client sees complete returns the
bit-identical :meth:`~repro.harness.orchestrator.RunResult.identity`
payload of an uninterrupted serial run — kills, restarts, retries, and
cache round trips included (``tests/test_service_chaos.py``).
"""

from __future__ import annotations

import argparse
import asyncio
import concurrent.futures
import json
import logging
import math
import os
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.harness.orchestrator import (
    DiskCache,
    Orchestrator,
    OrchestratorError,
    RunSpec,
    freeze_dataset_kwargs,
    spec_key,
)

SERVICE_SCHEMA = 1
JOURNAL_VERSION = 1

_log = logging.getLogger("repro.harness.service")

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: Job states.  queued/running are live (hold a credit); the rest are
#: terminal.  "interrupted" is the one non-journaled pseudo-terminal
#: state: a graceful shutdown cancelled the run but deliberately left
#: the journal non-terminal so the next boot recovers the job.
LIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed", "timeout", "cancelled", "interrupted")


class ServiceSpecError(ValueError):
    """A submitted spec failed validation — rejected with 400 before it
    can burn a credit or a worker."""


# -- wire codec for RunSpec --------------------------------------------------------

#: The JSON-able subset of RunSpec the HTTP API accepts.  Config
#: presets, fault plans, and invariant knobs stay server-side policy:
#: the service exists to serve sweeps, not to execute arbitrary pickles.
_WIRE_FIELDS: Dict[str, Any] = {
    "workload": str,
    "technique": str,
    "threads": int,
    "scale": int,
    "seed": int,
    "prefetch_distance": int,
    "hop_latency_override": (int, type(None)),
    "dataset_kwargs": dict,
    "lima_packed": bool,
    "check": bool,
    "checkpoint_every": (int, type(None)),
}

_INT_BOUNDS = {
    "threads": (1, 64),
    "scale": (1, 64),
    "seed": (0, 2**32 - 1),
    "prefetch_distance": (1, 1024),
    "hop_latency_override": (0, 1024),
    "checkpoint_every": (1, 10**9),
}


def spec_from_wire(payload: Any) -> RunSpec:
    """Validate and build a :class:`RunSpec` from an API JSON object.

    Strict by design: unknown fields, wrong types, out-of-range values,
    and unknown workloads/techniques are all typed
    :class:`ServiceSpecError` — a bad spec must cost the client a 400,
    never the service a worker.
    """
    from repro.harness.techniques import HARNESS_TECHNIQUES
    from repro.kernels import ALL_WORKLOADS

    if not isinstance(payload, dict):
        raise ServiceSpecError("spec must be a JSON object")
    unknown = sorted(set(payload) - set(_WIRE_FIELDS))
    if unknown:
        raise ServiceSpecError(f"unknown spec field(s): {', '.join(unknown)}")
    for name in ("workload", "technique"):
        if name not in payload:
            raise ServiceSpecError(f"spec is missing required field {name!r}")
    kwargs: Dict[str, Any] = {}
    for name, value in payload.items():
        expected = _WIRE_FIELDS[name]
        if expected is int and isinstance(value, bool):
            raise ServiceSpecError(f"spec field {name!r} must be an integer")
        if not isinstance(value, expected):
            raise ServiceSpecError(
                f"spec field {name!r} has the wrong type "
                f"({type(value).__name__})")
        if name in _INT_BOUNDS and value is not None:
            lo, hi = _INT_BOUNDS[name]
            if not lo <= value <= hi:
                raise ServiceSpecError(
                    f"spec field {name!r} out of range [{lo}, {hi}]")
        kwargs[name] = value
    if kwargs["workload"] not in ALL_WORKLOADS:
        raise ServiceSpecError(
            f"unknown workload {kwargs['workload']!r} "
            f"(known: {', '.join(sorted(ALL_WORKLOADS))})")
    if kwargs["technique"] not in HARNESS_TECHNIQUES:
        raise ServiceSpecError(
            f"unknown technique {kwargs['technique']!r} "
            f"(known: {', '.join(HARNESS_TECHNIQUES)})")
    dk = kwargs.pop("dataset_kwargs", None)
    if dk is not None:
        for key, value in dk.items():
            if not isinstance(key, str) or not isinstance(
                    value, (str, int, float, bool, type(None))):
                raise ServiceSpecError(
                    "dataset_kwargs must map strings to scalars")
        kwargs["dataset_kwargs"] = freeze_dataset_kwargs(dk)
    try:
        return RunSpec(**kwargs)
    except (TypeError, ValueError) as err:  # pragma: no cover - belt
        raise ServiceSpecError(f"invalid spec: {err}") from err


def spec_to_wire(spec: RunSpec) -> Dict[str, Any]:
    """The journal/API JSON form of a spec (inverse of
    :func:`spec_from_wire` for the supported subset)."""
    return {
        "workload": spec.workload,
        "technique": spec.technique,
        "threads": spec.threads,
        "scale": spec.scale,
        "seed": spec.seed,
        "prefetch_distance": spec.prefetch_distance,
        "hop_latency_override": spec.hop_latency_override,
        "dataset_kwargs": dict(spec.dataset_kwargs),
        "lima_packed": spec.lima_packed,
        "check": spec.check,
        "checkpoint_every": spec.checkpoint_every,
    }


# -- circuit breaker ---------------------------------------------------------------


class CircuitBreaker:
    """Closed → open → half-open breaker over *infrastructure* failures.

    Model-level failures (a client submitted a spec that deterministically
    raises) are the client's problem and never trip it; worker crashes
    and cache ENOSPC are the service's problem and do.  While open,
    :meth:`admit` refuses everything until ``cooldown`` has elapsed,
    then lets exactly one probe through (half-open); the probe's outcome
    closes or re-opens the circuit.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 5.0):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be > 0")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.consecutive = 0
        self.failures = 0
        self.open_count = 0
        self.opened_at: Optional[float] = None
        self.last_failure_kind: Optional[str] = None
        self._probing = False

    def admit(self) -> bool:
        """May a new simulation be funded right now?  (Half-open: the
        single probe slot is consumed by a True return.)"""
        if self.state == "closed":
            return True
        if (self.state == "open"
                and time.monotonic() - self.opened_at >= self.cooldown):
            self.state = "half-open"
            self._probing = False
        if self.state == "half-open" and not self._probing:
            self._probing = True
            return True
        return False

    def release_probe(self) -> None:
        """A probe ended without an infrastructure verdict (cancelled,
        deadline): free the slot so the next submission probes again."""
        self._probing = False

    def record_success(self) -> None:
        self.consecutive = 0
        if self.state != "closed":
            _log.info("circuit breaker: probe succeeded, closing")
        self.state = "closed"
        self.opened_at = None
        self._probing = False

    def record_failure(self, kind: str) -> None:
        self.failures += 1
        self.consecutive += 1
        self.last_failure_kind = kind
        if self.state == "half-open" or self.consecutive >= self.threshold:
            if self.state != "open":
                self.open_count += 1
                _log.warning("circuit breaker OPEN after %d consecutive "
                             "%s failure(s)", self.consecutive, kind)
            self.state = "open"
            self.opened_at = time.monotonic()
            self._probing = False

    def retry_after(self) -> float:
        if self.state == "open" and self.opened_at is not None:
            return max(1.0, self.cooldown - (time.monotonic() - self.opened_at))
        return max(1.0, self.cooldown / 2)

    def view(self) -> Dict[str, Any]:
        return {"state": self.state, "threshold": self.threshold,
                "cooldown_s": self.cooldown, "failures": self.failures,
                "consecutive": self.consecutive,
                "open_count": self.open_count,
                "last_failure_kind": self.last_failure_kind}


# -- write-ahead journal -----------------------------------------------------------


class Journal:
    """Append-only JSONL write-ahead log of job lifecycle events.

    Every admission is journaled (and fsync'd) *before* the client gets
    its 202 — the acknowledgement is the durability promise.  Reads are
    forgiving where writes are strict: a torn final line (the classic
    SIGKILL-mid-append shape) is tolerated silently-but-counted, corrupt
    interior lines are skipped and counted, and boot compacts the file
    down to its live entries so restarts stay O(live jobs), not O(all
    traffic ever).
    """

    #: Events that end a job's life in the journal.  "interrupted" is
    #: deliberately absent: a graceful shutdown leaves jobs recoverable.
    TERMINAL_EVENTS = ("done", "failed", "timeout", "cancelled")

    def __init__(self, path, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.events_written = 0
        self.bad_lines = 0
        self.torn_tail = False
        self.compactions = 0

    def append(self, event: str, **fields) -> None:
        record = {"v": JOURNAL_VERSION, "e": event, "t": time.time()}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.events_written += 1

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover
            pass

    @staticmethod
    def scan(path) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Parse a journal file, tolerating damage.

        Returns ``(entries, bad_lines, torn_tail)``: unparseable interior
        lines are skipped and counted in ``bad_lines``; an unparseable
        *final* line is the torn-write signature and sets ``torn_tail``
        instead (a crash mid-append is expected damage, not corruption).
        """
        path = Path(path)
        if not path.exists():
            return [], 0, False
        raw = path.read_text(encoding="utf-8", errors="replace")
        lines = raw.splitlines()
        entries: List[Dict[str, Any]] = []
        bad = 0
        torn = False
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "e" not in record:
                    raise ValueError("not a journal record")
            except ValueError:
                if index == len(lines) - 1:
                    torn = True
                else:
                    bad += 1
                continue
            entries.append(record)
        return entries, bad, torn

    def compact(self, live_submits: List[Dict[str, Any]]) -> None:
        """Atomically rewrite the journal to just the live submissions
        (tmp + rename, same discipline as the cache)."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in live_submits:
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        tmp.replace(self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.compactions += 1

    def view(self) -> Dict[str, Any]:
        return {"path": str(self.path), "events_written": self.events_written,
                "bad_lines": self.bad_lines, "torn_tail": self.torn_tail,
                "compactions": self.compactions}


# -- job record --------------------------------------------------------------------


@dataclass
class Job:
    """One admitted (or recovered) unit of work; identity == spec key."""

    job_id: str
    spec: RunSpec
    wire: Dict[str, Any]
    priority: int
    deadline_s: float
    submitted_mono: float
    submitted_wall: float
    state: str = "queued"
    waiters: int = 1
    recovered: bool = False
    attempts: int = 0
    resumed: bool = False
    stale: bool = False
    holds_credit: bool = True
    probe: bool = False
    cancel_requested: bool = False
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def deadline_at(self) -> float:
        return self.submitted_mono + self.deadline_s

    def view(self) -> Dict[str, Any]:
        now = time.monotonic()
        view: Dict[str, Any] = {
            "job": self.job_id,
            "state": self.state,
            "spec": self.wire,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "waiters": self.waiters,
            "recovered": self.recovered,
            "attempts": self.attempts,
            "resumed": self.resumed,
            "stale": self.stale,
            "age_s": round(now - self.submitted_mono, 3),
        }
        if self.result is not None:
            view["result"] = self.result
        if self.error is not None:
            view["error"] = self.error
        return view


# -- service configuration ---------------------------------------------------------


@dataclass
class ServiceConfig:
    """Every service knob, CLI-mappable and test-constructible."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral
    workdir: Path = Path("service-data")
    workers: int = 2                   # concurrent simulations
    queue_depth: int = 16              # admission credits (queued+running)
    default_deadline_s: float = 120.0
    max_deadline_s: float = 600.0
    default_checkpoint_every: Optional[int] = 25_000
    retries: int = 1
    heartbeat_timeout: float = 30.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    cache_max_bytes: Optional[int] = None
    journal_fsync: bool = True
    max_wait_s: float = 30.0           # long-poll cap on GET ?wait=
    max_done_jobs: int = 512           # in-memory terminal-job history
    port_file: Optional[Path] = None
    #: Chaos hooks, forwarded into each job's Orchestrator / DiskCache.
    inject_kill: FrozenSet[str] = frozenset()
    inject_kill_all: FrozenSet[str] = frozenset()
    inject_stop: FrozenSet[str] = frozenset()
    inject_hang: FrozenSet[str] = frozenset()
    inject_cache_error: FrozenSet[str] = frozenset()

    @property
    def journal_path(self) -> Path:
        return Path(self.workdir) / "journal.jsonl"

    @property
    def cache_dir(self) -> Path:
        return Path(self.workdir) / "cache"

    @property
    def checkpoint_dir(self) -> Path:
        return Path(self.workdir) / "checkpoints"

    @property
    def dump_dir(self) -> Path:
        return Path(self.workdir) / "dumps"


# -- the service -------------------------------------------------------------------


class SimService:
    """The asyncio HTTP job service.  One instance == one event loop's
    worth of state; start/stop from within that loop (see
    :class:`ServiceThread` for the test-friendly wrapper)."""

    def __init__(self, cfg: ServiceConfig):
        if cfg.workers < 1 or cfg.queue_depth < 1:
            raise ValueError("workers and queue_depth must be >= 1")
        if cfg.default_deadline_s <= 0 or cfg.max_deadline_s <= 0:
            raise ValueError("deadline budgets must be > 0")
        self.cfg = cfg
        Path(cfg.workdir).mkdir(parents=True, exist_ok=True)
        self.cache = DiskCache(cfg.cache_dir, max_bytes=cfg.cache_max_bytes,
                               inject_write_error=cfg.inject_cache_error)
        self.breaker = CircuitBreaker(threshold=cfg.breaker_threshold,
                                      cooldown=cfg.breaker_cooldown_s)
        self.journal = Journal(cfg.journal_path, fsync=cfg.journal_fsync)
        self.jobs: Dict[str, Job] = {}
        self._done_order: List[str] = []
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._credits_in_use = 0
        self._avg_wall = 0.5           # EWMA of completed job wall seconds
        self._cache_errors_seen = 0
        self._started_mono = time.monotonic()
        self.port: Optional[int] = None
        self.counters: Dict[str, int] = {
            "submitted": 0, "admitted": 0, "coalesced": 0,
            "rejected_busy": 0, "rejected_open": 0, "rejected_invalid": 0,
            "served_cached": 0, "served_stale": 0,
            "completed": 0, "failed": 0, "timeouts": 0, "cancelled": 0,
            "interrupted": 0, "recovered": 0, "sims_executed": 0,
            "journal_recovered_submits": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []
        self._stopping = False
        self._queue_cond: Optional[asyncio.Condition] = None
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=cfg.workers, thread_name_prefix="sim-exec")

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> int:
        """Recover the journal, bind the socket, launch workers; returns
        the bound port."""
        self._queue_cond = asyncio.Condition()
        self._recover()
        self._server = await asyncio.start_server(
            self._handle_conn, self.cfg.host, self.cfg.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.journal.append("boot", pid=os.getpid(), port=self.port)
        for n in range(self.cfg.workers):
            self._tasks.append(asyncio.create_task(
                self._worker(n), name=f"service-worker-{n}"))
        self._tasks.append(asyncio.create_task(
            self._reaper(), name="service-reaper"))
        if self.cfg.port_file is not None:
            tmp = Path(self.cfg.port_file).with_suffix(".tmp")
            tmp.write_text(str(self.port))
            tmp.replace(self.cfg.port_file)
        _log.info("service listening on %s:%d (workdir %s)",
                  self.cfg.host, self.port, self.cfg.workdir)
        return self.port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, cancel running simulations
        (their journal entries stay non-terminal → the next boot
        recovers them), drain tasks, close the journal."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for job in self.jobs.values():
            if job.state in LIVE_STATES:
                job.cancel_event.set()
        async with self._queue_cond:
            self._queue_cond.notify_all()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self._pool.shutdown(wait=True)
        self.journal.close()

    # -- journal recovery ---------------------------------------------------------

    def _recover(self) -> None:
        """Replay the WAL: compact it, then re-enqueue every job that
        was admitted but never reached a terminal event.  Their
        checkpoints (if any) make the re-run a resume, not a restart."""
        entries, bad, torn = Journal.scan(self.cfg.journal_path)
        self.journal.bad_lines += bad
        self.journal.torn_tail = self.journal.torn_tail or torn
        submits: Dict[str, Dict[str, Any]] = {}
        terminal: Dict[str, str] = {}
        for record in entries:
            event = record.get("e")
            job_id = record.get("job")
            if event == "submit" and isinstance(job_id, str):
                submits[job_id] = record
                terminal.pop(job_id, None)  # resubmission after terminal
            elif event in Journal.TERMINAL_EVENTS and isinstance(job_id, str):
                terminal[job_id] = event
        live = [record for job_id, record in submits.items()
                if job_id not in terminal]
        self.journal.compact(live)
        for record in live:
            try:
                spec = spec_from_wire(record.get("spec"))
            except ServiceSpecError as err:
                # A journal whose spec no longer validates (schema drift,
                # bit rot that still parsed as JSON) is counted, logged,
                # and dropped — recovery must never crash the boot.
                self.journal.bad_lines += 1
                _log.warning("dropping unrecoverable journal submit %r: %s",
                             record.get("job"), err)
                continue
            job_id = spec_key(spec)
            deadline_s = float(record.get("deadline_s")
                               or self.cfg.default_deadline_s)
            job = Job(job_id=job_id, spec=self._with_checkpointing(spec),
                      wire=spec_to_wire(spec),
                      priority=int(record.get("priority") or 0),
                      deadline_s=min(deadline_s, self.cfg.max_deadline_s),
                      submitted_mono=time.monotonic(),
                      submitted_wall=time.time(),
                      recovered=True)
            self.jobs[job_id] = job
            self._credits_in_use += 1
            self._push(job)
            self.counters["recovered"] += 1
            self.counters["journal_recovered_submits"] += 1
            self.journal.append("recover", job=job_id)
        if live:
            _log.info("recovered %d in-flight job(s) from the journal",
                      len(live))

    # -- admission ----------------------------------------------------------------

    def _with_checkpointing(self, spec: RunSpec) -> RunSpec:
        """Service policy: every job checkpoints (key-neutral), so a
        service crash resumes instead of restarting."""
        if spec.checkpoint_every is None and self.cfg.default_checkpoint_every:
            return replace(spec,
                           checkpoint_every=self.cfg.default_checkpoint_every)
        return spec

    def _push(self, job: Job) -> None:
        import heapq
        self._seq += 1
        heapq.heappush(self._heap, (-job.priority, self._seq, job.job_id))

    def _retry_after_busy(self) -> float:
        queued = self._credits_in_use
        estimate = self._avg_wall * max(1, queued) / self.cfg.workers
        return min(60.0, max(1.0, math.ceil(estimate)))

    def _job_from_cache_hit(self, job_id: str, spec: RunSpec,
                            hit, stale: bool) -> Job:
        """Materialize a terminal in-memory Job for a disk-cache hit so
        later GETs resolve without re-reading the cache."""
        job = Job(job_id=job_id, spec=spec, wire=spec_to_wire(spec),
                  priority=0, deadline_s=self.cfg.default_deadline_s,
                  submitted_mono=time.monotonic(), submitted_wall=time.time(),
                  state="done", holds_credit=False, stale=stale)
        job.result = self._result_payload(hit, from_cache=True)
        job.done.set()
        self.jobs[job_id] = job
        self._trim_done(job_id)
        return job

    @staticmethod
    def _result_payload(result, from_cache: bool = False) -> Dict[str, Any]:
        payload = result.identity()
        payload["key"] = result.key
        payload["from_cache"] = bool(from_cache or result.from_cache)
        payload["resumed"] = result.resumed
        payload["attempts"] = result.attempts
        payload["wall_seconds"] = result.wall_seconds
        return payload

    async def _submit(self, body: Dict[str, Any]):
        self.counters["submitted"] += 1
        try:
            if not isinstance(body, dict):
                raise ServiceSpecError("request body must be a JSON object")
            spec = spec_from_wire(body.get("spec"))
            priority = body.get("priority", 0)
            if not isinstance(priority, int) or not -100 <= priority <= 100:
                raise ServiceSpecError("priority must be an int in [-100, 100]")
            deadline_s = body.get("deadline_s", self.cfg.default_deadline_s)
            if (not isinstance(deadline_s, (int, float))
                    or isinstance(deadline_s, bool) or deadline_s <= 0):
                raise ServiceSpecError("deadline_s must be a positive number")
            deadline_s = min(float(deadline_s), self.cfg.max_deadline_s)
        except ServiceSpecError as err:
            self.counters["rejected_invalid"] += 1
            return 400, {"error": "invalid-spec", "message": str(err)}, {}

        job_id = spec_key(spec)
        existing = self.jobs.get(job_id)

        # Coalesce onto a live job: N submissions fund one simulation.
        if existing is not None and existing.state in LIVE_STATES:
            existing.waiters += 1
            self.counters["coalesced"] += 1
            view = existing.view()
            view["coalesced"] = True
            return 202, view, {}

        # Completed in memory or on disk: serve without a credit.  With
        # the breaker non-closed this is the degradation tier — the
        # result may predate the current incident, so say so.
        stale = self.breaker.state != "closed"
        if existing is not None and existing.state == "done":
            self.counters["served_stale" if stale else "served_cached"] += 1
            view = existing.view()
            view["stale"] = stale
            view["cached"] = True
            return 200, view, {}
        hit = self.cache.get(job_id)
        if hit is not None:
            self.counters["served_stale" if stale else "served_cached"] += 1
            job = self._job_from_cache_hit(job_id, spec, hit, stale)
            view = job.view()
            view["cached"] = True
            return 200, view, {}

        # New work needs both a credit and a closed (or probing) breaker.
        if self._credits_in_use >= self.cfg.queue_depth:
            self.counters["rejected_busy"] += 1
            retry = self._retry_after_busy()
            return (429,
                    {"error": "admission-queue-full", "retry_after_s": retry,
                     "queue_depth": self.cfg.queue_depth},
                    {"Retry-After": str(int(math.ceil(retry)))})
        if not self.breaker.admit():
            self.counters["rejected_open"] += 1
            retry = self.breaker.retry_after()
            return (503,
                    {"error": "circuit-open", "retry_after_s": retry,
                     "breaker": self.breaker.view()},
                    {"Retry-After": str(int(math.ceil(retry)))})

        job = Job(job_id=job_id, spec=self._with_checkpointing(spec),
                  wire=spec_to_wire(spec), priority=priority,
                  deadline_s=deadline_s, submitted_mono=time.monotonic(),
                  submitted_wall=time.time(),
                  probe=self.breaker.state == "half-open")
        # WAL before ACK: the 202 is the durability promise.
        self.journal.append("submit", job=job_id, spec=job.wire,
                            priority=priority, deadline_s=deadline_s)
        self.jobs[job_id] = job
        self._credits_in_use += 1
        self.counters["admitted"] += 1
        self._push(job)
        async with self._queue_cond:
            self._queue_cond.notify()
        return 202, job.view(), {}

    # -- execution ----------------------------------------------------------------

    async def _next_job(self) -> Optional[Job]:
        import heapq
        while True:
            async with self._queue_cond:
                while not self._heap and not self._stopping:
                    await self._queue_cond.wait()
                if self._stopping and not self._heap:
                    return None
                _, _, job_id = heapq.heappop(self._heap)
            job = self.jobs.get(job_id)
            if job is not None and job.state == "queued":
                return job

    async def _worker(self, n: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._next_job()
            if job is None:
                return
            if self._stopping:
                self._finalize(job, "interrupted")
                continue
            if job.cancel_requested:
                self._finalize(job, "cancelled")
                continue
            remaining = job.deadline_at - time.monotonic()
            if remaining <= 0:
                self._finalize(job, "timeout", error={
                    "exc_type": "JobDeadlineExceeded",
                    "message": "deadline budget expired while queued"})
                continue
            job.state = "running"
            job.started_mono = time.monotonic()
            self.journal.append("start", job=job.job_id,
                                recovered=job.recovered)
            try:
                result, report = await loop.run_in_executor(
                    self._pool, self._execute, job, remaining)
            except OrchestratorError as err:
                self._classify_failure(job, err)
            except Exception as err:  # pragma: no cover - supervisor bug
                _log.exception("unexpected executor failure for %s",
                               job.job_id)
                self._finalize(job, "failed", error={
                    "exc_type": type(err).__name__, "message": str(err)})
                self._breaker_feedback(job, success=False, kind="internal")
            else:
                self.counters["sims_executed"] += report.get("executed", 0)
                job.attempts = result.attempts
                job.resumed = result.resumed
                wall = time.monotonic() - job.started_mono
                self._avg_wall = 0.7 * self._avg_wall + 0.3 * wall
                self._finalize(job, "done",
                               result=self._result_payload(result))
                self._breaker_feedback(job, success=True)

    def _execute(self, job: Job, remaining: float):
        """Thread-pool entry: one supervised orchestrator run for one
        job, deadline-bounded, checkpoint-resuming, cache-writing."""
        orch = Orchestrator(
            jobs=2, cache=self.cache, timeout=remaining,
            retries=self.cfg.retries, deadline_action="fail",
            heartbeat_timeout=self.cfg.heartbeat_timeout,
            checkpoint_dir=self.cfg.checkpoint_dir,
            dump_dir=str(self.cfg.dump_dir),
            inject_kill=self.cfg.inject_kill,
            inject_kill_all=self.cfg.inject_kill_all,
            inject_stop=self.cfg.inject_stop,
            inject_hang=self.cfg.inject_hang)
        results = orch.run([job.spec], cancel=job.cancel_event,
                           deadline=job.deadline_at)
        return results[0], orch.report

    def _classify_failure(self, job: Job, err: OrchestratorError) -> None:
        info = err.job_error
        error = {"exc_type": info.exc_type, "message": info.message,
                 "detection": info.detection, "attempt": info.attempt,
                 "dump_path": info.dump_path}
        if info.exc_type in ("JobTimeout", "JobDeadlineExceeded"):
            self._finalize(job, "timeout", error=error)
            self._breaker_feedback(job, success=None)
        elif info.exc_type == "JobCancelled":
            state = "cancelled" if job.cancel_requested else "interrupted"
            self._finalize(job, state, error=error)
            self._breaker_feedback(job, success=None)
        elif info.exc_type in ("WorkerCrashed", "WorkerWedged"):
            self._finalize(job, "failed", error=error)
            self._breaker_feedback(job, success=False, kind="worker-crash")
        else:
            # A model-level exception is deterministic client sorrow,
            # not service sickness: surface it, keep the breaker out.
            self._finalize(job, "failed", error=error)
            self._breaker_feedback(job, success=None)

    def _breaker_feedback(self, job: Job, success: Optional[bool],
                          kind: str = "") -> None:
        """Feed the breaker: ENOSPC deltas count as infrastructure
        failures even when the job itself completed (the cache write was
        absorbed, but the disk is sick)."""
        enospc = self.cache.write_errors - self._cache_errors_seen
        self._cache_errors_seen = self.cache.write_errors
        if enospc > 0:
            self.breaker.record_failure("enospc")
        elif success is True:
            self.breaker.record_success()
        elif success is False:
            self.breaker.record_failure(kind or "infrastructure")
        elif job.probe:
            self.breaker.release_probe()

    def _finalize(self, job: Job, state: str,
                  result: Optional[Dict[str, Any]] = None,
                  error: Optional[Dict[str, Any]] = None) -> None:
        job.state = state
        job.result = result
        job.error = error
        job.finished_mono = time.monotonic()
        if job.holds_credit:
            job.holds_credit = False
            self._credits_in_use -= 1
        if state in Journal.TERMINAL_EVENTS:  # "interrupted" stays live
            self.journal.append(state, job=job.job_id,
                                attempts=job.attempts, resumed=job.resumed)
        tally = {"done": "completed", "failed": "failed",
                 "timeout": "timeouts", "cancelled": "cancelled",
                 "interrupted": "interrupted"}[state]
        self.counters[tally] += 1
        job.done.set()
        self._trim_done(job.job_id)

    def _trim_done(self, job_id: str) -> None:
        self._done_order.append(job_id)
        while len(self._done_order) > self.cfg.max_done_jobs:
            victim = self._done_order.pop(0)
            job = self.jobs.get(victim)
            if job is not None and job.state not in LIVE_STATES:
                self.jobs.pop(victim, None)

    async def _reaper(self) -> None:
        """Expire *queued* jobs whose deadline passed while every worker
        was busy — a deadline is honored even when nobody is free to
        pop the job and notice."""
        while not self._stopping:
            now = time.monotonic()
            for job in list(self.jobs.values()):
                if job.state == "queued" and now > job.deadline_at:
                    self._finalize(job, "timeout", error={
                        "exc_type": "JobDeadlineExceeded",
                        "message": "deadline budget expired while queued"})
            try:
                await asyncio.sleep(0.1)
            except asyncio.CancelledError:  # pragma: no cover
                return

    # -- HTTP ---------------------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                try:
                    status, payload, extra = await self._route(
                        method, target, body)
                except ServiceSpecError as err:
                    status, payload, extra = 400, {"error": str(err)}, {}
                except Exception as err:  # pragma: no cover - handler bug
                    _log.exception("handler error for %s %s", method, target)
                    status, payload, extra = (
                        500, {"error": "internal",
                              "message": f"{type(err).__name__}: {err}"}, {})
                self._write_response(writer, status, payload, extra,
                                     keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        for _ in range(100):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > 1_000_000:
            raise ServiceSpecError("request body too large")
        body: Any = None
        if length:
            raw_body = await reader.readexactly(length)
            try:
                body = json.loads(raw_body)
            except ValueError as err:
                raise ServiceSpecError(f"request body is not JSON: {err}") \
                    from err
        return method.upper(), target, headers, body

    def _write_response(self, writer, status: int, payload: Dict[str, Any],
                        extra: Dict[str, str], keep_alive: bool) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        lines += [f"{name}: {value}" for name, value in extra.items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)

    async def _route(self, method: str, target: str, body: Any):
        path, _, query = target.partition("?")
        params = {}
        for pair in query.split("&"):
            if "=" in pair:
                name, _, value = pair.partition("=")
                params[name] = value
        parts = [p for p in path.split("/") if p]

        if path == "/health" and method == "GET":
            return 200, self.health(), {}
        if path == "/jobs" and method == "POST":
            return await self._submit(body if body is not None else {})
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            return await self._status(parts[1], params)
        if (len(parts) == 3 and parts[0] == "jobs"
                and parts[2] == "cancel" and method == "POST"):
            return self._cancel(parts[1])
        if path in ("/jobs", "/health") or (parts and parts[0] == "jobs"):
            return 405, {"error": "method-not-allowed"}, {}
        return 404, {"error": "not-found", "path": path}, {}

    async def _status(self, job_id: str, params: Dict[str, str]):
        job = self.jobs.get(job_id)
        if job is None:
            # Fall back to the disk cache: done jobs trimmed from memory
            # (or finished in a previous service life) are still known.
            hit = self.cache.get(job_id)
            if hit is not None:
                stale = self.breaker.state != "closed"
                job = self._job_from_cache_hit(
                    job_id, RunSpec(hit.workload, hit.technique,
                                    threads=hit.threads), hit, stale)
                view = job.view()
                view.pop("spec", None)  # reconstructed spec is partial
                view["cached"] = True
                return 200, view, {}
            return 404, {"error": "unknown-job", "job": job_id}, {}
        wait = params.get("wait")
        if wait is not None and job.state in LIVE_STATES:
            try:
                seconds = min(float(wait), self.cfg.max_wait_s)
            except ValueError:
                raise ServiceSpecError("wait must be a number")
            try:
                await asyncio.wait_for(
                    asyncio.shield(job.done.wait()), timeout=seconds)
            except asyncio.TimeoutError:
                pass
        return 200, job.view(), {}

    def _cancel(self, job_id: str):
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": "unknown-job", "job": job_id}, {}
        if job.state in LIVE_STATES:
            job.cancel_requested = True
            job.cancel_event.set()
            if job.state == "queued":
                self._finalize(job, "cancelled")
        view = job.view()
        view["cancel_requested"] = job.cancel_requested
        return 200, view, {}

    def health(self) -> Dict[str, Any]:
        queued = sum(1 for j in self.jobs.values() if j.state == "queued")
        running = sum(1 for j in self.jobs.values() if j.state == "running")
        return {
            "schema": SERVICE_SCHEMA,
            "status": "ok" if self.breaker.state == "closed" else "degraded",
            "pid": os.getpid(),
            "port": self.port,
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "workers": self.cfg.workers,
            "credits": {"total": self.cfg.queue_depth,
                        "in_use": self._credits_in_use,
                        "free": self.cfg.queue_depth - self._credits_in_use},
            "queued": queued,
            "running": running,
            "avg_job_wall_s": round(self._avg_wall, 4),
            "breaker": self.breaker.view(),
            "counters": dict(self.counters),
            "journal": self.journal.view(),
            "cache": self.cache.counters(),
        }


# -- test/bench-friendly background wrapper ----------------------------------------


class ServiceThread:
    """Run a :class:`SimService` on a dedicated thread's event loop.

    The chaos/fuzz/test layers talk to it over real HTTP (loopback) —
    the in-process part is only where the loop runs, not what the
    clients exercise.
    """

    def __init__(self, cfg: ServiceConfig):
        self.cfg = cfg
        self.service = SimService(cfg)
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> int:
        self._thread = threading.Thread(target=self._main,
                                        name="sim-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._boot_error is not None:
            raise RuntimeError("service failed to boot") from self._boot_error
        return self.port

    def _main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self.port = self._loop.run_until_complete(self.service.start())
        except BaseException as err:
            self._boot_error = err
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.service.stop())
            self._loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def request(self, method: str, path: str, body: Any = None,
                timeout: float = 30.0) -> Tuple[int, Dict[str, str],
                                                Dict[str, Any]]:
        """One synchronous HTTP request against the running service."""
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=timeout)
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            headers = {name.lower(): value
                       for name, value in response.getheaders()}
            data = json.loads(response.read() or b"{}")
            return response.status, headers, data
        finally:
            conn.close()


# -- CLI ---------------------------------------------------------------------------


def build_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        host=args.host, port=args.port, workdir=Path(args.workdir),
        workers=args.workers, queue_depth=args.queue_depth,
        default_deadline_s=args.default_deadline,
        max_deadline_s=args.max_deadline,
        default_checkpoint_every=args.checkpoint_every or None,
        retries=args.retries,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        cache_max_bytes=args.cache_max_bytes or None,
        journal_fsync=not args.no_fsync,
        port_file=Path(args.port_file) if args.port_file else None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.service",
        description="Simulation-as-a-service over the experiment "
                    "orchestrator (see DESIGN.md 'Simulation as a "
                    "service').")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks an ephemeral port (printed + "
                             "optionally written to --port-file)")
    parser.add_argument("--workdir", default="service-data",
                        help="journal/cache/checkpoints/dumps root")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=16)
    parser.add_argument("--default-deadline", type=float, default=120.0)
    parser.add_argument("--max-deadline", type=float, default=600.0)
    parser.add_argument("--checkpoint-every", type=int, default=25_000)
    parser.add_argument("--retries", type=int, default=1)
    parser.add_argument("--breaker-threshold", type=int, default=3)
    parser.add_argument("--breaker-cooldown", type=float, default=5.0)
    parser.add_argument("--cache-max-bytes", type=int, default=0,
                        help="LRU cap on the result cache (0 = unbounded)")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip fsync on journal appends (benchmarks "
                             "only: trades durability for write latency)")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port here once listening")
    parser.add_argument("--tag", default=None,
                        help="opaque marker kept on the command line so "
                             "process scans can find this service tree")
    args = parser.parse_args(argv)

    logging.basicConfig(level=logging.INFO,
                        format="%(asctime)s %(name)s %(message)s")
    service = SimService(build_config(args))

    async def run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        port = await service.start()
        print(f"SERVICE-READY port={port} pid={os.getpid()}", flush=True)
        await stop.wait()
        await service.stop()

    asyncio.run(run())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
