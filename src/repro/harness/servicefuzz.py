"""Service-level chaos fuzzing: seeded campaigns against the job service.

:mod:`repro.harness.chaosfuzz` attacks the orchestrator from inside the
process; this module attacks the **serving layer** the way production
does — over HTTP, across process lifetimes, and through its durable
state.  Each case draws one adversity from a weighted family list:

- ``coalesce-burst`` — a thundering herd of identical submissions must
  fund exactly one simulation;
- ``admission-flood`` — more distinct jobs than credits: the surplus
  must bounce with 429 + ``Retry-After`` and every admitted job must
  still finish correctly;
- ``deadline-storm`` — jobs whose budgets expire while queued or
  mid-run must retire as typed timeouts with their credits returned;
- ``journal-truncate`` / ``journal-garbage`` — the write-ahead journal
  is torn at a random byte or salted with garbage lines; the next boot
  must recover every surviving admission and crash on none of it;
- ``breaker-crash`` — repeated worker crashes must trip the circuit
  breaker (shed with 503, serve cached results with a staleness marker,
  close again after a successful half-open probe);
- ``cache-enospc`` — injected cache-write failures must not cost the
  client its result but must register as infrastructure sickness;
- ``service-kill-recover`` — the whole service process is SIGKILLed
  mid-job: no worker may outlive it, and the restarted service must
  journal-recover the job and resume it from its checkpoint.

Every completed job is held to the **golden-output oracle** (identity
equal to the uninterrupted serial baseline, bit for bit), every failure
must be a **typed, structured state** over the API (never a hang or a
silently wrong number), and every case must leave **no orphan processes
and no stray tmp/lock files**.  Everything derives from
``SERVICE_MASTER_SEED + case``; ``tests/test_service_chaos.py`` runs
the ≥100-case gate.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

from repro.harness.chaosfuzz import _assert_hygiene, golden_result
from repro.harness.orchestrator import RunSpec, spec_key
from repro.harness.service import ServiceConfig, ServiceThread

SERVICE_MASTER_SEED = 20260807
N_CASES = 120

#: Weighted adversity mix.  The in-process families dominate (cheap,
#: largest state space); the subprocess SIGKILL family gets enough
#: draws that full-service recovery fires many times per campaign.
FAMILIES = (
    "coalesce-burst", "coalesce-burst", "coalesce-burst",
    "admission-flood", "admission-flood", "admission-flood",
    "deadline-storm", "deadline-storm",
    "journal-truncate", "journal-truncate",
    "journal-garbage", "journal-garbage",
    "breaker-crash", "breaker-crash",
    "cache-enospc",
    "service-kill-recover",
)

#: Cheap, deterministic cells for admitted work (goldens are memoized
#: per spec across the whole campaign via chaosfuzz.golden_result).
_POOL = (
    RunSpec("spmv", "lima", threads=1),
    RunSpec("spmv", "doall", threads=2),
    RunSpec("sdhp", "doall", threads=2),
)

#: Distinct cells for flood traffic (every admission is a real sim).
_FLOOD_POOL = tuple(
    RunSpec(workload, technique, threads=threads, seed=seed)
    for workload, technique, threads in (("spmv", "lima", 1),
                                         ("spmv", "doall", 2),
                                         ("sdhp", "doall", 2))
    for seed in (0, 1))

#: Slow enough (~400k cycles) to be caught mid-run by the kill family.
_KILL_SPEC = RunSpec("spmv", "doall", threads=2, scale=4)


@dataclass(frozen=True)
class ServiceCase:
    """One materialized service-chaos case; pure function of the seed."""

    case: int
    family: str
    spec: RunSpec
    count: int          # burst size / flood surplus / storm size
    queue_depth: int
    cut: float          # where (0..1) the journal families damage the file

    def describe(self) -> str:
        return (f"case {self.case}: {self.family} vs {self.spec.label()} "
                f"(count={self.count}, depth={self.queue_depth})")


@dataclass
class ServiceOutcome:
    """What one case did and how it was judged."""

    case: int
    family: str
    label: str
    ok: bool
    oracle: str
    detail: str = ""


def service_case(case: int,
                 master_seed: int = SERVICE_MASTER_SEED) -> ServiceCase:
    """Materialize case ``case``; pure function of ``(master_seed, case)``."""
    rng = random.Random(master_seed + case)
    family = rng.choice(FAMILIES)
    return ServiceCase(case=case, family=family,
                       spec=rng.choice(_POOL),
                       count=rng.randrange(3, 12),
                       queue_depth=rng.randrange(2, 5),
                       cut=rng.random())


def _wire(spec: RunSpec) -> Dict[str, object]:
    return {"workload": spec.workload, "technique": spec.technique,
            "threads": spec.threads, "scale": spec.scale, "seed": spec.seed}


def _await_terminal(svc: ServiceThread, job: str,
                    timeout: float = 60.0) -> Dict[str, object]:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = svc.request("GET", f"/jobs/{job}?wait=10")
        if body.get("state") not in ("queued", "running"):
            return body
    raise AssertionError(f"job {job[:12]} never reached a terminal state")


def _assert_golden(body: Dict[str, object], spec: RunSpec) -> None:
    golden = golden_result(spec).identity()
    result = body.get("result") or {}
    got = {name: result.get(name) for name in golden}
    assert got == golden, (
        f"served result diverged from the serial baseline for "
        f"{spec.label()}: {got} != {golden}")


def _svc(workdir: Path, **overrides) -> ServiceThread:
    defaults = dict(workdir=workdir, workers=1, queue_depth=8,
                    journal_fsync=False, default_checkpoint_every=15_000,
                    default_deadline_s=120.0)
    defaults.update(overrides)
    svc = ServiceThread(ServiceConfig(**defaults))
    svc.start()
    return svc


# -- family implementations -------------------------------------------------------


def _run_coalesce_burst(sc: ServiceCase, rng, wd: Path) -> ServiceOutcome:
    """N identical submissions must fund exactly one simulation."""
    svc = _svc(wd)
    try:
        job = None
        for _ in range(sc.count):
            status, _, body = svc.request("POST", "/jobs",
                                          {"spec": _wire(sc.spec)})
            assert status in (200, 202), f"burst submit bounced: {status}"
            job = body["job"]
        final = _await_terminal(svc, job)
        assert final["state"] == "done", f"burst job ended {final['state']}"
        _assert_golden(final, sc.spec)
        _, _, health = svc.request("GET", "/health")
        counters = health["counters"]
        assert counters["admitted"] == 1, (
            f"{counters['admitted']} sims funded for identical submissions")
        absorbed = counters["coalesced"] + counters["served_cached"]
        assert absorbed == sc.count - 1, (
            f"coalescing accounting off: {counters}")
        assert health["credits"]["in_use"] == 0, "credit leak after burst"
    finally:
        svc.stop()
    return ServiceOutcome(sc.case, sc.family, sc.spec.label(), ok=True,
                          oracle="golden-identity",
                          detail=f"{sc.count} submissions, 1 sim")


def _run_admission_flood(sc: ServiceCase, rng, wd: Path) -> ServiceOutcome:
    """More distinct jobs than credits: surplus bounces with 429 +
    Retry-After; every admitted job completes golden."""
    depth = sc.queue_depth
    flood = list(_FLOOD_POOL)[:depth + 2]
    svc = _svc(wd, queue_depth=depth)
    try:
        admitted, bounced = [], 0
        for spec in flood:
            status, headers, body = svc.request("POST", "/jobs",
                                                {"spec": _wire(spec)})
            if status == 429:
                bounced += 1
                assert "retry-after" in headers, "429 without Retry-After"
                assert float(headers["retry-after"]) >= 1
            else:
                assert status == 202, f"flood submit got {status}"
                admitted.append((body["job"], spec))
        assert len(admitted) == depth, (
            f"admitted {len(admitted)} jobs with {depth} credits")
        assert bounced == len(flood) - depth, "429 accounting off"
        for job, spec in admitted:
            final = _await_terminal(svc, job)
            assert final["state"] == "done", (
                f"admitted job ended {final['state']}")
            _assert_golden(final, spec)
        _, _, health = svc.request("GET", "/health")
        assert health["credits"]["in_use"] == 0, "credit leak after flood"
        # Credits are free again: a bounced spec now gets in.
        status, _, _ = svc.request("POST", "/jobs",
                                   {"spec": _wire(flood[-1])})
        assert status in (200, 202), "credits not returned after drain"
    finally:
        svc.stop()
    return ServiceOutcome(sc.case, sc.family, sc.spec.label(), ok=True,
                          oracle="golden-identity",
                          detail=f"{depth} admitted, {bounced} bounced")


def _run_deadline_storm(sc: ServiceCase, rng, wd: Path) -> ServiceOutcome:
    """Budgets that expire queued or mid-run retire as typed timeouts
    with credits returned; bystander work still completes golden."""
    svc = _svc(wd)
    mid_run = rng.random() < 0.5
    try:
        doomed = []
        if mid_run:
            # One slow job whose budget dies mid-simulation.
            status, _, body = svc.request(
                "POST", "/jobs",
                {"spec": _wire(_KILL_SPEC), "deadline_s": 0.15})
            assert status == 202
            doomed.append(body["job"])
        else:
            # Occupy the single worker, then queue doomed jobs behind it.
            status, _, occupier = svc.request(
                "POST", "/jobs", {"spec": _wire(sc.spec)})
            assert status in (200, 202)
            for index in range(min(sc.count, 4)):
                spec = RunSpec("spmv", "doall", threads=2,
                               seed=500 + index)
                status, _, body = svc.request(
                    "POST", "/jobs",
                    {"spec": _wire(spec), "deadline_s": 0.02})
                if status == 202:
                    doomed.append(body["job"])
        for job in doomed:
            final = _await_terminal(svc, job)
            assert final["state"] == "timeout", (
                f"doomed job ended {final['state']}, wanted timeout")
            error = final.get("error") or {}
            assert error.get("exc_type") in ("JobDeadlineExceeded",
                                             "JobTimeout"), (
                f"untyped deadline failure: {error}")
        # A bystander submitted after the storm still completes golden.
        status, _, body = svc.request("POST", "/jobs",
                                      {"spec": _wire(sc.spec)})
        assert status in (200, 202)
        final = _await_terminal(svc, body["job"])
        assert final["state"] == "done"
        _assert_golden(final, sc.spec)
        _, _, health = svc.request("GET", "/health")
        assert health["credits"]["in_use"] == 0, "credit leak after storm"
    finally:
        svc.stop()
    return ServiceOutcome(sc.case, sc.family, sc.spec.label(), ok=True,
                          oracle="typed-timeout+golden",
                          detail=f"{len(doomed)} doomed "
                                 f"({'mid-run' if mid_run else 'queued'})")


def _interrupted_service(sc: ServiceCase, wd: Path) -> List[str]:
    """Phase 1 for the journal families: admit jobs, stop the service
    while they are still in flight (graceful interrupt → journal keeps
    their submits non-terminal)."""
    svc = _svc(wd)
    jobs = []
    try:
        for spec in list(_FLOOD_POOL)[:max(2, min(sc.count, 4))]:
            status, _, body = svc.request("POST", "/jobs",
                                          {"spec": _wire(spec)})
            assert status == 202
            jobs.append((body["job"], spec))
    finally:
        svc.stop()
    return jobs


def _run_journal_truncate(sc: ServiceCase, rng, wd: Path) -> ServiceOutcome:
    """Tear the journal at a random byte; the next boot recovers every
    surviving admission and runs it to the golden answer."""
    jobs = _interrupted_service(sc, wd)
    journal = wd / "journal.jsonl"
    data = journal.read_bytes()
    cut = max(1, int(len(data) * (0.3 + 0.7 * sc.cut)))
    journal.write_bytes(data[:cut])
    svc = _svc(wd)
    try:
        recovered = lost = 0
        for job, spec in jobs:
            status, _, body = svc.request("GET", f"/jobs/{job}")
            if status == 404:
                lost += 1      # its submit line was cut away — honest loss
                continue
            if body.get("cached"):
                # Finished before phase 1 stopped; the cache, not the
                # journal, is its durability — still must be golden.
                _assert_golden(body, spec)
                continue
            recovered += 1
            final = _await_terminal(svc, job)
            assert final["state"] == "done", (
                f"recovered job ended {final['state']}")
            assert final["recovered"], "journal recovery flag missing"
            _assert_golden(final, spec)
        _, _, health = svc.request("GET", "/health")
        assert health["counters"]["recovered"] == recovered
        assert health["credits"]["in_use"] == 0
    finally:
        svc.stop()
    return ServiceOutcome(sc.case, sc.family, sc.spec.label(), ok=True,
                          oracle="golden-identity",
                          detail=f"cut@{cut}B: {recovered} recovered, "
                                 f"{lost} lost")


def _run_journal_garbage(sc: ServiceCase, rng, wd: Path) -> ServiceOutcome:
    """Salt the journal with garbage lines; boot must skip + count them
    and still recover every valid admission."""
    jobs = _interrupted_service(sc, wd)
    journal = wd / "journal.jsonl"
    lines = journal.read_text().splitlines()
    garbage = ["{torn", "\x00\x01binary\x02", "[]", '{"no-event":1}']
    # Insert before an existing line, never past the end: garbage as the
    # final line would (correctly) count as a torn tail instead.
    for _ in range(rng.randrange(1, 4)):
        lines.insert(rng.randrange(len(lines)), rng.choice(garbage))
    journal.write_text("\n".join(lines) + "\n")
    svc = _svc(wd)
    try:
        assert svc.service.journal.bad_lines >= 1, (
            "garbage lines were not counted")
        recovered = 0
        for job, spec in jobs:
            status, _, body = svc.request("GET", f"/jobs/{job}")
            if body.get("cached"):
                _assert_golden(body, spec)   # finished before phase-1 stop
                continue
            recovered += 1
            final = _await_terminal(svc, job)
            assert final["state"] == "done" and final["recovered"]
            _assert_golden(final, spec)
        _, _, health = svc.request("GET", "/health")
        assert health["counters"]["recovered"] == recovered
        assert health["credits"]["in_use"] == 0
    finally:
        svc.stop()
    return ServiceOutcome(sc.case, sc.family, sc.spec.label(), ok=True,
                          oracle="golden-identity",
                          detail=f"{len(jobs)} recovered through garbage")


def _run_breaker_crash(sc: ServiceCase, rng, wd: Path) -> ServiceOutcome:
    """Worker crashes trip the breaker: shed with 503, serve cached
    results stale, close again after a successful probe."""
    threshold = 1 + sc.case % 2
    crash_specs = [RunSpec("spmv", "doall", threads=2, seed=900 + index)
                   for index in range(threshold)]
    svc = _svc(wd, retries=0, breaker_threshold=threshold,
               breaker_cooldown_s=0.5,
               inject_kill_all=frozenset(spec_key(s) for s in crash_specs))
    try:
        # Prime the cache with a clean result first.
        status, _, body = svc.request("POST", "/jobs",
                                      {"spec": _wire(sc.spec)})
        _await_terminal(svc, body["job"])
        for spec in crash_specs:
            status, _, body = svc.request("POST", "/jobs",
                                          {"spec": _wire(spec)})
            assert status == 202
            final = _await_terminal(svc, body["job"])
            assert final["state"] == "failed"
            assert (final.get("error") or {}).get("exc_type") == \
                "WorkerCrashed", f"untyped crash: {final.get('error')}"
        _, _, health = svc.request("GET", "/health")
        assert health["breaker"]["state"] == "open", (
            f"breaker did not open: {health['breaker']}")
        assert health["status"] == "degraded"
        # Shed new work with 503 + Retry-After...
        fresh = RunSpec("sdhp", "doall", threads=2, seed=950)
        status, headers, _ = svc.request("POST", "/jobs",
                                         {"spec": _wire(fresh)})
        assert status == 503 and "retry-after" in headers, (
            f"open breaker did not shed: {status}")
        # ...but keep serving the cached result, marked stale.
        status, _, body = svc.request("POST", "/jobs",
                                      {"spec": _wire(sc.spec)})
        assert status == 200 and body["stale"] is True, (
            f"degraded tier broken: {status} {body.get('stale')}")
        _assert_golden(body, sc.spec)
        # Cooldown → half-open probe succeeds → closed.
        time.sleep(0.6)
        status, _, body = svc.request("POST", "/jobs",
                                      {"spec": _wire(fresh)})
        assert status == 202, f"half-open probe not admitted: {status}"
        final = _await_terminal(svc, body["job"])
        assert final["state"] == "done"
        _assert_golden(final, fresh)
        _, _, health = svc.request("GET", "/health")
        assert health["breaker"]["state"] == "closed", (
            f"probe success did not close: {health['breaker']}")
    finally:
        svc.stop()
    return ServiceOutcome(sc.case, sc.family, sc.spec.label(), ok=True,
                          oracle="typed-failure+stale+golden",
                          detail=f"opened after {threshold} crash(es)")


def _run_cache_enospc(sc: ServiceCase, rng, wd: Path) -> ServiceOutcome:
    """An injected cache-write failure must not cost the client its
    result — but must register as infrastructure sickness."""
    svc = _svc(wd, breaker_threshold=1, breaker_cooldown_s=30.0,
               inject_cache_error=frozenset({spec_key(sc.spec)}))
    try:
        status, _, body = svc.request("POST", "/jobs",
                                      {"spec": _wire(sc.spec)})
        assert status == 202
        final = _await_terminal(svc, body["job"])
        assert final["state"] == "done", "absorbed ENOSPC cost the result"
        _assert_golden(final, sc.spec)
        _, _, health = svc.request("GET", "/health")
        assert health["cache"]["write_errors"] == 1
        assert health["breaker"]["state"] == "open", (
            "ENOSPC did not register as infrastructure failure")
        assert health["breaker"]["last_failure_kind"] == "enospc"
        fresh = RunSpec("sdhp", "doall", threads=2, seed=960)
        status, _, _ = svc.request("POST", "/jobs", {"spec": _wire(fresh)})
        assert status == 503, "sick disk kept admitting new work"
    finally:
        svc.stop()
    return ServiceOutcome(sc.case, sc.family, sc.spec.label(), ok=True,
                          oracle="golden-identity",
                          detail="result kept, breaker opened on ENOSPC")


# -- subprocess SIGKILL family ----------------------------------------------------

_REPO = Path(__file__).resolve().parents[3]


def _boot_subprocess(wd: Path, tag: str):
    port_file = wd / "port"
    port_file.unlink(missing_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.harness.service",
         "--workdir", str(wd), "--port", "0", "--workers", "1",
         "--port-file", str(port_file), "--checkpoint-every", "40000",
         "--tag", tag],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text())
        if proc.poll() is not None:
            raise AssertionError(
                f"service subprocess died at boot (rc={proc.returncode})")
        time.sleep(0.02)
    proc.kill()
    raise AssertionError("service subprocess never published its port")


def _http(port: int, method: str, path: str, body=None, timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path,
                     body=json.dumps(body) if body is not None else None,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def _tagged_pids(tag: str) -> List[int]:
    pids = []
    for entry in Path("/proc").iterdir():
        if entry.name.isdigit():
            try:
                if tag.encode() in (entry / "cmdline").read_bytes():
                    pids.append(int(entry.name))
            except OSError:
                continue
    return pids


def _run_service_kill(sc: ServiceCase, rng, wd: Path) -> ServiceOutcome:
    """SIGKILL the whole service once a checkpoint exists; workers must
    self-exit, and the restart must recover + resume to the golden
    answer."""
    spec = RunSpec(_KILL_SPEC.workload, _KILL_SPEC.technique,
                   threads=_KILL_SPEC.threads, scale=_KILL_SPEC.scale,
                   seed=rng.choice((0, 1)))
    tag = f"servicefuzz-{os.getpid()}-{sc.case}"
    proc, port = _boot_subprocess(wd, tag)
    killed_mid_run = False
    try:
        _, body = _http(port, "POST", "/jobs",
                        {"spec": _wire(spec), "deadline_s": 300})
        job = body["job"]
        checkpoint = wd / "checkpoints" / f"{job}.ckpt.json"
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, status_body = _http(port, "GET", f"/jobs/{job}")
            if status_body.get("state") not in ("queued", "running"):
                break
            if checkpoint.exists() and checkpoint.stat().st_size > 0:
                killed_mid_run = True
                break
            time.sleep(0.005)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait()

    # The supervised workers must notice the dead parent and self-exit.
    survivors = []
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        survivors = _tagged_pids(tag)
        if not survivors:
            break
        time.sleep(0.1)
    assert not survivors, f"workers outlived the SIGKILLed service: " \
                          f"{survivors}"

    proc2, port2 = _boot_subprocess(wd, tag + "-r")
    try:
        if killed_mid_run:
            _, health = _http(port2, "GET", "/health")
            assert health["counters"]["recovered"] >= 1, (
                "journal recovery did not fire after the kill")
        deadline = time.monotonic() + 60
        final = {}
        while time.monotonic() < deadline:
            _, final = _http(port2, "GET", f"/jobs/{job}?wait=10")
            if final.get("state") not in ("queued", "running"):
                break
        assert final.get("state") == "done", (
            f"recovered job ended {final.get('state')}")
        if killed_mid_run:
            assert final.get("recovered"), "recovery flag missing"
            assert final.get("resumed"), (
                "recovered job restarted from cycle 0 instead of its "
                "checkpoint")
        _assert_golden(final, spec)
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc2.kill()
            proc2.wait()
    return ServiceOutcome(sc.case, sc.family, spec.label(), ok=True,
                          oracle="golden-identity",
                          detail="killed mid-run, resumed" if killed_mid_run
                          else "finished before the kill landed (benign)")


_RUNNERS = {
    "coalesce-burst": _run_coalesce_burst,
    "admission-flood": _run_admission_flood,
    "deadline-storm": _run_deadline_storm,
    "journal-truncate": _run_journal_truncate,
    "journal-garbage": _run_journal_garbage,
    "breaker-crash": _run_breaker_crash,
    "cache-enospc": _run_cache_enospc,
    "service-kill-recover": _run_service_kill,
}


def run_service_case(case: int, workdir,
                     master_seed: int = SERVICE_MASTER_SEED
                     ) -> ServiceOutcome:
    """Run one service-chaos case under ``workdir``; raises
    ``AssertionError`` on any gate violation.  The hygiene postcondition
    (no orphan processes, no stray tmp/lock files) is asserted for every
    family."""
    sc = service_case(case, master_seed)
    rng = random.Random(master_seed ^ (case * 2654435761))
    wd = Path(workdir)
    wd.mkdir(parents=True, exist_ok=True)
    outcome = _RUNNERS[sc.family](sc, rng, wd)
    _assert_hygiene(wd)
    return outcome


def run_service_campaign(cases: Sequence[int], workdir,
                         master_seed: int = SERVICE_MASTER_SEED
                         ) -> List[ServiceOutcome]:
    """Run a batch of cases, writing ``service_report.json`` under
    ``workdir`` (per-family tallies + every outcome) for CI artifacts."""
    workdir = Path(workdir)
    outcomes = []
    for case in cases:
        outcomes.append(run_service_case(
            case, workdir / f"case-{case:03d}", master_seed))
    tally: Dict[str, int] = {}
    for outcome in outcomes:
        tally[outcome.family] = tally.get(outcome.family, 0) + 1
    report = {
        "master_seed": master_seed,
        "cases": len(outcomes),
        "families": tally,
        "outcomes": [vars(outcome) for outcome in outcomes],
    }
    workdir.mkdir(parents=True, exist_ok=True)
    (workdir / "service_report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True))
    return outcomes
