"""Regenerate the paper's tables (1, 2, 3) from the implementation.

Table 1 is the prior-work taxonomy (:mod:`repro.core.taxonomy`).
Tables 2 and 3 are configuration tables: they are rendered from the live
:class:`~repro.params.SoCConfig` presets so the printed numbers are the
numbers the simulator actually uses — a drifted constant would show up
immediately.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.taxonomy import render_table1
from repro.params import FPGA_CONFIG, MOSAIC_CONFIG, SoCConfig


def table1() -> str:
    return render_table1()


def _kb(nbytes: int) -> str:
    return f"{nbytes // 1024}KB"


def table2_rows(config: SoCConfig = FPGA_CONFIG) -> List[Tuple[str, str]]:
    """Table 2: the FPGA-emulated SoC configuration."""
    return [
        ("SoC configuration", "OpenPiton + MAPLE (simulated)"),
        ("MAPLE Instances / Scratchpad Size",
         f"{config.maple_instances} / {_kb(config.scratchpad_bytes)}"),
        ("Core Count / Threads per core", f"{config.num_cores} / 1"),
        ("Core Type", "single-issue in-order (Ariane-class model)"),
        ("L1D per core / Latency",
         f"{_kb(config.l1_size)} {config.l1_ways}-way / "
         f"{config.l1_latency}-cycle"),
        ("L2-size (shared) / Latency",
         f"{_kb(config.l2_size)} {config.l2_ways}-way / "
         f"{config.l2_latency}-cycle"),
        ("DRAM Latency / Max in-flight",
         f"{config.dram_latency}-cycle / {config.dram_max_inflight}"),
        ("Queues / Entries / Entry size",
         f"{config.maple_num_queues} / {config.queue_entries} / "
         f"{config.queue_entry_bytes}B"),
        ("MAPLE TLB entries", str(config.maple_tlb_entries)),
    ]


def table3_rows(config: SoCConfig = MOSAIC_CONFIG) -> List[Tuple[str, str]]:
    """Table 3: the simulated system used against DeSC and DROPLET."""
    return [
        ("Core Count / Threads per core", f"{config.num_cores} / 1"),
        ("Instruction Window / ROB Size", "1 / 1, In-Order"),
        ("L1D (per core) / Latency",
         f"{_kb(config.l1_size)} / {config.l1_ways}-way / "
         f"{config.l1_latency}-cycle"),
        ("L2-size (shared) / Latency",
         f"{_kb(config.l2_size)} / {config.l2_ways}-way / "
         f"{config.l2_latency}-cycle"),
        ("DRAM Latency / Max in-flight",
         f"{config.dram_latency}-cycle / {config.dram_max_inflight}"),
    ]


def _render(rows: List[Tuple[str, str]], title: str) -> str:
    width = max(len(key) for key, _v in rows) + 2
    lines = [title, "-" * len(title)]
    lines.extend(f"{key:{width}s}{value}" for key, value in rows)
    return "\n".join(lines)


def table2() -> str:
    return _render(table2_rows(), "Table 2: FPGA SoC configuration")


def table3() -> str:
    return _render(table3_rows(), "Table 3: simulated system configuration")
