"""Run one (workload, technique) experiment cell on a fresh SoC.

Technique names (harness-level; they map onto compiler plans plus any
hardware the technique needs):

=================  ============================================================
``doall``          OpenMP-style block-partitioned parallelism (the baseline)
``maple-decouple`` Access/Execute slices over MAPLE hardware queues (§3.1)
``sw-decouple``    the same slices over a shared-memory ring (Fig. 8 baseline)
``desc``           DeSC-style decoupling (Fig. 12 comparator)
``droplet``        doall + the DROPLET memory-side prefetcher (Fig. 12)
``sw-prefetch``    software prefetching at distance D (Fig. 9 baseline)
``lima``           MAPLE LIMA prefetching — non-speculative into queues,
                   falling back to speculative LLC mode for RMW kernels (§3.2)
``lima-llc``       LIMA speculative mode explicitly
=================  ============================================================

Non-decouplable kernels (SPMM) silently fall back to doall under the
decoupling techniques, exactly as the paper's compiler does; the result
records the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.baselines.desc import DescBackend
from repro.baselines.droplet import DropletPrefetcher
from repro.baselines.swqueue import SwQueueRing
from repro.compiler.analysis import analyze
from repro.compiler.interp import (
    AccessRole,
    DoallRole,
    ExecuteRole,
    LimaRole,
    MapleBackend,
    PrefetchRole,
    interpret,
)
from repro.compiler.plan import Technique, plan_for
from repro.core.api import QueueHandle
from repro.cpu.core import Thread
from repro.kernels import ALL_WORKLOADS
from repro.kernels.base import WorkloadBinding
from repro.params import SoCConfig
from repro.sim import (
    DataIntegrityError,
    FaultInjector,
    FaultPlan,
    InvariantChecker,
    Watchdog,
    collect_diagnosis,
)
from repro.sim.watchdog import write_dump
from repro.system import Soc

HARNESS_TECHNIQUES = (
    "doall", "maple-decouple", "sw-decouple", "desc", "droplet",
    "sw-prefetch", "lima", "lima-llc",
)


@dataclass
class ExperimentResult:
    workload: str
    technique: str
    threads: int
    cycles: int
    soc: Soc
    fallback_doall: bool = False
    fault_plan: Optional[FaultPlan] = None
    fault_events: int = 0
    invariants_checked: Optional[tuple] = None

    @property
    def stats(self):
        return self.soc.stats

    def total_loads(self) -> int:
        """Load-class instructions (loads + software prefetches), the
        Fig. 10 metric."""
        total = 0
        for core in self.soc.cores:
            total += core.stats.get("loads") + core.stats.get("prefetches")
        return total

    def avg_load_latency(self) -> float:
        """Average cycles per load across all cores (the Fig. 11 metric)."""
        count = 0
        total = 0.0
        for core in self.soc.cores:
            hist = core.stats.histogram("load_latency")
            count += hist.count
            total += hist.total
        return total / count if count else 0.0

    def summary(self) -> Dict[str, object]:
        """Everything the figures consume, as a plain picklable dict.

        This is the worker-process boundary: a :class:`Soc` holds live
        generators and cannot cross it, but the orchestrator only needs
        the measurements.
        """
        return {
            "workload": self.workload,
            "technique": self.technique,
            "threads": self.threads,
            "cycles": self.cycles,
            "fallback_doall": self.fallback_doall,
            "total_loads": self.total_loads(),
            "avg_load_latency": self.avg_load_latency(),
            "events_executed": self.soc.sim.events_executed,
            "fault_seed": (self.fault_plan.seed
                           if self.fault_plan is not None else None),
            "fault_events": self.fault_events,
            "invariants_checked": self.invariants_checked,
            "stats": self.soc.stats_snapshot(),
        }


def run_workload(workload_name: str, technique: str, *,
                 config: Optional[SoCConfig] = None,
                 threads: int = 2,
                 scale: int = 1,
                 seed: int = 0,
                 prefetch_distance: int = 4,
                 hop_latency_override: Optional[int] = None,
                 dataset=None,
                 dataset_kwargs: Optional[dict] = None,
                 lima_packed: bool = True,
                 check: bool = True,
                 fault_plan: Optional[FaultPlan] = None,
                 integrity_plan: Optional[FaultPlan] = None,
                 check_invariants: bool = False,
                 watchdog=None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_path=None,
                 checkpoint_spec=None,
                 on_checkpoint=None,
                 resume_from=None) -> ExperimentResult:
    """Build, run, validate, and return one experiment cell.

    Robustness knobs (all off by default, leaving the timing path
    bit-identical to a fault-free build):

    - ``fault_plan``: a :class:`~repro.sim.faults.FaultPlan` to install
      for the run; faults replay deterministically from its seed.
    - ``integrity_plan``: a corruption-bearing :class:`FaultPlan` (drops,
      duplicates, bit flips).  Separate from ``fault_plan`` so cache keys
      distinguish timing-noise sweeps from corruption sweeps; mutually
      exclusive with it.  When the injected corruption is unrecoverable,
      the run raises a typed
      :class:`~repro.sim.port.DataIntegrityError` /
      :class:`~repro.sim.port.DeliveryError` annotated with a structured
      diagnosis (and a JSON dump when ``$REPRO_WATCHDOG_DUMP_DIR`` is
      set) instead of returning silently wrong results.
    - ``check_invariants``: arm live queue shadows and audit ports and
      queues at quiescence (:class:`~repro.sim.invariants.InvariantChecker`).
    - ``watchdog``: ``True`` (defaults) or a kwargs dict for
      :class:`~repro.sim.watchdog.Watchdog`; turns hangs into diagnosed
      :class:`~repro.sim.watchdog.LivenessError`\\ s.

    Crash tolerance (see :mod:`repro.sim.checkpoint`):

    - ``checkpoint_every=N`` + ``checkpoint_path``: save a checkpoint of
      the run every ``N`` cycles (atomically overwriting the same file,
      so the file always holds the latest consistent snapshot).
      ``checkpoint_spec`` (a picklable RunSpec) embeds rebuild info so
      the file is self-resuming; ``on_checkpoint(path, ckpt)`` fires
      after each successful save (the chaos harness kills workers here).
    - ``resume_from``: a :class:`~repro.sim.checkpoint.Checkpoint` (or
      path) saved by an identical run.  The fresh SoC replays to the
      saved cycle, every recorded per-subsystem digest is verified
      (typed :class:`~repro.sim.checkpoint.CheckpointDivergenceError`
      on mismatch), then the run continues to completion — bit-identical
      to the uninterrupted run, oracle checks included.
    """
    if technique not in HARNESS_TECHNIQUES:
        raise ValueError(f"unknown technique {technique!r}")
    if fault_plan is not None and integrity_plan is not None:
        raise ValueError("fault_plan and integrity_plan are mutually "
                         "exclusive — compose one FaultPlan instead")
    if integrity_plan is not None:
        fault_plan = integrity_plan
    if technique in ("maple-decouple", "sw-decouple", "desc"):
        if threads % 2:
            raise ValueError("decoupling techniques need an even thread count")

    workload = ALL_WORKLOADS[workload_name]()
    base = config or SoCConfig()
    soc = Soc(base.with_overrides(num_cores=max(threads, base.num_cores)),
              hop_latency_override=hop_latency_override)
    aspace = soc.new_process()
    if dataset is None:
        dataset = workload.default_dataset(scale=scale, seed=seed,
                                           **(dataset_kwargs or {}))
    binding = workload.bind(soc, aspace, dataset)

    if workload.orchestrated:
        assignments, fallback = _bfs_assignments(
            soc, aspace, binding, technique, threads, prefetch_distance,
            lima_packed)
    else:
        assignments, fallback = _loop_assignments(
            soc, aspace, binding, technique, threads, prefetch_distance,
            lima_packed)

    injector = None
    if fault_plan is not None and not fault_plan.is_empty():
        injector = FaultInjector(soc, aspace, fault_plan).install()
    checker = InvariantChecker(soc).install() if check_invariants else None
    monitor = None
    if watchdog:
        monitor = Watchdog(soc, **(watchdog if isinstance(watchdog, dict)
                                   else {}))

    save_hook = None
    if checkpoint_every and checkpoint_path is not None:
        def save_hook(live_soc):
            ckpt = live_soc.save_checkpoint(checkpoint_path,
                                            spec=checkpoint_spec)
            if on_checkpoint is not None:
                on_checkpoint(checkpoint_path, ckpt)
    if resume_from is not None and not hasattr(resume_from, "digests"):
        from repro.sim.checkpoint import Checkpoint
        resume_from = Checkpoint.load(resume_from)

    try:
        cycles = soc.run_threads(assignments, watchdog=monitor,
                                 checkpoint_every=checkpoint_every,
                                 on_checkpoint=save_hook,
                                 resume_from=resume_from)
    except DataIntegrityError as err:
        # Unrecoverable corruption: annotate the typed error with the
        # same structured diagnosis (and on-disk JSON dump) the liveness
        # watchdog produces, so a CI trip is replayable from the artifact.
        if injector is not None:
            injector.finish()
        err.diagnosis = collect_diagnosis(
            soc, reason=f"data-integrity failure: {err}")
        err.diagnosis["integrity"] = err.describe()
        err.diagnosis["fault_events"] = (len(injector.events)
                                         if injector is not None else 0)
        err.dump_path = write_dump(
            err.diagnosis,
            monitor.dump_dir if monitor is not None else None)
        raise
    if injector is not None:
        # Disarm hooks and swap evicted pages back in *before* the
        # functional check reads the arrays.
        injector.finish()
    checked = checker.verify() if checker is not None else None
    if check:
        binding.check()
    return ExperimentResult(workload_name, technique, threads, cycles, soc,
                            fallback_doall=fallback, fault_plan=fault_plan,
                            fault_events=(len(injector.events)
                                          if injector is not None else 0),
                            invariants_checked=checked)


# -- loop workloads -------------------------------------------------------------


class _QueueAllocator:
    """Boot-time binding of consumer threads to MAPLE instances + queues.

    Each requesting core binds to its nearest instance (the driver's
    deterministic §5.3 assignment map) and takes the next free hardware
    queue on that instance.  With one instance this reproduces the
    historical numbering exactly — thread/pair ``p`` gets queue ``p`` on
    ``maple0`` — so single-instance runs stay bit-identical; with several
    instances the load spreads by mesh distance.
    """

    def __init__(self, soc: Soc, aspace):
        self._soc = soc
        self._aspace = aspace
        self._next: Dict[int, int] = {}
        self._apis: Dict[int, object] = {}

    def bind(self, core_id: int):
        """Returns ``(api, queue_id)`` on the instance nearest the core."""
        maple = self._soc.driver.pick_instance(
            self._soc.cores[core_id].tile_id)
        api = self._apis.get(maple.instance_id)
        if api is None:
            api = self._soc.driver.attach(self._aspace, maple=maple)
            self._apis[maple.instance_id] = api
        queue_id = self._next.get(maple.instance_id, 0)
        if queue_id >= self._soc.config.maple_num_queues:
            raise ValueError(
                f"core {core_id} needs a queue on maple{maple.instance_id} "
                f"but all {self._soc.config.maple_num_queues} queues are "
                "taken — use more instances or fewer threads")
        self._next[maple.instance_id] = queue_id + 1
        return api, queue_id


def _loop_assignments(soc: Soc, aspace, binding: WorkloadBinding,
                      technique: str, threads: int, distance: int,
                      lima_packed: bool = True):
    kernel = binding.kernel
    analysis = analyze(kernel)

    if technique == "droplet":
        prefetcher = DropletPrefetcher(soc.memsys)
        _register_droplet(prefetcher, aspace, binding)
        technique = "doall"

    if technique == "doall":
        plan = plan_for(analysis, Technique.DOALL)
        return _doall_threads(soc, binding, plan, threads,
                              lambda: DoallRole(plan)), False

    if technique == "sw-prefetch":
        plan = plan_for(analysis, Technique.SW_PREFETCH)
        fallback = plan.fallback_doall
        role_factory = ((lambda: DoallRole(plan)) if fallback
                        else (lambda: PrefetchRole(plan, distance)))
        return _doall_threads(soc, binding, plan, threads, role_factory), fallback

    if technique in ("lima", "lima-llc"):
        plan = plan_for(analysis, Technique.LIMA_PREFETCH
                        if technique == "lima" else Technique.LIMA_LLC)
        if plan.fallback_doall and technique == "lima":
            plan = plan_for(analysis, Technique.LIMA_LLC)  # RMW-safe mode
        if plan.fallback_doall:
            return _doall_threads(soc, binding, plan, threads,
                                  lambda: DoallRole(plan)), True
        return _lima_threads(soc, aspace, binding, plan, threads,
                             lima_packed), False

    # Decoupling techniques: pairs of (Access, Execute) threads.
    compiler_technique = {
        "maple-decouple": Technique.MAPLE_DECOUPLE,
        "sw-decouple": Technique.SW_DECOUPLE,
        "desc": Technique.DESC_DECOUPLE,
    }[technique]
    plan = plan_for(analysis, compiler_technique)
    if plan.fallback_doall:
        return _doall_threads(soc, binding, plan, threads,
                              lambda: DoallRole(plan)), True
    return _decoupled_threads(soc, aspace, binding, plan, technique, threads), False


def _doall_threads(soc: Soc, binding: WorkloadBinding, plan, threads: int,
                   role_factory: Callable):
    aspace = _aspace_of(binding)
    assignments = []
    for tid in range(threads):
        params = binding.slice_params(tid, threads)
        runtime = binding.runtime.with_params(**params)

        def program(rt=runtime, factory=role_factory):
            yield from interpret(binding.kernel, rt, factory())

        assignments.append(
            (tid, Thread(program(), aspace, f"{plan.technique.value}-{tid}")))
    return assignments


def _aspace_of(binding: WorkloadBinding):
    first_array = next(iter(binding.runtime.arrays.values()))
    return first_array.aspace


def _lima_threads(soc: Soc, aspace, binding: WorkloadBinding, plan,
                  threads: int, lima_packed: bool = True):
    alloc = _QueueAllocator(soc, aspace)
    chains = plan.lima_chains
    packed = lima_packed and soc.config.queue_entry_bytes == 4
    assignments = []
    for tid in range(threads):
        params = binding.slice_params(tid, threads)
        runtime = binding.runtime.with_params(**params)
        bindings = [alloc.bind(tid) for _ in chains]

        def program(rt=runtime, bindings=bindings):
            handles = {}
            for (api, queue_id), chain in zip(bindings, chains):
                handle = yield from api.open(queue_id)
                handles[chain.ima_load.stmt_id] = handle
            role = LimaRole(plan, handles, packed=packed)
            yield from interpret(binding.kernel, rt, role)

        assignments.append((tid, Thread(program(), aspace, f"lima-{tid}")))
    return assignments


def _decoupled_threads(soc: Soc, aspace, binding: WorkloadBinding, plan,
                       technique: str, threads: int):
    pairs = threads // 2
    alloc = (_QueueAllocator(soc, aspace)
             if technique == "maple-decouple" else None)
    assignments = []
    for pair in range(pairs):
        params = binding.slice_params(pair, pairs)
        runtime = binding.runtime.with_params(**params)
        access_core = 2 * pair
        execute_core = 2 * pair + 1
        _, execute_backend, access_open = _backend_factory(
            soc, aspace, alloc, technique, pair, access_core)

        def access_program(rt=runtime, open_gen=access_open):
            backend = yield from open_gen()
            role = AccessRole(plan, backend)
            yield from interpret(binding.kernel, rt, role)
            if hasattr(backend, "flush"):
                yield from backend.flush()

        def execute_program(rt=runtime, backend_fn=execute_backend):
            backend = backend_fn()
            role = ExecuteRole(plan, backend)
            yield from interpret(binding.kernel, rt, role)
            if hasattr(backend, "flush"):
                yield from backend.flush()
            if hasattr(backend, "drain_stores"):
                yield from backend.drain_stores()

        assignments.append((access_core,
                            Thread(access_program(), aspace, f"access-{pair}")))
        assignments.append((execute_core,
                            Thread(execute_program(), aspace, f"execute-{pair}")))
    return assignments


def _backend_factory(soc: Soc, aspace, alloc, technique: str, pair: int,
                     access_core: int):
    """(access_open generator factory, execute backend factory).

    The access side's backend construction may itself need timed MMIO
    (OPEN), hence the generator shape.
    """
    if technique == "maple-decouple":
        # The pair binds to the instance nearest its access core; both
        # endpoints share the instance and queue (one SPSC channel).
        api, queue_id = alloc.bind(access_core)

        def access_open():
            handle = yield from api.open(queue_id)
            return MapleBackend(handle)

        def execute_backend():
            return MapleBackend(QueueHandle(api, queue_id))

        return None, execute_backend, access_open

    if technique == "sw-decouple":
        ring = SwQueueRing(soc, aspace, name=f"swq{pair}")
        return None, ring.consumer, _immediate(ring.producer)

    # DeSC: one engine per pair, shared by both endpoints.
    engine = DescBackend(soc, aspace, supply_core_id=access_core)
    return None, (lambda: engine), _immediate(lambda: engine)


def _immediate(factory):
    """Wrap a plain factory as the generator the access program expects."""
    def open_gen():
        return factory()
        yield  # pragma: no cover
    return open_gen


def _register_droplet(prefetcher: DropletPrefetcher, aspace,
                      binding) -> None:
    for index_name, data_name in binding.droplet_indirections:
        arrays = binding.runtime.arrays if hasattr(binding, "runtime") else None
        if arrays is not None:
            prefetcher.register_indirection(aspace, arrays[index_name],
                                            arrays[data_name])
        else:  # BFS binding exposes arrays directly
            prefetcher.register_indirection(
                aspace, getattr(binding, index_name), getattr(binding, data_name))


# -- BFS (orchestrated) ---------------------------------------------------------


def _bfs_assignments(soc: Soc, aspace, binding, technique: str, threads: int,
                     distance: int, lima_packed: bool = True):
    kernel = binding.kernel
    analysis = analyze(kernel)

    if technique == "droplet":
        prefetcher = DropletPrefetcher(soc.memsys)
        _register_droplet(prefetcher, aspace, binding)
        technique = "doall"

    barrier = soc.barrier(threads, name="bfs")
    assignments = []

    if technique in ("doall", "sw-prefetch", "lima", "lima-llc"):
        if technique == "doall":
            plan = plan_for(analysis, Technique.DOALL)
            factory = lambda tid: _const_role_gen(DoallRole(plan))
        elif technique == "sw-prefetch":
            plan = plan_for(analysis, Technique.SW_PREFETCH)
            factory = lambda tid: _const_role_gen(PrefetchRole(plan, distance))
        else:
            plan = plan_for(analysis, Technique.LIMA_PREFETCH
                            if technique == "lima" else Technique.LIMA_LLC)
            if plan.fallback_doall:
                plan = plan_for(analysis, Technique.DOALL)
                factory = lambda tid: _const_role_gen(DoallRole(plan))
            else:
                alloc = _QueueAllocator(soc, aspace)
                packed = lima_packed and soc.config.queue_entry_bytes == 4

                def factory(tid, plan=plan, alloc=alloc, packed=packed):
                    bindings = [alloc.bind(tid) for _ in plan.lima_chains]

                    def open_role():
                        handles = {}
                        for (api, queue_id), chain in zip(
                                bindings, plan.lima_chains):
                            handle = yield from api.open(queue_id)
                            handles[chain.ima_load.stmt_id] = handle
                        return LimaRole(plan, handles, packed=packed)
                    return open_role

        for tid in range(threads):
            def program(tid=tid, open_role=factory(tid)):
                role = yield from open_role()
                yield from binding.driver(role, tid, threads, barrier,
                                          bookkeeper=(tid == 0))
            assignments.append((tid, Thread(program(), aspace, f"bfs-{tid}")))
        return assignments, False

    # Decoupled BFS: pairs sharing the barrier with everyone.
    compiler_technique = {
        "maple-decouple": Technique.MAPLE_DECOUPLE,
        "sw-decouple": Technique.SW_DECOUPLE,
        "desc": Technique.DESC_DECOUPLE,
    }[technique]
    plan = plan_for(analysis, compiler_technique)
    if plan.fallback_doall:
        doall_plan = plan_for(analysis, Technique.DOALL)
        for tid in range(threads):
            def program(tid=tid):
                role = DoallRole(doall_plan)
                yield from binding.driver(role, tid, threads, barrier,
                                          bookkeeper=(tid == 0))
            assignments.append((tid, Thread(program(), aspace, f"bfs-{tid}")))
        return assignments, True

    pairs = threads // 2
    alloc = (_QueueAllocator(soc, aspace)
             if technique == "maple-decouple" else None)
    for pair in range(pairs):
        access_core = 2 * pair
        execute_core = 2 * pair + 1
        _, execute_backend, access_open = _backend_factory(
            soc, aspace, alloc, technique, pair, access_core)

        def access_program(pair=pair, open_gen=access_open):
            backend = yield from open_gen()
            role = AccessRole(plan, backend)
            flush = getattr(backend, "flush", None)
            yield from binding.driver(role, pair, pairs, barrier,
                                      bookkeeper=False, after_level=flush)

        def execute_program(pair=pair, backend_fn=execute_backend):
            backend = backend_fn()
            role = ExecuteRole(plan, backend)
            after = (getattr(backend, "drain_stores", None)
                     or getattr(backend, "flush", None))
            yield from binding.driver(role, pair, pairs, barrier,
                                      bookkeeper=(pair == 0), after_level=after)

        assignments.append((access_core,
                            Thread(access_program(), aspace, f"bfs-access-{pair}")))
        assignments.append((execute_core,
                            Thread(execute_program(), aspace, f"bfs-execute-{pair}")))
    return assignments, False


def _const_role_gen(role):
    def open_role():
        return role
        yield  # pragma: no cover
    return open_role
