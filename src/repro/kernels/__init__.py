"""The paper's evaluation workloads (§4.1).

SDHP, SPMV, and SPMM are expressed in the compiler IR and go through the
full slicing/lowering pipeline; BFS is level-orchestrated — an outer
driver (also fully timed) invokes a per-level IR kernel, swaps frontier
buffers, and synchronizes at epoch barriers, mirroring how the paper's
FPGA runs sliced BFS manually.

Each workload provides seeded datasets, a numpy/pure-Python reference
implementation, array binding into a simulated address space, and a
result check that reads the simulated memory back.
"""

from repro.kernels.base import LoopWorkload, WorkloadBinding
from repro.kernels.bfs import BfsWorkload
from repro.kernels.sdhp import SdhpWorkload
from repro.kernels.spmm import SpmmWorkload
from repro.kernels.spmv import SpmvWorkload

ALL_WORKLOADS = {
    "sdhp": SdhpWorkload,
    "spmm": SpmmWorkload,
    "spmv": SpmvWorkload,
    "bfs": BfsWorkload,
}

__all__ = [
    "ALL_WORKLOADS",
    "BfsWorkload",
    "LoopWorkload",
    "SdhpWorkload",
    "SpmmWorkload",
    "SpmvWorkload",
    "WorkloadBinding",
]
