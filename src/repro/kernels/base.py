"""Workload interfaces shared by the technique runner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.compiler.ir import Kernel
from repro.compiler.interp import Runtime


@dataclass
class WorkloadBinding:
    """A kernel bound to simulated arrays, ready to partition and run.

    ``partition_params`` names the two params that bound the outer loop;
    the runner slices ``[0, total_iterations)`` across threads through
    them.  ``check`` reads simulated memory (functionally, zero-time)
    and raises AssertionError on a wrong result.
    """

    kernel: Kernel
    runtime: Runtime
    partition_params: Tuple[str, str]
    total_iterations: int
    check: Callable[[], None]
    #: (index array name, data array name) pairs DROPLET should be taught,
    #: mirroring its data-structure knowledge of each workload.
    droplet_indirections: Tuple[Tuple[str, str], ...] = ()

    def slice_params(self, thread: int, num_threads: int) -> Dict[str, int]:
        """Contiguous block partition of the outer loop for one thread."""
        if not 0 <= thread < num_threads:
            raise ValueError("thread index out of range")
        per = (self.total_iterations + num_threads - 1) // num_threads
        lo = min(thread * per, self.total_iterations)
        hi = min(lo + per, self.total_iterations)
        return {self.partition_params[0]: lo, self.partition_params[1]: hi}


class LoopWorkload:
    """Base class for IR-expressed workloads (SDHP, SPMV, SPMM).

    Subclasses implement :meth:`default_dataset` and :meth:`bind`.
    ``scale`` trades simulation time against working-set size; defaults
    keep the irregularly accessed array far beyond the L2.
    """

    name: str = "loop-workload"
    orchestrated = False  # BFS overrides

    def default_dataset(self, scale: int = 1, seed: int = 0):
        raise NotImplementedError

    def bind(self, soc, aspace, dataset) -> WorkloadBinding:
        raise NotImplementedError
