"""BFS: level-synchronous breadth-first search (§4.1).

The per-level traversal is expressed in the compiler IR (frontier scan,
CSR expansion, the ``dist[neighbor]`` IMA, conditional update, atomic
frontier append).  The level loop itself — reading the frontier count,
epoch barriers, buffer swap, count reset — is a fully timed *driver*
generator each thread runs, mirroring the manual slicing the paper used
for its FPGA runs.

``dist`` is annotated as a benign-race array: the check-and-set update is
idempotent within a level, so stale values read through MAPLE (or by a
racing thread) cause at most duplicate frontier entries, never wrong
distances — the epoch-barrier argument of §3.6.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.compiler.interp import Role, Runtime, interpret
from repro.compiler.ir import (
    Bin,
    Const,
    FetchAddStmt,
    ForStmt,
    IfStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    Var,
)
from repro.cpu import isa
from repro.datasets.graphs import Graph, reference_bfs
from repro.kernels.base import LoopWorkload

UNVISITED = -1


def build_bfs_level_kernel() -> Kernel:
    """One level: expand frontier[f_lo:f_hi], updating dist and appending
    newly discovered vertices."""
    body = [
        ForStmt("f", Var("f_lo"), Var("f_hi"), [
            LoadStmt("v", "frontier", Var("f")),
            LoadStmt("rlo", "row_ptr", Var("v")),
            LoadStmt("rhi", "row_ptr", Bin("+", Var("v"), Const(1))),
            ForStmt("j", Var("rlo"), Var("rhi"), [
                LoadStmt("u", "neighbors", Var("j")),
                LoadStmt("d", "dist", Var("u")),  # the IMA (benign race)
                IfStmt(Bin("==", Var("d"), Const(UNVISITED)), [
                    StoreStmt("dist", Var("u"), Var("level")),
                    FetchAddStmt("slot", "next_count", Const(0), Const(1)),
                    StoreStmt("next_frontier", Var("slot"), Var("u")),
                ]),
            ]),
        ]),
    ]
    return Kernel(
        name="bfs_level",
        arrays=["frontier", "row_ptr", "neighbors", "dist",
                "next_frontier", "next_count"],
        params=["f_lo", "f_hi", "level"],
        body=body,
        benign_race_arrays=("dist",),
    )


def _block(count: int, index: int, parts: int) -> Tuple[int, int]:
    per = (count + parts - 1) // parts
    lo = min(index * per, count)
    return lo, min(lo + per, count)


class BfsBinding:
    """BFS bound into a simulated address space."""

    MAX_APPEND_FACTOR = 9  # worst-case duplicate appends across 8 threads

    def __init__(self, soc, aspace, graph: Graph, root: int):
        self.soc = soc
        self.aspace = aspace
        self.graph = graph
        self.root = root
        self.kernel = build_bfs_level_kernel()
        n = graph.num_vertices
        cap = n * self.MAX_APPEND_FACTOR
        self.row_ptr = soc.array(aspace, [int(v) for v in graph.row_ptr], "row_ptr")
        self.neighbors = soc.array(aspace, [int(v) for v in graph.neighbors],
                                   "neighbors")
        self.dist = soc.array(aspace, [UNVISITED] * n, "dist")
        self.frontier_a = soc.array(aspace, cap, "frontier_a")
        self.frontier_b = soc.array(aspace, cap, "frontier_b")
        self.count_cur = soc.array(aspace, 1, "count_cur")
        self.next_count = soc.array(aspace, 1, "next_count")
        # Initial state: the root is at distance 0 and forms the frontier.
        self.dist.write(root, 0)
        self.frontier_a.write(0, root)
        self.count_cur.write(0, 1)
        self.fixed_arrays: Dict[str, object] = {
            "row_ptr": self.row_ptr,
            "neighbors": self.neighbors,
            "dist": self.dist,
            "next_count": self.next_count,
        }
        self.droplet_indirections = (("neighbors", "dist"),)

    def check(self) -> None:
        expected = reference_bfs(self.graph, self.root)
        got = self.dist.to_list()
        if got != expected:
            wrong = [i for i, (g, e) in enumerate(zip(got, expected)) if g != e]
            raise AssertionError(f"BFS distances wrong at vertices {wrong[:10]}")

    def driver(self, role: Role, slice_index: int, num_slices: int, barrier,
               bookkeeper: bool,
               after_level: Optional[Callable[[], object]] = None):
        """The per-thread timed level loop.

        ``after_level`` optionally supplies a generator run after each
        level's kernel slice (software-queue flush, DeSC store drain).
        """
        level = 1
        current, upcoming = self.frontier_a, self.frontier_b
        while True:
            count = yield isa.Load(self.count_cur.addr(0))
            if count == 0:
                break
            lo, hi = _block(count, slice_index, num_slices)
            arrays = dict(self.fixed_arrays)
            arrays["frontier"] = current
            arrays["next_frontier"] = upcoming
            runtime = Runtime(arrays, params={"f_lo": lo, "f_hi": hi,
                                              "level": level})
            yield from interpret(self.kernel, runtime, role)
            if after_level is not None:
                yield from after_level()
            yield isa.Sync(barrier)       # all updates of this level done
            ncount = yield isa.Load(self.next_count.addr(0))
            yield isa.Sync(barrier)       # everyone has read the new count
            if bookkeeper:
                yield isa.Store(self.count_cur.addr(0), ncount)
                yield isa.Store(self.next_count.addr(0), 0)
            yield isa.Sync(barrier)       # bookkeeping visible to all
            current, upcoming = upcoming, current
            level += 1


class BfsWorkload(LoopWorkload):
    name = "bfs"
    orchestrated = True

    def default_dataset(self, scale: int = 1, seed: int = 0,
                        which: str = "wikipedia") -> Graph:
        """Graphs sized so the dist array (128 KB at scale 1) exceeds the
        64 KB L2, putting dist[neighbor] in the DRAM-bound regime it
        occupies on the real Wikipedia/YouTube/LiveJournal graphs.  The
        surrogates keep those datasets' *relative* densities but at a
        reduced average degree so full-system simulation stays tractable.
        """
        from repro.datasets.graphs import power_law_graph
        degrees = {"wikipedia": 12, "youtube": 8, "livejournal": 16}
        return power_law_graph(16384 * scale, degrees[which], seed=seed + 1,
                               name=which)

    def bind(self, soc, aspace, dataset: Graph, root: int = 0) -> BfsBinding:
        return BfsBinding(soc, aspace, dataset, root)
