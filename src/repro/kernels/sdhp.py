"""SDHP: Sparse-Dense Hadamard Product (§4.1).

``out[k] = vals[k] * dense[didx[k]]`` over the non-zeros of a sparse
matrix, where ``didx[k] = row(k)*cols + col(k)`` is the flat position of
non-zero k in the dense operand — the elementwise sampling of the dense
matrix at the sparse pattern's coordinates.  A single flat loop with one
cache-averse gather: the cleanest ``A[B[i]]`` instance, and the paper's
SuiteSparse/Kronecker workload.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.interp import Runtime
from repro.compiler.ir import (
    Bin,
    ComputeStmt,
    ForStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    Var,
)
from repro.datasets.kronecker import kronecker_graph
from repro.datasets.sparse import CsrMatrix, random_csr
from repro.kernels.base import LoopWorkload, WorkloadBinding


def build_sdhp_kernel() -> Kernel:
    body = [
        ForStmt("k", Var("nz_lo"), Var("nz_hi"), [
            LoadStmt("idx", "didx", Var("k")),
            LoadStmt("dv", "dense", Var("idx")),   # the IMA
            LoadStmt("v", "vals", Var("k")),
            ComputeStmt("r", Bin("*", Var("v"), Var("dv")), cycles=1),
            StoreStmt("out", Var("k"), Var("r")),
        ]),
    ]
    return Kernel(
        name="sdhp",
        arrays=["didx", "dense", "vals", "out"],
        params=["nz_lo", "nz_hi"],
        body=body,
    )


class SdhpDataset:
    """The sparse pattern (flattened), its values, and the sampled dense
    entries.  Only the sampled dense positions are materialized."""

    def __init__(self, matrix: CsrMatrix, dense_values: dict, dense_size: int):
        self.matrix = matrix
        self.dense_values = dense_values  # flat index -> value
        self.dense_size = dense_size
        rows_of = matrix.row_of_nnz()
        self.didx = [int(rows_of[k]) * matrix.cols + int(matrix.col_idx[k])
                     for k in range(matrix.nnz)]

    def reference(self) -> np.ndarray:
        return np.array([
            self.matrix.values[k] * self.dense_values[self.didx[k]]
            for k in range(self.matrix.nnz)
        ])


def _make_dataset(matrix: CsrMatrix, seed: int) -> SdhpDataset:
    rng = np.random.default_rng(seed)
    rows_of = matrix.row_of_nnz()
    dense_values = {}
    for k in range(matrix.nnz):
        flat = int(rows_of[k]) * matrix.cols + int(matrix.col_idx[k])
        dense_values[flat] = float(rng.uniform(0.5, 1.5))
    return SdhpDataset(matrix, dense_values, matrix.rows * matrix.cols)


class SdhpWorkload(LoopWorkload):
    name = "sdhp"

    def default_dataset(self, scale: int = 1, seed: int = 0,
                        kind: str = "suitesparse") -> SdhpDataset:
        """``kind="suitesparse"`` uses a random CSR surrogate;
        ``kind="kronecker"`` samples the paper's Kronecker pattern."""
        if kind == "kronecker":
            graph = kronecker_graph(scale=9, edges_per_vertex=scale,
                                    seed=13 + seed)
            matrix = CsrMatrix(
                graph.num_vertices, graph.num_vertices, graph.row_ptr,
                graph.neighbors, np.ones(graph.num_edges))
        else:
            matrix = random_csr(rows=32 * scale, cols=16384, nnz_per_row=16,
                                seed=17 + seed)
        return _make_dataset(matrix, seed=19 + seed)

    def bind(self, soc, aspace, dataset: SdhpDataset) -> WorkloadBinding:
        m = dataset.matrix
        dense = soc.array(aspace, dataset.dense_size, "dense")
        for flat, value in dataset.dense_values.items():
            dense.write(flat, value)
        arrays = {
            "didx": soc.array(aspace, dataset.didx, "didx"),
            "dense": dense,
            "vals": soc.array(aspace, [float(v) for v in m.values], "vals"),
            "out": soc.array(aspace, m.nnz, "out"),
        }
        expected = dataset.reference()

        def check() -> None:
            got = np.array(arrays["out"].to_list(), dtype=float)
            np.testing.assert_allclose(got, expected, rtol=1e-9)

        return WorkloadBinding(
            kernel=build_sdhp_kernel(),
            runtime=Runtime(arrays),
            partition_params=("nz_lo", "nz_hi"),
            total_iterations=m.nnz,
            check=check,
            droplet_indirections=(("didx", "dense"),),
        )
