"""SPMM: layer-wise sparse-sparse matrix multiplication (§4.1).

The Mofrad-style layer kernel for sparse DNN training: ``T += A @ B``
with A and B in CSC and T a dense temporary, parallelized over B's
columns.  The inner update ``T[c*rows + A_row[j]] += A_val[j] * B_val[k]``
is an *indirect read-modify-write*: the compiler cannot decouple it
(stale reads would drop updates), so decoupling plans fall back to doall
— exactly the behaviour the paper reports in Fig. 12.  Prefetching is
still sound through LIMA's speculative LLC mode.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.interp import Runtime
from repro.compiler.ir import (
    Bin,
    ComputeStmt,
    Const,
    ForStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    Var,
)
from repro.datasets.sparse import CscMatrix, random_csr
from repro.kernels.base import LoopWorkload, WorkloadBinding


def build_spmm_kernel() -> Kernel:
    t_index = Bin("+", Var("i"), Bin("*", Var("c"), Var("rows")))
    body = [
        ForStmt("c", Var("col_lo"), Var("col_hi"), [
            LoadStmt("blo", "b_colptr", Var("c")),
            LoadStmt("bhi", "b_colptr", Bin("+", Var("c"), Const(1))),
            ForStmt("k", Var("blo"), Var("bhi"), [
                LoadStmt("r", "b_rowidx", Var("k")),
                LoadStmt("bv", "b_vals", Var("k")),
                LoadStmt("alo", "a_colptr", Var("r")),
                LoadStmt("ahi", "a_colptr", Bin("+", Var("r"), Const(1))),
                ForStmt("j", Var("alo"), Var("ahi"), [
                    LoadStmt("i", "a_rowidx", Var("j")),
                    LoadStmt("av", "a_vals", Var("j")),
                    LoadStmt("told", "t", t_index),      # indirect RMW read
                    ComputeStmt("tnew", Bin("+", Var("told"),
                                            Bin("*", Var("av"), Var("bv"))),
                                cycles=2),
                    StoreStmt("t", t_index, Var("tnew")),  # indirect RMW write
                ]),
            ]),
        ]),
    ]
    return Kernel(
        name="spmm",
        arrays=["b_colptr", "b_rowidx", "b_vals",
                "a_colptr", "a_rowidx", "a_vals", "t"],
        params=["col_lo", "col_hi", "rows"],
        body=body,
    )


class SpmmDataset:
    def __init__(self, a: CscMatrix, b: CscMatrix):
        if a.cols != b.rows:
            raise ValueError("inner dimensions must agree")
        self.a = a
        self.b = b

    def reference(self) -> np.ndarray:
        return self.a.to_dense() @ self.b.to_dense()


class SpmmWorkload(LoopWorkload):
    name = "spmm"

    def default_dataset(self, scale: int = 1, seed: int = 0) -> SpmmDataset:
        """A is tall (16384 x 24) so the dense temp T defeats the caches;
        B is 24 x (4*scale)."""
        # random_csr generates CSR; transpose-interpret as CSC of the
        # transposed shape to get per-column nnz structure.
        a_csr = random_csr(rows=24, cols=16384, nnz_per_row=8, seed=23 + seed)
        a = CscMatrix(16384, 24, a_csr.row_ptr, a_csr.col_idx, a_csr.values)
        b_csr = random_csr(rows=4 * scale, cols=24, nnz_per_row=8, seed=29 + seed)
        b = CscMatrix(24, 4 * scale, b_csr.row_ptr, b_csr.col_idx, b_csr.values)
        return SpmmDataset(a, b)

    def bind(self, soc, aspace, dataset: SpmmDataset) -> WorkloadBinding:
        a, b = dataset.a, dataset.b
        arrays = {
            "b_colptr": soc.array(aspace, [int(v) for v in b.col_ptr], "b_colptr"),
            "b_rowidx": soc.array(aspace, [int(v) for v in b.row_idx], "b_rowidx"),
            "b_vals": soc.array(aspace, [float(v) for v in b.values], "b_vals"),
            "a_colptr": soc.array(aspace, [int(v) for v in a.col_ptr], "a_colptr"),
            "a_rowidx": soc.array(aspace, [int(v) for v in a.row_idx], "a_rowidx"),
            "a_vals": soc.array(aspace, [float(v) for v in a.values], "a_vals"),
            "t": soc.array(aspace, a.rows * b.cols, "t"),
        }
        expected = dataset.reference()

        def check() -> None:
            t = arrays["t"]
            got = np.array(t.to_list(), dtype=float).reshape(b.cols, a.rows).T
            np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)

        return WorkloadBinding(
            kernel=build_spmm_kernel(),
            runtime=Runtime(arrays, params={"rows": a.rows}),
            partition_params=("col_lo", "col_hi"),
            total_iterations=b.cols,
            check=check,
            droplet_indirections=(("a_rowidx", "t"),),
        )
