"""SPMV: sparse matrix - dense vector multiplication (§4.1).

``y[i] = sum_k vals[k] * x[col_idx[k]]`` over CSR rows.  The gather
``x[col_idx[k]]`` is the indirect access: col_idx is uniform-random, so
with the dense vector sized past the LLC every gather goes to DRAM.
The kernel is the paper's best case for both decoupling and LIMA (up to
2.4x prefetch speedup, Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.compiler.interp import Runtime
from repro.compiler.ir import (
    Bin,
    ComputeStmt,
    Const,
    ForStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    Var,
)
from repro.datasets.sparse import CsrMatrix, random_csr
from repro.kernels.base import LoopWorkload, WorkloadBinding


def build_spmv_kernel() -> Kernel:
    """The CSR SpMV loop nest (parallelized over rows via row_lo/row_hi)."""
    inner = [
        LoadStmt("c", "col_idx", Var("j")),
        LoadStmt("xv", "x", Var("c")),          # the IMA: x[col_idx[j]]
        LoadStmt("v", "vals", Var("j")),
        ComputeStmt("acc", Bin("+", Var("acc"), Bin("*", Var("v"), Var("xv"))),
                    cycles=2),
    ]
    body = [
        ForStmt("i", Var("row_lo"), Var("row_hi"), [
            LoadStmt("lo", "row_ptr", Var("i")),
            LoadStmt("hi", "row_ptr", Bin("+", Var("i"), Const(1))),
            ComputeStmt("acc", Const(0.0)),
            ForStmt("j", Var("lo"), Var("hi"), inner),
            StoreStmt("y", Var("i"), Var("acc")),
        ]),
    ]
    return Kernel(
        name="spmv",
        arrays=["row_ptr", "col_idx", "vals", "x", "y"],
        params=["row_lo", "row_hi"],
        body=body,
    )


class SpmvDataset:
    def __init__(self, matrix: CsrMatrix, x: np.ndarray):
        if len(x) != matrix.cols:
            raise ValueError("vector length must match matrix columns")
        self.matrix = matrix
        self.x = x

    def reference(self) -> np.ndarray:
        m = self.matrix
        y = np.zeros(m.rows)
        for i in range(m.rows):
            for k in range(m.row_ptr[i], m.row_ptr[i + 1]):
                y[i] += m.values[k] * self.x[m.col_idx[k]]
        return y


class SpmvWorkload(LoopWorkload):
    name = "spmv"

    def default_dataset(self, scale: int = 1, seed: int = 0) -> SpmvDataset:
        """~64*scale rows of 8 nnz against a 16K-entry (128 KB) vector."""
        rows = 64 * scale
        cols = 16384
        matrix = random_csr(rows, cols, nnz_per_row=8, seed=7 + seed)
        rng = np.random.default_rng(11 + seed)
        return SpmvDataset(matrix, rng.uniform(1.0, 2.0, size=cols))

    def bind(self, soc, aspace, dataset: SpmvDataset) -> WorkloadBinding:
        m = dataset.matrix
        arrays = {
            "row_ptr": soc.array(aspace, [int(v) for v in m.row_ptr], "row_ptr"),
            "col_idx": soc.array(aspace, [int(v) for v in m.col_idx], "col_idx"),
            "vals": soc.array(aspace, [float(v) for v in m.values], "vals"),
            "x": soc.array(aspace, [float(v) for v in dataset.x], "x"),
            "y": soc.array(aspace, m.rows, "y"),
        }
        expected = dataset.reference()

        def check() -> None:
            got = np.array(arrays["y"].to_list(), dtype=float)
            np.testing.assert_allclose(got, expected, rtol=1e-9)

        return WorkloadBinding(
            kernel=build_spmv_kernel(),
            runtime=Runtime(arrays),
            partition_params=("row_lo", "row_hi"),
            total_iterations=m.rows,
            check=check,
            droplet_indirections=(("col_idx", "x"),),
        )
