"""Memory substrate: physical memory, DRAM channel, caches, hierarchy.

The hierarchy is functional + timed: data always lives in the flat
:class:`~repro.mem.backing.PhysicalMemory` (so values are always current),
while the caches track only tags/LRU/MESI state and charge latencies.
This "write-through functional, write-back timing" split makes the model
immune to data-coherence bugs while still reproducing miss costs, cache
thrashing, and invalidation ping-pong.  The MESI protocol itself — line
states, sharer sets, write ownership, and the typed transition table —
lives in :mod:`repro.mem.coherence` and is shared by both coherence
backends (the flat-latency hierarchy and the sliced home-node
directory).
"""

from repro.mem.backing import PhysicalMemory
from repro.mem.cache import Cache, EvictedLine
from repro.mem.coherence import CoherenceBook, CoherenceError, LineState
from repro.mem.dram import DramChannel
from repro.mem.hierarchy import MemorySystem, MMIORegion

__all__ = ["Cache", "CoherenceBook", "CoherenceError", "DramChannel",
           "EvictedLine", "LineState", "MemorySystem", "MMIORegion",
           "PhysicalMemory"]
