"""Memory substrate: physical memory, DRAM channel, caches, hierarchy.

The hierarchy is functional + timed: data always lives in the flat
:class:`~repro.mem.backing.PhysicalMemory` (so values are always current),
while the caches track only tags/LRU/dirty state and charge latencies.
This "write-through functional, write-back timing" split makes the model
immune to data-coherence bugs while still reproducing miss costs, cache
thrashing, and invalidation ping-pong.
"""

from repro.mem.backing import PhysicalMemory
from repro.mem.cache import Cache
from repro.mem.dram import DramChannel
from repro.mem.hierarchy import MemorySystem, MMIORegion

__all__ = ["Cache", "DramChannel", "MemorySystem", "MMIORegion", "PhysicalMemory"]
