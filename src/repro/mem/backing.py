"""Flat word-granular physical memory.

The simulation stores data at 8-byte word granularity: every array element
occupies one word regardless of its declared C width (the paper's 4-byte
packing optimization is modeled at the MAPLE queue level, where it actually
lives — see :meth:`repro.core.api.MapleQueueHandle.consume_packed`).
Uninitialized reads return zero, like zero-filled pages from an OS.
"""

from __future__ import annotations

from typing import Any, Dict


WORD_BYTES = 8


class PhysicalMemory:
    """Sparse backing store: byte address (8-aligned) -> Python value."""

    def __init__(self) -> None:
        self._words: Dict[int, Any] = {}

    def read_word(self, paddr: int) -> Any:
        # Inlined alignment check (read_word runs once per simulated load).
        if paddr & 7 or paddr < 0:
            self._check(paddr)
        return self._words.get(paddr, 0)

    def write_word(self, paddr: int, value: Any) -> None:
        if paddr & 7 or paddr < 0:
            self._check(paddr)
        self._words[paddr] = value

    def read_line(self, line_addr: int, line_size: int) -> list:
        """All words of a cache line, in address order (used by LIMA)."""
        if line_addr % line_size:
            raise ValueError(f"line address {line_addr:#x} not {line_size}-aligned")
        return [
            self._words.get(line_addr + off, 0)
            for off in range(0, line_size, WORD_BYTES)
        ]

    def words_in_use(self) -> int:
        return len(self._words)

    @staticmethod
    def _check(paddr: int) -> None:
        if paddr < 0:
            raise ValueError(f"negative physical address {paddr:#x}")
        if paddr % WORD_BYTES:
            raise ValueError(f"unaligned word access at {paddr:#x}")
