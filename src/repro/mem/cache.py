"""Set-associative cache with true-LRU replacement and MESI line states.

The cache is a tag store only: it answers "is this line present, in what
coherence state, and what gets evicted if I insert?".  Data stays in
:class:`PhysicalMemory`.  This is exactly the state the paper's effects
depend on — software prefetching thrashes the 8 KB L1 because prefetched
lines evict live ones, which this structure reproduces faithfully.

Each resident line carries a :class:`~repro.mem.coherence.LineState`
(MODIFIED replaces the old boolean dirty bit; EXCLUSIVE/SHARED are the
clean states).  The state *transitions* are owned by
:class:`~repro.mem.coherence.CoherenceBook` — this class only stores
what it is told via :meth:`insert` / :meth:`set_state`.

Quiescence audit (engine contract, see DESIGN.md): the cache is pure
synchronous state — it never schedules events, and its latencies are
charged by the hierarchy only on accesses that happen.  An idle bank
contributes zero events regardless of mesh size.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.mem.coherence import LineState


@dataclass
class EvictedLine:
    """What :meth:`Cache.insert` displaced (MODIFIED = needs writeback)."""

    line: int
    state: LineState


class Cache:
    """Tags + LRU + MESI states for a size/ways/line_size geometry."""

    def __init__(self, size: int, ways: int, line_size: int, name: str = "cache"):
        if size % (ways * line_size):
            raise ValueError(f"{name}: size {size} not divisible into {ways}-way sets")
        self.name = name
        self.size = size
        self.ways = ways
        self.line_size = line_size
        self.num_sets = size // (ways * line_size)
        self._line_shift = line_size.bit_length() - 1
        # Set-index mask, precomputed: geometries here always yield a
        # power-of-two set count, so indexing is a shift + AND (the modulo
        # fallback covers exotic configs).
        self._set_mask = self.num_sets - 1 if not (self.num_sets &
                                                   (self.num_sets - 1)) else None
        # Each set maps line -> LineState; OrderedDict order is LRU order
        # (least recent first).  INVALID is never stored — absence IS the
        # invalid state.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    def _set_for(self, line: int) -> OrderedDict:
        # ``line`` is a line-aligned byte address; the set index comes from
        # the bits just above the offset, as in real tag arrays.
        if self._set_mask is not None:
            return self._sets[(line >> self._line_shift) & self._set_mask]
        return self._sets[(line >> self._line_shift) % self.num_sets]

    def lookup(self, line: int) -> bool:
        """Probe for a line; a hit refreshes its LRU position."""
        # Single-probe fast path: move_to_end does the presence check.
        try:
            self._set_for(line).move_to_end(line)
            return True
        except KeyError:
            return False

    def contains(self, line: int) -> bool:
        """Probe without disturbing LRU state (for assertions/snoops)."""
        return line in self._set_for(line)

    def insert(self, line: int,
               state: LineState = LineState.SHARED) -> Optional[EvictedLine]:
        """Install a line, returning the victim if the set was full.

        Inserting a line that is already present refreshes LRU and keeps
        the stronger state (a fill never downgrades a MODIFIED line).
        """
        if state is LineState.INVALID:
            raise ValueError(f"{self.name}: cannot insert line {line:#x} INVALID")
        entry = self._set_for(line)
        # Collapsed present-probe: pop-and-reappend both tests residency
        # and refreshes LRU in one dict operation each.
        prev = entry.pop(line, None)
        if prev is not None:
            entry[line] = prev if prev >= state else state
            return None
        victim = None
        if len(entry) >= self.ways:
            victim_line, victim_state = entry.popitem(last=False)
            victim = EvictedLine(victim_line, victim_state)
        entry[line] = state
        return victim

    def set_state(self, line: int, state: LineState) -> None:
        """Coherence transition on a resident line (store upgrade to
        MODIFIED, downgrade to SHARED, ...)."""
        entry = self._set_for(line)
        if line not in entry:
            raise KeyError(
                f"{self.name}: cannot set state of absent line {line:#x}")
        if state is LineState.INVALID:
            raise ValueError(
                f"{self.name}: use invalidate() to drop line {line:#x}")
        entry[line] = state

    def state_of(self, line: int) -> LineState:
        """The line's MESI state (INVALID when absent; no LRU update)."""
        entry = self._set_for(line)
        return entry.get(line, LineState.INVALID)

    def invalidate(self, line: int) -> Optional[LineState]:
        """Drop a line (coherence invalidation).  Returns the state it
        held, or ``None`` if it was absent."""
        entry = self._set_for(line)
        return entry.pop(line, None)

    def flush(self) -> None:
        """Drop every line, MODIFIED ones included (power-on / test
        reset, not a writeback flush)."""
        for entry in self._sets:
            entry.clear()

    def occupancy(self) -> int:
        return sum(len(entry) for entry in self._sets)

    def resident_lines(self) -> List[int]:
        return [line for entry in self._sets for line in entry]

    def __repr__(self) -> str:
        return (
            f"<Cache {self.name} {self.size}B {self.ways}-way "
            f"{self.num_sets} sets, {self.occupancy()} lines resident>"
        )
