"""The shared per-line MESI coherence state machine.

Both coherence backends — the legacy flat-latency model in
:mod:`repro.mem.hierarchy` and the sliced home-node directory in
:mod:`repro.mem.directory` — drive the same :class:`CoherenceBook`:
one source of truth for per-line sharer sets, write ownership, and the
M/E/S/I state stored in each L1's tag array.  The backends differ only
in *timing* (flat ``l2_latency`` charges vs real NoC message round
trips); the protocol state transitions are identical, typed, and
validated by :data:`TRANSITIONS` — an illegal transition raises
:class:`CoherenceError` at the exact event that caused it instead of
silently corrupting the sharer books.

State meanings (per L1 line; the L2 reuses the same enum with
``SHARED`` = clean, ``MODIFIED`` = holds dirty data written back from
an L1):

- ``MODIFIED``  — this core wrote the line; its copy is the only dirty
  one and the core holds write ownership.
- ``EXCLUSIVE`` — this core is the only sharer and its copy is clean; a
  store upgrades silently (no invalidations needed).
- ``SHARED``    — clean, possibly held by several cores.
- ``INVALID``   — not resident (never stored in a tag array; it is the
  state :meth:`repro.mem.cache.Cache.state_of` reports for absent
  lines).

One deliberate deviation from textbook MESI, inherited from the timing
model it must stay bit-identical to: data functionally lives in
:class:`~repro.mem.backing.PhysicalMemory`, so a fill that lands while
another core holds the line MODIFIED (the filling core snooped *before*
the owner's store — both orderings are reachable across a fill's DRAM
latency) joins as a SHARED reader without forcing a writeback.  The
quiescence audit therefore checks single-*ownership* (at most one M/E
holder, every other resident copy SHARED), not strict M-excludes-
sharers.  See DESIGN.md for the full table and the audit's invariants.

Sharding: :meth:`CoherenceBook.shard` splits the entry store across the
directory's home slices (``slice_of`` address interleaving), so each
directory bank literally owns the MESI state of its lines — the
directory reads its slice of the book, not a seam into the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.sim.stats import Stats


class CoherenceError(RuntimeError):
    """An illegal MESI transition or a single-writer violation."""


class LineState(IntEnum):
    """Per-line MESI state.  Ordered so ``max`` merges conservatively
    (a dirty copy never loses its dirtiness to a clean re-fill)."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


_I = LineState.INVALID
_S = LineState.SHARED
_E = LineState.EXCLUSIVE
_M = LineState.MODIFIED

#: The typed transition table: ``(state, event) -> next state``.  Any
#: pair not listed is illegal and raises :class:`CoherenceError`.
#:
#: Events:
#:
#: - ``fill_exclusive`` — demand/prefetch fill, no other sharer exists.
#: - ``fill_shared``    — fill while other cores already share the line.
#: - ``share``          — another core's fill joins: a clean exclusive
#:   copy silently degrades to SHARED (zero cycles, no message).
#: - ``store``          — the core writes the line *after* the upgrade
#:   path guaranteed exclusivity (or while already M/E).
#: - ``downgrade``      — a forwarding round trip / directory recall
#:   landed: surrender write ownership, keep a clean copy.  Legal from
#:   SHARED too: two concurrent snoops of one owner both commit, and
#:   the second lands after the first already downgraded.
#: - ``invalidate``     — upgrade invalidation or inclusive-L2 recall.
TRANSITIONS: Dict[Tuple[LineState, str], LineState] = {
    (_I, "fill_exclusive"): _E,
    (_I, "fill_shared"): _S,
    (_E, "share"): _S,
    (_S, "store"): _M,
    (_E, "store"): _M,
    (_M, "store"): _M,
    (_M, "downgrade"): _S,
    (_E, "downgrade"): _S,
    (_S, "downgrade"): _S,
    (_S, "invalidate"): _I,
    (_E, "invalidate"): _I,
    (_M, "invalidate"): _I,
}


def transition(state: LineState, event: str) -> LineState:
    """The next state for ``event``, or :class:`CoherenceError`."""
    try:
        return TRANSITIONS[(state, event)]
    except KeyError:
        raise CoherenceError(
            f"illegal MESI transition: {event!r} in state {state.name}"
        ) from None


@dataclass
class Entry:
    """Book-side record for one line somebody holds: who shares it, and
    which core (if any) holds write ownership (state M, or E from a
    solo fill)."""

    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None


class CoherenceBook:
    """Sharer sets + ownership ledger + the L1 state transitions.

    The hierarchy and the directory both mutate coherence state only
    through these methods; each one validates its transition against
    :data:`TRANSITIONS` and keeps the book's sharer sets synchronized
    with actual tag-array residency.  The three protocol counters
    (``coherence.forwards`` / ``invalidations`` / ``recalls``) live
    here so both backends account identically.
    """

    def __init__(self, stats: Stats):
        self._l1s: Dict[int, "Cache"] = {}
        self._l2: Optional["Cache"] = None
        #: Entry store, sharded by the directory's home interleaving
        #: (one shard until :meth:`shard` is called).
        self._shards: List[Dict[int, Entry]] = [{}]
        self._slice_fn: Callable[[int], int] = lambda line: 0
        self._c_forwards = stats.counter("coherence.forwards")
        self._c_invalidations = stats.counter("coherence.invalidations")
        self._c_recalls = stats.counter("coherence.recalls")
        #: Fills dropped because the line's L2 copy was evicted while the
        #: fill was in flight (keeping the inclusive invariant airtight;
        #: the access still returns correct data and re-misses later).
        self._c_dropped_fills = stats.counter("coherence.dropped_fills")

    # -- construction -----------------------------------------------------

    def register_l1(self, core_id: int, cache: "Cache") -> None:
        self._l1s[core_id] = cache

    def attach_l2(self, cache: "Cache") -> None:
        self._l2 = cache

    def shard(self, nslices: int, slice_fn: Callable[[int], int]) -> None:
        """Split the entry store across ``nslices`` directory home
        slices.  Legal only while the book is empty (the SoC builds the
        directory before anything runs)."""
        if any(self._shards):
            raise CoherenceError("cannot reshard a non-empty book")
        self._shards = [{} for _ in range(nslices)]
        self._slice_fn = slice_fn

    def shard_lines(self, index: int) -> Dict[int, Entry]:
        """Slice ``index``'s own entries — the MESI state a directory
        bank stores (read-only by convention)."""
        return self._shards[index]

    def _lookup(self, line: int) -> Optional[Entry]:
        return self._shards[self._slice_fn(line)].get(line)

    # -- protocol events --------------------------------------------------

    def fill(self, core_id: int, line: int):
        """A fill for ``core_id`` completed: install the line in its L1
        with the protocol-correct state and return the L1 victim (an
        :class:`~repro.mem.cache.EvictedLine`) if the set was full.

        Solo fills take EXCLUSIVE; joining an existing sharer set takes
        SHARED (silently degrading a clean EXCLUSIVE owner).  A fill
        whose L2 line was evicted during its flight is dropped to keep
        the inclusive invariant — the caller's access still returns
        correct data from backing memory.
        """
        if self._l2 is not None and not self._l2.contains(line):
            self._c_dropped_fills.value += 1
            return None
        shard = self._shards[self._slice_fn(line)]
        entry = shard.get(line)
        if entry is None:
            state = transition(_I, "fill_exclusive")
            shard[line] = Entry({core_id}, core_id)
        elif core_id in entry.sharers:
            # Re-fill of a line this core already shares (prefetch vs
            # demand overlap): refresh LRU, never downgrade the state.
            state = _S
        else:
            state = transition(_I, "fill_shared")
            owner = entry.owner
            if owner is not None:
                owner_l1 = self._l1s[owner]
                if owner_l1.state_of(line) is _E:
                    owner_l1.set_state(line, transition(_E, "share"))
                    entry.owner = None
            entry.sharers.add(core_id)
        victim = self._l1s[core_id].insert(line, state)
        if victim is not None:
            self.drop(core_id, victim.line)
        return victim

    def store(self, core_id: int, line: int) -> None:
        """``core_id`` writes a line it holds (the upgrade path already
        ran): transition its copy to MODIFIED and take ownership."""
        entry = self._lookup(line)
        if entry is None or core_id not in entry.sharers:
            raise CoherenceError(
                f"line {line:#x}: store by core {core_id}, who is not "
                "a sharer")
        owner = entry.owner
        if owner is not None and owner != core_id:
            raise CoherenceError(
                f"line {line:#x}: store by core {core_id} while core "
                f"{owner} holds ownership — single-writer violated")
        l1 = self._l1s[core_id]
        l1.set_state(line, transition(l1.state_of(line), "store"))
        entry.owner = core_id

    def downgrade(self, core_id: int, line: int) -> None:
        """A forwarding round trip / directory recall landed at the
        owner: surrender write ownership, keep the copy shared-clean.
        Counts a ``coherence.forwards`` even when the copy was evicted
        during the round trip (the requester paid it regardless)."""
        self._c_forwards.value += 1
        l1 = self._l1s[core_id]
        state = l1.state_of(line)
        if state is not _I:
            if state is _M:
                self.write_back(line)
            l1.set_state(line, transition(state, "downgrade"))
        entry = self._lookup(line)
        if entry is not None and entry.owner == core_id:
            entry.owner = None

    def invalidate(self, core_id: int, line: int,
                   recall: bool = False) -> None:
        """Kill ``core_id``'s copy: an upgrade invalidation, or (with
        ``recall=True``) an inclusive-L2 eviction recall."""
        (self._c_recalls if recall else self._c_invalidations).value += 1
        state = self._l1s[core_id].invalidate(line)
        if state is not None:
            transition(state, "invalidate")
        self._remove_sharer(line, core_id)

    def write_back(self, line: int) -> None:
        """Dirty L1 data landed in the shared L2 (an M->S downgrade or a
        MODIFIED victim's eviction writeback): mark the L2 copy
        MODIFIED so its own eviction knows to write DRAM back."""
        if self._l2 is not None and self._l2.contains(line):
            self._l2.set_state(line, _M)

    def drop(self, core_id: int, line: int) -> None:
        """``core_id``'s copy left its L1 by capacity eviction (the tag
        array already removed it) — no protocol message, no counter."""
        self._remove_sharer(line, core_id)

    def _remove_sharer(self, line: int, core_id: int) -> None:
        shard = self._shards[self._slice_fn(line)]
        entry = shard.get(line)
        if entry is None:
            return
        entry.sharers.discard(core_id)
        if entry.owner == core_id:
            entry.owner = None
        if not entry.sharers:
            del shard[line]

    # -- queries ----------------------------------------------------------

    def sharers_of(self, line: int) -> Set[int]:
        """Cores currently holding ``line`` in their L1 (a copy)."""
        entry = self._lookup(line)
        return set(entry.sharers) if entry is not None else set()

    def owner_of(self, line: int) -> Optional[int]:
        entry = self._lookup(line)
        return entry.owner if entry is not None else None

    def dirty_holder(self, line: int, excluding: int) -> Optional[int]:
        """The core (other than ``excluding``) holding ``line`` MODIFIED,
        if any — the recall target of an ownership transfer."""
        entry = self._lookup(line)
        if entry is None:
            return None
        owner = entry.owner
        if (owner is not None and owner != excluding
                and self._l1s[owner].state_of(line) is _M):
            return owner
        return None

    def owners(self) -> Dict[int, int]:
        """``line -> owning core`` across every shard (M holders plus
        clean EXCLUSIVE fills)."""
        return {line: entry.owner
                for shard in self._shards
                for line, entry in shard.items()
                if entry.owner is not None}

    def pending_lines(self) -> int:
        """Tracked lines across all shards (lifecycle audits)."""
        return sum(len(shard) for shard in self._shards)

    # -- quiescence audit -------------------------------------------------

    def check(self) -> List[str]:
        """The SWMR/inclusion audit, run at quiescence.

        Verified invariants: every tracked sharer actually holds the
        line; at most one owner per line; the owner's copy is M or E
        and every non-owner copy is SHARED; a MODIFIED or EXCLUSIVE
        copy implies recorded ownership; every L1-resident line is
        tracked by the book; and the L2 includes every L1 line.
        """
        problems: List[str] = []
        for shard in self._shards:
            for line, entry in shard.items():
                if not entry.sharers:
                    problems.append(
                        f"line {line:#x}: tracked with an empty sharer set")
                    continue
                owner = entry.owner
                if owner is not None and owner not in entry.sharers:
                    problems.append(
                        f"line {line:#x}: owner core {owner} is not a "
                        "sharer")
                for core_id in entry.sharers:
                    state = self._l1s[core_id].state_of(line)
                    if state is _I:
                        problems.append(
                            f"line {line:#x}: core {core_id} recorded as "
                            "sharer but holds no copy")
                    elif core_id == owner:
                        if state is _S:
                            problems.append(
                                f"line {line:#x}: owner core {core_id} "
                                "holds only a SHARED copy")
                    elif state is not _S:
                        problems.append(
                            f"line {line:#x}: non-owner core {core_id} in "
                            f"state {state.name} — single-writer violated")
                if self._l2 is not None and not self._l2.contains(line):
                    problems.append(
                        f"line {line:#x}: held by cores "
                        f"{sorted(entry.sharers)} but absent from the "
                        "inclusive L2")
        for core_id, l1 in self._l1s.items():
            for line in l1.resident_lines():
                entry = self._lookup(line)
                if entry is None or core_id not in entry.sharers:
                    problems.append(
                        f"line {line:#x}: resident in l1.{core_id} but "
                        "untracked by the book")
        return problems

    def telemetry(self) -> Dict[str, int]:
        return {
            "forwards": self._c_forwards.value,
            "invalidations": self._c_invalidations.value,
            "recalls": self._c_recalls.value,
            "dropped_fills": self._c_dropped_fills.value,
            "tracked_lines": self.pending_lines(),
        }
