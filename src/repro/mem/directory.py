"""Address-interleaved home-node directory over per-tile L2 slices.

On MemPool-class meshes (16x16 and up) the shared L2 is physically
sliced: each line has a *home* tile chosen by address interleaving, and
the home's directory bank arbitrates write ownership.  This module makes
that structure real in the model — and, crucially, makes the coherence
*messages* real: every invalidation and ownership-transfer round trip is
a :class:`~repro.sim.port.Port` transaction whose request/response legs
ride the NoC planes through :meth:`repro.noc.network.Network.link`.  The
traffic is therefore visible to per-port taps, countable per plane,
subject to injected channel faults, and protected by reliable delivery
when ``SoCConfig.reliable_ports`` is armed — none of which a fixed
``yield l2_latency`` charge (the ``directory=False`` legacy model in
:mod:`repro.mem.hierarchy`) can offer.

Protocol (MESI-flavored, invalidate-based):

- **Silent grant** — a store whose line has no other sharer upgrades
  locally: the L1's state already implies exclusivity, so no message is
  sent.  This is what keeps a single-core run cycle-identical whether
  the directory is on or off (a property test enforces it).
- **Upgrade** — a store to a line other cores share sends ``dir_upgrade``
  to the line's home tile (request plane out, response plane back).  The
  home serializes per line, fans ``dir_inval`` messages out to every
  other sharer *in parallel* (each one a home->sharer port transaction
  that invalidates the sharer's L1 copy and acks back), then grants
  ownership to the requester.
- **Ownership transfer** — a load of a line dirty in another L1 sends
  ``dir_fetch`` to the home; the home recalls the data with a
  ``dir_recall`` to the owner (who downgrades to shared-clean and loses
  write ownership) and answers the requester.

The directory's sharer state is the memory hierarchy's own sharers map
(one source of truth); what this module adds is the *owner* ledger, the
per-line home serialization, and the message fabric.  ``owners`` can
hold at most one core per line by construction, and :meth:`_grant`
additionally hard-checks that no other L1 still holds the line dirty at
grant time — a violated check raises :class:`DirectoryError` rather than
letting two writers coexist silently.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Sequence, Tuple

from repro.noc import Network, Plane
from repro.params import SoCConfig
from repro.sim import Semaphore, Simulator
from repro.sim.port import Message, Port, PortRegistry
from repro.sim.stats import Stats

if TYPE_CHECKING:
    from repro.mem.hierarchy import MemorySystem

#: Bounded audit ring: (cycle, event, line, core, detail) records.  The
#: property tests replay these against the sharer sets; the bound keeps
#: long directory-on experiments from accumulating unbounded history.
AUDIT_DEPTH = 1 << 16


class DirectoryError(RuntimeError):
    """The single-writer invariant was about to be violated."""


class Directory:
    """Home-node directory: per-tile slices, NoC-carried coherence traffic."""

    def __init__(self, sim: Simulator, memsys: "MemorySystem",
                 network: Network, registry: PortRegistry,
                 home_tiles: Sequence[int], core_tiles: Dict[int, int],
                 config: SoCConfig, stats: Stats):
        if not home_tiles:
            raise ValueError("directory needs at least one home tile")
        self._sim = sim
        self._memsys = memsys
        self.home_tiles: List[int] = list(home_tiles)
        self._nslices = len(self.home_tiles)
        self._line_size = config.line_size
        self.stats = stats.scoped("directory")
        self._c_upgrades = self.stats.counter("upgrades")
        self._c_silent_grants = self.stats.counter("silent_grants")
        self._c_invalidations = self.stats.counter("invalidations")
        self._c_transfers = self.stats.counter("transfers")
        self._c_slice_lookups = [self.stats.counter(f"slice{i}.lookups")
                                 for i in range(self._nslices)]
        #: line -> core_id holding write ownership (at most one, ever).
        self.owners: Dict[int, int] = {}
        #: Per-line home serialization (created on demand, reaped when idle).
        self._locks: Dict[int, Semaphore] = {}
        #: Audit ring the property tests check invariants against.
        self.audit: Deque[Tuple[int, str, int, int, Any]] = deque(
            maxlen=AUDIT_DEPTH)

        # Port fabric: per core, one request pair (core tile -> home, the
        # dst tile is set per message so the NoC charges the real route)
        # and one invalidation pair (home -> core tile).  All four legs
        # ride the request/response planes exactly like MMIO traffic.
        self._req_ports: Dict[int, Port] = {}
        self._inval_ports: Dict[int, Port] = {}
        depth = 1 + config.core_mshrs + config.store_buffer_entries
        for core_id, tile in sorted(core_tiles.items()):
            req = registry.port(f"core{core_id}.dir", tile=tile, depth=depth)
            srv = registry.port(f"dir.core{core_id}", tile=-1)
            srv.bind(self._serve_home)
            registry.connect(req, srv,
                             request_link=network.link(Plane.REQUEST),
                             response_link=network.link(Plane.RESPONSE))
            self._req_ports[core_id] = req
            inv = registry.port(f"dir.inval{core_id}", tile=-1)
            inv_srv = registry.port(f"core{core_id}.inval", tile=tile)
            inv_srv.bind(self._make_core_handler(core_id))
            registry.connect(inv, inv_srv,
                             request_link=network.link(Plane.REQUEST),
                             response_link=network.link(Plane.RESPONSE))
            self._inval_ports[core_id] = inv

    # -- geometry ----------------------------------------------------------

    def slice_of(self, line: int) -> int:
        """Home slice of a line: consecutive lines interleave round-robin."""
        return (line // self._line_size) % self._nslices

    def home_tile(self, line: int) -> int:
        return self.home_tiles[self.slice_of(line)]

    def has_pending(self, line: int) -> bool:
        """True while a home transaction for ``line`` is being served (or
        queued) — the window in which silent upgrades are unsafe."""
        return line in self._locks

    # -- requester-side entry points (called from the hierarchy) -----------

    def grant_silent(self, line: int, core_id: int) -> None:
        """Zero-message upgrade: the requester is the only sharer (or the
        line is nowhere), so its L1 state already implies exclusivity."""
        self._c_silent_grants.value += 1
        self._grant(line, core_id, silent=True)

    def upgrade(self, core_id: int, line: int):
        """Generator: store-upgrade round trip through the line's home.

        Returns the number of sharers invalidated.
        """
        port = self._req_ports[core_id]
        return (yield from port.request("dir_upgrade", (line, core_id),
                                        dst=self.home_tile(line)))

    def fetch(self, core_id: int, line: int):
        """Generator: ownership-transfer round trip for a load of a line
        dirty in another L1.  Returns the number of recalls issued."""
        port = self._req_ports[core_id]
        return (yield from port.request("dir_fetch", (line, core_id),
                                        dst=self.home_tile(line)))

    # -- home-side service -------------------------------------------------

    def _serve_home(self, msg: Message):
        """Generator: one directory transaction at the line's home bank."""
        line, core_id = msg.payload
        self._c_slice_lookups[self.slice_of(line)].value += 1
        lock = self._locks.get(line)
        if lock is None:
            lock = self._locks[line] = Semaphore(self._sim, 1,
                                                 name=f"dir.line{line:#x}")
        if not lock.try_acquire():
            yield from lock.acquire()
        try:
            if msg.kind == "dir_upgrade":
                count = yield from self._home_upgrade(line, core_id)
            elif msg.kind == "dir_fetch":
                count = yield from self._home_fetch(line, core_id)
            else:
                raise ValueError(f"directory: unknown request {msg.kind!r}")
        finally:
            lock.release()
            if not lock.in_use and not lock.waiting:
                self._locks.pop(line, None)
        return count

    def _home_upgrade(self, line: int, core_id: int):
        # Re-read under the lock: the sharer set may have changed while
        # the request crossed the mesh or waited behind another writer.
        others = sorted(self._memsys.sharers_of(line) - {core_id})
        self.audit.append((self._sim.now, "upgrade", line, core_id,
                           tuple(others)))
        if others:
            yield from self._fan_out(line, others, "dir_inval")
        self._c_upgrades.value += 1
        self._c_invalidations.value += len(others)
        self._grant(line, core_id, silent=False)
        return len(others)

    def _home_fetch(self, line: int, core_id: int):
        holder = self._memsys.dirty_holder(line, excluding=core_id)
        if holder is None:
            return 0  # downgraded/evicted while the request was in flight
        yield from self._fan_out(line, [holder], "dir_recall")
        self._c_transfers.value += 1
        return 1

    def _fan_out(self, line: int, cores: Sequence[int], kind: str):
        """Generator: send ``kind`` to every core in parallel, join all.

        Each message is a full home->core->home port transaction (request
        NoC out, ack on the response NoC); fanning out concurrently means
        an upgrade pays the *max* sharer distance, not the sum.
        """
        home = self.home_tile(line)
        if len(cores) == 1:
            yield from self._inval_ports[cores[0]].request(
                kind, line, src=home)
            return
        procs = [self._sim.spawn(
            self._inval_ports[core].request(kind, line, src=home),
            name=f"dir.{kind}") for core in cores]
        for proc in procs:
            yield proc

    def _make_core_handler(self, core_id: int):
        """The core-tile side of the invalidation fabric: apply the
        protocol action to this core's L1, then ack (zero service time —
        the cost is the two NoC traversals)."""
        def handler(msg: Message):
            if msg.kind == "dir_inval":
                self._memsys.apply_inval(core_id, msg.payload)
            elif msg.kind == "dir_recall":
                self._memsys.apply_downgrade(core_id, msg.payload)
            else:
                raise ValueError(f"directory: unknown inval {msg.kind!r}")
            self.audit.append((self._sim.now, msg.kind, msg.payload,
                               core_id, None))
            return None
            yield  # pragma: no cover — generator shape, zero latency
        return handler

    # -- ownership ledger --------------------------------------------------

    def _grant(self, line: int, core_id: int, silent: bool) -> None:
        sharers = frozenset(self._memsys.sharers_of(line))
        for other in sharers:
            if other != core_id and self._memsys.l1s[other].is_dirty(line):
                raise DirectoryError(
                    f"line {line:#x}: granting ownership to core {core_id} "
                    f"while core {other} still holds it dirty")
        previous = self.owners.get(line)
        if (previous is not None and previous != core_id
                and self._memsys.l1s[previous].is_dirty(line)):
            raise DirectoryError(
                f"line {line:#x}: core {previous} still owns the line "
                f"dirty at grant to core {core_id}")
        if core_id in sharers:
            self.owners[line] = core_id
            event = "grant_silent" if silent else "grant"
        else:
            # The requester's own copy was invalidated while its upgrade
            # was queued at the home; the grant is void (the store's
            # ``l1.contains`` guard will skip the dirty bit too).
            event = "grant_void"
        self.audit.append((self._sim.now, event, line, core_id, sharers))

    def on_sharer_dropped(self, line: int, core_id: int) -> None:
        """Hierarchy callback: a core lost its copy (invalidation, L1
        eviction, inclusive-L2 recall) — write ownership goes with it."""
        if self.owners.get(line) == core_id:
            del self.owners[line]

    def on_downgrade(self, line: int, core_id: int) -> None:
        """Hierarchy callback: the owner's copy was downgraded to
        shared-clean (ownership transfer) — nobody owns the line now."""
        if self.owners.get(line) == core_id:
            del self.owners[line]

    # -- telemetry ---------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        return {
            "slices": self._nslices,
            "home_tiles": list(self.home_tiles),
            "owned_lines": len(self.owners),
            "locked_lines": sorted(self._locks),
        }

    def telemetry(self) -> Dict[str, int]:
        """Flat counter snapshot (upgrades/invalidations/transfers)."""
        return {
            "upgrades": self._c_upgrades.value,
            "silent_grants": self._c_silent_grants.value,
            "invalidations": self._c_invalidations.value,
            "transfers": self._c_transfers.value,
        }


def interleaved_home_tiles(cols: int, rows: int, slices: int) -> List[int]:
    """Home tiles for ``slices`` L2 banks: the per-quadrant geometry, so
    directory traffic distributes across the mesh the way MemPool's
    physical L2 slices do."""
    from repro.noc.mesh import placement_tiles

    return placement_tiles(cols, rows, min(slices, cols * rows),
                           "per-quadrant")
