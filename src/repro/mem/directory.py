"""Address-interleaved home-node directory over per-tile L2 slices.

On MemPool-class meshes (16x16 and up) the shared L2 is physically
sliced: each line has a *home* tile chosen by address interleaving, and
the home's directory bank arbitrates write ownership.  This module makes
that structure real in the model — and, crucially, makes the coherence
*messages* real: every invalidation and ownership-transfer round trip is
a :class:`~repro.sim.port.Port` transaction whose request/response legs
ride the NoC planes through :meth:`repro.noc.network.Network.link`.  The
traffic is therefore visible to per-port taps, countable per plane,
subject to injected channel faults, and protected by reliable delivery
when ``SoCConfig.reliable_ports`` is armed — none of which a fixed
``yield l2_latency`` charge (the ``directory=False`` legacy model in
:mod:`repro.mem.hierarchy`) can offer.

Protocol (MESI, invalidate-based; the state machine itself lives in
:mod:`repro.mem.coherence` and is shared with the legacy backend):

- **Silent grant** — a store whose line has no other sharer upgrades
  locally: the L1's EXCLUSIVE/MODIFIED state already implies
  exclusivity, so no message is sent.  This is what keeps a single-core
  run cycle-identical whether the directory is on or off (a property
  test enforces it).
- **Upgrade** — a store to a line other cores share sends ``dir_upgrade``
  to the line's home tile (request plane out, response plane back).  The
  home serializes per line, fans ``dir_inval`` messages out to every
  other sharer *in parallel* (each one a home->sharer port transaction
  that invalidates the sharer's L1 copy and acks back), then grants
  ownership to the requester.
- **Ownership transfer** — a load of a line MODIFIED in another L1 sends
  ``dir_fetch`` to the home; the home recalls the data with a
  ``dir_recall`` to the owner (who downgrades to shared-clean and loses
  write ownership) and answers the requester.
- **Refill / writeback** (``SoCConfig.directory_mem_traffic``) — an L2
  miss sends ``dir_refill`` from the line's home slice to the memory
  controller tile over the MEMORY NoC plane (the DRAM access happens
  server-side); evicting a MODIFIED L2 line fires an asynchronous
  ``dir_writeback`` the same way.  Off by default: the memory plane
  stays silent and refills are direct DRAM calls, bit-identical to the
  legacy timing.

The directory's MESI state lives *in the slices themselves*: building
the directory shards the hierarchy's :class:`~repro.mem.coherence.
CoherenceBook` by :meth:`slice_of`, so each home bank literally owns the
``line -> (sharers, owner)`` entries it arbitrates (:meth:`slice_state`
exposes a bank's shard).  :meth:`_grant` hard-checks the single-writer
invariant at every grant — a violation raises :class:`DirectoryError`
rather than letting two writers coexist silently.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Sequence, Tuple

from repro.mem.coherence import Entry, LineState
from repro.noc import Network, Plane
from repro.params import SoCConfig
from repro.sim import Semaphore, Simulator
from repro.sim.port import Message, Port, PortRegistry
from repro.sim.stats import Stats

if TYPE_CHECKING:
    from repro.mem.hierarchy import MemorySystem

#: Bounded audit ring: (cycle, event, line, core, detail) records.  The
#: property tests replay these against the sharer sets; the bound keeps
#: long directory-on experiments from accumulating unbounded history.
AUDIT_DEPTH = 1 << 16


class DirectoryError(RuntimeError):
    """The single-writer invariant was about to be violated."""


class Directory:
    """Home-node directory: per-tile slices, NoC-carried coherence traffic."""

    def __init__(self, sim: Simulator, memsys: "MemorySystem",
                 network: Network, registry: PortRegistry,
                 home_tiles: Sequence[int], core_tiles: Dict[int, int],
                 config: SoCConfig, stats: Stats):
        if not home_tiles:
            raise ValueError("directory needs at least one home tile")
        self._sim = sim
        self._memsys = memsys
        self.home_tiles: List[int] = list(home_tiles)
        self._nslices = len(self.home_tiles)
        self._line_size = config.line_size
        #: The shared MESI state machine, sharded so each home bank owns
        #: the entries for its own lines.
        self._book = memsys.book
        self._book.shard(self._nslices, self.slice_of)
        self.stats = stats.scoped("directory")
        self._c_upgrades = self.stats.counter("upgrades")
        self._c_silent_grants = self.stats.counter("silent_grants")
        self._c_invalidations = self.stats.counter("invalidations")
        self._c_transfers = self.stats.counter("transfers")
        self._c_refills = self.stats.counter("refills")
        self._c_writebacks = self.stats.counter("writebacks")
        self._c_slice_lookups = [self.stats.counter(f"slice{i}.lookups")
                                 for i in range(self._nslices)]
        #: Per-line home serialization (created on demand, reaped when idle).
        self._locks: Dict[int, Semaphore] = {}
        #: Audit ring the property tests check invariants against.
        self.audit: Deque[Tuple[int, str, int, int, Any]] = deque(
            maxlen=AUDIT_DEPTH)

        # Port fabric: per core, one request pair (core tile -> home, the
        # dst tile is set per message so the NoC charges the real route)
        # and one invalidation pair (home -> core tile).  All four legs
        # ride the request/response planes exactly like MMIO traffic.
        self._req_ports: Dict[int, Port] = {}
        self._inval_ports: Dict[int, Port] = {}
        depth = 1 + config.core_mshrs + config.store_buffer_entries
        for core_id, tile in sorted(core_tiles.items()):
            req = registry.port(f"core{core_id}.dir", tile=tile, depth=depth)
            srv = registry.port(f"dir.core{core_id}", tile=-1)
            srv.bind(self._serve_home)
            registry.connect(req, srv,
                             request_link=network.link(Plane.REQUEST),
                             response_link=network.link(Plane.RESPONSE))
            self._req_ports[core_id] = req
            inv = registry.port(f"dir.inval{core_id}", tile=-1)
            inv_srv = registry.port(f"core{core_id}.inval", tile=tile)
            inv_srv.bind(self._make_core_handler(core_id))
            registry.connect(inv, inv_srv,
                             request_link=network.link(Plane.REQUEST),
                             response_link=network.link(Plane.RESPONSE))
            self._inval_ports[core_id] = inv

        # MEMORY-plane fabric (opt-in): per slice, home tile -> memory
        # controller tile, carrying dir_refill/dir_writeback messages.
        self._mem_ports: List[Port] = []
        if config.directory_mem_traffic:
            for index, tile in enumerate(self.home_tiles):
                mem_req = registry.port(f"dir.slice{index}.mem", tile=tile,
                                        depth=config.dram_max_inflight)
                mem_srv = registry.port(f"mem.slice{index}",
                                        tile=config.mem_ctrl_tile)
                mem_srv.bind(self._serve_memory)
                registry.connect(mem_req, mem_srv,
                                 request_link=network.link(Plane.MEMORY),
                                 response_link=network.link(Plane.MEMORY))
                self._mem_ports.append(mem_req)

    # -- geometry ----------------------------------------------------------

    def slice_of(self, line: int) -> int:
        """Home slice of a line: consecutive lines interleave round-robin."""
        return (line // self._line_size) % self._nslices

    def home_tile(self, line: int) -> int:
        return self.home_tiles[self.slice_of(line)]

    def has_pending(self, line: int) -> bool:
        """True while a home transaction for ``line`` is being served (or
        queued) — the window in which silent upgrades are unsafe."""
        return line in self._locks

    def slice_state(self, index: int) -> Dict[int, Entry]:
        """Home bank ``index``'s own MESI entries (its shard of the
        book): ``line -> (sharers, owner)``."""
        return self._book.shard_lines(index)

    @property
    def owners(self) -> Dict[int, int]:
        """``line -> owning core`` across every slice (the book's
        ownership ledger: MODIFIED holders plus clean EXCLUSIVE fills)."""
        return self._book.owners()

    # -- requester-side entry points (called from the hierarchy) -----------

    def grant_silent(self, line: int, core_id: int) -> None:
        """Zero-message upgrade: the requester is the only sharer (or the
        line is nowhere), so its L1 state already implies exclusivity."""
        self._c_silent_grants.value += 1
        self._grant(line, core_id, silent=True)

    def upgrade(self, core_id: int, line: int):
        """Generator: store-upgrade round trip through the line's home.

        Returns the number of sharers invalidated.
        """
        port = self._req_ports[core_id]
        return (yield from port.request("dir_upgrade", (line, core_id),
                                        dst=self.home_tile(line)))

    def fetch(self, core_id: int, line: int):
        """Generator: ownership-transfer round trip for a load of a line
        MODIFIED in another L1.  Returns the number of recalls issued."""
        port = self._req_ports[core_id]
        return (yield from port.request("dir_fetch", (line, core_id),
                                        dst=self.home_tile(line)))

    def refill(self, line: int):
        """Generator: an L2 miss's DRAM fetch, as a home-slice ->
        memory-controller round trip on the MEMORY plane."""
        return (yield from self._mem_ports[self.slice_of(line)].request(
            "dir_refill", line))

    def writeback_async(self, line: int) -> None:
        """Fire-and-forget: a MODIFIED L2 victim's writeback crosses the
        MEMORY plane in the background (eviction is synchronous; the
        dirty data drains to DRAM behind it)."""
        self._sim.spawn(
            self._mem_ports[self.slice_of(line)].request("dir_writeback",
                                                         line),
            name="dir.writeback")

    # -- home-side service -------------------------------------------------

    def _serve_home(self, msg: Message):
        """Generator: one directory transaction at the line's home bank."""
        line, core_id = msg.payload
        self._c_slice_lookups[self.slice_of(line)].value += 1
        lock = self._locks.get(line)
        if lock is None:
            lock = self._locks[line] = Semaphore(self._sim, 1,
                                                 name=f"dir.line{line:#x}")
        if not lock.try_acquire():
            yield from lock.acquire()
        try:
            if msg.kind == "dir_upgrade":
                count = yield from self._home_upgrade(line, core_id)
            elif msg.kind == "dir_fetch":
                count = yield from self._home_fetch(line, core_id)
            else:
                raise ValueError(f"directory: unknown request {msg.kind!r}")
        finally:
            lock.release()
            if not lock.in_use and not lock.waiting:
                self._locks.pop(line, None)
        return count

    def _serve_memory(self, msg: Message):
        """Generator: the memory-controller side of the MEMORY plane —
        one DRAM access per refill or writeback."""
        if msg.kind == "dir_refill":
            self._c_refills.value += 1
        elif msg.kind == "dir_writeback":
            self._c_writebacks.value += 1
        else:
            raise ValueError(f"directory: unknown memory request {msg.kind!r}")
        yield from self._memsys.dram.access(msg.payload)
        return None

    def _home_upgrade(self, line: int, core_id: int):
        # Re-read under the lock: the sharer set may have changed while
        # the request crossed the mesh or waited behind another writer.
        others = sorted(self._book.sharers_of(line) - {core_id})
        self.audit.append((self._sim.now, "upgrade", line, core_id,
                           tuple(others)))
        if others:
            yield from self._fan_out(line, others, "dir_inval")
        self._c_upgrades.value += 1
        self._c_invalidations.value += len(others)
        self._grant(line, core_id, silent=False)
        return len(others)

    def _home_fetch(self, line: int, core_id: int):
        holder = self._book.dirty_holder(line, excluding=core_id)
        if holder is None:
            return 0  # downgraded/evicted while the request was in flight
        yield from self._fan_out(line, [holder], "dir_recall")
        self._c_transfers.value += 1
        return 1

    def _fan_out(self, line: int, cores: Sequence[int], kind: str):
        """Generator: send ``kind`` to every core in parallel, join all.

        Each message is a full home->core->home port transaction (request
        NoC out, ack on the response NoC); fanning out concurrently means
        an upgrade pays the *max* sharer distance, not the sum.
        """
        home = self.home_tile(line)
        if len(cores) == 1:
            yield from self._inval_ports[cores[0]].request(
                kind, line, src=home)
            return
        procs = [self._sim.spawn(
            self._inval_ports[core].request(kind, line, src=home),
            name=f"dir.{kind}") for core in cores]
        for proc in procs:
            yield proc

    def _make_core_handler(self, core_id: int):
        """The core-tile side of the invalidation fabric: apply the
        protocol transition to this core's L1 through the shared book,
        then ack (zero service time — the cost is the two NoC
        traversals)."""
        def handler(msg: Message):
            if msg.kind == "dir_inval":
                self._book.invalidate(core_id, msg.payload)
            elif msg.kind == "dir_recall":
                self._book.downgrade(core_id, msg.payload)
            else:
                raise ValueError(f"directory: unknown inval {msg.kind!r}")
            self.audit.append((self._sim.now, msg.kind, msg.payload,
                               core_id, None))
            return None
            yield  # pragma: no cover — generator shape, zero latency
        return handler

    # -- ownership ledger --------------------------------------------------

    def _grant(self, line: int, core_id: int, silent: bool) -> None:
        sharers = frozenset(self._book.sharers_of(line))
        l1s = self._memsys.l1s
        for other in sharers:
            if (other != core_id
                    and l1s[other].state_of(line) is LineState.MODIFIED):
                raise DirectoryError(
                    f"line {line:#x}: granting ownership to core {core_id} "
                    f"while core {other} still holds it MODIFIED")
        previous = self._book.owner_of(line)
        if (previous is not None and previous != core_id
                and l1s[previous].state_of(line) is LineState.MODIFIED):
            raise DirectoryError(
                f"line {line:#x}: core {previous} still owns the line "
                f"MODIFIED at grant to core {core_id}")
        if core_id in sharers:
            # Ownership itself is recorded by the book when the store
            # lands (CoherenceBook.store, right after this grant).
            event = "grant_silent" if silent else "grant"
        else:
            # The requester's own copy was invalidated while its upgrade
            # was queued at the home; the grant is void (the store's
            # ``l1.contains`` guard will skip the MODIFIED transition too).
            event = "grant_void"
        self.audit.append((self._sim.now, event, line, core_id, sharers))

    # -- telemetry ---------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        return {
            "slices": self._nslices,
            "home_tiles": list(self.home_tiles),
            "owned_lines": len(self.owners),
            "tracked_lines": self._book.pending_lines(),
            "locked_lines": sorted(self._locks),
        }

    def telemetry(self) -> Dict[str, int]:
        """Flat counter snapshot (upgrades/invalidations/transfers and
        the MEMORY-plane refill/writeback message counts)."""
        return {
            "upgrades": self._c_upgrades.value,
            "silent_grants": self._c_silent_grants.value,
            "invalidations": self._c_invalidations.value,
            "transfers": self._c_transfers.value,
            "refills": self._c_refills.value,
            "writebacks": self._c_writebacks.value,
        }


def interleaved_home_tiles(cols: int, rows: int, slices: int) -> List[int]:
    """Home tiles for ``slices`` L2 banks: the per-quadrant geometry, so
    directory traffic distributes across the mesh the way MemPool's
    physical L2 slices do."""
    from repro.noc.mesh import placement_tiles

    return placement_tiles(cols, rows, min(slices, cols * rows),
                           "per-quadrant")
