"""DRAM channel model: fixed latency, bounded concurrency.

Table 2/3 give a 300-cycle access latency; memory-level parallelism is
bounded by the number of in-flight requests the channel sustains
(``dram_max_inflight``), which stands in for banks/queues/bandwidth.  MAPLE's
whole value proposition is keeping many of these slots busy at once while an
in-order core can keep only one.
"""

from __future__ import annotations

from repro.sim import Semaphore, Simulator
from repro.sim.stats import ScopedStats


class DramChannel:
    """A shared memory channel every line fill goes through."""

    def __init__(self, sim: Simulator, latency: int, max_inflight: int,
                 stats: ScopedStats):
        if latency < 1:
            raise ValueError("DRAM latency must be positive")
        self._sim = sim
        self.latency = latency
        self._slots = Semaphore(sim, max_inflight, name="dram.slots")
        self._stats = stats
        #: Fault-injection hook: ``inject(line_addr, write) -> extra``
        #: cycles added to this access (bursty-latency model).  ``None``
        #: keeps the timing path bit-identical.
        self.inject = None
        # Bound handles: access() fires once per line fill.
        self._c_reads = stats.counter("reads")
        self._c_writes = stats.counter("writes")
        self._h_occupancy = stats.histogram("occupancy")

    @property
    def inflight(self) -> int:
        return self._slots.in_use

    @property
    def waiting(self) -> int:
        """Accesses queued behind a saturated channel (liveness probes)."""
        return self._slots.waiting

    def access(self, line_addr: int, write: bool = False):
        """Generator: one line-sized DRAM transaction.

        Blocks while the channel is saturated, then waits the access
        latency.  Reads and writes cost the same (row activation dominates).
        """
        if not self._slots.try_acquire():
            yield from self._slots.acquire()
        (self._c_writes if write else self._c_reads).value += 1
        self._h_occupancy.add(self._slots.in_use)
        try:
            latency = self.latency
            if self.inject is not None:
                latency += self.inject(line_addr, write)
            yield latency
        finally:
            self._slots.release()
