"""DRAM channel model: fixed latency, bounded concurrency.

Table 2/3 give a 300-cycle access latency; memory-level parallelism is
bounded by the number of in-flight requests the channel sustains
(``dram_max_inflight``), which stands in for banks/queues/bandwidth.  MAPLE's
whole value proposition is keeping many of these slots busy at once while an
in-order core can keep only one.

This module also defines the :class:`Poison` marker for the SECDED ECC
model: a single-bit flip on a protected read is corrected in place, a
double-bit flip is *detected but uncorrectable*, so the word is replaced
with a ``Poison`` token that propagates through caches and queues until a
consumer either re-fetches clean data or raises a typed error — the data
can degrade to a miss, never to a silently wrong value.
"""

from __future__ import annotations

from typing import Any

from repro.sim import Semaphore, Simulator
from repro.sim.stats import ScopedStats


class Poison:
    """An uncorrectable-error marker standing in for a data word.

    Carries the physical word address for diagnostics.  Deliberately not
    a number: any arithmetic on poison is a model bug and raises
    immediately rather than computing with garbage.
    """

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"<Poison {self.addr:#x}>"

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Poison) and other.addr == self.addr

    def __hash__(self) -> int:
        return hash(("Poison", self.addr))


def is_poisoned(value: Any) -> bool:
    """True when ``value`` is, or contains, a :class:`Poison` marker."""
    if isinstance(value, Poison):
        return True
    if isinstance(value, (tuple, list)):
        return any(is_poisoned(item) for item in value)
    return False


class DramChannel:
    """A shared memory channel every line fill goes through."""

    def __init__(self, sim: Simulator, latency: int, max_inflight: int,
                 stats: ScopedStats):
        if latency < 1:
            raise ValueError("DRAM latency must be positive")
        self._sim = sim
        self.latency = latency
        self._slots = Semaphore(sim, max_inflight, name="dram.slots")
        self._stats = stats
        #: Fault-injection hook: ``inject(line_addr, write) -> extra``
        #: cycles added to this access (bursty-latency model).  ``None``
        #: keeps the timing path bit-identical.
        self.inject = None
        # Bound handles: access() fires once per line fill.
        self._c_reads = stats.counter("reads")
        self._c_writes = stats.counter("writes")
        self._h_occupancy = stats.histogram("occupancy")

    @property
    def inflight(self) -> int:
        return self._slots.in_use

    @property
    def waiting(self) -> int:
        """Accesses queued behind a saturated channel (liveness probes)."""
        return self._slots.waiting

    def access(self, line_addr: int, write: bool = False):
        """Generator: one line-sized DRAM transaction.

        Blocks while the channel is saturated, then waits the access
        latency.  Reads and writes cost the same (row activation dominates).
        """
        if not self._slots.try_acquire():
            yield from self._slots.acquire()
        (self._c_writes if write else self._c_reads).value += 1
        self._h_occupancy.add(self._slots.in_use)
        try:
            latency = self.latency
            if self.inject is not None:
                latency += self.inject(line_addr, write)
            yield latency
        finally:
            self._slots.release()
