"""The coherent two-level memory hierarchy (private L1s, shared L2, DRAM).

Timing model (Tables 2/3): L1 hit = 2 cycles, L1-miss-to-L2-hit = +30
cycles, L2 miss = +300 cycles through the shared DRAM channel.  A
directory-style sharers map reproduces the coherence costs the paper's
software baselines suffer: a store to a line other cores hold pays an
upgrade round trip and invalidates them, and a load of a line dirty in
another L1 pays a forwarding round trip.  The L2 is inclusive — evicting an
L2 line kills the L1 copies — matching OpenPiton's L1.5/L2 organization.

Functionally, data lives only in :class:`PhysicalMemory`, so values are
always current regardless of timing state.

Quiescence audit (engine contract, see DESIGN.md): every generator here
is driven by a port transaction and ends when the access resolves — the
hierarchy never runs standing processes per bank or per core, and the
only waits are timed latency charges and the DRAM channel's bounded-
concurrency semaphore.  Idle banks schedule nothing.

MMIO regions registered with :meth:`MemorySystem.register_mmio` bypass the
caches entirely; this is how cores reach MAPLE with plain loads and stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.mem.backing import WORD_BYTES, PhysicalMemory
from repro.mem.cache import Cache
from repro.mem.coherence import CoherenceBook, LineState
from repro.mem.dram import DramChannel, Poison
from repro.params import SoCConfig
from repro.sim import Signal, Simulator
from repro.sim.faults import corrupt_value
from repro.sim.port import DataIntegrityError, Message, Port, PortRegistry
from repro.sim.stats import Counter, Stats


@dataclass
class MMIORegion:
    """An uncacheable physical range owned by a device.

    ``handler(op, paddr, value, core_id)`` is a generator completing the
    access with full device timing; its return value answers loads.
    """

    start: int
    end: int
    handler: Callable
    name: str = "mmio"

    def covers(self, paddr: int) -> bool:
        return self.start <= paddr < self.end


class MemorySystem:
    """Private L1 per core + shared inclusive L2 + one DRAM channel."""

    def __init__(self, sim: Simulator, config: SoCConfig, stats: Stats):
        self._sim = sim
        self.config = config
        self.stats = stats
        self.mem = PhysicalMemory()
        self.dram = DramChannel(
            sim, config.dram_latency, config.dram_max_inflight, stats.scoped("dram")
        )
        self.l2 = Cache(config.l2_size, config.l2_ways, config.line_size, name="l2")
        self.l1s: Dict[int, Cache] = {}
        # Hot-path constants, hoisted out of the per-access attribute chains.
        self._line_mask = ~(config.line_size - 1)
        self._l1_latency = config.l1_latency
        self._l2_latency = config.l2_latency
        # Pre-resolved counter handles: the hot paths below fire these per
        # access and must never rebuild dotted stat keys (see sim.stats).
        self._c_l2_hits = stats.counter("l2.hits")
        self._c_l2_misses = stats.counter("l2.misses")
        self._c_l2_merged = stats.counter("l2.merged_misses")
        self._c_l2_prefetches = stats.counter("l2.prefetches")
        self._c_l2_writebacks = stats.counter("l2.writebacks")
        #: The shared MESI state machine both coherence backends drive
        #: (sharer sets, ownership, L1 state transitions, and the
        #: ``coherence.*`` counters) — see ``repro/mem/coherence.py``.
        self.book = CoherenceBook(stats)
        self.book.attach_l2(self.l2)
        self._c_l1_hits: Dict[int, Counter] = {}
        self._c_l1_misses: Dict[int, Counter] = {}
        self._c_l1_amos: Dict[int, Counter] = {}
        self._c_l1_prefetches: Dict[int, Counter] = {}
        self._c_l1_writebacks: Dict[int, Counter] = {}
        # ECC / poison model.  ``flip`` is the fault hook: called as
        # ``flip(addr) -> None | (nflips, leaf, bit)`` on every DRAM read
        # (``None`` keeps the path bit-identical).  With ECC armed a
        # single flip is corrected, a double flip poisons; with ECC off
        # every flip silently corrupts the data.
        self.ecc_enabled = config.ecc
        self.flip = None
        self._refetch_limit = config.poison_refetch_limit
        self._l2_poisoned: Set[int] = set()
        self._c_ecc_corrected = stats.counter("ecc.corrected")
        self._c_ecc_poisoned = stats.counter("ecc.poisoned")
        self._c_ecc_silent = stats.counter("ecc.silent")
        self._c_ecc_refetches = stats.counter("ecc.refetches")
        self._c_ecc_prefetch_drops = stats.counter("ecc.prefetch_drops")
        #: Optional home-node directory (``SoCConfig.directory=True``).
        #: When attached, store upgrades and dirty-forwards become real
        #: NoC message round trips instead of flat ``l2_latency`` charges;
        #: when ``None`` every path below is bit-identical to the legacy
        #: model.  See ``repro/mem/directory.py``.
        self.directory = None
        #: With ``SoCConfig.directory_mem_traffic`` armed, L2 refills and
        #: dirty writebacks ride the MEMORY NoC plane as real port
        #: messages through the directory's slice ports.
        self._mem_traffic = config.directory_mem_traffic
        self._l2_inflight: Dict[int, Signal] = {}
        self._l1_inflight: Dict[Tuple[int, int], Signal] = {}
        self._mmio: List[MMIORegion] = []
        self._mmio_floor: Optional[int] = None
        #: Called as listener(line_addr, was_prefetch) after every L2 fill
        #: from DRAM.  Memory-side prefetchers (DROPLET) hook here.
        self.l2_fill_listeners: List[Callable[[int, bool], None]] = []
        self._l2_prefetching: Set[int] = set()

    # -- construction -------------------------------------------------------

    def add_core(self, core_id: int) -> None:
        if core_id in self.l1s:
            raise ValueError(f"core {core_id} already has an L1")
        cfg = self.config
        self.l1s[core_id] = Cache(cfg.l1_size, cfg.l1_ways, cfg.line_size,
                                  name=f"l1.{core_id}")
        self.book.register_l1(core_id, self.l1s[core_id])
        self._c_l1_hits[core_id] = self.stats.counter(f"l1.{core_id}.hits")
        self._c_l1_misses[core_id] = self.stats.counter(f"l1.{core_id}.misses")
        self._c_l1_amos[core_id] = self.stats.counter(f"l1.{core_id}.amos")
        self._c_l1_prefetches[core_id] = self.stats.counter(
            f"l1.{core_id}.prefetches")
        self._c_l1_writebacks[core_id] = self.stats.counter(
            f"l1.{core_id}.writebacks")

    def attach_directory(self, directory) -> None:
        """Install the sliced-L2 home-node directory (built by the SoC
        when ``config.directory`` is set)."""
        self.directory = directory

    def register_mmio(self, region: MMIORegion) -> None:
        if region.end <= region.start:
            raise ValueError("empty MMIO region")
        for existing in self._mmio:
            if region.start < existing.end and existing.start < region.end:
                raise ValueError(f"MMIO region {region.name} overlaps {existing.name}")
        self._mmio.append(region)
        if self._mmio_floor is None or region.start < self._mmio_floor:
            self._mmio_floor = region.start

    def _mmio_region(self, paddr: int) -> Optional[MMIORegion]:
        if self._mmio_floor is None or paddr < self._mmio_floor:
            return None
        for region in self._mmio:
            if region.covers(paddr):
                return region
        return None

    def _line_of(self, paddr: int) -> int:
        return paddr & self._line_mask

    # -- port endpoints ------------------------------------------------------

    def connect_core_port(self, registry: PortRegistry, core_id: int,
                          tile: int) -> Port:
        """Wire the core↔memory seam for ``core_id``; returns the core's
        client port.

        Channel depth is 1 (the blocking execute slot) + MSHRs + store-
        buffer entries: every concurrent requester in the core model holds
        one of those resources first, so the bound is provably never the
        binding constraint and the port adds zero cycles.
        """
        cfg = self.config
        depth = 1 + cfg.core_mshrs + cfg.store_buffer_entries
        client = registry.port(f"core{core_id}.mem", tile=tile, depth=depth)
        server = registry.port(f"mem.core{core_id}", tile=tile)

        def handler(msg: Message):
            kind = msg.kind
            if kind == "load":
                return self.load(core_id, msg.payload)
            if kind == "store":
                paddr, value, apply = msg.payload
                return self.store(core_id, paddr, value, apply=apply)
            if kind == "amo":
                paddr, op = msg.payload
                return self.amo(core_id, paddr, op)
            if kind == "prefetch_fill":
                return self.prefetch_fill(core_id, msg.payload)
            if kind == "ptw_read":
                return self.load_llc(msg.payload)
            raise ValueError(f"core mem port: unknown request kind {kind!r}")

        def posts(kind: str, payload: Any) -> None:
            if kind == "write_word":
                paddr, value = payload
                self.mem.write_word(paddr, value)
                return None
            raise ValueError(f"core mem port: unknown post kind {kind!r}")

        def probes(kind: str, paddr: int):
            if kind == "is_uncacheable":
                return self.is_uncacheable(paddr)
            if kind == "l1_would_hit":
                return self.l1_would_hit(core_id, paddr)
            if kind == "l1_state":
                return self.l1s[core_id].state_of(self._line_of(paddr))
            raise ValueError(f"core mem port: unknown probe kind {kind!r}")

        server.bind(handler, posts=posts, probes=probes)
        registry.connect(client, server)
        return client

    def connect_device_port(self, registry: PortRegistry, name: str,
                            tile: int, depth: Optional[int] = None) -> Port:
        """Wire the memory seam for a device (MAPLE): coherent LLC loads,
        non-coherent DRAM word/line fetches, PTE reads, and LLC-prefetch
        posts.  Returns the device's client port."""
        client = registry.port(f"{name}.mem", tile=tile, depth=depth)
        server = registry.port(f"mem.{name}", tile=tile)

        def handler(msg: Message):
            kind = msg.kind
            if kind == "llc_load":
                return self.load_llc(msg.payload)
            if kind == "dram_load":
                return self.load_dram(msg.payload)
            if kind == "dram_line":
                return self.load_dram_line(msg.payload)
            if kind == "ptw_read":
                return self.load_llc(msg.payload)
            raise ValueError(f"device mem port: unknown request kind {kind!r}")

        def posts(kind: str, payload: Any) -> None:
            if kind == "l2_prefetch":
                self.prefetch_l2(payload)
                return None
            raise ValueError(f"device mem port: unknown post kind {kind!r}")

        server.bind(handler, posts=posts)
        registry.connect(client, server)
        return client

    def debug_state(self) -> Dict[str, Any]:
        """Liveness snapshot: outstanding DRAM transactions and pending
        cache fills (watchdog dumps)."""
        return {
            "dram_inflight": self.dram.inflight,
            "dram_waiting": self.dram.waiting,
            "l2_fills_inflight": sorted(self._l2_inflight),
            "l1_fills_inflight": sorted(self._l1_inflight),
            "l2_poisoned": sorted(self._l2_poisoned),
        }

    # -- core-facing accesses ------------------------------------------------

    def load(self, core_id: int, paddr: int):
        """Generator: a core's (physically-addressed) load. Returns the value."""
        region = self._mmio_region(paddr)
        if region is not None:
            value = yield from region.handler("load", paddr, None, core_id)
            return value
        line = paddr & self._line_mask
        l1 = self.l1s[core_id]
        yield self._l1_latency
        if l1.lookup(line):
            self._c_l1_hits[core_id].value += 1
        else:
            self._c_l1_misses[core_id].value += 1
            yield from self._l1_fill_clean(core_id, line)
        return self.mem.read_word(paddr)

    def store(self, core_id: int, paddr: int, value: Any, apply: bool = True):
        """Generator: a core's store (write-allocate, write-back).

        ``apply=False`` runs the timing/coherence path only — used by the
        store-buffer model, which makes the value architecturally visible
        at issue time and completes the cache work in the background.
        """
        region = self._mmio_region(paddr)
        if region is not None:
            result = yield from region.handler("store", paddr, value, core_id)
            return result
        line = paddr & self._line_mask
        l1 = self.l1s[core_id]
        yield self._l1_latency
        if l1.lookup(line):
            self._c_l1_hits[core_id].value += 1
        else:
            self._c_l1_misses[core_id].value += 1
            yield from self._l1_fill_clean(core_id, line)
        yield from self._upgrade_for_store(core_id, line)
        if l1.contains(line):
            self.book.store(core_id, line)
        if apply:
            self.mem.write_word(paddr, value)
        return None

    def is_uncacheable(self, paddr: int) -> bool:
        """Public predicate: True when ``paddr`` falls in a registered
        MMIO region (device-owned, bypasses the caches entirely)."""
        return self._mmio_region(paddr) is not None

    def is_mmio(self, paddr: int) -> bool:
        """Alias of :meth:`is_uncacheable` (historical name)."""
        return self.is_uncacheable(paddr)

    def amo(self, core_id: int, paddr: int, op: Callable[[Any], Any]):
        """Generator: atomic read-modify-write. Returns the old value.

        Atomicity holds because the functional update happens at a single
        point in simulated time (no yields between read and write).
        """
        line = paddr & self._line_mask
        yield self._l1_latency
        l1 = self.l1s[core_id]
        if l1.lookup(line):
            self._c_l1_hits[core_id].value += 1
        else:
            self._c_l1_misses[core_id].value += 1
            yield from self._l1_fill_clean(core_id, line)
        yield from self._upgrade_for_store(core_id, line)
        old = self.mem.read_word(paddr)
        self.mem.write_word(paddr, op(old))
        if l1.contains(line):
            self.book.store(core_id, line)
        self._c_l1_amos[core_id].value += 1
        return old

    def prefetch_fill(self, core_id: int, paddr: int):
        """Generator: fill a core's L1 for a software prefetch (the core
        wraps this in its MSHR discipline).  A poisoned fill is dropped —
        a speculative prefetch degrades to a future miss, never a wrong
        value (and never burns demand re-fetch budget)."""
        line = self._line_of(paddr)
        self._c_l1_prefetches[core_id].value += 1
        if not self.l1s[core_id].contains(line):
            yield from self._l1_fill(core_id, line)
            if line in self._l2_poisoned:
                self._c_ecc_prefetch_drops.value += 1
                self._drop_poisoned(line)

    def prefetch_l1(self, core_id: int, paddr: int) -> None:
        """Fire-and-forget software prefetch into a core's L1 (unbounded;
        cores apply their MSHR limit via :meth:`prefetch_fill`)."""
        self._sim.spawn(self.prefetch_fill(core_id, paddr), name="pf.l1")

    def l1_would_hit(self, core_id: int, paddr: int) -> bool:
        """Peek whether a load would hit the L1 (no LRU update)."""
        return self.l1s[core_id].contains(self._line_of(paddr))

    def prefetch_l2(self, paddr: int, on_complete: Optional[Callable[[], None]] = None
                    ) -> None:
        """Fire-and-forget prefetch into the shared LLC (LIMA speculative,
        DROPLET).  ``on_complete`` lets prefetchers track occupancy of
        their request queues."""
        line = self._line_of(paddr)
        self._c_l2_prefetches.value += 1

        def _run():
            try:
                if not self.l2.contains(line):
                    self._l2_prefetching.add(line)
                    try:
                        yield from self._ensure_l2(line)
                    finally:
                        self._l2_prefetching.discard(line)
                    if line in self._l2_poisoned:
                        self._c_ecc_prefetch_drops.value += 1
                        self._drop_poisoned(line)
            finally:
                if on_complete is not None:
                    on_complete()

        self._sim.spawn(_run(), name="pf.l2")

    # -- device-facing accesses (MAPLE) ---------------------------------------

    def load_llc(self, paddr: int):
        """Generator: cache-coherent device load through the shared L2.

        A poisoned fill is scrubbed and re-fetched up to the configured
        budget, then surfaces as a typed :class:`DataIntegrityError`.
        """
        line = self._line_of(paddr)
        for _ in range(self._refetch_limit + 1):
            yield from self._ensure_l2(line)
            if line not in self._l2_poisoned:
                return self.mem.read_word(paddr)
            self._c_ecc_refetches.value += 1
            self._drop_poisoned(line)
        self._poison_exhausted("llc", line)

    def load_dram(self, paddr: int):
        """Generator: non-coherent device load straight from DRAM.

        Returns the word, or a :class:`Poison` marker on an armed-ECC
        double-bit flip — the device decides whether to re-fetch.
        """
        line = self._line_of(paddr)
        yield from self.dram.access(line)
        value = self.mem.read_word(paddr)
        if self.flip is not None:
            value = self._filter_word(paddr, value)
        return value

    def load_dram_line(self, line_addr: int):
        """Generator: one full line from DRAM (LIMA's 64 B chunk fetch).

        Under an armed-ECC double-bit flip one word of the returned line
        is a :class:`Poison` marker; without ECC it is silently wrong.
        """
        yield from self.dram.access(line_addr)
        words = self.mem.read_line(line_addr, self.config.line_size)
        if self.flip is not None:
            fate = self.flip(line_addr)
            if fate is not None:
                nflips, leaf, bit = fate
                index = min(int(leaf * len(words)), len(words) - 1)
                if not self.ecc_enabled:
                    self._c_ecc_silent.value += 1
                    words[index] = corrupt_value(
                        words[index], (leaf * 7919.0) % 1.0, bit)
                elif nflips == 1:
                    self._c_ecc_corrected.value += 1
                else:
                    self._c_ecc_poisoned.value += 1
                    words[index] = Poison(line_addr + index * WORD_BYTES)
        return words

    # -- internals ------------------------------------------------------------

    def _filter_word(self, addr: int, value: Any) -> Any:
        """Apply the flip fate for one DRAM word read under the ECC policy."""
        fate = self.flip(addr)
        if fate is None:
            return value
        nflips, leaf, bit = fate
        if not self.ecc_enabled:
            self._c_ecc_silent.value += 1
            return corrupt_value(value, leaf, bit)
        if nflips == 1:
            self._c_ecc_corrected.value += 1
            return value
        self._c_ecc_poisoned.value += 1
        return Poison(addr)

    def _drop_poisoned(self, line: int) -> None:
        """Scrub a poisoned L2 line: invalidate it (recalling L1 copies,
        the inclusive discipline) so the next demand triggers a fresh
        DRAM read with a fresh flip fate."""
        self._l2_poisoned.discard(line)
        state = self.l2.invalidate(line)
        if state is not None:
            self._evict_l2_victim(line, state)

    def _poison_exhausted(self, component: str, line: int) -> None:
        raise DataIntegrityError(
            f"{component}: uncorrectable memory error on line {line:#x} "
            f"persisted across {self._refetch_limit + 1} fetch attempts",
            component=component, kind="dram_poison", addr=line,
            attempts=self._refetch_limit + 1)

    def _l1_fill_clean(self, core_id: int, line: int):
        """Demand-fill a core's L1, re-fetching past poisoned L2 fills up
        to the budget, then raising a typed error."""
        for _ in range(self._refetch_limit + 1):
            yield from self._l1_fill(core_id, line)
            if line not in self._l2_poisoned:
                return
            self._c_ecc_refetches.value += 1
            self._drop_poisoned(line)
        self._poison_exhausted(f"core{core_id}.l1", line)

    def _l1_fill(self, core_id: int, line: int):
        key = (core_id, line)
        pending = self._l1_inflight.get(key)
        if pending is not None:
            yield pending
            return
        signal = Signal(self._sim, name="l1fill")
        self._l1_inflight[key] = signal
        try:
            yield from self._snoop_dirty_elsewhere(core_id, line)
            yield from self._ensure_l2(line)
            victim = self.book.fill(core_id, line)
            if victim is not None and victim.state is LineState.MODIFIED:
                self._c_l1_writebacks[core_id].value += 1
                self.book.write_back(victim.line)
        finally:
            del self._l1_inflight[key]
            signal.fire()

    def _snoop_dirty_elsewhere(self, core_id: int, line: int):
        """If another L1 holds the line MODIFIED, pay a forwarding round
        trip.

        With a directory attached, the round trip is a real fetch/recall
        message exchange through the line's home tile; without one it is
        the legacy flat ``l2_latency`` charge.  The dirty-holder lookup
        is yield-free, so the directory-off event sequence is unchanged.
        """
        holder = self.book.dirty_holder(line, excluding=core_id)
        if holder is None:
            return
        if self.directory is not None:
            yield from self.directory.fetch(core_id, line)
            return
        yield self._l2_latency
        # The owner's copy is downgraded to shared-clean — unless it was
        # evicted/invalidated during the forwarding delay.  Its dirty
        # data lands in the shared L2 (the book marks it MODIFIED there).
        self.book.downgrade(holder, line)

    def _upgrade_for_store(self, core_id: int, line: int):
        """Invalidate other sharers before a store (directory upgrade)."""
        sharers = self.book.sharers_of(line)
        sole = not sharers or (core_id in sharers and len(sharers) == 1)
        if self.directory is not None:
            # Sole sharer: exclusivity is implied by the L1 state — the
            # directory grants silently, with no message, which keeps
            # single-core runs cycle-identical either way.  Not safe
            # while a home transaction for this line is mid-flight: a
            # silent dirty bit set behind an in-progress fan-out would
            # never be invalidated, so such stores take the message path
            # and serialize at the home like everyone else.
            if sole and not self.directory.has_pending(line):
                self.directory.grant_silent(line, core_id)
                return
            # Real upgrade round trip: requester -> home tile -> parallel
            # invalidations to every other sharer -> grant.  The home
            # applies each invalidation via :meth:`apply_inval`.
            yield from self.directory.upgrade(core_id, line)
            return
        if sole:
            return
        yield self._l2_latency
        # Re-read after the round trip: sharers may have changed.
        for other in self.book.sharers_of(line) - {core_id}:
            self.book.invalidate(other, line)

    def _ensure_l2(self, line: int):
        if self.l2.lookup(line):
            yield self._l2_latency
            self._c_l2_hits.value += 1
            return
        pending = self._l2_inflight.get(line)
        if pending is not None:
            self._c_l2_merged.value += 1
            yield pending
            return
        signal = Signal(self._sim, name="l2fill")
        self._l2_inflight[line] = signal
        try:
            self._c_l2_misses.value += 1
            yield self._l2_latency
            if self._mem_traffic and self.directory is not None:
                # The refill crosses the MEMORY NoC plane as a real port
                # message through the line's home slice (tap-visible,
                # fault-injectable); the DRAM access happens server-side.
                yield from self.directory.refill(line)
            else:
                yield from self.dram.access(line)
            if self.flip is not None:
                self._fill_flip(line)
            victim = self.l2.insert(line)
            if victim is not None:
                self._evict_l2_victim(victim.line, victim.state)
            was_prefetch = line in self._l2_prefetching
            for listener in self.l2_fill_listeners:
                listener(line, was_prefetch)
        finally:
            del self._l2_inflight[line]
            signal.fire()

    def _fill_flip(self, line: int) -> None:
        """Apply the flip fate for a coherent L2 fill from DRAM.

        With ECC off the hit word is corrupted *in backing memory* —
        silent corruption persists and flows into program results (what
        the negative-control oracle must catch).  With ECC on, a double
        flip marks the line poisoned for the demand paths to scrub.
        """
        fate = self.flip(line)
        if fate is None:
            return
        nflips, leaf, bit = fate
        if not self.ecc_enabled:
            self._c_ecc_silent.value += 1
            nwords = self.config.words_per_line
            addr = line + min(int(leaf * nwords), nwords - 1) * WORD_BYTES
            self.mem.write_word(addr, corrupt_value(
                self.mem.read_word(addr), (leaf * 7919.0) % 1.0, bit))
        elif nflips == 1:
            self._c_ecc_corrected.value += 1
        else:
            self._c_ecc_poisoned.value += 1
            self._l2_poisoned.add(line)

    def _evict_l2_victim(self, line: int, state: LineState) -> None:
        """Inclusive L2: an eviction recalls the line from every L1; a
        MODIFIED victim is written back to DRAM (a real MEMORY-plane
        message when ``directory_mem_traffic`` is armed)."""
        for core_id in self.book.sharers_of(line):
            self.book.invalidate(core_id, line, recall=True)
        if state is LineState.MODIFIED:
            self._c_l2_writebacks.value += 1
            if self._mem_traffic and self.directory is not None:
                self.directory.writeback_async(line)

    # -- directory-facing state (see repro/mem/directory.py) -----------------

    def sharers_of(self, line: int) -> Set[int]:
        """Cores currently holding ``line`` in their L1 (a copy)."""
        return self.book.sharers_of(line)

    def dirty_holder(self, line: int, excluding: int) -> Optional[int]:
        """The core (other than ``excluding``) holding ``line`` MODIFIED,
        if any — the recall target of an ownership transfer."""
        return self.book.dirty_holder(line, excluding)
