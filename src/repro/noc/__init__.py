"""Network-on-Chip substrate (OpenPiton P-Mesh style).

A 2D mesh with XY dimension-ordered routing and three message planes
(request / response / memory), matching OpenPiton's three physical NoCs
that avoid protocol deadlock.  Transfers cost an encode cycle, one cycle
per hop, and a decode cycle; per-plane traffic counters feed the Fig. 14
round-trip characterization.  Link contention is not modeled: MAPLE's own
single-op-per-cycle pipelines are the bandwidth bottleneck at the scales
evaluated (the paper makes the same observation about chip IO being the
ultimate limit).
"""

from repro.noc.mesh import PLACEMENT_POLICIES, Mesh, Tile, placement_tiles
from repro.noc.network import Network, Plane
from repro.noc.packet import Packet
from repro.noc.routing import xy_route

__all__ = ["Mesh", "Network", "Packet", "Plane", "Tile", "xy_route",
           "PLACEMENT_POLICIES", "placement_tiles"]
