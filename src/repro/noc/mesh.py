"""Mesh topology: tile ids, coordinates, and occupants.

Tiles are numbered row-major: tile ``i`` sits at ``(i % cols, i // cols)``.
Each tile hosts either a core (with its private caches) or a device such as
a MAPLE instance; the mesh just answers geometric questions.

Quiescence audit (engine contract, see DESIGN.md): the mesh holds no
simulation processes — there are no per-tile router loops to idle-skip,
because routers were never modeled as processes in the first place;
traversal cost is charged by :class:`~repro.noc.network.Network` on
packets that exist.  A 16x16 mesh with two active cores schedules the
same events as a 2x2 one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.noc.routing import hop_count

Coord = Tuple[int, int]

#: Placement policies for device (MAPLE) tiles on large meshes.
#: ``legacy`` is the historical row-major layout (devices right after the
#: cores) and is resolved by the SoC builder, not here.
PLACEMENT_POLICIES = ("legacy", "edge", "center", "per-quadrant")


def placement_tiles(cols: int, rows: int, count: int, policy: str) -> List[int]:
    """Deterministic device-tile choices for one placement policy.

    - ``edge``: corners first (row-major corner order), then the
      remaining border tiles in tile-id order — the pessimal layout a
      floorplan with a hard macro in the middle forces.
    - ``center``: the ``count`` tiles nearest the mesh midpoint
      (Euclidean distance to the center of the grid, ties by tile id).
    - ``per-quadrant``: the mesh is split into a near-square grid of
      ``count`` regions and each device sits at its region's midpoint —
      the MemPool-style layout minimizing the mean core->device hop
      count.

    All policies are pure geometry: same inputs, same tiles, on every
    host — the binding maps derived from them are part of a run's
    deterministic identity.
    """
    if count < 1:
        raise ValueError("placement needs at least one device")
    if count > cols * rows:
        raise ValueError(f"{count} devices cannot seat on a {cols}x{rows} mesh")
    if policy == "edge":
        corners = [(0, 0), (cols - 1, 0), (0, rows - 1), (cols - 1, rows - 1)]
        seen: List[int] = []
        for x, y in corners:
            tile = y * cols + x
            if tile not in seen:
                seen.append(tile)
        border = [y * cols + x
                  for y in range(rows) for x in range(cols)
                  if x in (0, cols - 1) or y in (0, rows - 1)]
        for tile in border:
            if tile not in seen:
                seen.append(tile)
        # Degenerate meshes (everything is border): fall back to tile order.
        for tile in range(cols * rows):
            if tile not in seen:
                seen.append(tile)
        return seen[:count]
    if policy == "center":
        cx, cy = (cols - 1) / 2.0, (rows - 1) / 2.0
        ranked = sorted(
            range(cols * rows),
            key=lambda t: ((t % cols - cx) ** 2 + (t // cols - cy) ** 2, t))
        return ranked[:count]
    if policy == "per-quadrant":
        qc = max(1, math.ceil(math.sqrt(count)))
        qr = math.ceil(count / qc)
        tiles: List[int] = []
        for region in range(count):
            rx, ry = region % qc, region // qc
            # Region bounds, splitting the mesh as evenly as possible.
            x0, x1 = (cols * rx) // qc, (cols * (rx + 1)) // qc
            y0, y1 = (rows * ry) // qr, (rows * (ry + 1)) // qr
            x1, y1 = max(x1, x0 + 1), max(y1, y0 + 1)
            mx, my = (x0 + x1 - 1) / 2.0, (y0 + y1 - 1) / 2.0
            tile = min(
                (y * cols + x for y in range(y0, y1) for x in range(x0, x1)
                 if (y * cols + x) not in tiles),
                key=lambda t: ((t % cols - mx) ** 2 + (t // cols - my) ** 2, t))
            tiles.append(tile)
        return tiles
    raise ValueError(f"unknown placement policy {policy!r} "
                     f"(expected one of {PLACEMENT_POLICIES})")


@dataclass
class Tile:
    """One slot in the mesh and what it hosts."""

    tile_id: int
    coord: Coord
    occupant: Optional[str] = None  # "core3", "maple0", "memctl", ...


class Mesh:
    """A cols x rows tile grid."""

    def __init__(self, cols: int, rows: int):
        if cols < 1 or rows < 1:
            raise ValueError("mesh must be at least 1x1")
        self.cols = cols
        self.rows = rows
        self.tiles: Dict[int, Tile] = {
            tile_id: Tile(tile_id, (tile_id % cols, tile_id // cols))
            for tile_id in range(cols * rows)
        }
        # Geometry is immutable after construction, so hop counts memoize
        # cleanly; the NoC asks for the same (src, dst) pairs per packet.
        self._hops_cache: Dict[Tuple[int, int], int] = {}

    @property
    def size(self) -> int:
        return self.cols * self.rows

    def coord_of(self, tile_id: int) -> Coord:
        return self.tiles[tile_id].coord

    def tile_at(self, coord: Coord) -> Tile:
        x, y = coord
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise KeyError(f"coordinate {coord} outside {self.cols}x{self.rows} mesh")
        return self.tiles[y * self.cols + x]

    def place(self, tile_id: int, occupant: str) -> None:
        tile = self.tiles[tile_id]
        if tile.occupant is not None:
            raise ValueError(f"tile {tile_id} already hosts {tile.occupant}")
        tile.occupant = occupant

    def find(self, occupant: str) -> int:
        for tile in self.tiles.values():
            if tile.occupant == occupant:
                return tile.tile_id
        raise KeyError(f"no tile hosts {occupant}")

    def hops(self, src_tile: int, dst_tile: int) -> int:
        key = (src_tile, dst_tile)
        hops = self._hops_cache.get(key)
        if hops is None:
            hops = self._hops_cache[key] = hop_count(
                self.coord_of(src_tile), self.coord_of(dst_tile))
        return hops

    def nearest(self, src_tile: int, prefix: str) -> int:
        """The closest tile whose occupant name starts with ``prefix``.

        This is the OS placement policy from §5.3: map a thread to the
        MAPLE instance minimizing round-trip hops.  Ties break on tile id
        for determinism.
        """
        candidates = [
            tile.tile_id
            for tile in self.tiles.values()
            if tile.occupant is not None and tile.occupant.startswith(prefix)
        ]
        if not candidates:
            raise KeyError(f"no tile hosts an occupant matching {prefix!r}")
        return min(candidates, key=lambda t: (self.hops(src_tile, t), t))
