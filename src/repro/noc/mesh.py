"""Mesh topology: tile ids, coordinates, and occupants.

Tiles are numbered row-major: tile ``i`` sits at ``(i % cols, i // cols)``.
Each tile hosts either a core (with its private caches) or a device such as
a MAPLE instance; the mesh just answers geometric questions.

Quiescence audit (engine contract, see DESIGN.md): the mesh holds no
simulation processes — there are no per-tile router loops to idle-skip,
because routers were never modeled as processes in the first place;
traversal cost is charged by :class:`~repro.noc.network.Network` on
packets that exist.  A 16x16 mesh with two active cores schedules the
same events as a 2x2 one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.noc.routing import hop_count

Coord = Tuple[int, int]


@dataclass
class Tile:
    """One slot in the mesh and what it hosts."""

    tile_id: int
    coord: Coord
    occupant: Optional[str] = None  # "core3", "maple0", "memctl", ...


class Mesh:
    """A cols x rows tile grid."""

    def __init__(self, cols: int, rows: int):
        if cols < 1 or rows < 1:
            raise ValueError("mesh must be at least 1x1")
        self.cols = cols
        self.rows = rows
        self.tiles: Dict[int, Tile] = {
            tile_id: Tile(tile_id, (tile_id % cols, tile_id // cols))
            for tile_id in range(cols * rows)
        }
        # Geometry is immutable after construction, so hop counts memoize
        # cleanly; the NoC asks for the same (src, dst) pairs per packet.
        self._hops_cache: Dict[Tuple[int, int], int] = {}

    @property
    def size(self) -> int:
        return self.cols * self.rows

    def coord_of(self, tile_id: int) -> Coord:
        return self.tiles[tile_id].coord

    def tile_at(self, coord: Coord) -> Tile:
        x, y = coord
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise KeyError(f"coordinate {coord} outside {self.cols}x{self.rows} mesh")
        return self.tiles[y * self.cols + x]

    def place(self, tile_id: int, occupant: str) -> None:
        tile = self.tiles[tile_id]
        if tile.occupant is not None:
            raise ValueError(f"tile {tile_id} already hosts {tile.occupant}")
        tile.occupant = occupant

    def find(self, occupant: str) -> int:
        for tile in self.tiles.values():
            if tile.occupant == occupant:
                return tile.tile_id
        raise KeyError(f"no tile hosts {occupant}")

    def hops(self, src_tile: int, dst_tile: int) -> int:
        key = (src_tile, dst_tile)
        hops = self._hops_cache.get(key)
        if hops is None:
            hops = self._hops_cache[key] = hop_count(
                self.coord_of(src_tile), self.coord_of(dst_tile))
        return hops

    def nearest(self, src_tile: int, prefix: str) -> int:
        """The closest tile whose occupant name starts with ``prefix``.

        This is the OS placement policy from §5.3: map a thread to the
        MAPLE instance minimizing round-trip hops.  Ties break on tile id
        for determinism.
        """
        candidates = [
            tile.tile_id
            for tile in self.tiles.values()
            if tile.occupant is not None and tile.occupant.startswith(prefix)
        ]
        if not candidates:
            raise KeyError(f"no tile hosts an occupant matching {prefix!r}")
        return min(candidates, key=lambda t: (self.hops(src_tile, t), t))
