"""The three-plane network fabric.

OpenPiton uses three physical NoCs so that requests, responses, and memory
traffic cannot deadlock each other.  :class:`Network.transfer` charges
encode + hops + decode cycles and records per-plane statistics; an optional
``latency_override`` supports the Fig. 15 sensitivity sweep, where the
core-to-MAPLE latency is varied as a free parameter.

The network is also the transport for inter-tile port pairs:
:meth:`Network.link` returns a link generator that a
:class:`~repro.sim.port.Port` connection installs per direction, so every
cross-tile transaction (e.g. a core's MMIO access to MAPLE) pays the mesh
traversal here and shows up in the per-plane counters — and the Fig. 14
latency breakdown falls out of the port trace instead of hand-placed
instrumentation.

Quiescence audit (engine contract, see DESIGN.md): the network models
latency, not occupancy — there are no router processes to idle-skip;
an idle fabric of any size schedules zero events, and each traversal
is one timed wait charged on the transaction paying it.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.noc.mesh import Mesh
from repro.noc.packet import Packet
from repro.params import SoCConfig
from repro.sim import Message, Simulator
from repro.sim.stats import Stats


class Plane(enum.Enum):
    """The three P-Mesh planes."""

    REQUEST = 1
    RESPONSE = 2
    MEMORY = 3


class Network:
    """Latency/statistics model over a :class:`Mesh`."""

    def __init__(self, sim: Simulator, mesh: Mesh, config: SoCConfig, stats: Stats,
                 hop_latency_override: Optional[int] = None):
        self._sim = sim
        self.mesh = mesh
        self.config = config
        self._stats = stats
        self._hop_latency = (
            config.hop_latency if hop_latency_override is None else hop_latency_override
        )
        # (src, dst) -> (one-way latency, hops).  The cache is strictly
        # per-Network: a Fig. 15 sweep builds one Network per sweep point,
        # each binding its own hop latency, so entries can never leak
        # between hop_latency_override values.
        self._route_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._plane_counters = {
            plane: (stats.counter(f"noc.{plane.name.lower()}.packets"),
                    stats.counter(f"noc.{plane.name.lower()}.hops"))
            for plane in Plane
        }

    def _route(self, src_tile: int, dst_tile: int) -> Tuple[int, int]:
        key = (src_tile, dst_tile)
        route = self._route_cache.get(key)
        if route is None:
            hops = self.mesh.hops(src_tile, dst_tile)
            route = self._route_cache[key] = (
                self.config.noc_encode_latency
                + hops * self._hop_latency
                + self.config.noc_decode_latency,
                hops,
            )
        return route

    def one_way_latency(self, src_tile: int, dst_tile: int) -> int:
        """Encode + per-hop + decode cost for one packet."""
        return self._route(src_tile, dst_tile)[0]

    def transfer(self, packet: Packet, plane: Plane):
        """Generator: move a packet across the mesh, charging latency."""
        latency, hops = self._route(packet.src, packet.dst)
        packets_c, hops_c = self._plane_counters[plane]
        packets_c.value += 1
        hops_c.value += hops
        yield latency
        return packet

    def transfer_msg(self, msg: Message, plane: Plane):
        """Generator: move one port :class:`Message` across the mesh —
        same cost and per-plane accounting as a :class:`Packet`."""
        latency, hops = self._route(msg.src, msg.dst)
        packets_c, hops_c = self._plane_counters[plane]
        packets_c.value += 1
        hops_c.value += hops
        yield latency
        return msg

    def link(self, plane: Plane, pre: int = 0, post: int = 0):
        """A port-link generator function over this network.

        The returned ``link(msg)`` charges ``pre`` endpoint cycles, then
        the plane's mesh traversal for ``msg.src -> msg.dst``, then
        ``post`` endpoint cycles.  Install it as a port connection's
        ``request_link``/``response_link`` to make this network the
        transport for that seam.
        """
        # transfer_msg inlined so each leg costs one generator, not two;
        # the per-plane accounting still happens when the mesh traversal
        # starts (after the pre segment), exactly as before.
        route = self._route
        packets_c, hops_c = self._plane_counters[plane]

        def _link(msg: Message):
            if pre:
                yield pre
            latency, hops = route(msg.src, msg.dst)
            packets_c.value += 1
            hops_c.value += hops
            yield latency
            if post:
                yield post
        return _link

    def round_trip_latency(self, src_tile: int, dst_tile: int) -> int:
        """Request + response network cost (no endpoint processing)."""
        return self.one_way_latency(src_tile, dst_tile) + self.one_way_latency(
            dst_tile, src_tile
        )
