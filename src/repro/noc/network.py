"""The three-plane network fabric.

OpenPiton uses three physical NoCs so that requests, responses, and memory
traffic cannot deadlock each other.  :class:`Network.transfer` charges
encode + hops + decode cycles and records per-plane statistics; an optional
``latency_override`` supports the Fig. 15 sensitivity sweep, where the
core-to-MAPLE latency is varied as a free parameter.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.noc.mesh import Mesh
from repro.noc.packet import Packet
from repro.params import SoCConfig
from repro.sim import Simulator
from repro.sim.stats import Stats


class Plane(enum.Enum):
    """The three P-Mesh planes."""

    REQUEST = 1
    RESPONSE = 2
    MEMORY = 3


class Network:
    """Latency/statistics model over a :class:`Mesh`."""

    def __init__(self, sim: Simulator, mesh: Mesh, config: SoCConfig, stats: Stats,
                 hop_latency_override: Optional[int] = None):
        self._sim = sim
        self.mesh = mesh
        self.config = config
        self._stats = stats
        self._hop_latency = (
            config.hop_latency if hop_latency_override is None else hop_latency_override
        )

    def one_way_latency(self, src_tile: int, dst_tile: int) -> int:
        """Encode + per-hop + decode cost for one packet."""
        hops = self.mesh.hops(src_tile, dst_tile)
        return (
            self.config.noc_encode_latency
            + hops * self._hop_latency
            + self.config.noc_decode_latency
        )

    def transfer(self, packet: Packet, plane: Plane):
        """Generator: move a packet across the mesh, charging latency."""
        latency = self.one_way_latency(packet.src, packet.dst)
        self._stats.bump(f"noc.{plane.name.lower()}.packets")
        self._stats.bump(f"noc.{plane.name.lower()}.hops",
                         self.mesh.hops(packet.src, packet.dst))
        yield latency
        return packet

    def round_trip_latency(self, src_tile: int, dst_tile: int) -> int:
        """Request + response network cost (no endpoint processing)."""
        return self.one_way_latency(src_tile, dst_tile) + self.one_way_latency(
            dst_tile, src_tile
        )
