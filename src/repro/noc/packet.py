"""NoC packet representation."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any

_packet_ids = count()


@dataclass
class Packet:
    """One message on the mesh.

    ``kind`` is free-form ("mmio_load", "mmio_store", "mem_req", ...);
    the network only cares about source, destination, and plane, but
    keeping the kind and payload on the packet makes traces readable.
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __repr__(self) -> str:
        return f"<Packet #{self.packet_id} {self.kind} {self.src}->{self.dst}>"
