"""XY dimension-ordered routing.

OpenPiton's P-Mesh routes packets fully along X, then along Y.  XY routing
is deadlock-free on a mesh without extra virtual channels, which is why
tiled SoCs favor it.  We expose the exact hop sequence so tests can verify
the path and the harness can count hops for latency breakdowns.

Quiescence audit (engine contract, see DESIGN.md): routing is pure
arithmetic — no per-hop processes, no events; path cost is charged by
the network on traffic that exists.
"""

from __future__ import annotations

from typing import List, Tuple

Coord = Tuple[int, int]


def xy_route(src: Coord, dst: Coord) -> List[Coord]:
    """The sequence of router coordinates visited after leaving ``src``.

    Returns every intermediate router plus the destination (empty when
    ``src == dst``).  X is resolved first, then Y.
    """
    sx, sy = src
    dx, dy = dst
    path: List[Coord] = []
    x, y = sx, sy
    step_x = 1 if dx > x else -1
    while x != dx:
        x += step_x
        path.append((x, y))
    step_y = 1 if dy > y else -1
    while y != dy:
        y += step_y
        path.append((x, y))
    return path


def hop_count(src: Coord, dst: Coord) -> int:
    """Manhattan distance — the number of links a packet traverses."""
    return abs(src[0] - dst[0]) + abs(src[1] - dst[1])
