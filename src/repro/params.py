"""Central SoC configuration, mirroring Tables 2 and 3 of the paper.

Every component takes its structural and timing parameters from a
:class:`SoCConfig`.  Two presets are provided:

- :data:`FPGA_CONFIG` — the OpenPiton+Ariane FPGA prototype (Table 2),
- :data:`MOSAIC_CONFIG` — the MosaicSim setup used for the prior-work
  comparison (Table 3).

The two differ only where the paper's tables differ; both use single-issue
in-order cores, 8 KB 4-way L1s at 2 cycles, a shared 64 KB 8-way L2 at 30
cycles, and 300-cycle DRAM.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class SoCConfig:
    """All structural and timing knobs of the simulated SoC."""

    name: str = "openpiton-maple"

    # Cores (Table 2: RISCV64 Ariane, 6-stage in-order, 1 thread/core).
    num_cores: int = 2
    issue_width: int = 1

    # Caches. Latencies are load-to-use costs in cycles.
    line_size: int = 64
    l1_size: int = 8 * 1024
    l1_ways: int = 4
    l1_latency: int = 2
    l2_size: int = 64 * 1024
    l2_ways: int = 8
    l2_latency: int = 30
    #: Outstanding L1 misses a core sustains (demand + software prefetch).
    #: Ariane's blocking write-through L1 supports one — which is exactly
    #: why software prefetching loses on this class of core (§5.1).
    core_mshrs: int = 1
    #: Store-buffer depth: ordinary stores retire immediately and complete
    #: in the background; the core stalls only when the buffer is full.
    #: MMIO stores (MAPLE produces) bypass it — they are synchronous and
    #: return once MAPLE acknowledges them (§3.6).
    store_buffer_entries: int = 8

    # DRAM (Table 2: DDR3, 300-cycle latency; Table 3 adds 68 GB/s).
    dram_latency: int = 300
    dram_max_inflight: int = 16

    # NoC: 2D mesh, XY routing (OpenPiton P-Mesh style).
    mesh_cols: int = 2
    mesh_rows: int = 2
    hop_latency: int = 1
    noc_encode_latency: int = 1
    noc_decode_latency: int = 1
    # Private-cache path cost an MMIO request pays before reaching the NoC
    # (L1 miss handling + L1.5 passthrough; see Fig. 14).
    mmio_path_latency: int = 8

    # MAPLE (Table 2: 1 instance, 1 KB scratchpad; §5.3/§5.4: 8 queues of
    # 32 entries x 4 B; 16-entry fully associative TLB, like the cores).
    maple_instances: int = 1
    #: Where MAPLE tiles sit on the mesh.  ``legacy`` (the default, and
    #: the bit-identity baseline) packs them row-major right after the
    #: cores; ``edge`` / ``center`` / ``per-quadrant`` are the sweepable
    #: geometric policies (see :func:`repro.noc.mesh.placement_tiles`).
    #: Cores then fill the remaining tiles in ascending tile order and
    #: bind to their nearest instance (driver assignment map, §5.3).
    maple_placement: str = "legacy"
    scratchpad_bytes: int = 1024
    maple_num_queues: int = 8
    queue_entry_bytes: int = 4
    maple_tlb_entries: int = 16
    maple_max_inflight: int = 32
    maple_pipeline_latency: int = 3
    produce_buffer_entries: int = 4

    # Virtual memory (Sv39-like three-level pages of 4 KB).
    page_size: int = 4096
    core_tlb_entries: int = 16

    # Data integrity.  ``reliable_ports`` arms sequence-number + checksum
    # ack/timeout/retransmit on every Port (zero added cycles while no
    # lossy-link fault is injected); ``ecc`` arms the SECDED model on
    # DRAM reads and scratchpad slots (correct single-bit flips, poison
    # double-bit flips); ``poison_refetch_limit`` bounds how many times a
    # consumer re-fetches a poisoned line before raising a typed
    # DataIntegrityError.
    reliable_ports: bool = False
    port_retry_timeout: int = 64
    port_max_retries: int = 8
    port_retry_backoff: int = 4
    ecc: bool = True
    poison_refetch_limit: int = 3

    # Sliced-L2 home-node directory (MemPool-class meshes).  Opt-in:
    # with ``directory=False`` (the default) coherence round trips are
    # charged as flat L2 latencies exactly as before, keeping every
    # existing config bit-identical.  With ``directory=True`` the L2's
    # directory state is address-interleaved across ``directory_slices``
    # home tiles and every invalidation / ownership-transfer round trip
    # becomes real Port traffic on the NoC planes (visible to taps,
    # faults, and reliable delivery) — see ``repro/mem/directory.py``.
    directory: bool = False
    directory_slices: int = 4
    #: Route L2 refill and dirty-writeback traffic over the MEMORY NoC
    #: plane as real ``dir_refill``/``dir_writeback`` port messages
    #: between each home slice and the memory-controller tile (requires
    #: ``directory=True``).  Off by default: refills stay direct DRAM
    #: calls and the default timing is bit-identical.
    directory_mem_traffic: bool = False
    #: Mesh tile the DRAM controller sits at (the far end of the
    #: MEMORY-plane refill/writeback routes).  Tile 0 is the top-left
    #: corner, matching OpenPiton's edge-attached memory controller.
    mem_ctrl_tile: int = 0

    def __post_init__(self) -> None:
        if self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a power of two")
        if self.l1_size % (self.line_size * self.l1_ways):
            raise ValueError("L1 geometry does not divide into sets")
        if self.l2_size % (self.line_size * self.l2_ways):
            raise ValueError("L2 geometry does not divide into sets")
        if self.page_size % self.line_size:
            raise ValueError("page_size must be a multiple of line_size")
        if self.scratchpad_bytes % self.maple_num_queues:
            raise ValueError("scratchpad must divide evenly across queues")
        if self.maple_placement not in ("legacy", "edge", "center",
                                        "per-quadrant"):
            raise ValueError(
                f"unknown maple_placement {self.maple_placement!r}")
        if self.directory_slices < 1:
            raise ValueError("directory needs at least one home slice")
        if self.directory_mem_traffic and not self.directory:
            raise ValueError("directory_mem_traffic requires directory=True")
        if not 0 <= self.mem_ctrl_tile < self.mesh_cols * self.mesh_rows:
            raise ValueError("mem_ctrl_tile must be a valid mesh tile")

    @property
    def queue_entries(self) -> int:
        """Entries per hardware queue (default 1024/8/4 = 32, per §5.3)."""
        return self.scratchpad_bytes // self.maple_num_queues // self.queue_entry_bytes

    @property
    def words_per_line(self) -> int:
        return self.line_size // 8

    def with_overrides(self, **kwargs) -> "SoCConfig":
        """A copy with some fields replaced (used by sensitivity sweeps)."""
        return replace(self, **kwargs)

    # -- stable identity (experiment caching) ----------------------------------

    def stable_dict(self) -> Dict[str, object]:
        """Every field as plain JSON-able values, in declaration order.

        This is the canonical form the experiment cache hashes, so two
        configs hash equal iff every structural and timing knob matches.
        """
        return asdict(self)

    def stable_hash(self) -> str:
        """Hex digest identifying this exact configuration."""
        payload = json.dumps(self.stable_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()


#: Table 2 — the FPGA-emulated SoC prototype.
FPGA_CONFIG = SoCConfig(name="fpga-openpiton")

#: Table 3 — the MosaicSim model used against DeSC and DROPLET.
MOSAIC_CONFIG = SoCConfig(name="mosaicsim", dram_max_inflight=32)
