"""Discrete-event simulation kernel.

Every hardware component in the reproduction (cores, caches, NoC routers,
DRAM, MAPLE pipelines) is modeled as one or more *processes*: Python
generators driven by a :class:`~repro.sim.engine.Simulator`.  A process
yields either an integer (advance that many cycles), a
:class:`~repro.sim.signal.Signal` (block until it fires), or another
process handle (join).  This mirrors how RTL blocks wait on clocks and
handshakes while staying pure Python.
"""

from repro.sim.engine import Process, Simulator
from repro.sim.port import Message, Port, PortRegistry, PortTap
from repro.sim.signal import Barrier, Gate, Semaphore, Signal
from repro.sim.stats import Histogram, Stats, geomean

__all__ = [
    "Barrier",
    "Gate",
    "Histogram",
    "Message",
    "Port",
    "PortRegistry",
    "PortTap",
    "Process",
    "Semaphore",
    "Signal",
    "Simulator",
    "Stats",
    "geomean",
]
