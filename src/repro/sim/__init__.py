"""Discrete-event simulation kernel.

Every hardware component in the reproduction (cores, caches, NoC routers,
DRAM, MAPLE pipelines) is modeled as one or more *processes*: Python
generators driven by a :class:`~repro.sim.engine.Simulator`.  A process
yields either an integer (advance that many cycles), a
:class:`~repro.sim.signal.Signal` (block until it fires), or another
process handle (join).  This mirrors how RTL blocks wait on clocks and
handshakes while staying pure Python.
"""

from repro.sim.engine import Process, Simulator
from repro.sim.faults import (
    DramBitFlipFault,
    DramBurstFault,
    FaultInjector,
    FaultPlan,
    PageEvictFault,
    PortCorruptFault,
    PortDelayFault,
    PortDropFault,
    PortDuplicateFault,
    PreemptFault,
    QueueSlotFlipFault,
    ShootdownFault,
    corrupt_value,
)
from repro.sim.invariants import InvariantChecker, InvariantViolation, QueueShadow
from repro.sim.port import (
    DataIntegrityError,
    DeliveryError,
    Message,
    Port,
    PortRegistry,
    PortTap,
    QuiescenceError,
)
from repro.sim.signal import Barrier, Gate, Semaphore, Signal
from repro.sim.stats import Histogram, Stats, geomean
from repro.sim.watchdog import LivenessError, Watchdog, collect_diagnosis

__all__ = [
    "Barrier",
    "DataIntegrityError",
    "DeliveryError",
    "DramBitFlipFault",
    "DramBurstFault",
    "FaultInjector",
    "FaultPlan",
    "Gate",
    "Histogram",
    "InvariantChecker",
    "InvariantViolation",
    "LivenessError",
    "Message",
    "PageEvictFault",
    "Port",
    "PortCorruptFault",
    "PortDelayFault",
    "PortDropFault",
    "PortDuplicateFault",
    "PortRegistry",
    "PortTap",
    "PreemptFault",
    "Process",
    "QueueShadow",
    "QueueSlotFlipFault",
    "QuiescenceError",
    "Semaphore",
    "ShootdownFault",
    "Signal",
    "Simulator",
    "Stats",
    "Watchdog",
    "collect_diagnosis",
    "corrupt_value",
    "geomean",
]
