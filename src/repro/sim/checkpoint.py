"""Deterministic checkpoint/restore for a full :class:`~repro.system.Soc`.

A simulation here is a web of live generator frames (cores, MAPLE
engines, NoC routers, DRAM channels), and CPython cannot serialize a
suspended generator.  So a checkpoint does **not** try to freeze the
process image; it pins down the run by *content*, leaning on the repo's
oldest contract — a seeded run is bit-exact reproducible:

- the **cycle** the run had reached and the engine's event census
  (executed count, every pending record's due time and shape),
- a **sha256 digest per subsystem** over canonicalized state: timing
  wheel + overflow heap, PortRegistry (credits, txn counters, busy set,
  reliable-port telemetry), L1/L2 caches + the :class:`CoherenceBook`,
  MAPLE queues/LIMA, directory slices, DRAM channels, the backing
  physical memory (which also holds the page tables, so VM state rides
  along), per-core and per-MAPLE TLBs, the stats store, and both global
  RNG streams,
- the pickled :class:`RunSpec` (when the run came from the orchestrator)
  so a fresh process can rebuild the experiment,
- a whole-file content digest so torn or bit-flipped checkpoint files
  are detected before any of the above is trusted.

**Restore is verified replay**: rebuild the experiment from its spec
(or from caller-supplied arguments), re-seed the RNGs exactly as
:func:`~repro.harness.orchestrator.execute_spec` does, run the fresh
``Soc`` forward to the checkpoint cycle, and compare every subsystem
digest.  A mismatch raises the typed
:class:`CheckpointDivergenceError` naming the subsystems that differ —
the run never silently continues from a state that is not the one that
was saved.  The payoff of this design is that "resumed run ==
uninterrupted run" is not a best-effort property that decays as new
subsystems grow state; it is checked against the recorded digests on
every resume.  The cost — replaying the prefix — is proportional to the
checkpoint cycle, which DESIGN.md discusses honestly.
"""

from __future__ import annotations

import base64
import enum
import hashlib
import json
import pickle
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

#: Bump when the payload shape or any digest surface changes: old files
#: must fail loudly (schema error), never verify against the wrong state.
CHECKPOINT_SCHEMA = 1
CHECKPOINT_KIND = "repro-soc-checkpoint"


class CheckpointError(RuntimeError):
    """Base class for every typed checkpoint failure."""

    def __init__(self, message: str, path: Optional[str] = None):
        self.path = str(path) if path is not None else None
        super().__init__(message if path is None
                         else f"{message} [{path}]")


class CheckpointCorruptError(CheckpointError):
    """The file is unreadable, truncated, schema-mismatched, or its
    content digest does not match — nothing in it can be trusted."""


class CheckpointUnresumableError(CheckpointError):
    """The checkpoint is valid but carries no embedded :class:`RunSpec`
    (it was saved from an ad-hoc run), so only the caller who can
    rebuild the experiment may resume it."""


class CheckpointDivergenceError(CheckpointError):
    """Replay reached the checkpoint cycle in a different state.

    Carries the subsystems whose digests disagree — the replay either
    ran under a different config/seed/dataset than the saved run, or a
    determinism bug crept into the simulator.  Either way continuing
    would produce numbers that are not the saved run's numbers.
    """

    def __init__(self, mismatched, path: Optional[str] = None):
        self.mismatched = sorted(mismatched)
        super().__init__(
            "replayed state diverges from checkpoint in: "
            + ", ".join(self.mismatched), path)


# -- canonicalization ------------------------------------------------------------


def _canon(value: Any) -> Any:
    """A JSON-able, address-free, deterministic view of ``value``.

    Digests must never see ``repr`` output containing ``0x`` memory
    addresses: two identical simulations in different processes must
    canonicalize to identical bytes.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.name]
    if isinstance(value, dict):
        return {_canon_key(k): _canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canon(v) for v in value), key=_canon_sort_key)
    if isinstance(value, (bytes, bytearray)):
        return base64.b64encode(bytes(value)).decode()
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:  # numpy scalar
            return _canon(value.item())
        except (TypeError, ValueError):
            pass
    # Process handles pend in the event queue; name + liveness is the
    # deterministic identity (generator frames carry no stable bytes).
    name = getattr(value, "name", None)
    if name is not None and hasattr(value, "finished"):
        return ["proc", str(name), bool(value.finished)]
    if callable(value):
        owner = getattr(value, "__self__", None)
        qual = getattr(value, "__qualname__",
                       getattr(value, "__name__", type(value).__name__))
        if owner is not None:
            return ["fn", type(owner).__name__, str(qual)]
        return ["fn", str(qual)]
    text = repr(value)
    if "0x" in text:  # never let an address into a digest
        return ["obj", type(value).__name__]
    return ["obj", type(value).__name__, text]


def _canon_key(key: Any) -> str:
    if isinstance(key, str):
        return key
    return json.dumps(_canon(key), sort_keys=True, separators=(",", ":"))


def _canon_sort_key(item: Any) -> str:
    return json.dumps(item, sort_keys=True, separators=(",", ":"))


def canonical_json(value: Any) -> str:
    return json.dumps(_canon(value), sort_keys=True, separators=(",", ":"))


def digest_of(value: Any) -> str:
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


# -- state surfaces --------------------------------------------------------------


def engine_state(sim) -> Dict[str, Any]:
    """The timing-wheel engine's full pending-event census.

    Wheel buckets are keyed by ``time & mask``; since the clock only
    advances to the minimum pending time, the slot's absolute due time
    is recoverable as the first cycle after ``now`` that maps to it.
    """
    now = sim._now
    mask = sim._mask
    pending = []
    for slot in range(sim._wheel_size):
        bucket = sim._wheel[slot]
        if bucket:
            due = now + 1 + ((slot - (now + 1)) & mask)
            pending.append(["wheel", due, [_canon(rec) for rec in bucket]])
    for time, seq, rec in sorted(sim._queue, key=lambda e: (e[0], e[1])):
        pending.append(["heap", time, seq, _canon(rec)])
    pending.sort(key=lambda entry: (entry[1], entry[0]))
    return {
        "now": now,
        "seq": sim._seq,
        "wheel_size": sim._wheel_size,
        "live_processes": sim._live_processes,
        "events_executed": sim.events_executed,
        "utility_ticks": sim.utility_ticks,
        "ready": [_canon(rec) for rec in sim._ready],
        "pending": pending,
        "engine": type(sim).__name__,
    }


def _rng_state() -> Dict[str, Any]:
    state = {"python": _canon(random.getstate())}
    try:
        import numpy
        v, keys, pos, has_gauss, cached = numpy.random.get_state()
        state["numpy"] = [str(v), [int(k) for k in keys], int(pos),
                         int(has_gauss), float(cached)]
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        state["numpy"] = None
    return state


def _cache_state(cache) -> Any:
    return [[[line, _canon(st)] for line, st in cache_set.items()]
            for cache_set in cache._sets]


def state_digests(soc) -> Dict[str, str]:
    """One sha256 per subsystem over its canonicalized state.

    Per-subsystem (rather than one monolithic hash) so a divergence
    report names *where* the replay went wrong — "caches, coherence"
    triages very differently from "rng".
    """
    memsys = soc.memsys
    surfaces: Dict[str, Any] = {
        "engine": engine_state(soc.sim),
        "ports": {"debug": soc.ports.debug_state(),
                  "telemetry": soc.ports.telemetry()},
        "caches": {"l2": _cache_state(memsys.l2),
                   "l1": {cid: _cache_state(l1)
                          for cid, l1 in sorted(memsys.l1s.items())}},
        "coherence": [sorted((line, sorted(entry.sharers), entry.owner)
                             for line, entry in shard.items())
                      for shard in memsys.book._shards],
        "memory": sorted(memsys.mem._words.items()),
        "hierarchy": memsys.debug_state(),
        "maples": [m.debug_state() for m in soc.maples],
        "directory": (soc.directory.debug_state()
                      if soc.directory is not None else None),
        "tlbs": {"cores": {c.core_id: list(c.tlb._entries.items())
                           for c in soc.cores},
                 "maples": {m.instance_id:
                            list(m.mmu.tlb._entries.items())
                            for m in soc.maples}},
        "stats": soc.stats_snapshot(),
        "rng": _rng_state(),
    }
    return {name: digest_of(state) for name, state in surfaces.items()}


# -- the checkpoint artifact -----------------------------------------------------


@dataclass
class Checkpoint:
    """One saved point of one run: cycle + digests + (optionally) the
    spec that rebuilds it.  Serialized as a single JSON file whose
    ``content_sha256`` covers every other field."""

    cycle: int
    events_executed: int
    digests: Dict[str, str]
    stats: Dict[str, float]
    label: str = ""
    spec_b64: Optional[str] = None
    spec_key: Optional[str] = None
    schema: int = CHECKPOINT_SCHEMA
    meta: Dict[str, Any] = field(default_factory=dict)

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": CHECKPOINT_KIND,
            "schema": self.schema,
            "cycle": self.cycle,
            "events_executed": self.events_executed,
            "digests": dict(self.digests),
            "stats": dict(self.stats),
            "label": self.label,
            "spec_b64": self.spec_b64,
            "spec_key": self.spec_key,
            "meta": dict(self.meta),
        }

    def content_digest(self) -> str:
        return hashlib.sha256(
            json.dumps(self.payload(), sort_keys=True,
                       separators=(",", ":")).encode()).hexdigest()

    @property
    def resumable(self) -> bool:
        return self.spec_b64 is not None

    def spec(self):
        """The embedded :class:`RunSpec`, or a typed error without one."""
        if self.spec_b64 is None:
            raise CheckpointUnresumableError(
                "checkpoint has no embedded RunSpec (saved from an ad-hoc "
                "run); rebuild the experiment and pass resume_from=")
        return pickle.loads(base64.b64decode(self.spec_b64))

    def save(self, path) -> "Checkpoint":
        """Atomic write (tmp + rename): a writer killed mid-save leaves
        either the previous valid file or a reapable ``.tmp``."""
        path = Path(path)
        body = self.payload()
        body["content_sha256"] = self.content_digest()
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(body, sort_keys=True, indent=1))
        tmp.replace(path)
        return self

    @classmethod
    def load(cls, path) -> "Checkpoint":
        path = Path(path)
        try:
            body = json.loads(path.read_text())
        except OSError as err:
            raise CheckpointCorruptError(
                f"unreadable checkpoint: {err}", path) from err
        except ValueError as err:
            raise CheckpointCorruptError(
                f"checkpoint is not valid JSON ({err}) — truncated or "
                "torn write", path) from err
        if not isinstance(body, dict) or body.get("kind") != CHECKPOINT_KIND:
            raise CheckpointCorruptError("not a checkpoint file", path)
        if body.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointCorruptError(
                f"checkpoint schema {body.get('schema')!r} != "
                f"{CHECKPOINT_SCHEMA}", path)
        recorded = body.pop("content_sha256", None)
        try:
            ckpt = cls(cycle=body["cycle"],
                       events_executed=body["events_executed"],
                       digests=dict(body["digests"]),
                       stats=dict(body["stats"]),
                       label=body.get("label", ""),
                       spec_b64=body.get("spec_b64"),
                       spec_key=body.get("spec_key"),
                       schema=body["schema"],
                       meta=dict(body.get("meta") or {}))
        except (KeyError, TypeError, ValueError) as err:
            raise CheckpointCorruptError(
                f"malformed checkpoint payload: {err!r}", path) from err
        if recorded != ckpt.content_digest():
            raise CheckpointCorruptError(
                "content digest mismatch — file was bit-flipped or "
                "partially overwritten", path)
        return ckpt


def capture(soc, spec=None, label: str = "") -> Checkpoint:
    """Snapshot ``soc`` right now (between engine run() calls)."""
    spec_b64 = key = None
    if spec is not None:
        from repro.harness.orchestrator import spec_key
        spec_b64 = base64.b64encode(pickle.dumps(spec)).decode()
        key = spec_key(spec)
    return Checkpoint(
        cycle=soc.sim.now,
        events_executed=soc.sim.events_executed,
        digests=state_digests(soc),
        stats=soc.stats_snapshot(),
        label=label or (spec.label() if spec is not None else ""),
        spec_b64=spec_b64,
        spec_key=key,
        meta={"config": soc.config.name,
              "engine": type(soc.sim).__name__,
              # Spec-driven runs seed the global RNGs from the spec key
              # (execute_spec), so a replay reproduces them and verify
              # may compare the rng digest.  Ad-hoc runs inherit the
              # caller process's RNG state, which a resume cannot know.
              "seeded": spec is not None},
    )


def verify_against(soc, checkpoint: Checkpoint,
                   path: Optional[str] = None) -> None:
    """Compare ``soc``'s live state digests to the checkpoint's.

    Called after replaying to ``checkpoint.cycle``; raises the typed
    :class:`CheckpointDivergenceError` naming every differing subsystem.
    """
    mismatched = []
    if soc.sim.now != checkpoint.cycle:
        mismatched.append("cycle")
    live = state_digests(soc)
    skip = () if checkpoint.meta.get("seeded") else ("rng",)
    mismatched.extend(name for name, want in checkpoint.digests.items()
                      if name not in skip and live.get(name) != want)
    if mismatched:
        raise CheckpointDivergenceError(mismatched, path)


def resume_checkpoint(path, **overrides):
    """Rebuild the embedded spec's experiment, replay to the saved
    cycle under digest verification, and run it to completion.

    Returns the finished
    :class:`~repro.harness.techniques.ExperimentResult`.  ``overrides``
    are forwarded to ``run_workload`` (e.g. ``checkpoint_every=`` /
    ``checkpoint_path=`` to keep checkpointing the continued run).
    """
    ckpt = path if isinstance(path, Checkpoint) else Checkpoint.load(path)
    spec = ckpt.spec()

    from repro.harness.orchestrator import seed_rngs_for, spec_key
    from repro.harness.techniques import run_workload

    seed_rngs_for(spec_key(spec))
    kwargs = spec.run_kwargs()
    kwargs.update(overrides)
    return run_workload(spec.workload, spec.technique,
                        resume_from=ckpt, **kwargs)
