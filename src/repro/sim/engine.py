"""The discrete-event simulator core.

The engine keeps a priority queue of event records and a notion of
*processes*.  A process wraps a generator; whatever the generator yields
decides when it is resumed:

``int``
    Resume after that many cycles (0 is legal: resume later this cycle).
``Signal``
    Resume when the signal fires; ``gen.send()`` receives the fired value.
``Process``
    Resume when that process finishes (join); receives its return value.

Exceptions raised inside a process propagate out of :meth:`Simulator.run`,
so a broken model fails loudly instead of silently dropping events.

Hot-path design (the engine executes millions of events per figure):

- Event records are plain 4-tuples ``(time, seq, proc, payload)`` — no
  per-event lambda closures.  ``proc is None`` marks a bare callback from
  :meth:`Simulator.schedule`; otherwise the record is a pending generator
  step and ``payload`` is the value to send.  Tuples double as heap
  entries: ``heapq`` compares ``(time, seq)`` at C speed and never
  reaches the payload fields because ``seq`` is unique.
- Same-cycle work (``spawn``, ``_resume``, ``yield 0``) bypasses the heap
  entirely through a FIFO *ready* deque.  Events the heap delivers for a
  timestamp are batch-drained into the same deque, which preserves the
  global (time, seq) execution order: delay-0 events are always created
  *while executing* an event at the current cycle, so they sequence after
  every already-queued event of that cycle.
- The generator step (send / StopIteration / dispatch-on-yield) is
  inlined into :meth:`Simulator.run` with the dominant ``yield <int>``
  case handled in-loop; only non-int yields take the out-of-line
  :meth:`_dispatch` path.

The scheduling *semantics* are identical to the original engine, which is
preserved as :mod:`repro.sim.reference` and checked against this one by
the golden determinism test.
"""

from __future__ import annotations

import time as _walltime
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (bad yields, deadlock)."""


class Process:
    """Handle for a spawned generator process.

    The handle doubles as a join target: other processes can ``yield proc``
    to wait for completion, and :attr:`result` carries the generator's
    return value afterwards.
    """

    __slots__ = ("_sim", "_gen", "name", "finished", "result", "_joiners")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self._joiners: list[Process] = []

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"

    def _add_joiner(self, proc: "Process") -> None:
        if self.finished:
            raise SimulationError("joining a finished process must be immediate")
        self._joiners.append(proc)

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        ready = self._sim._ready
        for joiner in joiners:
            ready.append((0, 0, joiner, result))


class Simulator:
    """Cycle-accurate event loop.

    Time is an integer cycle count.  All scheduling is deterministic: events
    at the same cycle run in insertion order (a monotonically increasing
    sequence number breaks ties), so simulations are exactly reproducible.
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        #: Future events: ``(time, seq, proc, payload)`` heap entries.
        self._queue: list = []
        #: Current-cycle events in execution order; same record layout
        #: (the first two fields are ignored for delay-0 appends).
        self._ready: deque = deque()
        self._live_processes = 0
        #: Cumulative events executed / wall-clock seconds spent inside
        #: :meth:`run` — the raw material for the simcore perf harness.
        self.events_executed = 0
        self.run_wall_seconds = 0.0
        #: Queued *utility* callbacks (watchdog checks, fault tickers) —
        #: bookkeeping they maintain themselves so each can tell whether
        #: any *model* events remain (:attr:`pending_events` minus this)
        #: and stop re-arming instead of keeping each other alive.
        self.utility_ticks = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def live_processes(self) -> int:
        """Number of spawned processes that have not finished."""
        return self._live_processes

    @property
    def pending_events(self) -> int:
        """Events queued (heap + same-cycle deque).  Zero with live
        processes remaining means every one of them is blocked on a
        handshake that can never fire — the deadlock signature the
        watchdog reports on."""
        return len(self._queue) + len(self._ready)

    @property
    def model_events(self) -> int:
        """Pending events that belong to the *model* — everything except
        the self-rescheduling utility ticks.  The re-arm condition for
        those ticks: once this hits zero the run is over (or deadlocked)
        and ticking on would keep the queue alive artificially."""
        return len(self._queue) + len(self._ready) - self.utility_ticks

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` cycles (0 = later this cycle)."""
        if delay:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            heappush(self._queue, (self._now + delay, self._seq, None, callback))
            self._seq += 1
        else:
            self._ready.append((0, 0, None, callback))

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process and start it this cycle."""
        proc = Process(self, gen, name)
        self._live_processes += 1
        self._ready.append((0, 0, proc, None))
        return proc

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when simulated time would pass
        ``until``, or after ``max_events`` events (a runaway-model backstop).
        Returns the final simulation time; when ``until`` is given the
        clock always ends at ``until``, whether or not the queue drained
        before reaching it.
        """
        queue = self._queue
        ready = self._ready
        events = 0
        start = _walltime.perf_counter()
        try:
            while True:
                if not ready:
                    if not queue:
                        break
                    time = queue[0][0]
                    if until is not None and time > until:
                        self._now = until
                        return until
                    self._now = time
                    # Batch-drain every event sharing this timestamp.  New
                    # heap entries for this cycle cannot appear afterwards
                    # (a delay-0 schedule goes to ``ready``, any other
                    # delay lands strictly later), so this move is safe.
                    ready.append(heappop(queue))
                    while queue and queue[0][0] == time:
                        ready.append(heappop(queue))
                _t, _s, proc, payload = ready.popleft()
                events += 1
                if proc is None:
                    payload()
                else:
                    # Inlined generator step: the per-event hot path.
                    try:
                        yielded = proc._gen.send(payload)
                    except StopIteration as stop:
                        self._live_processes -= 1
                        proc._finish(stop.value)
                    else:
                        if yielded.__class__ is int:
                            if yielded > 0:
                                heappush(queue, (self._now + yielded,
                                                 self._seq, proc, None))
                                self._seq += 1
                            elif yielded == 0:
                                ready.append((0, 0, proc, None))
                            else:
                                raise SimulationError(
                                    f"cannot schedule into the past "
                                    f"(delay={yielded})")
                        else:
                            self._dispatch(proc, yielded)
                if max_events is not None and events >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self._now}")
        finally:
            self.events_executed += events
            self.run_wall_seconds += _walltime.perf_counter() - start
        if until is not None and until > self._now:
            # The queue drained before the horizon: the clock still
            # advances to it, matching the early-stop path above.
            self._now = until
        return self._now

    # -- process machinery -------------------------------------------------

    def _resume(self, proc: Process, value: Any) -> None:
        self._ready.append((0, 0, proc, value))

    def _dispatch(self, proc: Process, yielded: Any) -> None:
        """Route a non-int yield (Signal, Process, int subclasses)."""
        if isinstance(yielded, int):
            # bool or other int subclass that missed the exact-type fast
            # path; same delay rules as the inline case.
            if yielded < 0:
                raise SimulationError(f"cannot schedule into the past (delay={yielded})")
            if yielded:
                heappush(self._queue, (self._now + yielded, self._seq, proc, None))
                self._seq += 1
            else:
                self._ready.append((0, 0, proc, None))
        elif hasattr(yielded, "_add_waiter"):  # Signal-like
            if yielded.fired:
                self._ready.append((0, 0, proc, yielded.value))
            else:
                yielded._add_waiter(proc)
        elif isinstance(yielded, Process):
            if yielded.finished:
                self._ready.append((0, 0, proc, yielded.result))
            else:
                yielded._add_joiner(proc)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported value {yielded!r}; "
                "yield an int delay, a Signal, or a Process"
            )
