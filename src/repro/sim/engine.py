"""The discrete-event simulator core.

The engine keeps a priority queue of (time, sequence, callback) entries and a
notion of *processes*.  A process wraps a generator; whatever the generator
yields decides when it is resumed:

``int``
    Resume after that many cycles (0 is legal: resume later this cycle).
``Signal``
    Resume when the signal fires; ``gen.send()`` receives the fired value.
``Process``
    Resume when that process finishes (join); receives its return value.

Exceptions raised inside a process propagate out of :meth:`Simulator.run`,
so a broken model fails loudly instead of silently dropping events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (bad yields, deadlock)."""


class Process:
    """Handle for a spawned generator process.

    The handle doubles as a join target: other processes can ``yield proc``
    to wait for completion, and :attr:`result` carries the generator's
    return value afterwards.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self._joiners: list[Process] = []

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"

    def _add_joiner(self, proc: "Process") -> None:
        if self.finished:
            raise SimulationError("joining a finished process must be immediate")
        self._joiners.append(proc)

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self._sim._resume(joiner, result)


class Simulator:
    """Cycle-accurate event loop.

    Time is an integer cycle count.  All scheduling is deterministic: events
    at the same cycle run in insertion order (a monotonically increasing
    sequence number breaks ties), so simulations are exactly reproducible.
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._live_processes = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def live_processes(self) -> int:
        """Number of spawned processes that have not finished."""
        return self._live_processes

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` cycles (0 = later this cycle)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback))
        self._seq += 1

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process and start it this cycle."""
        proc = Process(self, gen, name)
        self._live_processes += 1
        self.schedule(0, lambda: self._step(proc, None))
        return proc

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when simulated time would pass
        ``until``, or after ``max_events`` events (a runaway-model backstop).
        Returns the final simulation time.
        """
        events = 0
        while self._queue:
            time, _seq, callback = self._queue[0]
            if until is not None and time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            self._now = time
            callback()
            events += 1
            if max_events is not None and events >= max_events:
                raise SimulationError(f"exceeded max_events={max_events} at cycle {self._now}")
        return self._now

    # -- process machinery -------------------------------------------------

    def _resume(self, proc: Process, value: Any) -> None:
        self.schedule(0, lambda: self._step(proc, value))

    def _step(self, proc: Process, value: Any) -> None:
        try:
            yielded = proc._gen.send(value)
        except StopIteration as stop:
            self._live_processes -= 1
            proc._finish(stop.value)
            return
        self._dispatch(proc, yielded)

    def _dispatch(self, proc: Process, yielded: Any) -> None:
        if isinstance(yielded, int):
            self.schedule(yielded, lambda: self._step(proc, None))
        elif hasattr(yielded, "_add_waiter"):  # Signal-like
            if yielded.fired:
                self._resume(proc, yielded.value)
            else:
                yielded._add_waiter(proc)
        elif isinstance(yielded, Process):
            if yielded.finished:
                self._resume(proc, yielded.result)
            else:
                yielded._add_joiner(proc)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported value {yielded!r}; "
                "yield an int delay, a Signal, or a Process"
            )
