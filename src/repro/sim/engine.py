"""The discrete-event simulator core.

The engine keeps pending event records and a notion of *processes*.  A
process wraps a generator; whatever the generator yields decides when it
is resumed:

``int``
    Resume after that many cycles (0 is legal: resume later this cycle).
``Signal``
    Resume when the signal fires; ``gen.send()`` receives the fired value.
``Process``
    Resume when that process finishes (join); receives its return value.

Exceptions raised inside a process propagate out of :meth:`Simulator.run`,
so a broken model fails loudly instead of silently dropping events.

Hot-path design (the engine executes millions of events per figure):

- Future events live in a **timing wheel**: a power-of-two ring of
  per-cycle buckets indexed by ``target_time & mask``.  Enqueue and
  dequeue are O(1) list appends — no heap comparisons, no per-event
  sequence numbers.  Because the clock only ever advances to the
  *minimum* pending time, every occupied bucket holds exactly one
  timestamp, so bucket order == insertion order == the global
  ``(time, seq)`` order the seed engine defines.
- Bucket occupancy is a single big-int **bitmap**; finding the next
  pending cycle is one shift plus one lowest-set-bit extraction instead
  of a ring scan.
- Delays beyond the wheel horizon overflow into a small ``heapq``
  fallback carrying explicit sequence numbers.  At any timestamp every
  heap record was enqueued strictly before every wheel record for that
  timestamp (a record only reaches the heap because its delay exceeded
  the horizon, and the horizon never shrinks), so draining heap-then-
  bucket reproduces the seed engine's tie-break exactly.
- The wheel is sized adaptively: when overflow traffic shows the
  observed delay distribution outgrowing the horizon, the wheel doubles
  (up to a cap) at the next moment it is empty, so no redistribution is
  ever needed.
- Event records are **polymorphic, allocation-free in the common case**:
  a bare :class:`Process` means "step this generator, sending ``None``"
  (every ``yield <int>`` resume and every spawn), a bare callable is a
  :meth:`Simulator.schedule` callback, and only a resume that carries a
  value (signal fires, join results) costs a ``(proc, payload)`` tuple.
- Same-cycle work (``spawn``, ``_resume``, ``yield 0``) bypasses the
  wheel entirely through a FIFO *ready* deque.  Events due at a
  timestamp are batch-drained into the same deque, which preserves the
  global (time, seq) execution order: delay-0 events are always created
  *while executing* an event at the current cycle, so they sequence
  after every already-queued event of that cycle.
- The generator step (send / StopIteration / dispatch-on-yield) is
  inlined into :meth:`Simulator.run` with the dominant ``yield <int>``
  case handled in-loop; only non-int yields take the out-of-line
  :meth:`_dispatch` path.  Plain runs take a loop with no per-event
  ``max_events`` bookkeeping, so :attr:`run_wall_seconds` measures the
  model, not disabled instrumentation; bounded runs use the separate
  :meth:`_run_bounded` loop.

The scheduling *semantics* are identical to the original engine, which is
preserved as :mod:`repro.sim.reference` and checked against this one by
the golden determinism test, the differential fuzz sweep, and the
randomized-schedule property suite.
"""

from __future__ import annotations

import time as _walltime
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Optional

#: Initial wheel span in cycles (one bucket per cycle).  Covers every
#: latency parameter in the stock SoC configs (DRAM ~300) with room.
_WHEEL_SIZE = 1024
#: Adaptive growth cap.  Delays beyond this always take the heap.
_WHEEL_MAX = 8192
#: Heap inserts that *would* have fit a bigger wheel before we grow.
_GROW_AFTER = 64

#: Precomputed per-slot masks so the hot path never re-materialises
#: ``1 << slot`` / ``~(1 << slot)`` big-ints.
_BIT = [1 << s for s in range(_WHEEL_MAX)]
_NBIT = [~(1 << s) for s in range(_WHEEL_MAX)]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (bad yields, deadlock)."""


class Process:
    """Handle for a spawned generator process.

    The handle doubles as a join target: other processes can ``yield proc``
    to wait for completion, and :attr:`result` carries the generator's
    return value afterwards.
    """

    __slots__ = ("_sim", "_gen", "name", "finished", "result", "_joiners")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self._joiners: list[Process] = []

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"

    def _add_joiner(self, proc: "Process") -> None:
        if self.finished:
            raise SimulationError("joining a finished process must be immediate")
        self._joiners.append(proc)

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        ready = self._sim._ready
        if result is None:
            ready.extend(joiners)
        else:
            for joiner in joiners:
                ready.append((joiner, result))


class Simulator:
    """Cycle-accurate event loop.

    Time is an integer cycle count.  All scheduling is deterministic:
    events at the same cycle run in insertion order (the wheel buckets
    preserve it structurally; the overflow heap carries explicit sequence
    numbers), so simulations are exactly reproducible.
    """

    def __init__(self) -> None:
        self._now = 0
        #: Tie-break counter for the overflow heap only; wheel buckets
        #: need none because insertion order is execution order.
        self._seq = 0
        #: Far-future overflow: ``(time, seq, record)`` heap entries for
        #: delays beyond the wheel horizon.  ``seq`` is unique, so the
        #: heap never compares records.
        self._queue: list = []
        #: Current-cycle records in execution order.  A record is a bare
        #: :class:`Process` (send ``None``), a ``(proc, payload)`` tuple
        #: (send ``payload``), or a bare callable (invoke).
        self._ready: deque = deque()
        #: The timing wheel: ``_wheel[t & _mask]`` is the bucket for cycle
        #: ``t``; ``_occ`` has bit ``s`` set iff bucket ``s`` is non-empty.
        self._wheel: list = [[] for _ in range(_WHEEL_SIZE)]
        self._wheel_size = _WHEEL_SIZE
        self._mask = _WHEEL_SIZE - 1
        self._occ = 0
        #: Observed-delay feedback for adaptive sizing: count and max of
        #: heap inserts that a ``_WHEEL_MAX`` wheel would have absorbed.
        self._far_fits = 0
        self._far_max = 0
        self._live_processes = 0
        #: Cumulative events executed / wall-clock seconds spent inside
        #: :meth:`run` — the raw material for the simcore perf harness.
        self.events_executed = 0
        self.run_wall_seconds = 0.0
        #: Queued *utility* callbacks (watchdog checks, fault tickers) —
        #: bookkeeping they maintain themselves so each can tell whether
        #: any *model* events remain (:attr:`pending_events` minus this)
        #: and stop re-arming instead of keeping each other alive.
        self.utility_ticks = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def live_processes(self) -> int:
        """Number of spawned processes that have not finished."""
        return self._live_processes

    @property
    def pending_events(self) -> int:
        """Events queued (wheel + overflow heap + same-cycle deque).
        Zero with live processes remaining means every one of them is
        blocked on a handshake that can never fire — the deadlock
        signature the watchdog reports on.  The wheel population is
        summed lazily; callers are diagnostic (watchdog ticks), not the
        per-event hot path."""
        count = len(self._queue) + len(self._ready)
        if self._occ:
            count += sum(map(len, self._wheel))
        return count

    @property
    def model_events(self) -> int:
        """Pending events that belong to the *model* — everything except
        the self-rescheduling utility ticks.  The re-arm condition for
        those ticks: once this hits zero the run is over (or deadlocked)
        and ticking on would keep the queue alive artificially."""
        return self.pending_events - self.utility_ticks

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` cycles (0 = later this cycle)."""
        if delay:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            if delay <= self._wheel_size:
                slot = (self._now + delay) & self._mask
                self._wheel[slot].append(callback)
                self._occ |= _BIT[slot]
            else:
                heappush(self._queue, (self._now + delay, self._seq, callback))
                self._seq += 1
                if delay <= _WHEEL_MAX:
                    self._far_fits += 1
                    if delay > self._far_max:
                        self._far_max = delay
        else:
            self._ready.append(callback)

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a process and start it this cycle."""
        proc = Process(self, gen, name)
        self._live_processes += 1
        self._ready.append(proc)
        return proc

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when simulated time would pass
        ``until``, or after ``max_events`` events (a runaway-model backstop).
        Returns the final simulation time; when ``until`` is given the
        clock always ends at ``until``, whether or not the queue drained
        before reaching it.
        """
        if max_events is not None:
            return self._run_bounded(until, max_events)
        queue = self._queue
        ready = self._ready
        wheel = self._wheel
        mask = self._mask
        size = self._wheel_size
        popleft = ready.popleft
        append = ready.append
        now = self._now
        events = 0
        # Occupancy bits set by the inline wheel inserts below are
        # accumulated locally and merged when the cycle drains — bits
        # only ever get *added* during a cycle (schedule/_dispatch OR
        # their own bits straight into ``_occ``), so the merge is safe,
        # and the ``finally`` flushes stragglers if a model exception
        # (or an early ``until`` return) interrupts the batch.
        occ_add = 0
        start = _walltime.perf_counter()
        try:
            while True:
                while ready:
                    rec = popleft()
                    events += 1
                    cls = rec.__class__
                    if cls is Process:
                        proc, payload = rec, None
                    elif cls is tuple:
                        proc, payload = rec
                    else:
                        rec()
                        continue
                    # Inlined generator step: the per-event hot path.
                    try:
                        yielded = proc._gen.send(payload)
                    except StopIteration as stop:
                        self._live_processes -= 1
                        proc._finish(stop.value)
                    else:
                        if yielded.__class__ is int:
                            if 0 < yielded <= size:
                                # Bit-set only on the empty->occupied edge;
                                # busy buckets skip the big-int OR entirely.
                                slot = (now + yielded) & mask
                                lst = wheel[slot]
                                if not lst:
                                    occ_add |= _BIT[slot]
                                lst.append(proc)
                            elif yielded == 0:
                                append(proc)
                            elif yielded > 0:
                                heappush(queue, (now + yielded, self._seq, proc))
                                self._seq += 1
                                if yielded <= _WHEEL_MAX:
                                    self._far_fits += 1
                                    if yielded > self._far_max:
                                        self._far_max = yielded
                            else:
                                raise SimulationError(
                                    f"cannot schedule into the past "
                                    f"(delay={yielded})")
                        else:
                            self._dispatch(proc, yielded)
                # This cycle is drained: advance the clock to the next
                # pending timestamp across the wheel and the overflow heap.
                occ = self._occ | occ_add
                occ_add = 0
                self._occ = occ
                if not occ:
                    if self._far_fits >= _GROW_AFTER and size < _WHEEL_MAX:
                        # The wheel is momentarily empty — the only safe
                        # point to resize, since nothing needs re-slotting.
                        size = self._grow()
                        wheel = self._wheel
                        mask = self._mask
                    if not queue:
                        break
                    time = queue[0][0]
                    wheel_due = False
                else:
                    start_slot = (now + 1) & mask
                    hi = occ >> start_slot
                    if hi:
                        wt = now + 1 + ((hi & -hi).bit_length() - 1)
                    else:
                        wt = (now + 1 + size - start_slot
                              + ((occ & -occ).bit_length() - 1))
                    if queue:
                        ht = queue[0][0]
                        time = ht if ht <= wt else wt
                    else:
                        time = wt
                    wheel_due = wt == time
                if until is not None and time > until:
                    self._now = until
                    return until
                self._now = now = time
                # Heap records drain first: at equal timestamps they were
                # enqueued strictly earlier than any wheel record (their
                # delay exceeded the horizon, which never shrinks), so
                # this order is exactly the seed engine's seq order.
                while queue and queue[0][0] == time:
                    append(heappop(queue)[2])
                if wheel_due:
                    # Records are copied out and the bucket list is kept
                    # for reuse — no per-cycle list allocation.
                    slot = time & mask
                    lst = wheel[slot]
                    ready.extend(lst)
                    lst.clear()
                    self._occ = occ & _NBIT[slot]
        finally:
            if occ_add:
                self._occ |= occ_add
            self.events_executed += events
            self.run_wall_seconds += _walltime.perf_counter() - start
        if until is not None and until > self._now:
            # The queue drained before the horizon: the clock still
            # advances to it, matching the early-stop path above.
            self._now = until
        return self._now

    def _run_bounded(self, until: Optional[int], max_events: int) -> int:
        """The instrumented run loop: per-event ``max_events`` accounting.

        Kept out of :meth:`run` so plain runs never pay for the backstop
        check and ``run_wall_seconds`` stays an honest model-time meter.
        """
        ready = self._ready
        events = 0
        start = _walltime.perf_counter()
        try:
            while True:
                if not ready:
                    time = self._next_time()
                    if time is None:
                        break
                    if until is not None and time > until:
                        self._now = until
                        return until
                    self._now = time
                    self._drain_into_ready(time)
                rec = ready.popleft()
                events += 1
                cls = rec.__class__
                if cls is Process:
                    self._step(rec, None)
                elif cls is tuple:
                    self._step(rec[0], rec[1])
                else:
                    rec()
                if events >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self._now}")
        finally:
            self.events_executed += events
            self.run_wall_seconds += _walltime.perf_counter() - start
        if until is not None and until > self._now:
            self._now = until
        return self._now

    # -- queue plumbing ----------------------------------------------------

    def _next_time(self) -> Optional[int]:
        """The next pending timestamp across wheel and heap, or None."""
        occ = self._occ
        wt = None
        if occ:
            start_slot = (self._now + 1) & self._mask
            hi = occ >> start_slot
            if hi:
                wt = self._now + 1 + ((hi & -hi).bit_length() - 1)
            else:
                wt = (self._now + 1 + self._wheel_size - start_slot
                      + ((occ & -occ).bit_length() - 1))
        if self._queue:
            ht = self._queue[0][0]
            return ht if wt is None or ht <= wt else wt
        return wt

    def _drain_into_ready(self, time: int) -> None:
        """Move every record due at ``time`` into the ready deque,
        heap records first (see the ordering note in :meth:`run`)."""
        queue = self._queue
        ready = self._ready
        while queue and queue[0][0] == time:
            ready.append(heappop(queue)[2])
        occ = self._occ
        if occ:
            slot = time & self._mask
            if occ & _BIT[slot]:
                lst = self._wheel[slot]
                ready.extend(lst)
                lst.clear()
                self._occ = occ & _NBIT[slot]

    def _grow(self) -> int:
        """Double the (empty) wheel toward the observed delay ceiling.

        Called only when the wheel is empty, so no record ever needs
        re-slotting; records already in the overflow heap stay there,
        which keeps the heap-before-bucket tie-break valid (the horizon
        only ever grows).
        """
        target = 1 << max(self._far_max - 1, 1).bit_length()
        size = min(_WHEEL_MAX, max(self._wheel_size * 2, target))
        self._wheel = [[] for _ in range(size)]
        self._wheel_size = size
        self._mask = size - 1
        self._far_fits = 0
        self._far_max = 0
        return size

    # -- process machinery -------------------------------------------------

    def _resume(self, proc: Process, value: Any) -> None:
        self._ready.append(proc if value is None else (proc, value))

    def _step(self, proc: Process, payload: Any) -> None:
        """One generator step, out of line (bounded-run path)."""
        try:
            yielded = proc._gen.send(payload)
        except StopIteration as stop:
            self._live_processes -= 1
            proc._finish(stop.value)
        else:
            self._dispatch(proc, yielded)

    def _dispatch(self, proc: Process, yielded: Any) -> None:
        """Route a yield from the out-of-line paths (bounded runs, int
        subclasses such as bool, Signals, joins)."""
        if isinstance(yielded, int):
            if yielded < 0:
                raise SimulationError(f"cannot schedule into the past (delay={yielded})")
            if yielded:
                if yielded <= self._wheel_size:
                    slot = (self._now + yielded) & self._mask
                    self._wheel[slot].append(proc)
                    self._occ |= _BIT[slot]
                else:
                    heappush(self._queue, (self._now + yielded, self._seq, proc))
                    self._seq += 1
                    if yielded <= _WHEEL_MAX:
                        self._far_fits += 1
                        if yielded > self._far_max:
                            self._far_max = yielded
            else:
                self._ready.append(proc)
        elif hasattr(yielded, "_add_waiter"):  # Signal-like
            if yielded.fired:
                self._resume(proc, yielded.value)
            else:
                yielded._add_waiter(proc)
        elif isinstance(yielded, Process):
            if yielded.finished:
                self._resume(proc, yielded.result)
            else:
                yielded._add_joiner(proc)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported value {yielded!r}; "
                "yield an int delay, a Signal, or a Process"
            )
