"""Seeded, replayable fault injection for the full SoC stack.

The paper's robustness story — decoupling survives queue-full pressure,
TLB shootdowns, page faults, and OS noise without deadlocking or
corrupting results (§3.3 deadlock freedom, §3.5 MMU co-design, §4 OS
events) — is exercised here by *injecting* those events into otherwise
healthy runs:

- :class:`PortDelayFault` — random extra latency on matching Port
  transactions (NoC congestion, arbitration jitter).  Aimed at MAPLE's
  MMIO ports it delays consume acks so producers outrun consumers and
  queues run full (queue-full pressure).
- :class:`DramBurstFault` — bursty DRAM: time is cut into windows and a
  seeded hash marks some windows "bursty", adding a fixed penalty to
  every access inside them (row-buffer storms, refresh).
- :class:`ShootdownFault` — periodic forced TLB shootdowns of hot pages,
  broadcast to core TLBs *and* MAPLE's MMU.
- :class:`PageEvictFault` — periodic soft page eviction: a resident data
  page is unmapped as if swapped out, so the next touch (core or MAPLE
  walker) takes the full fault path mid-kernel; the OS restores the same
  frame, so contents survive.
- :class:`PreemptFault` — spurious preemptions: a randomly chosen core
  pays a context-switch penalty on its next memory request.

Everything is driven by one integer seed.  A :class:`FaultPlan` is a
frozen, picklable value object; installing the same plan on the same
configuration replays the exact same fault sequence, because per-port
RNG streams are derived from ``(seed, port name)`` and burst windows
from ``(seed, window index)`` — independent of event interleaving — and
the simulator itself is deterministic.

With no plan installed every hook stays ``None`` and the timing path is
bit-identical to a fault-free build (checked by the differential fuzz
gate).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import asdict, dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.port import Message, Port

#: Hash scale for window/probability decisions: crc32 of the key, mapped
#: into [0, 1) by dividing by 2**32.
_HASH_SCALE = float(1 << 32)


def _keyed_fraction(*parts: Any) -> float:
    """Deterministic hash of ``parts`` mapped into [0, 1).

    Unlike :func:`hash`, this is stable across processes (no string-hash
    randomization), which the orchestrator's parallel == serial guarantee
    depends on.
    """
    key = "\x1f".join(str(part) for part in parts).encode()
    return zlib.crc32(key) / _HASH_SCALE


@dataclass(frozen=True)
class PortDelayFault:
    """Random extra cycles on matching port transactions."""

    port_pattern: str = "*"
    kind_pattern: str = "*"
    rate: float = 0.05       # probability a matching transaction is hit
    min_cycles: int = 1
    max_cycles: int = 100

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")
        if not 0 < self.min_cycles <= self.max_cycles:
            raise ValueError("need 0 < min_cycles <= max_cycles")


@dataclass(frozen=True)
class DramBurstFault:
    """Bursty DRAM latency: some time windows pay ``extra`` cycles."""

    period: int = 5000       # window length in cycles
    rate: float = 0.3        # fraction of windows that are bursty
    extra: int = 200         # penalty per access inside a bursty window

    def __post_init__(self):
        if self.period < 1 or self.extra < 1:
            raise ValueError("period and extra must be positive")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")


@dataclass(frozen=True)
class ShootdownFault:
    """Forced TLB shootdown of a random mapped page every ``cycles``."""

    cycles: int = 10000

    def __post_init__(self):
        if self.cycles < 1:
            raise ValueError("shootdown interval must be positive")


@dataclass(frozen=True)
class PageEvictFault:
    """Soft-evict a random resident page every ``cycles`` (swap model)."""

    cycles: int = 20000

    def __post_init__(self):
        if self.cycles < 1:
            raise ValueError("eviction interval must be positive")


@dataclass(frozen=True)
class PreemptFault:
    """A random core pays a context-switch ``cost`` every ``cycles``."""

    cycles: int = 15000
    cost: int = 2000

    def __post_init__(self):
        if self.cycles < 1 or self.cost < 1:
            raise ValueError("preemption interval and cost must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of every fault to inject.

    Frozen and built from primitives, so plans hash, pickle (across the
    orchestrator's worker processes), and compare by value.
    """

    seed: int = 0
    port_delays: Tuple[PortDelayFault, ...] = ()
    dram_burst: Optional[DramBurstFault] = None
    shootdown: Optional[ShootdownFault] = None
    evict: Optional[PageEvictFault] = None
    preempt: Optional[PreemptFault] = None

    def is_empty(self) -> bool:
        return not (self.port_delays or self.dram_burst or self.shootdown
                    or self.evict or self.preempt)

    def stable_dict(self) -> Dict[str, Any]:
        """JSON-able form with deterministic content (cache keys)."""
        return asdict(self)

    def describe(self) -> str:
        parts: List[str] = [f"seed={self.seed}"]
        for fault in self.port_delays:
            parts.append(
                f"delay[{fault.port_pattern}/{fault.kind_pattern} "
                f"p={fault.rate:g} {fault.min_cycles}-{fault.max_cycles}cyc]")
        if self.dram_burst:
            parts.append(f"dram[{self.dram_burst.period}cyc windows "
                         f"p={self.dram_burst.rate:g} "
                         f"+{self.dram_burst.extra}cyc]")
        if self.shootdown:
            parts.append(f"shootdown[every {self.shootdown.cycles}cyc]")
        if self.evict:
            parts.append(f"evict[every {self.evict.cycles}cyc]")
        if self.preempt:
            parts.append(f"preempt[every {self.preempt.cycles}cyc "
                         f"cost={self.preempt.cost}]")
        return " ".join(parts)

    @classmethod
    def random(cls, seed: int) -> "FaultPlan":
        """A random mix of faults, fully determined by ``seed``."""
        rng = random.Random(seed ^ 0x5EED_FA17)
        port_delays = []
        for _ in range(rng.randint(1, 3)):
            lo = rng.randint(1, 50)
            port_delays.append(PortDelayFault(
                port_pattern=rng.choice(
                    ["*", "core*.mem", "maple*.mem",
                     "maple*.mmio.dispatch"]),
                kind_pattern=rng.choice(
                    ["*", "mmio_*", "mmio_load", "dram_load", "ptw_read",
                     "load", "store"]),
                rate=rng.uniform(0.01, 0.2),
                min_cycles=lo,
                max_cycles=lo + rng.randint(0, 350),
            ))
        dram = shoot = evict = preempt = None
        if rng.random() < 0.5:
            dram = DramBurstFault(period=rng.randint(2000, 20000),
                                  rate=rng.uniform(0.1, 0.6),
                                  extra=rng.randint(50, 400))
        if rng.random() < 0.4:
            shoot = ShootdownFault(cycles=rng.randint(3000, 30000))
        if rng.random() < 0.4:
            evict = PageEvictFault(cycles=rng.randint(5000, 50000))
        if rng.random() < 0.4:
            preempt = PreemptFault(cycles=rng.randint(4000, 40000),
                                   cost=rng.randint(500, 5000))
        return cls(seed=seed, port_delays=tuple(port_delays),
                   dram_burst=dram, shootdown=shoot, evict=evict,
                   preempt=preempt)


class FaultInjector:
    """Installs a :class:`FaultPlan` on a built SoC and logs every hit.

    ``soc`` is duck-typed (needs ``sim``, ``ports``, ``memsys``, ``os``,
    ``cores``); ``aspace`` is the process whose pages shootdowns and
    evictions target.  :meth:`install` arms the hooks; :meth:`finish`
    removes them and swaps evicted pages back in so functional result
    checks see a fully resident address space.
    """

    def __init__(self, soc, aspace, plan: FaultPlan):
        self._soc = soc
        self._aspace = aspace
        self.plan = plan
        #: ``(cycle, kind, detail)`` log of every fault that actually hit.
        self.events: List[Tuple[int, str, str]] = []
        self._installed = False
        self._stopped = False
        self._hooked_ports: List[Port] = []
        #: core port name -> pending context-switch cost.
        self._pending_preempts: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------------

    def install(self) -> "FaultInjector":
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        self._soc.fault_injector = self
        plan = self.plan
        for port in self._soc.ports.ports:
            hook = self._build_port_hook(port)
            if hook is not None:
                if port.inject is not None:
                    raise RuntimeError(f"port {port.name} already has an "
                                       "injection hook")
                port.inject = hook
                self._hooked_ports.append(port)
        if plan.dram_burst is not None:
            self._soc.memsys.dram.inject = self._dram_inject
        if plan.shootdown is not None:
            self._start_ticker("shootdown", plan.shootdown.cycles,
                               self._do_shootdown)
        if plan.evict is not None:
            self._start_ticker("evict", plan.evict.cycles, self._do_evict)
        if plan.preempt is not None:
            self._start_ticker("preempt", plan.preempt.cycles,
                               self._do_preempt)
        return self

    def finish(self) -> int:
        """Disarm all hooks; returns the number of pages swapped back in."""
        self._stopped = True
        for port in self._hooked_ports:
            port.inject = None
        self._hooked_ports.clear()
        if self.plan.dram_burst is not None:
            self._soc.memsys.dram.inject = None
        restored = self._soc.os.restore_evicted()
        if restored:
            self.events.append((self._soc.sim.now, "restore",
                                f"{restored} pages swapped back in"))
        return restored

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.finish()

    # -- port delays + preemption ---------------------------------------------

    def _build_port_hook(self, port: Port):
        """Compose the delay faults (and preemption tax) hitting ``port``."""
        matching = [fault for fault in self.plan.port_delays
                    if fnmatchcase(port.name, fault.port_pattern)]
        preemptable = (self.plan.preempt is not None
                       and port.name.startswith("core")
                       and port.name.endswith(".mem"))
        if not matching and not preemptable:
            return None
        # One private stream per (plan seed, port): delay draws on one
        # port never perturb another port's sequence.
        rng = random.Random(f"{self.plan.seed}:{port.name}")
        events = self.events
        sim = self._soc.sim
        pending = self._pending_preempts
        name = port.name

        def inject(port: Port, msg: Message) -> int:
            extra = 0
            if preemptable:
                cost = pending.pop(name, 0)
                if cost:
                    extra += cost
                    events.append((sim.now, "preempt",
                                   f"{name} pays {cost} cycles"))
            for fault in matching:
                if (fnmatchcase(msg.kind, fault.kind_pattern)
                        and rng.random() < fault.rate):
                    delay = rng.randint(fault.min_cycles, fault.max_cycles)
                    extra += delay
                    events.append((sim.now, "port_delay",
                                   f"{name}/{msg.kind} txn#{msg.txn} "
                                   f"+{delay} cycles"))
            return extra

        return inject

    # -- DRAM bursts ------------------------------------------------------------

    def _dram_inject(self, line_addr: int, write: bool) -> int:
        burst = self.plan.dram_burst
        window = self._soc.sim.now // burst.period
        # The window's fate is a pure function of (seed, window): no
        # matter how accesses interleave, replay sees the same bursts.
        if _keyed_fraction("dram", self.plan.seed, window) < burst.rate:
            self.events.append((self._soc.sim.now, "dram_burst",
                                f"line {line_addr:#x} +{burst.extra} cycles"))
            return burst.extra
        return 0

    # -- periodic OS-event tickers -----------------------------------------------

    def _start_ticker(self, name: str, period: int, action) -> None:
        """Fire ``action`` every ``period`` cycles while the run is live.

        The tick re-arms only while *model* events remain (utility ticks
        — its own, other tickers', the watchdog's — excluded), so a
        finished or deadlocked simulation is never kept alive by the
        injector itself.
        """
        sim = self._soc.sim
        tick_index = [0]

        def tick():
            sim.utility_ticks -= 1
            if self._stopped:
                return
            tick_index[0] += 1
            action(tick_index[0])
            if getattr(sim, "model_events", 0) > 0:
                sim.utility_ticks += 1
                sim.schedule(period, tick)

        sim.utility_ticks += 1
        sim.schedule(period, tick)

    def _do_shootdown(self, tick: int) -> None:
        vaddr = self._pick_data_page("shootdown", tick)
        if vaddr is None:
            return
        self._soc.os.shootdown(vaddr)
        self.events.append((self._soc.sim.now, "shootdown",
                            f"page {vaddr:#x}"))

    def _do_evict(self, tick: int) -> None:
        vaddr = self._pick_data_page("evict", tick, resident=True)
        if vaddr is None:
            return
        if self._soc.os.evict_page(self._aspace, vaddr):
            self.events.append((self._soc.sim.now, "evict",
                                f"page {vaddr:#x}"))

    def _do_preempt(self, tick: int) -> None:
        cores = self._soc.cores
        if not cores:
            return
        index = int(_keyed_fraction("preempt", self.plan.seed, tick)
                    * len(cores))
        self._pending_preempts[f"core{cores[index].core_id}.mem"] = \
            self.plan.preempt.cost

    def _pick_data_page(self, stream: str, tick: int,
                        resident: bool = False) -> Optional[int]:
        """A deterministic page choice from the process's data VMAs.

        Device (MMIO) mappings are never touched — evicting MAPLE's page
        would model unplugging the device, not an OS event.
        """
        os = self._soc.os
        pages: List[int] = []
        page_size = os.config.page_size
        for vma in self._aspace.vmas:
            start_paddr = self._aspace.page_table.lookup(vma.start)
            if start_paddr is not None and start_paddr >= os.MMIO_BASE:
                continue
            pages.extend(range(vma.start, vma.end, page_size))
        if not pages:
            return None
        fraction = _keyed_fraction(stream, self.plan.seed, tick)
        index = int(fraction * len(pages))
        if not resident:
            return pages[index]
        # Walk forward until a resident page turns up (bounded scan).
        for offset in range(len(pages)):
            vaddr = pages[(index + offset) % len(pages)]
            paddr = self._aspace.page_table.lookup(vaddr)
            if paddr is not None and paddr < os.MMIO_BASE:
                return vaddr
        return None
