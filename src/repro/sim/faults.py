"""Seeded, replayable fault injection for the full SoC stack.

The paper's robustness story — decoupling survives queue-full pressure,
TLB shootdowns, page faults, and OS noise without deadlocking or
corrupting results (§3.3 deadlock freedom, §3.5 MMU co-design, §4 OS
events) — is exercised here by *injecting* those events into otherwise
healthy runs:

- :class:`PortDelayFault` — random extra latency on matching Port
  transactions (NoC congestion, arbitration jitter).  Aimed at MAPLE's
  MMIO ports it delays consume acks so producers outrun consumers and
  queues run full (queue-full pressure).
- :class:`DramBurstFault` — bursty DRAM: time is cut into windows and a
  seeded hash marks some windows "bursty", adding a fixed penalty to
  every access inside them (row-buffer storms, refresh).
- :class:`ShootdownFault` — periodic forced TLB shootdowns of hot pages,
  broadcast to core TLBs *and* MAPLE's MMU.
- :class:`PageEvictFault` — periodic soft page eviction: a resident data
  page is unmapped as if swapped out, so the next touch (core or MAPLE
  walker) takes the full fault path mid-kernel; the OS restores the same
  frame, so contents survive.
- :class:`PreemptFault` — spurious preemptions: a randomly chosen core
  pays a context-switch penalty on its next memory request.

The data-integrity fault domain adds *corruption* on top of timing and
OS noise:

- :class:`PortDropFault` / :class:`PortDuplicateFault` /
  :class:`PortCorruptFault` — lossy-link faults on matching Port
  transactions: a traversal of the request or response leg is dropped,
  delivered twice, or has one payload bit flipped.  Reliable ports
  (``reliable=True``) detect and retransmit; unprotected ports hang,
  re-run side effects, or silently deliver the mangled value.
- :class:`DramBitFlipFault` — per-read DRAM bit flips (single or
  double).  With ECC armed, single flips are corrected and double flips
  poison the data; without ECC every flip is silent.
- :class:`QueueSlotFlipFault` — periodic bit flips in valid MAPLE
  scratchpad slots (the SRAM analogue), under the same ECC policy.

Everything is driven by one integer seed.  A :class:`FaultPlan` is a
frozen, picklable value object; installing the same plan on the same
configuration replays the exact same fault sequence, because per-port
RNG streams are derived from ``(seed, port name)`` and burst windows
from ``(seed, window index)`` — independent of event interleaving — and
the simulator itself is deterministic.

With no plan installed every hook stays ``None`` and the timing path is
bit-identical to a fault-free build (checked by the differential fuzz
gate).
"""

from __future__ import annotations

import random
import struct
import zlib
from dataclasses import asdict, dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.port import Message, Port

#: Hash scale for window/probability decisions: crc32 of the key, mapped
#: into [0, 1) by dividing by 2**32.
_HASH_SCALE = float(1 << 32)


def _keyed_fraction(*parts: Any) -> float:
    """Deterministic hash of ``parts`` mapped into [0, 1).

    Unlike :func:`hash`, this is stable across processes (no string-hash
    randomization), which the orchestrator's parallel == serial guarantee
    depends on.
    """
    key = "\x1f".join(str(part) for part in parts).encode()
    return zlib.crc32(key) / _HASH_SCALE


def corrupt_value(value: Any, leaf_fraction: float, bit_fraction: float) -> Any:
    """Flip one bit of one numeric leaf of ``value``, deterministically.

    ``leaf_fraction`` picks which leaf of a tuple/list payload is hit,
    ``bit_fraction`` which bit of it.  Integers flip a low-order-to-62nd
    bit; floats flip one bit of their IEEE-754 image (possibly yielding
    inf/nan — real bit flips do).  Values with no numeric leaf pass
    through unchanged (the corruption physically hit dead bits)."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ (1 << int(bit_fraction * 63))
    if isinstance(value, float):
        bits = struct.unpack("<Q", struct.pack("<d", value))[0]
        bits ^= 1 << int(bit_fraction * 64)
        return struct.unpack("<d", struct.pack("<Q", bits))[0]
    if isinstance(value, (tuple, list)):
        items = list(value)
        hittable = [i for i, item in enumerate(items)
                    if isinstance(item, (bool, int, float, tuple, list))
                    or hasattr(item, "item")]
        if not hittable:
            return value
        index = hittable[min(int(leaf_fraction * len(hittable)),
                             len(hittable) - 1)]
        items[index] = corrupt_value(items[index],
                                     (leaf_fraction * 7919.0) % 1.0,
                                     bit_fraction)
        return tuple(items) if isinstance(value, tuple) else items
    if hasattr(value, "item"):  # numpy scalar
        return corrupt_value(value.item(), leaf_fraction, bit_fraction)
    return value


@dataclass(frozen=True)
class PortDelayFault:
    """Random extra cycles on matching port transactions."""

    port_pattern: str = "*"
    kind_pattern: str = "*"
    rate: float = 0.05       # probability a matching transaction is hit
    min_cycles: int = 1
    max_cycles: int = 100

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")
        if not 0 < self.min_cycles <= self.max_cycles:
            raise ValueError("need 0 < min_cycles <= max_cycles")


@dataclass(frozen=True)
class DramBurstFault:
    """Bursty DRAM latency: some time windows pay ``extra`` cycles."""

    period: int = 5000       # window length in cycles
    rate: float = 0.3        # fraction of windows that are bursty
    extra: int = 200         # penalty per access inside a bursty window

    def __post_init__(self):
        if self.period < 1 or self.extra < 1:
            raise ValueError("period and extra must be positive")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")


@dataclass(frozen=True)
class ShootdownFault:
    """Forced TLB shootdown of a random mapped page every ``cycles``."""

    cycles: int = 10000

    def __post_init__(self):
        if self.cycles < 1:
            raise ValueError("shootdown interval must be positive")


@dataclass(frozen=True)
class PageEvictFault:
    """Soft-evict a random resident page every ``cycles`` (swap model)."""

    cycles: int = 20000

    def __post_init__(self):
        if self.cycles < 1:
            raise ValueError("eviction interval must be positive")


@dataclass(frozen=True)
class PreemptFault:
    """A random core pays a context-switch ``cost`` every ``cycles``."""

    cycles: int = 15000
    cost: int = 2000

    def __post_init__(self):
        if self.cycles < 1 or self.cost < 1:
            raise ValueError("preemption interval and cost must be positive")


_CHANNEL_LEGS = ("req", "resp", "both")


@dataclass(frozen=True)
class PortDropFault:
    """Matching port transfers are lost in flight at ``rate``."""

    port_pattern: str = "*"
    kind_pattern: str = "*"
    rate: float = 0.02
    leg: str = "both"        # which traversal can be lost: req/resp/both

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")
        if self.leg not in _CHANNEL_LEGS:
            raise ValueError(f"leg {self.leg!r} not in {_CHANNEL_LEGS}")


@dataclass(frozen=True)
class PortDuplicateFault:
    """Matching port transfers are delivered twice at ``rate``."""

    port_pattern: str = "*"
    kind_pattern: str = "*"
    rate: float = 0.02
    leg: str = "both"

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")
        if self.leg not in _CHANNEL_LEGS:
            raise ValueError(f"leg {self.leg!r} not in {_CHANNEL_LEGS}")


@dataclass(frozen=True)
class PortCorruptFault:
    """One payload bit of matching port transfers flips at ``rate``."""

    port_pattern: str = "*"
    kind_pattern: str = "*"
    rate: float = 0.02
    leg: str = "both"

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")
        if self.leg not in _CHANNEL_LEGS:
            raise ValueError(f"leg {self.leg!r} not in {_CHANNEL_LEGS}")


@dataclass(frozen=True)
class DramBitFlipFault:
    """Each DRAM read flips bits at ``rate``; a ``double_rate`` fraction
    of hits are double-bit flips (uncorrectable under SECDED)."""

    rate: float = 0.001
    double_rate: float = 0.25

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")
        if not 0.0 <= self.double_rate <= 1.0:
            raise ValueError(f"double_rate {self.double_rate} outside [0, 1]")


@dataclass(frozen=True)
class QueueSlotFlipFault:
    """Every ``cycles``, flip bits in one valid scratchpad slot; a
    ``double_rate`` fraction of hits are double-bit flips."""

    cycles: int = 10000
    double_rate: float = 0.25

    def __post_init__(self):
        if self.cycles < 1:
            raise ValueError("queue-flip interval must be positive")
        if not 0.0 <= self.double_rate <= 1.0:
            raise ValueError(f"double_rate {self.double_rate} outside [0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of every fault to inject.

    Frozen and built from primitives, so plans hash, pickle (across the
    orchestrator's worker processes), and compare by value.
    """

    seed: int = 0
    port_delays: Tuple[PortDelayFault, ...] = ()
    dram_burst: Optional[DramBurstFault] = None
    shootdown: Optional[ShootdownFault] = None
    evict: Optional[PageEvictFault] = None
    preempt: Optional[PreemptFault] = None
    # Data-integrity fault domain (all default-off, so existing plans —
    # including every FaultPlan.random drawn by the PR-4 sweep — are
    # corruption-free and replay unchanged).
    port_drops: Tuple[PortDropFault, ...] = ()
    port_dups: Tuple[PortDuplicateFault, ...] = ()
    port_corrupts: Tuple[PortCorruptFault, ...] = ()
    dram_flips: Optional[DramBitFlipFault] = None
    queue_flips: Optional[QueueSlotFlipFault] = None

    def is_empty(self) -> bool:
        return not (self.port_delays or self.dram_burst or self.shootdown
                    or self.evict or self.preempt or self.port_drops
                    or self.port_dups or self.port_corrupts
                    or self.dram_flips or self.queue_flips)

    def has_corruption(self) -> bool:
        """True when the plan injects data-integrity faults (not just
        timing/OS noise)."""
        return bool(self.port_drops or self.port_dups or self.port_corrupts
                    or self.dram_flips or self.queue_flips)

    def stable_dict(self) -> Dict[str, Any]:
        """JSON-able form with deterministic content (cache keys)."""
        return asdict(self)

    def describe(self) -> str:
        parts: List[str] = [f"seed={self.seed}"]
        for fault in self.port_delays:
            parts.append(
                f"delay[{fault.port_pattern}/{fault.kind_pattern} "
                f"p={fault.rate:g} {fault.min_cycles}-{fault.max_cycles}cyc]")
        if self.dram_burst:
            parts.append(f"dram[{self.dram_burst.period}cyc windows "
                         f"p={self.dram_burst.rate:g} "
                         f"+{self.dram_burst.extra}cyc]")
        if self.shootdown:
            parts.append(f"shootdown[every {self.shootdown.cycles}cyc]")
        if self.evict:
            parts.append(f"evict[every {self.evict.cycles}cyc]")
        if self.preempt:
            parts.append(f"preempt[every {self.preempt.cycles}cyc "
                         f"cost={self.preempt.cost}]")
        for fault in self.port_drops:
            parts.append(f"drop[{fault.port_pattern}/{fault.kind_pattern} "
                         f"p={fault.rate:g} {fault.leg}]")
        for fault in self.port_dups:
            parts.append(f"dup[{fault.port_pattern}/{fault.kind_pattern} "
                         f"p={fault.rate:g} {fault.leg}]")
        for fault in self.port_corrupts:
            parts.append(f"corrupt[{fault.port_pattern}/{fault.kind_pattern} "
                         f"p={fault.rate:g} {fault.leg}]")
        if self.dram_flips:
            parts.append(f"dramflip[p={self.dram_flips.rate:g} "
                         f"double={self.dram_flips.double_rate:g}]")
        if self.queue_flips:
            parts.append(f"queueflip[every {self.queue_flips.cycles}cyc "
                         f"double={self.queue_flips.double_rate:g}]")
        return " ".join(parts)

    @classmethod
    def random(cls, seed: int) -> "FaultPlan":
        """A random mix of faults, fully determined by ``seed``."""
        rng = random.Random(seed ^ 0x5EED_FA17)
        port_delays = []
        for _ in range(rng.randint(1, 3)):
            lo = rng.randint(1, 50)
            port_delays.append(PortDelayFault(
                port_pattern=rng.choice(
                    ["*", "core*.mem", "maple*.mem",
                     "maple*.mmio.dispatch"]),
                kind_pattern=rng.choice(
                    ["*", "mmio_*", "mmio_load", "dram_load", "ptw_read",
                     "load", "store"]),
                rate=rng.uniform(0.01, 0.2),
                min_cycles=lo,
                max_cycles=lo + rng.randint(0, 350),
            ))
        dram = shoot = evict = preempt = None
        if rng.random() < 0.5:
            dram = DramBurstFault(period=rng.randint(2000, 20000),
                                  rate=rng.uniform(0.1, 0.6),
                                  extra=rng.randint(50, 400))
        if rng.random() < 0.4:
            shoot = ShootdownFault(cycles=rng.randint(3000, 30000))
        if rng.random() < 0.4:
            evict = PageEvictFault(cycles=rng.randint(5000, 50000))
        if rng.random() < 0.4:
            preempt = PreemptFault(cycles=rng.randint(4000, 40000),
                                   cost=rng.randint(500, 5000))
        return cls(seed=seed, port_delays=tuple(port_delays),
                   dram_burst=dram, shootdown=shoot, evict=evict,
                   preempt=preempt)

    @classmethod
    def random_integrity(cls, seed: int,
                         recoverable_only: bool = False) -> "FaultPlan":
        """A random data-integrity plan, fully determined by ``seed``.

        Always injects at least one corruption kind.  With
        ``recoverable_only`` the draw is restricted to faults the armed
        stack survives deterministically: lossy-link faults on reliable
        ports and single-bit (ECC-correctable) flips.  The full draw also
        admits double-bit flips, whose poison the stack must either
        recover from (re-fetch) or convert into a typed error.
        """
        rng = random.Random(seed ^ 0x1D1E_6B17)
        port_patterns = ["*", "core*.mem", "maple*.mem",
                         "maple*.mmio.dispatch", "lima*.mem"]
        kind_patterns = ["*", "mmio_*", "dram_*", "llc_load", "load",
                         "store", "ptw_read"]
        legs = ["req", "resp", "both"]
        drops: List[PortDropFault] = []
        dups: List[PortDuplicateFault] = []
        corrupts: List[PortCorruptFault] = []
        dram = queue = None
        while not (drops or dups or corrupts or dram or queue):
            if rng.random() < 0.5:
                drops.append(PortDropFault(
                    port_pattern=rng.choice(port_patterns),
                    kind_pattern=rng.choice(kind_patterns),
                    rate=rng.uniform(0.005, 0.08),
                    leg=rng.choice(legs)))
            if rng.random() < 0.4:
                dups.append(PortDuplicateFault(
                    port_pattern=rng.choice(port_patterns),
                    kind_pattern=rng.choice(kind_patterns),
                    rate=rng.uniform(0.005, 0.08),
                    leg=rng.choice(legs)))
            if rng.random() < 0.5:
                corrupts.append(PortCorruptFault(
                    port_pattern=rng.choice(port_patterns),
                    kind_pattern=rng.choice(kind_patterns),
                    rate=rng.uniform(0.005, 0.08),
                    leg=rng.choice(legs)))
            if rng.random() < 0.4:
                dram = DramBitFlipFault(
                    rate=rng.uniform(0.0005, 0.01),
                    double_rate=0.0 if recoverable_only
                    else rng.uniform(0.0, 0.5))
            if rng.random() < 0.3:
                queue = QueueSlotFlipFault(
                    cycles=rng.randint(500, 8000),
                    double_rate=0.0 if recoverable_only
                    else rng.uniform(0.0, 0.7))
        return cls(seed=seed, port_drops=tuple(drops), port_dups=tuple(dups),
                   port_corrupts=tuple(corrupts), dram_flips=dram,
                   queue_flips=queue)


class FaultInjector:
    """Installs a :class:`FaultPlan` on a built SoC and logs every hit.

    ``soc`` is duck-typed (needs ``sim``, ``ports``, ``memsys``, ``os``,
    ``cores``); ``aspace`` is the process whose pages shootdowns and
    evictions target.  :meth:`install` arms the hooks; :meth:`finish`
    removes them and swaps evicted pages back in so functional result
    checks see a fully resident address space.
    """

    def __init__(self, soc, aspace, plan: FaultPlan):
        self._soc = soc
        self._aspace = aspace
        self.plan = plan
        #: ``(cycle, kind, detail)`` log of every fault that actually hit.
        self.events: List[Tuple[int, str, str]] = []
        self._installed = False
        self._stopped = False
        self._hooked_ports: List[Port] = []
        self._channel_ports: List[Port] = []
        #: core port name -> pending context-switch cost.
        self._pending_preempts: Dict[str, int] = {}
        #: word address -> number of DRAM reads seen (flip-fate keying).
        self._flip_counts: Dict[int, int] = {}

    # -- lifecycle ------------------------------------------------------------

    def install(self) -> "FaultInjector":
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        self._soc.fault_injector = self
        plan = self.plan
        for port in self._soc.ports.ports:
            hook = self._build_port_hook(port)
            if hook is not None:
                if port.inject is not None:
                    raise RuntimeError(f"port {port.name} already has an "
                                       "injection hook")
                port.inject = hook
                self._hooked_ports.append(port)
            channel = self._build_channel_hook(port)
            if channel is not None:
                if port.channel is not None:
                    raise RuntimeError(f"port {port.name} already has a "
                                       "channel fault hook")
                port.channel = channel
                self._channel_ports.append(port)
        if plan.dram_burst is not None:
            self._soc.memsys.dram.inject = self._dram_inject
        if plan.dram_flips is not None:
            self._soc.memsys.flip = self._dram_flip
        if plan.queue_flips is not None:
            self._start_ticker("queue_flip", plan.queue_flips.cycles,
                               self._do_queue_flip)
        if plan.shootdown is not None:
            self._start_ticker("shootdown", plan.shootdown.cycles,
                               self._do_shootdown)
        if plan.evict is not None:
            self._start_ticker("evict", plan.evict.cycles, self._do_evict)
        if plan.preempt is not None:
            self._start_ticker("preempt", plan.preempt.cycles,
                               self._do_preempt)
        return self

    def finish(self) -> int:
        """Disarm all hooks; returns the number of pages swapped back in."""
        self._stopped = True
        for port in self._hooked_ports:
            port.inject = None
        self._hooked_ports.clear()
        for port in self._channel_ports:
            port.channel = None
        self._channel_ports.clear()
        if self.plan.dram_burst is not None:
            self._soc.memsys.dram.inject = None
        if self.plan.dram_flips is not None:
            self._soc.memsys.flip = None
        restored = self._soc.os.restore_evicted()
        if restored:
            self.events.append((self._soc.sim.now, "restore",
                                f"{restored} pages swapped back in"))
        return restored

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.finish()

    # -- port delays + preemption ---------------------------------------------

    def _build_port_hook(self, port: Port):
        """Compose the delay faults (and preemption tax) hitting ``port``."""
        matching = [fault for fault in self.plan.port_delays
                    if fnmatchcase(port.name, fault.port_pattern)]
        preemptable = (self.plan.preempt is not None
                       and port.name.startswith("core")
                       and port.name.endswith(".mem"))
        if not matching and not preemptable:
            return None
        # One private stream per (plan seed, port): delay draws on one
        # port never perturb another port's sequence.
        rng = random.Random(f"{self.plan.seed}:{port.name}")
        events = self.events
        sim = self._soc.sim
        pending = self._pending_preempts
        name = port.name

        def inject(port: Port, msg: Message) -> int:
            extra = 0
            if preemptable:
                cost = pending.pop(name, 0)
                if cost:
                    extra += cost
                    events.append((sim.now, "preempt",
                                   f"{name} pays {cost} cycles"))
            for fault in matching:
                if (fnmatchcase(msg.kind, fault.kind_pattern)
                        and rng.random() < fault.rate):
                    delay = rng.randint(fault.min_cycles, fault.max_cycles)
                    extra += delay
                    events.append((sim.now, "port_delay",
                                   f"{name}/{msg.kind} txn#{msg.txn} "
                                   f"+{delay} cycles"))
            return extra

        return inject

    # -- lossy-link channel faults ----------------------------------------------

    def _build_channel_hook(self, port: Port):
        """Compose the drop/duplicate/corrupt faults hitting ``port``.

        Returns a ``channel(port, msg, leg, attempt)`` verdict hook for
        the port layer, or ``None`` when no lossy-link fault matches —
        leaving ``port.channel`` unset keeps the fault-free fast path
        (and its bit-identical timing) intact.
        """
        plan = self.plan
        drops = [fault for fault in plan.port_drops
                 if fnmatchcase(port.name, fault.port_pattern)]
        corrupts = [fault for fault in plan.port_corrupts
                    if fnmatchcase(port.name, fault.port_pattern)]
        dups = [fault for fault in plan.port_dups
                if fnmatchcase(port.name, fault.port_pattern)]
        if not (drops or corrupts or dups):
            return None
        # A private stream per (plan seed, port), disjoint from the delay
        # stream, so arming delays never reshuffles corruption fates.
        rng = random.Random(f"{plan.seed}:chan:{port.name}")
        events = self.events
        sim = self._soc.sim
        name = port.name

        def channel(port: Port, msg: Message, leg: str, attempt: int):
            for fault in drops:
                if (fault.leg in ("both", leg)
                        and fnmatchcase(msg.kind, fault.kind_pattern)
                        and rng.random() < fault.rate):
                    events.append((sim.now, "port_drop",
                                   f"{name}/{msg.kind} txn#{msg.txn} "
                                   f"{leg} attempt={attempt}"))
                    return ("drop",)
            for fault in corrupts:
                if (fault.leg in ("both", leg)
                        and fnmatchcase(msg.kind, fault.kind_pattern)
                        and rng.random() < fault.rate):
                    leaf, bit = rng.random(), rng.random()
                    events.append((sim.now, "port_corrupt",
                                   f"{name}/{msg.kind} txn#{msg.txn} "
                                   f"{leg} attempt={attempt} "
                                   f"leaf={leaf:.4f} bit={bit:.4f}"))
                    return ("corrupt",
                            lambda value, _l=leaf, _b=bit:
                            corrupt_value(value, _l, _b))
            for fault in dups:
                if (fault.leg in ("both", leg)
                        and fnmatchcase(msg.kind, fault.kind_pattern)
                        and rng.random() < fault.rate):
                    events.append((sim.now, "port_dup",
                                   f"{name}/{msg.kind} txn#{msg.txn} "
                                   f"{leg} attempt={attempt}"))
                    return ("dup",)
            return None

        return channel

    # -- DRAM bursts ------------------------------------------------------------

    def _dram_inject(self, line_addr: int, write: bool) -> int:
        burst = self.plan.dram_burst
        window = self._soc.sim.now // burst.period
        # The window's fate is a pure function of (seed, window): no
        # matter how accesses interleave, replay sees the same bursts.
        if _keyed_fraction("dram", self.plan.seed, window) < burst.rate:
            self.events.append((self._soc.sim.now, "dram_burst",
                                f"line {line_addr:#x} +{burst.extra} cycles"))
            return burst.extra
        return 0

    # -- DRAM bit flips ---------------------------------------------------------

    def _dram_flip(self, addr: int) -> Optional[Tuple[int, float, float]]:
        """Flip fate for the nth DRAM read of word ``addr``.

        Returns ``None`` (clean) or ``(nflips, leaf, bit)`` for the
        memory system to apply under its ECC policy.  The fate is a pure
        function of (seed, address, per-address read count), so replay is
        exact *and* a poisoned-line re-fetch can legitimately observe a
        clean second read — the retry path stays both deterministic and
        survivable.
        """
        flips = self.plan.dram_flips
        count = self._flip_counts.get(addr, 0) + 1
        self._flip_counts[addr] = count
        seed = self.plan.seed
        if _keyed_fraction("dramflip", seed, addr, count) >= flips.rate:
            return None
        double = (_keyed_fraction("dramflip2", seed, addr, count)
                  < flips.double_rate)
        nflips = 2 if double else 1
        leaf = _keyed_fraction("dramflipleaf", seed, addr, count)
        bit = _keyed_fraction("dramflipbit", seed, addr, count)
        self.events.append((self._soc.sim.now, "dram_flip",
                            f"word {addr:#x} read#{count} x{nflips}"))
        return (nflips, leaf, bit)

    # -- periodic OS-event tickers -----------------------------------------------

    def _start_ticker(self, name: str, period: int, action) -> None:
        """Fire ``action`` every ``period`` cycles while the run is live.

        The tick re-arms only while *model* events remain (utility ticks
        — its own, other tickers', the watchdog's — excluded), so a
        finished or deadlocked simulation is never kept alive by the
        injector itself.
        """
        sim = self._soc.sim
        tick_index = [0]

        def tick():
            sim.utility_ticks -= 1
            if self._stopped:
                return
            tick_index[0] += 1
            action(tick_index[0])
            if getattr(sim, "model_events", 0) > 0:
                sim.utility_ticks += 1
                sim.schedule(period, tick)

        sim.utility_ticks += 1
        sim.schedule(period, tick)

    def _do_shootdown(self, tick: int) -> None:
        vaddr = self._pick_data_page("shootdown", tick)
        if vaddr is None:
            return
        self._soc.os.shootdown(vaddr)
        self.events.append((self._soc.sim.now, "shootdown",
                            f"page {vaddr:#x}"))

    def _do_evict(self, tick: int) -> None:
        vaddr = self._pick_data_page("evict", tick, resident=True)
        if vaddr is None:
            return
        if self._soc.os.evict_page(self._aspace, vaddr):
            self.events.append((self._soc.sim.now, "evict",
                                f"page {vaddr:#x}"))

    def _do_preempt(self, tick: int) -> None:
        cores = self._soc.cores
        if not cores:
            return
        index = int(_keyed_fraction("preempt", self.plan.seed, tick)
                    * len(cores))
        self._pending_preempts[f"core{cores[index].core_id}.mem"] = \
            self.plan.preempt.cost

    def _do_queue_flip(self, tick: int) -> None:
        flips = self.plan.queue_flips
        candidates = []
        for maple in getattr(self._soc, "maples", ()):
            for queue in maple.scratchpad.queues:
                for index in queue.filled_slots():
                    candidates.append((queue, index))
        if not candidates:
            return
        seed = self.plan.seed
        fraction = _keyed_fraction("queueflip", seed, tick)
        queue, index = candidates[int(fraction * len(candidates))]
        double = _keyed_fraction("queueflip2", seed, tick) < flips.double_rate
        leaf = _keyed_fraction("queueflipleaf", seed, tick)
        bit = _keyed_fraction("queueflipbit", seed, tick)
        outcome = queue.corrupt_slot(index, 2 if double else 1, leaf, bit)
        self.events.append((self._soc.sim.now, "queue_flip",
                            f"queue {queue.queue_id} slot {index} "
                            f"x{2 if double else 1} -> {outcome}"))

    def _pick_data_page(self, stream: str, tick: int,
                        resident: bool = False) -> Optional[int]:
        """A deterministic page choice from the process's data VMAs.

        Device (MMIO) mappings are never touched — evicting MAPLE's page
        would model unplugging the device, not an OS event.
        """
        os = self._soc.os
        pages: List[int] = []
        page_size = os.config.page_size
        for vma in self._aspace.vmas:
            start_paddr = self._aspace.page_table.lookup(vma.start)
            if start_paddr is not None and start_paddr >= os.MMIO_BASE:
                continue
            pages.extend(range(vma.start, vma.end, page_size))
        if not pages:
            return None
        fraction = _keyed_fraction(stream, self.plan.seed, tick)
        index = int(fraction * len(pages))
        if not resident:
            return pages[index]
        # Walk forward until a resident page turns up (bounded scan).
        for offset in range(len(pages)):
            vaddr = pages[(index + offset) % len(pages)]
            paddr = self._aspace.page_table.lookup(vaddr)
            if paddr is not None and paddr < os.MMIO_BASE:
                return vaddr
        return None
