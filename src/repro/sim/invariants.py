"""Runtime invariant checking for ports and MAPLE queues.

The tapeout verified MAPLE's queue protocol with SVA properties (§3.3);
the model enforces the same contracts with runtime checks that tests and
fuzz runs enable:

- **MAPLE queues** (live, via a shadow model): entries pop in exactly
  reservation (program) order, every popped value is the value filled
  into that reservation, nothing is lost, nothing is duplicated, a slot
  is never filled twice.
- **Ports** (at quiescence): transaction-id conservation — every id the
  port ever assigned is accounted for as a completed response, an error,
  or a post; no transaction left in flight; every credit returned and
  nobody waiting on one.
- **Queues** (at quiescence): flow conservation ``produced == consumed +
  still-valid`` and no reservation still waiting on memory.
- **Coherence** (at quiescence, via
  :meth:`repro.mem.coherence.CoherenceBook.check`): single-writer —
  at most one owner per line, the owner's copy MODIFIED/EXCLUSIVE,
  every non-owner copy SHARED — plus book-vs-tag-array agreement and
  L1⊆L2 inclusion.

Checks are opt-in per component (``queue.observer`` is ``None`` by
default), so measured runs pay nothing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Tuple


class InvariantViolation(AssertionError):
    """A checked invariant failed — a model bug, never a workload bug."""

    def __init__(self, violations):
        if isinstance(violations, str):
            violations = [violations]
        self.violations = list(violations)
        lines = "\n  - ".join(self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n  - {lines}")


_UNFILLED = object()


class QueueShadow:
    """Golden FIFO model mirroring one :class:`~repro.core.queues.HwQueue`.

    Installed as the queue's ``observer``; maintains the reservation
    order independently of the queue's own ring state and cross-checks
    every fill and pop as it happens, so a violation surfaces at the
    exact event that caused it.
    """

    def __init__(self, queue):
        self.queue = queue
        self._name = f"queue {queue.queue_id}"
        #: Reservation order: slot indices in grant order (program order).
        self._order: Deque[int] = deque()
        #: Slot index -> filled value (or _UNFILLED while pending).
        self._values: Dict[int, Any] = {}
        self.reserves = 0
        self.fills = 0
        self.pops = 0

    def on_reserve(self, queue, index: int) -> None:
        if index in self._values:
            raise InvariantViolation(
                f"{self._name}: slot {index} reserved while still tracked")
        self._order.append(index)
        self._values[index] = _UNFILLED
        self.reserves += 1

    def on_fill(self, queue, index: int, value) -> None:
        current = self._values.get(index, None)
        if current is None:
            raise InvariantViolation(
                f"{self._name}: fill of slot {index} with no reservation")
        if current is not _UNFILLED:
            raise InvariantViolation(
                f"{self._name}: slot {index} filled twice "
                f"({current!r} then {value!r})")
        self._values[index] = value
        self.fills += 1

    def on_pop(self, queue, value) -> None:
        if not self._order:
            raise InvariantViolation(
                f"{self._name}: pop from an (shadow-)empty queue — "
                "an entry was duplicated or conjured")
        index = self._order.popleft()
        expected = self._values.pop(index)
        if expected is _UNFILLED:
            raise InvariantViolation(
                f"{self._name}: slot {index} popped before its fill "
                "arrived — FIFO order broken")
        if expected != value:
            raise InvariantViolation(
                f"{self._name}: popped {value!r} but program order says "
                f"slot {index} holds {expected!r} — reordering or loss")
        self.pops += 1

    def on_corrupt(self, queue, index: int, value) -> None:
        """An injected slot corruption changed the hardware's contents.

        The shadow tracks what the *hardware* now holds — the corrupted
        (or poisoned) value — so a later pop of exactly that value is not
        misreported as reordering; detecting the corruption is the job of
        the ECC model and the end-to-end output oracle, not this audit.
        """
        current = self._values.get(index, None)
        if current is None or current is _UNFILLED:
            raise InvariantViolation(
                f"{self._name}: corruption reported for slot {index} "
                "which holds no filled value")
        self._values[index] = value

    def on_reset(self, queue) -> None:
        # INIT legally discards contents; pending reservations are a bug
        # but HwQueue.reset itself rejects those before we get here.
        self._order.clear()
        self._values.clear()

    def check_quiescent(self) -> List[str]:
        """Invariants that must hold once the queue has drained its work."""
        problems = []
        queue = self.queue
        unfilled = [i for i, v in self._values.items() if v is _UNFILLED]
        if unfilled:
            problems.append(
                f"{self._name}: reservations {sorted(unfilled)} never "
                "filled (lost memory responses)")
        if len(self._order) != queue.occupied:
            problems.append(
                f"{self._name}: shadow tracks {len(self._order)} entries "
                f"but hardware reports {queue.occupied} occupied")
        if queue.produced != queue.consumed + queue.valid_entries():
            problems.append(
                f"{self._name}: flow broken — produced {queue.produced} != "
                f"consumed {queue.consumed} + valid {queue.valid_entries()}")
        return problems


class InvariantChecker:
    """Arms live queue shadows and performs the quiescence-time audit.

    Usage::

        checker = InvariantChecker(soc).install()
        ... run ...
        checker.verify()   # raises InvariantViolation on any failure
    """

    def __init__(self, soc):
        self._soc = soc
        self.shadows: List[QueueShadow] = []
        self._installed = False

    def install(self) -> "InvariantChecker":
        if self._installed:
            return self
        self._installed = True
        for maple in getattr(self._soc, "maples", None) or ():
            for queue in maple.scratchpad.queues:
                if queue.observer is not None:
                    raise RuntimeError(
                        f"queue {queue.queue_id} already has an observer")
                shadow = QueueShadow(queue)
                queue.observer = shadow
                self.shadows.append(shadow)
        return self

    def uninstall(self) -> None:
        for shadow in self.shadows:
            if shadow.queue.observer is shadow:
                shadow.queue.observer = None
        self.shadows.clear()
        self._installed = False

    # -- quiescence audit -------------------------------------------------------

    def _port_problems(self) -> List[str]:
        problems = []
        ports = getattr(self._soc, "ports", None)
        if ports is None:
            return problems
        for port in ports.ports:
            tap = port.tap
            if port.outstanding or port.outstanding_txns:
                problems.append(
                    f"port {port.name}: {port.outstanding} transaction(s) "
                    f"still in flight (txns {sorted(port.outstanding_txns)})")
            if tap.requests != tap.responses + tap.errors:
                problems.append(
                    f"port {port.name}: txn conservation broken — "
                    f"{tap.requests} requests vs {tap.responses} responses "
                    f"+ {tap.errors} errors")
            if port._next_txn != tap.requests + tap.posts:
                problems.append(
                    f"port {port.name}: txn ids leaked — next txn "
                    f"{port._next_txn} != {tap.requests} requests + "
                    f"{tap.posts} posts")
            credits = port._credits
            if credits is not None:
                if credits.in_use:
                    problems.append(
                        f"port {port.name}: {credits.in_use} credit(s) "
                        f"never returned (depth {port.depth})")
                if credits.waiting:
                    problems.append(
                        f"port {port.name}: {credits.waiting} waiter(s) "
                        "stuck on credits at quiescence")
        return problems

    def _queue_problems(self) -> List[str]:
        problems = []
        for shadow in self.shadows:
            problems.extend(shadow.check_quiescent())
        return problems

    def _coherence_problems(self) -> List[str]:
        """The MESI book's quiescence audit (SWMR + inclusion), prefixed
        so a trip is attributable among the other families."""
        book = getattr(getattr(self._soc, "memsys", None), "book", None)
        if book is None:
            return []
        return [f"coherence: {problem}" for problem in book.check()]

    def verify(self) -> Tuple[int, int]:
        """Audit ports, queues, and coherence state at quiescence.

        Returns ``(ports_checked, queues_checked)``; raises
        :class:`InvariantViolation` listing every failure at once.
        """
        problems = (self._port_problems() + self._queue_problems()
                    + self._coherence_problems())
        if problems:
            raise InvariantViolation(problems)
        ports = getattr(self._soc, "ports", None)
        return (len(ports.ports) if ports is not None else 0,
                len(self.shadows))
