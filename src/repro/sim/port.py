"""Typed Port/Message protocol layer for cross-component traffic.

Every seam in the SoC model — core↔memory hierarchy, core↔MMIO devices
(MAPLE), device↔memory, page-table walks — is carried by a :class:`Port`
pair wired through a :class:`PortRegistry`.  A port pair gives every seam
the same three things:

- **A typed message protocol.**  Each transaction is a request/response
  :class:`Message` carrying source/destination tile, a payload, and a
  monotonically assigned transaction id, so traces are self-describing
  and ordering is checkable.

- **Backpressure.**  A bounded channel depth: once ``depth`` transactions
  are outstanding, the next sender *yields* until a response frees a slot
  (strict FIFO, built on the simulation :class:`~repro.sim.signal.Semaphore`'s
  direct handoff).  SoC wiring chooses depths at least as large as the
  upstream resource bounds (MSHRs + store-buffer entries for a core,
  MAPLE's in-flight fetch limit for the device), so the protocol layer
  adds zero cycles unless a seam is deliberately narrowed.

- **A telemetry tap.**  Per-port counters (requests, responses, posts,
  probes, stalls, retransmits, dup-drops, CRC errors, per-kind
  breakdown) plus an optional bounded ring buffer of ``(cycle, port,
  msg_kind, txn, phase)`` trace events, exportable as Chrome-trace JSON
  by ``tools/trace_export.py``.

- **Optional reliable delivery.**  A port built with ``reliable=True``
  runs every request through a link-level retry protocol: the transaction
  id doubles as the sequence number, payloads carry a CRC, a lost or
  corrupted transfer is detected (checksum mismatch at the receiver, ack
  timeout at the sender) and retransmitted with exponential backoff, and
  a bounded receive window suppresses duplicates so a handler's side
  effects execute exactly once.  When the retry budget is exhausted the
  request raises a typed :class:`DeliveryError` instead of silently
  losing data.  The machinery only engages when a channel fault hook is
  installed (:class:`repro.sim.faults.FaultInjector`); on a fault-free
  run a reliable port takes the exact same code path — and therefore the
  exact same yield sequence — as an unreliable one, which is what keeps
  ``reliable=True`` bit-identical under the differential-fuzz and
  Fig. 14 gates.

Timing honesty: the port layer itself never charges cycles.  Latency
lives in the connected *links* (for example the NoC transport returned by
:meth:`repro.noc.network.Network.link`) and in the bound service
handlers — exactly where the modeled hardware pays it.  That is what
keeps the refactor bit-identical to the pre-port model: the yield
sequence of a transaction is the links' and the handler's, nothing more.
The reliable-delivery path adds cycles only for the timeouts and
retransmissions a *fault* actually caused.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.signal import Semaphore, Signal

#: One trace record: (cycle, port name, message kind, txn id, phase).
#: Phases: "req" / "done" / "err" on the requesting port, "recv" / "resp"
#: on the serving port, "post" and "probe" for the synchronous paths.
TraceEvent = Tuple[int, str, str, int, str]

#: Default ring-buffer capacity when tracing is enabled.
DEFAULT_TRACE_DEPTH = 1 << 16

#: Receive-window depth for reliable ports: how many served transactions
#: the receiver remembers (txn -> result) to suppress duplicates.  Must
#: exceed any port's channel depth so an in-flight txn is never evicted.
RECV_WINDOW = 256


class DataIntegrityError(RuntimeError):
    """Detected-but-unrecoverable data corruption.

    Raised when poison (or a checksum-flagged payload) reaches a consumer
    that has no way left to re-fetch the clean value — the loud, typed
    alternative to silently computing on a flipped bit.  ``component``
    names the detecting component (a port, queue, or memory path),
    ``kind`` the operation, ``addr`` the implicated address or slot.

    ``diagnosis``/``dump_path`` are attached by the harness (the same
    structured-dump plumbing the liveness watchdog uses).
    """

    def __init__(self, message: str, *, component: Optional[str] = None,
                 kind: Optional[str] = None, addr: Optional[int] = None,
                 attempts: Optional[int] = None):
        self.component = component
        self.kind = kind
        self.addr = addr
        self.attempts = attempts
        self.diagnosis: Optional[Dict[str, Any]] = None
        self.dump_path: Optional[str] = None
        super().__init__(message)

    def describe(self) -> Dict[str, Any]:
        """Structured, JSON-able record of the failure (for dumps)."""
        return {
            "error": type(self).__name__,
            "message": str(self),
            "component": self.component,
            "kind": self.kind,
            "addr": self.addr,
            "attempts": self.attempts,
        }


class DeliveryError(DataIntegrityError):
    """A reliable port exhausted its retransmission budget.

    Every attempt was dropped or corrupted en route; rather than lose the
    transaction silently (or block forever, as an unprotected port
    would), the sender fails loudly with the port, kind, and attempt
    count attached.
    """


def _payload_crc(value: Any) -> int:
    """The modeled per-message checksum: CRC-32 over a canonical
    rendering of the payload.  Used by reliable ports to *detect*
    corruption — a mangled payload whose rendering is unchanged (i.e. no
    effective corruption) passes, everything else is caught."""
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


class QuiescenceError(RuntimeError):
    """A port still had transactions in flight when quiescence was asserted.

    ``busy`` maps each offending port name to the sorted tuple of its
    outstanding transaction ids, so a leaked transaction is immediately
    attributable to a seam (and, via the port trace, to a cycle).
    """

    def __init__(self, busy: Dict[str, Tuple[int, ...]]):
        self.busy = dict(busy)
        detail = ", ".join(
            f"{name} (txns {', '.join(f'#{t}' for t in txns)})"
            for name, txns in sorted(self.busy.items()))
        super().__init__(
            f"ports still have transactions in flight: {detail}")


class Message:
    """One transaction on a port pair.

    ``kind`` names the operation ("load", "mmio_store", "dram_line", ...);
    ``src``/``dst`` are mesh tile ids (-1 when a side is not tile-mapped);
    ``txn`` is assigned monotonically by the issuing port.
    """

    __slots__ = ("kind", "src", "dst", "payload", "txn")

    def __init__(self, kind: str, src: int, dst: int, payload: Any = None,
                 txn: int = -1):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        self.txn = txn

    def response(self, payload: Any) -> "Message":
        """The paired response record: same txn, reversed direction."""
        return Message(self.kind + ".resp", self.dst, self.src, payload, self.txn)

    def __repr__(self) -> str:
        return f"<Message #{self.txn} {self.kind} {self.src}->{self.dst}>"


class PortTap:
    """Telemetry for one port: always-on counters, optional trace ring."""

    __slots__ = ("requests", "responses", "served", "posts", "probes",
                 "stalls", "errors", "retransmits", "dup_dropped",
                 "crc_errors", "by_kind", "trace")

    def __init__(self) -> None:
        self.trace: Optional[Deque[TraceEvent]] = None
        self.reset()

    def reset(self) -> None:
        """Zero every counter; an enabled trace ring is cleared, not removed."""
        self.requests = 0
        self.responses = 0
        self.served = 0
        self.posts = 0
        self.probes = 0
        self.stalls = 0
        self.errors = 0
        #: Reliable-delivery telemetry: transmissions repeated after a
        #: timeout, duplicates suppressed by the receive window, and
        #: transfers rejected by the payload checksum.
        self.retransmits = 0
        self.dup_dropped = 0
        self.crc_errors = 0
        self.by_kind: Dict[str, int] = {}
        if self.trace is not None:
            self.trace.clear()

    def enable_trace(self, limit: int = DEFAULT_TRACE_DEPTH) -> None:
        self.trace = deque(maxlen=limit)

    def disable_trace(self) -> None:
        self.trace = None

    def count(self, kind: str) -> None:
        by_kind = self.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        """A flat, picklable dump (mirrors Stats.snapshot conventions)."""
        return {
            "requests": self.requests,
            "responses": self.responses,
            "served": self.served,
            "posts": self.posts,
            "probes": self.probes,
            "stalls": self.stalls,
            "errors": self.errors,
            "retransmits": self.retransmits,
            "dup_dropped": self.dup_dropped,
            "crc_errors": self.crc_errors,
            "by_kind": dict(self.by_kind),
        }


class Port:
    """One endpoint of a seam.

    A *client* port issues :meth:`request` / :meth:`post` / :meth:`probe`
    toward its connected peer; a *server* port :meth:`bind`\\ s the service
    handlers.  Either side taps its own traffic.
    """

    def __init__(self, sim, name: str, tile: int = -1,
                 depth: Optional[int] = None, reliable: bool = False,
                 retry_timeout: int = 64, max_retries: int = 8,
                 retry_backoff: int = 4):
        self._sim = sim
        self.name = name
        self.tile = tile
        self.depth = depth
        self.tap = PortTap()
        self.peer: Optional["Port"] = None
        #: Transactions issued by this port that have not completed.
        self.outstanding = 0
        #: Their transaction ids (diagnosable from a watchdog dump).
        self.outstanding_txns: set = set()
        #: Busy-port index this port reports 0<->1 ``outstanding``
        #: transitions to.  A standalone port owns a private set; a
        #: registry-created port shares the registry's set, which keeps
        #: drain()/quiescence checks O(busy ports), flat in total port
        #: count (a 16x16 mesh wires >1000 mostly-idle ports).
        self._busy_index: set = set()
        #: Fault-injection hook: ``inject(port, msg) -> extra_cycles``.
        #: ``None`` (the default) is the zero-overhead, bit-identical path;
        #: :class:`repro.sim.faults.FaultInjector` installs it per plan.
        self.inject: Optional[Callable[["Port", Message], int]] = None
        #: Channel-fault hook: ``channel(port, msg, leg, attempt)`` returns
        #: ``None`` (clean transfer) or a ``("drop"|"dup"|"corrupt", ...)``
        #: verdict for one traversal of the ``"req"`` or ``"resp"`` leg.
        #: ``None`` (the default) keeps request() on the exact fast path,
        #: so an armed-but-faultless run stays bit-identical even with
        #: ``reliable=True``.
        self.channel: Optional[Callable[["Port", Message, str, int], Any]] = None
        #: Reliable-delivery knobs (see the module docstring).  With
        #: ``reliable=False`` a faulty channel is survived by nobody:
        #: drops hang, corruption silently delivers, duplicates re-run.
        self.reliable = reliable
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Server-side receive window: txn -> cached handler result, so a
        #: retransmitted request never re-runs side effects.
        self._recv_seen: "OrderedDict[int, Any]" = OrderedDict()
        self._next_txn = 0
        self._credits = (Semaphore(sim, depth, name=f"{name}.credits")
                         if depth is not None else None)
        self._handler: Optional[Callable[[Message], Any]] = None
        self._post_handler: Optional[Callable[[str, Any], Any]] = None
        self._probe_handler: Optional[Callable[[str, Any], Any]] = None
        self._request_link = None
        self._response_link = None

    def __repr__(self) -> str:
        peer = self.peer.name if self.peer is not None else None
        return f"<Port {self.name} tile={self.tile} peer={peer}>"

    # -- wiring ------------------------------------------------------------

    def bind(self, handler: Callable[[Message], Any],
             posts: Optional[Callable[[str, Any], Any]] = None,
             probes: Optional[Callable[[str, Any], Any]] = None) -> None:
        """Install the service side: ``handler(msg)`` is a generator (or
        returns one) whose return value answers the request; ``posts`` and
        ``probes`` are synchronous ``f(kind, payload)`` callables."""
        self._handler = handler
        self._post_handler = posts
        self._probe_handler = probes

    def connect(self, peer: "Port", request_link=None, response_link=None) -> None:
        """Pair this (client) port with ``peer`` (server).

        ``request_link(msg)`` / ``response_link(msg)`` are optional
        generator functions charging transport latency in each direction
        (e.g. the NoC planes); with no links the transaction is a direct
        timed call into the peer's handler.
        """
        if self.peer is not None or peer.peer is not None:
            raise ValueError(f"port {self.name} or {peer.name} already connected")
        self.peer = peer
        peer.peer = self
        self._request_link = request_link
        self._response_link = response_link

    # -- transactions ------------------------------------------------------

    def request(self, kind: str, payload: Any = None,
                src: Optional[int] = None, dst: Optional[int] = None):
        """Generator: one request/response transaction with the peer.

        Blocks (yields) while the channel is at depth; otherwise adds no
        simulated time beyond the links and the peer's handler.  Returns
        the handler's return value.
        """
        peer = self.peer
        if peer is None or peer._handler is None:
            raise RuntimeError(f"port {self.name}: request on an unbound port")
        txn = self._next_txn
        self._next_txn = txn + 1
        msg = Message(kind, self.tile if src is None else src,
                      peer.tile if dst is None else dst, payload, txn)
        tap = self.tap
        tap.requests += 1
        by_kind = tap.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        # Credit check with the semaphore's uncontended path inlined
        # (request() runs once per transaction; the method calls showed
        # up in the mix profile).
        credits = self._credits
        if credits is not None:
            if credits._waiters or credits._available == 0:
                tap.stalls += 1
                yield from credits.acquire()
            else:
                credits._available -= 1
        out = self.outstanding
        self.outstanding = out + 1
        if not out:
            self._busy_index.add(self)
        self.outstanding_txns.add(txn)
        trace = tap.trace
        if trace is not None:
            trace.append((self._sim.now, self.name, kind, txn, "req"))
        try:
            inject = self.inject
            if inject is not None:
                extra = inject(self, msg)
                if extra:
                    yield extra
            if self.channel is None:
                # Fast path — the only path ever taken on a fault-free
                # run, reliable or not (the bit-identity contract).
                if self._request_link is not None:
                    yield from self._request_link(msg)
                peer_tap = peer.tap
                peer_tap.served += 1
                peer_trace = peer_tap.trace
                if peer_trace is not None:
                    peer_trace.append(
                        (self._sim.now, peer.name, kind, txn, "recv"))
                result = yield from peer._handler(msg)
                if peer_trace is not None:
                    peer_trace.append(
                        (self._sim.now, peer.name, kind, txn, "resp"))
                if self._response_link is not None:
                    yield from self._response_link(msg.response(result))
            elif self.reliable:
                result = yield from self._reliable_exchange(peer, msg)
            else:
                result = yield from self._raw_exchange(peer, msg)
            if trace is not None:
                trace.append((self._sim.now, self.name, kind, txn, "done"))
            tap.responses += 1
            return result
        except BaseException:
            tap.errors += 1
            if trace is not None:
                trace.append((self._sim.now, self.name, kind, txn, "err"))
            raise
        finally:
            out = self.outstanding - 1
            self.outstanding = out
            if not out:
                self._busy_index.discard(self)
            self.outstanding_txns.discard(txn)
            if credits is not None:
                # Uncontended release inlined; a queued waiter gets the
                # unit by direct handoff exactly as Semaphore.release.
                if credits._waiters:
                    credits._waiters.popleft().fire()
                else:
                    credits._available += 1

    # -- faulty-channel delivery ------------------------------------------------

    def _reliable_exchange(self, peer: "Port", msg: Message):
        """Generator: one transaction under the link-retry protocol.

        Each attempt pays the normal link latencies; a loss (drop, or a
        transfer the checksum rejects) additionally costs the ack timeout
        plus exponential backoff before the retransmission.  The txn id
        doubles as the sequence number: the receive window makes
        redelivery idempotent, so handler side effects run exactly once
        no matter how many copies of the request arrive.
        """
        channel = self.channel
        tap = self.tap
        trace = tap.trace
        kind, txn = msg.kind, msg.txn
        sent_crc = _payload_crc(msg.payload)
        window = peer._recv_seen
        attempt = 0
        while True:
            if attempt > self.max_retries:
                window.pop(txn, None)
                raise DeliveryError(
                    f"port {self.name}: txn #{txn} ({kind}) undeliverable "
                    f"after {attempt - 1} retransmission(s)",
                    component=self.name, kind=kind, attempts=attempt)
            if attempt:
                tap.retransmits += 1
                if trace is not None:
                    trace.append((self._sim.now, self.name, kind, txn,
                                  "rexmit"))
            fate = channel(self, msg, "req", attempt)
            action = fate[0] if fate is not None else None
            if self._request_link is not None:
                yield from self._request_link(msg)
            if action == "drop":
                yield from self._ack_timeout(attempt)
                attempt += 1
                continue
            if action == "corrupt":
                # The wire mangled the payload; the receiver's checksum
                # rejects the transfer (no ack) unless the mangling had
                # no effect on the rendered payload.
                if _payload_crc(fate[1](msg.payload)) != sent_crc:
                    peer.tap.crc_errors += 1
                    yield from self._ack_timeout(attempt)
                    attempt += 1
                    continue
            peer_tap = peer.tap
            if txn in window:
                # Retransmit of an already-served request (its response
                # was lost): re-answer from the window, no side effects.
                peer_tap.dup_dropped += 1
                result = window[txn]
            else:
                peer_tap.served += 1
                peer_trace = peer_tap.trace
                if peer_trace is not None:
                    peer_trace.append(
                        (self._sim.now, peer.name, kind, txn, "recv"))
                result = yield from peer._handler(msg)
                if peer_trace is not None:
                    peer_trace.append(
                        (self._sim.now, peer.name, kind, txn, "resp"))
                window[txn] = result
                while len(window) > RECV_WINDOW:
                    window.popitem(last=False)
            if action == "dup":
                # The wire delivered a second copy; the window kills it.
                peer_tap.dup_dropped += 1
            fate = channel(self, msg, "resp", attempt)
            action = fate[0] if fate is not None else None
            if self._response_link is not None:
                yield from self._response_link(msg.response(result))
            if action == "drop":
                yield from self._ack_timeout(attempt)
                attempt += 1
                continue
            if action == "corrupt":
                if _payload_crc(fate[1](result)) != _payload_crc(result):
                    tap.crc_errors += 1
                    yield from self._ack_timeout(attempt)
                    attempt += 1
                    continue
            if action == "dup":
                # Duplicate response: its sequence number marks it as
                # already consumed; the client discards it.
                tap.dup_dropped += 1
            window.pop(txn, None)
            return result

    def _ack_timeout(self, attempt: int):
        """Generator: the sender's wait before retransmission number
        ``attempt + 1`` — base timeout plus capped exponential backoff."""
        yield self.retry_timeout + self.retry_backoff * (1 << min(attempt, 10))

    def _raw_exchange(self, peer: "Port", msg: Message):
        """Generator: a faulty channel with NO protection (the negative
        control).  A dropped transfer blocks forever — the handshake
        never completes, and the deadlock diagnosis or quiescence audit
        names this port.  A corrupted transfer silently delivers the
        mangled value (only the kernel's golden-output oracle can tell).
        A duplicated request re-runs the handler, duplicating its side
        effects."""
        channel = self.channel
        kind, txn = msg.kind, msg.txn
        fate = channel(self, msg, "req", 0)
        action = fate[0] if fate is not None else None
        if self._request_link is not None:
            yield from self._request_link(msg)
        if action == "drop":
            yield Signal(self._sim, name=f"{self.name}.lost_req#{txn}")
            raise AssertionError("lost request completed")  # pragma: no cover
        if action == "corrupt":
            msg = Message(kind, msg.src, msg.dst, fate[1](msg.payload), txn)
        peer_tap = peer.tap
        result = None
        for _ in range(2 if action == "dup" else 1):
            peer_tap.served += 1
            peer_trace = peer_tap.trace
            if peer_trace is not None:
                peer_trace.append((self._sim.now, peer.name, kind, txn, "recv"))
            result = yield from peer._handler(msg)
            if peer_trace is not None:
                peer_trace.append((self._sim.now, peer.name, kind, txn, "resp"))
        fate = channel(self, msg, "resp", 0)
        action = fate[0] if fate is not None else None
        if self._response_link is not None:
            yield from self._response_link(msg.response(result))
        if action == "drop":
            yield Signal(self._sim, name=f"{self.name}.lost_resp#{txn}")
            raise AssertionError("lost response completed")  # pragma: no cover
        if action == "corrupt":
            result = fate[1](result)
        return result

    def post(self, kind: str, payload: Any = None) -> Any:
        """Fire-and-forget command: counted and traced here, executed
        synchronously by the peer (no simulated time at the port)."""
        peer = self.peer
        if peer is None or peer._post_handler is None:
            raise RuntimeError(f"port {self.name}: post on an unbound port")
        tap = self.tap
        tap.posts += 1
        by_kind = tap.by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        txn = self._next_txn
        self._next_txn = txn + 1
        trace = tap.trace
        if trace is not None:
            trace.append((self._sim.now, self.name, kind, txn, "post"))
        return peer._post_handler(kind, payload)

    def probe(self, kind: str, payload: Any = None) -> Any:
        """Zero-time query answered combinationally by the peer (cache
        peek, uncacheable-range check, ...)."""
        peer = self.peer
        if peer is None or peer._probe_handler is None:
            raise RuntimeError(f"port {self.name}: probe on an unbound port")
        tap = self.tap
        tap.probes += 1
        trace = tap.trace
        if trace is not None:
            trace.append((self._sim.now, self.name, kind, -1, "probe"))
        return peer._probe_handler(kind, payload)


class PortRegistry:
    """Every port of one SoC instance: wiring plus a reset/drain lifecycle.

    ``reset()`` clears telemetry between measurement phases; ``drain()``
    asserts quiescence (no transaction left in flight) — the SoC calls it
    after every run, turning a leaked transaction into a loud failure
    instead of a silently wrong trace.
    """

    def __init__(self, sim):
        self._sim = sim
        self.ports: List[Port] = []
        self._by_name: Dict[str, Port] = {}
        self._reliability: Dict[str, Any] = {}
        #: Ports with outstanding transactions right now.  Ports insert/
        #: remove themselves on 0<->1 transitions, so quiescence checks
        #: cost O(busy), not O(total ports) — flat as the mesh scales.
        self._busy_ports: set = set()

    def configure_reliability(self, reliable: bool, retry_timeout: int = 64,
                              max_retries: int = 8,
                              retry_backoff: int = 4) -> None:
        """Set the delivery mode every port created *after* this call
        gets (the SoC builder calls it before wiring any seam).  With
        ``reliable=True`` every seam runs the retry protocol when a
        channel fault hook is armed; fault-free timing is unchanged."""
        self._reliability = {
            "reliable": reliable,
            "retry_timeout": retry_timeout,
            "max_retries": max_retries,
            "retry_backoff": retry_backoff,
        }

    def port(self, name: str, tile: int = -1,
             depth: Optional[int] = None) -> Port:
        if name in self._by_name:
            raise ValueError(f"duplicate port name {name!r}")
        port = Port(self._sim, name, tile=tile, depth=depth,
                    **self._reliability)
        port._busy_index = self._busy_ports
        self.ports.append(port)
        self._by_name[name] = port
        return port

    def __getitem__(self, name: str) -> Port:
        return self._by_name[name]

    def connect(self, client: Port, server: Port,
                request_link=None, response_link=None) -> None:
        client.connect(server, request_link=request_link,
                       response_link=response_link)

    # -- lifecycle ---------------------------------------------------------

    def _busy(self) -> Dict[str, Tuple[int, ...]]:
        return {p.name: tuple(sorted(p.outstanding_txns))
                for p in sorted(self._busy_ports, key=lambda p: p.name)
                if p.outstanding}

    def drain(self) -> None:
        """Raise :class:`QuiescenceError` unless every port is quiescent,
        naming each busy port and its outstanding transaction ids."""
        busy = self._busy()
        if busy:
            raise QuiescenceError(busy)

    def reset(self) -> None:
        """Clear all telemetry (counters and traces); requires quiescence."""
        self.drain()
        for port in self.ports:
            port.tap.reset()

    # -- telemetry ---------------------------------------------------------

    def enable_tracing(self, limit: int = DEFAULT_TRACE_DEPTH) -> None:
        for port in self.ports:
            port.tap.enable_trace(limit)

    def telemetry(self) -> Dict[str, Dict[str, Any]]:
        """Per-port counter snapshot, keyed by port name."""
        return {port.name: port.tap.snapshot() for port in self.ports}

    def debug_state(self, trace_tail: int = 8) -> Dict[str, Dict[str, Any]]:
        """Liveness-oriented snapshot of every port (watchdog dumps).

        Includes what :meth:`telemetry` does not: in-flight transaction
        ids, credit occupancy/waiters, and the tail of the trace ring (the
        last ``trace_tail`` events) when tracing is enabled.
        """
        state: Dict[str, Dict[str, Any]] = {}
        for port in self.ports:
            credits = port._credits
            entry: Dict[str, Any] = {
                "outstanding": port.outstanding,
                "txns": sorted(port.outstanding_txns),
                "requests": port.tap.requests,
                "responses": port.tap.responses,
            }
            if credits is not None:
                entry["credits_in_use"] = credits.in_use
                entry["credit_waiters"] = credits.waiting
            trace = port.tap.trace
            if trace is not None:
                entry["trace_tail"] = list(trace)[-trace_tail:]
            state[port.name] = entry
        return state

    def trace_events(self) -> List[TraceEvent]:
        """All ports' trace rings merged, sorted by cycle (stable within
        a port, deterministic across ports by registration order)."""
        merged: List[TraceEvent] = []
        for port in self.ports:
            if port.tap.trace is not None:
                merged.extend(port.tap.trace)
        merged.sort(key=lambda event: event[0])
        return merged
