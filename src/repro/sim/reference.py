"""The original (pre-fast-path) discrete-event engine, kept as an oracle.

This is the seed implementation of :mod:`repro.sim.engine`, preserved
verbatim so the optimized engine can be checked against it: the golden
determinism test runs the same workload under both engines and asserts
bit-identical final cycle counts and statistics, and the simcore
benchmark uses it as the same-host baseline for its speedup ratio.

Do not optimize this module — its entire value is staying slow and
obviously correct.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.engine import SimulationError


class ReferenceProcess:
    """Handle for a spawned generator process (reference semantics)."""

    def __init__(self, sim: "ReferenceSimulator", gen: Generator,
                 name: str = "proc"):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self._joiners: list[ReferenceProcess] = []

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"<ReferenceProcess {self.name} {state}>"

    def _add_joiner(self, proc: "ReferenceProcess") -> None:
        if self.finished:
            raise SimulationError("joining a finished process must be immediate")
        self._joiners.append(proc)

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self._sim._resume(joiner, result)


class ReferenceSimulator:
    """The seed `(time, seq, lambda)` heapq event loop, unmodified."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._live_processes = 0
        self.events_executed = 0
        self.run_wall_seconds = 0.0

    @property
    def now(self) -> int:
        return self._now

    @property
    def live_processes(self) -> int:
        return self._live_processes

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback))
        self._seq += 1

    def spawn(self, gen: Generator, name: str = "proc") -> ReferenceProcess:
        proc = ReferenceProcess(self, gen, name)
        self._live_processes += 1
        self.schedule(0, lambda: self._step(proc, None))
        return proc

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        import time as _time

        start = _time.perf_counter()
        events = 0
        try:
            while self._queue:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
                events += 1
                if max_events is not None and events >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at cycle {self._now}")
        finally:
            self.events_executed += events
            self.run_wall_seconds += _time.perf_counter() - start
        if until is not None and until > self._now:
            self._now = until
        return self._now

    # -- process machinery -------------------------------------------------

    def _resume(self, proc: ReferenceProcess, value: Any) -> None:
        self.schedule(0, lambda: self._step(proc, value))

    def _step(self, proc: ReferenceProcess, value: Any) -> None:
        try:
            yielded = proc._gen.send(value)
        except StopIteration as stop:
            self._live_processes -= 1
            proc._finish(stop.value)
            return
        self._dispatch(proc, yielded)

    def _dispatch(self, proc: ReferenceProcess, yielded: Any) -> None:
        if isinstance(yielded, int):
            self.schedule(yielded, lambda: self._step(proc, None))
        elif hasattr(yielded, "_add_waiter"):  # Signal-like
            if yielded.fired:
                self._resume(proc, yielded.value)
            else:
                yielded._add_waiter(proc)
        elif isinstance(yielded, ReferenceProcess):
            if yielded.finished:
                self._resume(proc, yielded.result)
            else:
                yielded._add_joiner(proc)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported value {yielded!r}; "
                "yield an int delay, a Signal, or a Process"
            )
