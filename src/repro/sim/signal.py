"""Synchronization primitives for simulation processes.

These model the handshake patterns hardware uses: one-shot valid/ready
events (:class:`Signal`), reusable level-sensitive gates (:class:`Gate`),
counted resources such as MSHRs or DRAM channel slots (:class:`Semaphore`),
and thread barriers for OpenMP-style epochs (:class:`Barrier`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Process, Simulator


class Signal:
    """A one-shot event. Processes yield it to block until :meth:`fire`.

    Firing twice is an error — hardware handshakes complete exactly once,
    and double-completion is invariably a model bug worth failing on.
    """

    __slots__ = ("_sim", "name", "fired", "value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "signal"):
        self._sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list["Process"] = []

    def __repr__(self) -> str:
        state = "fired" if self.fired else "pending"
        return f"<Signal {self.name} {state}>"

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def fire(self, value: Any = None) -> None:
        """Wake every waiter with ``value``."""
        if self.fired:
            raise RuntimeError(f"signal {self.name} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._resume(proc, value)


class Gate:
    """A reusable open/closed condition.

    ``wait()`` returns a generator to ``yield from``; it passes through
    immediately while the gate is open and blocks while closed.  Used for
    queue-not-empty / queue-not-full conditions that toggle repeatedly.
    """

    def __init__(self, sim: "Simulator", opened: bool = False, name: str = "gate"):
        self._sim = sim
        self.name = name
        self._wait_name = f"{name}.wait"
        self._opened = opened
        self._pending: list[Signal] = []

    @property
    def opened(self) -> bool:
        return self._opened

    def open(self) -> None:
        self._opened = True
        pending, self._pending = self._pending, []
        for signal in pending:
            signal.fire()

    def close(self) -> None:
        self._opened = False

    def wait(self):
        """Generator: block until the gate is (or becomes) open."""
        while not self._opened:
            signal = Signal(self._sim, name=self._wait_name)
            self._pending.append(signal)
            yield signal

    def __repr__(self) -> str:
        state = "open" if self._opened else "closed"
        return f"<Gate {self.name} {state}>"


class Semaphore:
    """A counted resource with strict FIFO fairness and direct handoff.

    ``release`` hands the unit straight to the oldest waiter (the count is
    not incremented in between), so a unit can never be "stolen" by a
    request that arrived later — essential for the MAPLE queue-slot
    discipline, where reservation order defines program order.
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = "sem"):
        if capacity < 1:
            raise ValueError("semaphore capacity must be >= 1")
        self._sim = sim
        self.name = name
        self._acquire_name = f"{name}.acquire"
        self.capacity = capacity
        self._available = capacity
        self._waiters: deque[Signal] = deque()

    @property
    def available(self) -> int:
        return self._available

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    @property
    def waiting(self) -> int:
        """Requests queued behind the current holders (liveness probes)."""
        return len(self._waiters)

    def acquire(self):
        """Generator: block until a unit is available, then take it.

        Requests are served strictly in arrival order, even when a unit
        is free at call time (a free unit with waiters present means a
        handoff is already in flight).
        """
        if self._waiters or self._available == 0:
            signal = Signal(self._sim, name=self._acquire_name)
            self._waiters.append(signal)
            yield signal
            # The releasing side handed its unit directly to us.
            return
        self._available -= 1

    def try_acquire(self) -> bool:
        """Take a unit without blocking; False if none available (or if
        earlier requests are still queued)."""
        if self._waiters or self._available == 0:
            return False
        self._available -= 1
        return True

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().fire()  # direct handoff
            return
        if self._available >= self.capacity:
            raise RuntimeError(f"semaphore {self.name} released above capacity")
        self._available += 1


class Barrier:
    """An N-party rendezvous, reusable across epochs (BFS layers, etc.)."""

    def __init__(self, sim: "Simulator", parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self._sim = sim
        self.name = name
        self.parties = parties
        self._arrived = 0
        self._generation = Signal(sim, name=f"{name}.gen0")
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """How many times the barrier has released all parties."""
        return self._epoch

    def wait(self):
        """Generator: block until all parties have arrived."""
        self._arrived += 1
        if self._arrived == self.parties:
            self._arrived = 0
            self._epoch += 1
            released = self._generation
            self._generation = Signal(self._sim, name=f"{self.name}.gen{self._epoch}")
            released.fire(self._epoch)
        else:
            yield self._generation
