"""Statistics collection for simulations and the evaluation harness.

Components register counters and histograms in a shared :class:`Stats`
registry; the harness reads them to regenerate the paper's figures
(e.g. load counts for Fig. 10, load-latency averages for Fig. 11).

Hot-path protocol: a component resolves its counters **once** at
construction time — ``self._hits = stats.counter("l2.hits")`` — and then
increments the bound :class:`Counter` handle (``self._hits.value += 1``)
per event.  Handles keep the registry's dotted-key namespace for
reporting while removing every per-event f-string build and dict probe.
The string-keyed :meth:`Stats.bump` / :meth:`Stats.get` API remains for
cold paths and tests.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List


class Counter:
    """A single named statistic, bound to one slot in a :class:`Stats`.

    ``value`` is public on purpose: hot paths do ``counter.value += n``
    with no function call.  :meth:`bump` exists for symmetry with the
    registry API.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def bump(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.value}>"


class Histogram:
    """Streaming histogram tracking count / sum / min / max and samples.

    Samples are retained (the runs here are small) so tests can assert on
    distributions; ``keep_samples=False`` switches to summary-only mode.
    """

    __slots__ = ("count", "total", "min", "max", "_keep_samples", "samples")

    def __init__(self, keep_samples: bool = True):
        self.count = 0
        self.total = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self._keep_samples = keep_samples
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._keep_samples:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        if not self.count:
            return "<Histogram empty>"
        return f"<Histogram n={self.count} mean={self.mean:.2f} min={self.min} max={self.max}>"


class Stats:
    """A flat, namespaced registry of counters and histograms.

    Keys are dotted strings such as ``"core0.loads"`` or
    ``"maple.produce_ptr"``.  Missing counters read as zero, so reporting
    code does not need to special-case components that never fired.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, key: str) -> Counter:
        """The bound handle for ``key`` (created at zero if absent)."""
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter()
        return handle

    def bump(self, key: str, amount: int = 1) -> None:
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter()
        handle.value += amount

    def get(self, key: str) -> int:
        handle = self._counters.get(key)
        return handle.value if handle is not None else 0

    @property
    def counters(self) -> Dict[str, int]:
        """Plain ``{key: value}`` view of every registered counter."""
        return {key: handle.value for key, handle in self._counters.items()}

    def observe(self, key: str, value: float) -> None:
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.add(value)

    def histogram(self, key: str) -> Histogram:
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        return hist

    def scoped(self, prefix: str) -> "ScopedStats":
        """A view that prepends ``prefix.`` to every key."""
        return ScopedStats(self, prefix)

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of all counters and histogram means (for reports)."""
        out: Dict[str, float] = self.counters
        for key, hist in self.histograms.items():
            out[f"{key}.mean"] = hist.mean
            out[f"{key}.count"] = hist.count
        return out


class ScopedStats:
    """Prefix view over a :class:`Stats` registry."""

    def __init__(self, stats: Stats, prefix: str):
        self._stats = stats
        self._prefix = prefix

    def counter(self, key: str) -> Counter:
        return self._stats.counter(f"{self._prefix}.{key}")

    def bump(self, key: str, amount: int = 1) -> None:
        self._stats.bump(f"{self._prefix}.{key}", amount)

    def get(self, key: str) -> int:
        return self._stats.get(f"{self._prefix}.{key}")

    def observe(self, key: str, value: float) -> None:
        self._stats.observe(f"{self._prefix}.{key}", value)

    def histogram(self, key: str) -> Histogram:
        return self._stats.histogram(f"{self._prefix}.{key}")


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, as used for every summary number in the paper."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
