"""Liveness watchdog: turn silent hangs into structured diagnoses.

A latency-tolerant SoC has many places to wedge — a leaked port credit,
a MAPLE queue whose head never fills, a fault loop in the MMU.  The
paper proves deadlock freedom of the decoupled pipelines (§3.3); this
module is the runtime counterpart for the *model*: instead of a
simulation that never returns (livelock) or a bare "thread never
finished" (deadlock), every trip produces a :class:`LivenessError`
carrying a full machine-readable diagnosis — engine state, every port's
in-flight transactions and trace tail, MAPLE queue occupancy, LIMA
backlog, and outstanding PTW/DRAM transactions — optionally dumped to a
JSON file for offline inspection (CI uploads these as artifacts).

Two detection modes:

- **Stall (livelock)**: an armed :class:`Watchdog` ticks every
  ``check_interval`` cycles and samples a *semantic* progress vector —
  port traffic, queue flow, live process count.  If the vector is
  unchanged for ``stall_window`` cycles while events are still firing,
  the run is spinning without doing work.  (Engine-level counters like
  ``events_executed`` are deliberately excluded: the watchdog's own
  ticks and any polling loop would count as progress.)
- **Deadlock**: the event queue drains but processes remain blocked on
  handshakes that can never fire.  :meth:`Soc.run_threads` detects this
  after ``sim.run`` returns and raises through
  :func:`collect_diagnosis` here, naming the stuck ports.
"""

from __future__ import annotations

import json
import os as _os
import re
from typing import Any, Dict, Optional

#: Environment variable naming the directory watchdog dumps land in.
DUMP_DIR_ENV = "REPRO_WATCHDOG_DUMP_DIR"


class LivenessError(RuntimeError):
    """The watchdog tripped (or a deadlock was diagnosed).

    ``diagnosis`` is the structured state snapshot; ``dump_path`` names
    the JSON file it was written to (``None`` when dumping is off).
    """

    def __init__(self, message: str, diagnosis: Dict[str, Any],
                 dump_path: Optional[str] = None):
        self.diagnosis = diagnosis
        self.dump_path = dump_path
        suffix = f" (dump: {dump_path})" if dump_path else ""
        super().__init__(f"{message}{suffix}")


def _jsonable(value):
    """Best-effort conversion to JSON-serializable structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_jsonable(v) for v in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def collect_diagnosis(soc, reason: str, trace_tail: int = 8) -> Dict[str, Any]:
    """One structured snapshot of everything liveness-relevant.

    ``soc`` is duck-typed; sections are included only for the subsystems
    the object actually has, so partial rigs (unit tests) work too.
    """
    sim = soc.sim
    diagnosis: Dict[str, Any] = {
        "reason": reason,
        "cycle": sim.now,
        "engine": {
            "live_processes": sim.live_processes,
            "pending_events": sim.pending_events,
            "events_executed": sim.events_executed,
        },
    }
    ports = getattr(soc, "ports", None)
    if ports is not None:
        state = ports.debug_state(trace_tail=trace_tail)
        diagnosis["ports"] = state
        diagnosis["busy_ports"] = sorted(
            name for name, entry in state.items() if entry["outstanding"])
    maples = getattr(soc, "maples", None)
    if maples:
        diagnosis["maples"] = {m.instance_id: m.debug_state() for m in maples}
    memsys = getattr(soc, "memsys", None)
    if memsys is not None and hasattr(memsys, "debug_state"):
        diagnosis["memory"] = memsys.debug_state()
    os_model = getattr(soc, "os", None)
    if os_model is not None and hasattr(os_model, "evicted_pages"):
        diagnosis["os"] = {"evicted_pages": os_model.evicted_pages()}
    driver = getattr(soc, "driver", None)
    if driver is not None and hasattr(driver, "attachments"):
        diagnosis["attachments"] = driver.attachments()
    return diagnosis


def write_dump(diagnosis: Dict[str, Any],
               dump_dir: Optional[str] = None) -> Optional[str]:
    """Write a diagnosis as JSON; returns the path (or ``None`` if off).

    ``dump_dir`` falls back to ``$REPRO_WATCHDOG_DUMP_DIR``; with
    neither set, nothing is written.
    """
    directory = dump_dir or _os.environ.get(DUMP_DIR_ENV)
    if not directory:
        return None
    _os.makedirs(directory, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", str(diagnosis.get("reason", "trip")))
    path = _os.path.join(
        directory, f"watchdog-{slug}-cycle{diagnosis.get('cycle', 0)}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_jsonable(diagnosis), handle, indent=2, sort_keys=True)
    return path


def raise_liveness(soc, reason: str, message: str,
                   dump_dir: Optional[str] = None) -> None:
    """Collect + dump + raise: the shared trip path for every detector."""
    diagnosis = collect_diagnosis(soc, reason)
    dump_path = write_dump(diagnosis, dump_dir)
    busy = diagnosis.get("busy_ports")
    if busy:
        message = f"{message}; busy ports: {', '.join(busy)}"
    raise LivenessError(message, diagnosis, dump_path)


class Watchdog:
    """Periodic liveness monitor for one SoC run.

    Arm it before ``sim.run`` (``Soc.run_threads(..., watchdog=wd)``
    does this); it re-arms itself only while other events are pending,
    so it never keeps a finished simulation alive and adds zero cycles
    to the modeled hardware (ticks are bare engine callbacks, not
    processes).
    """

    def __init__(self, soc, check_interval: int = 2000,
                 stall_window: int = 50000,
                 max_cycles: Optional[int] = None,
                 dump_dir: Optional[str] = None):
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        if stall_window < check_interval:
            raise ValueError("stall_window must cover at least one check")
        self._soc = soc
        self.check_interval = check_interval
        self.stall_window = stall_window
        self.max_cycles = max_cycles
        self.dump_dir = dump_dir
        self.ticks = 0
        self.tripped = False
        self._armed = False
        self._last_vector = None
        self._last_progress_cycle = 0

    # -- progress sampling -----------------------------------------------------

    def _progress_vector(self) -> tuple:
        """Semantic progress only: port traffic, queue flow, process
        retirement.  Excludes engine event counts (self-referential) and
        sequence numbers (polling loops bump them without progress)."""
        soc = self._soc
        requests = responses = posts = 0
        ports = getattr(soc, "ports", None)
        if ports is not None:
            for port in ports.ports:
                tap = port.tap
                requests += tap.requests
                responses += tap.responses
                posts += tap.posts
        produced = consumed = 0
        for maple in getattr(soc, "maples", None) or ():
            for queue in maple.scratchpad.queues:
                produced += queue.produced
                consumed += queue.consumed
        return (requests, responses, posts, produced, consumed,
                soc.sim.live_processes)

    # -- arming ------------------------------------------------------------------

    def arm(self) -> "Watchdog":
        if self._armed:
            return self
        self._armed = True
        sim = self._soc.sim
        self._last_vector = self._progress_vector()
        self._last_progress_cycle = sim.now
        sim.utility_ticks = getattr(sim, "utility_ticks", 0) + 1
        sim.schedule(self.check_interval, self._tick)
        return self

    def disarm(self) -> None:
        self._armed = False

    def _tick(self) -> None:
        sim = self._soc.sim
        sim.utility_ticks -= 1
        if not self._armed:
            return
        self.ticks += 1
        if self.max_cycles is not None and sim.now >= self.max_cycles:
            self._trip("timeout",
                       f"run exceeded max_cycles={self.max_cycles} "
                       f"(now at cycle {sim.now})")
        vector = self._progress_vector()
        if vector != self._last_vector:
            self._last_vector = vector
            self._last_progress_cycle = sim.now
        elif sim.now - self._last_progress_cycle >= self.stall_window:
            self._trip("stall",
                       f"no semantic progress for "
                       f"{sim.now - self._last_progress_cycle} cycles "
                       f"(window {self.stall_window})")
        # Re-arm only while the *model* still has work queued (other
        # utility ticks — fault tickers — are excluded, so the watchdog
        # and the injector never keep each other alive).
        if getattr(sim, "model_events", 0) > 0:
            sim.utility_ticks += 1
            sim.schedule(self.check_interval, self._tick)

    def _trip(self, reason: str, message: str) -> None:
        self.tripped = True
        self._armed = False
        raise_liveness(self._soc, reason, message, dump_dir=self.dump_dir)
