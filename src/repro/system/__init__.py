"""SoC assembly: tiles, cores, MAPLE instances, NoC, memory, OS.

:class:`~repro.system.soc.Soc` builds the whole machine from a
:class:`~repro.params.SoCConfig` the way OpenPiton's build flow stamps out
tiles: cores first, then MAPLE instances, row-major across the mesh, with
every MAPLE reachable through MMIO.  This is the entry point downstream
users start from (see ``examples/quickstart.py``).
"""

from repro.params import FPGA_CONFIG, MOSAIC_CONFIG, SoCConfig
from repro.system.soc import Soc

__all__ = ["FPGA_CONFIG", "MOSAIC_CONFIG", "Soc", "SoCConfig"]
