"""Full-SoC construction and experiment execution helpers."""

from __future__ import annotations

import math
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.driver import MapleDriver
from repro.core.engine import Maple
from repro.cpu.core import Core, Thread
from repro.mem.directory import Directory, interleaved_home_tiles
from repro.mem.hierarchy import MemorySystem
from repro.noc import Mesh, Network, placement_tiles
from repro.params import SoCConfig
from repro.sim import Barrier, PortRegistry, Simulator, Stats, Watchdog
from repro.sim.watchdog import raise_liveness
from repro.vm.alloc import SimArray, alloc_array
from repro.vm.os_model import AddressSpace, SimOS


class MeshGrownWarning(UserWarning):
    """The configured mesh could not seat every tile and was resized.

    Silent growth used to be a footgun: a sweep that sets ``num_cores``
    without touching ``mesh_cols/rows`` quietly simulates a *different
    geometry* than the config names, skewing hop counts.  The warning
    carries the numbers so harnesses can log or escalate it.
    """

    def __init__(self, requested: Tuple[int, int], grown: Tuple[int, int],
                 needed: int):
        self.requested = requested
        self.grown = grown
        self.needed = needed
        super().__init__(
            f"mesh {requested[0]}x{requested[1]} cannot seat {needed} "
            f"tiles (cores + MAPLEs); grown to {grown[0]}x{grown[1]} — "
            "set mesh_cols/mesh_rows explicitly to silence this")


def stress_mesh_config(side: int = 16, maple_instances: int = 1,
                       base: Optional[SoCConfig] = None) -> SoCConfig:
    """A ``side`` x ``side`` mesh stress configuration (16x16 = 256 tiles
    by default), every non-MAPLE tile seating a core.

    This is the scaling testbed for the quiescence contract: components
    are event-driven (nothing polls on ``yield 1``), so a mostly-idle
    large mesh must execute events proportional to *active traffic*, not
    tile count.  ``benchmarks/test_bench_simcore.py`` runs the same
    thread count on growing meshes built from this config and asserts
    the event count stays flat.
    """
    cfg = base or SoCConfig()
    return cfg.with_overrides(
        mesh_cols=side, mesh_rows=side,
        num_cores=side * side - maple_instances,
        maple_instances=maple_instances)


def coherence_stress_config(side: int = 4, maple_instances: int = 1,
                            slices: int = 4,
                            base: Optional[SoCConfig] = None) -> SoCConfig:
    """The directory-on variant of :func:`stress_mesh_config`: per-
    quadrant MAPLE placement, a sliced home-node directory, and L2
    refill/writeback traffic on the MEMORY NoC plane — the full
    protocol-accurate coherence stack the ``mesh-coherence`` figure and
    the coherence fuzz suite exercise."""
    return stress_mesh_config(side, maple_instances, base).with_overrides(
        maple_placement="per-quadrant",
        directory=True, directory_slices=slices,
        directory_mem_traffic=True)


class Soc:
    """One simulated SoC instance: build, allocate, run, measure.

    Every experiment constructs a fresh :class:`Soc` so runs are fully
    isolated and deterministic.  Tile placement is row-major: cores at
    tiles ``0..num_cores-1``, MAPLE instances right after — so with the
    default 2x2 mesh, core 0 is one hop from MAPLE 0 and the analytic
    round trip lands at the paper's ~25 cycles (Fig. 14).
    """

    def __init__(self, config: Optional[SoCConfig] = None,
                 hop_latency_override: Optional[int] = None):
        self.config = config or SoCConfig()
        cfg = self._fit_mesh(self.config)
        self.config = cfg
        self.sim = Simulator()
        self.stats = Stats()
        #: Every cross-component seam is a Port pair wired through this
        #: registry — connect at build time, reset()/drain() around runs.
        self.ports = PortRegistry(self.sim)
        if cfg.reliable_ports:
            self.ports.configure_reliability(
                reliable=True,
                retry_timeout=cfg.port_retry_timeout,
                max_retries=cfg.port_max_retries,
                retry_backoff=cfg.port_retry_backoff)
        self.memsys = MemorySystem(self.sim, cfg, self.stats)
        self.os = SimOS(self.sim, self.memsys, cfg)
        self.mesh = Mesh(cfg.mesh_cols, cfg.mesh_rows)
        self.network = Network(self.sim, self.mesh, cfg, self.stats,
                               hop_latency_override=hop_latency_override)

        # Tile geometry.  ``legacy`` (the bit-identity baseline) packs
        # cores at 0..num_cores-1 and MAPLEs right after, row-major; the
        # geometric policies place the MAPLE tiles first and cores fill
        # the remaining tiles in ascending order.
        if cfg.maple_placement == "legacy":
            self.maple_tiles: List[int] = [
                cfg.num_cores + i for i in range(cfg.maple_instances)]
        else:
            self.maple_tiles = placement_tiles(
                cfg.mesh_cols, cfg.mesh_rows, cfg.maple_instances,
                cfg.maple_placement)
        maple_tile_set = set(self.maple_tiles)
        core_seats = [t for t in range(self.mesh.size)
                      if t not in maple_tile_set][:cfg.num_cores]

        self.cores: List[Core] = []
        for core_id, tile in enumerate(core_seats):
            self.mesh.place(tile, f"core{core_id}")
            self.memsys.add_core(core_id)
            mem_port = self.memsys.connect_core_port(self.ports, core_id, tile)
            self.cores.append(Core(core_id, tile, self.sim, mem_port,
                                   self.os, cfg, self.stats))
        self.core_tiles: Dict[int, int] = {
            core.core_id: core.tile_id for core in self.cores}

        self.maples: List[Maple] = []
        for instance, tile in enumerate(self.maple_tiles):
            self.mesh.place(tile, f"maple{instance}")
            maple = Maple(instance, tile, self.sim, self.memsys, self.network,
                          cfg, self.stats, mmio_base=SimOS.MMIO_BASE,
                          ports=self.ports)
            maple.core_tiles = dict(self.core_tiles)
            self.maples.append(maple)

        #: Sliced-L2 home-node directory (opt-in; ``None`` keeps the
        #: legacy flat-latency coherence charges bit-identical).
        self.directory: Optional[Directory] = None
        if cfg.directory:
            self.directory = Directory(
                self.sim, self.memsys, self.network, self.ports,
                interleaved_home_tiles(cfg.mesh_cols, cfg.mesh_rows,
                                       cfg.directory_slices),
                self.core_tiles, cfg, self.stats)
            self.memsys.attach_directory(self.directory)

        self.driver = MapleDriver(self.os, self.maples, self.mesh)
        #: The active :class:`~repro.sim.faults.FaultInjector`, if any —
        #: set by ``FaultInjector.install`` so post-run tooling (e.g.
        #: ``tools/fault_replay.py``) can read the fault event log.
        self.fault_injector = None

    @staticmethod
    def _fit_mesh(cfg: SoCConfig) -> SoCConfig:
        """Grow the mesh if the configured one cannot seat every tile,
        warning with :class:`MeshGrownWarning` (the simulated geometry is
        no longer the one the config names)."""
        needed = cfg.num_cores + cfg.maple_instances
        if cfg.mesh_cols * cfg.mesh_rows >= needed:
            return cfg
        cols = max(cfg.mesh_cols, math.ceil(math.sqrt(needed)))
        rows = math.ceil(needed / cols)
        warnings.warn(
            MeshGrownWarning((cfg.mesh_cols, cfg.mesh_rows), (cols, rows),
                             needed),
            stacklevel=3)
        return cfg.with_overrides(mesh_cols=cols, mesh_rows=rows)

    # -- process / data setup ---------------------------------------------------

    def new_process(self) -> AddressSpace:
        return self.os.create_address_space()

    def array(self, aspace: AddressSpace, data_or_length, name: str = "array",
              lazy: bool = False) -> SimArray:
        return alloc_array(self.os, aspace, data_or_length, name=name, lazy=lazy)

    def barrier(self, parties: int, name: str = "barrier") -> Barrier:
        return Barrier(self.sim, parties, name=name)

    # -- execution ------------------------------------------------------------------

    def run_threads(self, assignments: Sequence[Tuple[int, Thread]],
                    watchdog: Optional[Watchdog] = None,
                    checkpoint_every: Optional[int] = None,
                    on_checkpoint=None,
                    resume_from=None) -> int:
        """Run threads on cores until all finish; returns elapsed cycles.

        ``assignments`` is a list of ``(core_id, Thread)`` pairs; each core
        takes at most one thread (Tables 2/3: one hardware thread per
        core).  An optional armed-on-entry :class:`Watchdog` turns
        livelocks into diagnosed :class:`LivenessError`\\ s; deadlocks
        (event queue drained, threads still blocked) are diagnosed here
        regardless, naming the stuck cores and busy ports.

        Checkpoint hooks (see :mod:`repro.sim.checkpoint`):

        - ``checkpoint_every=N`` runs the engine in ``N``-cycle chunks
          and calls ``on_checkpoint(self)`` between chunks while events
          remain.  Chunk boundaries are invisible to the model (the
          engine's ``run(until=...)`` resumes exactly where it stopped),
          so checkpointed runs stay bit-identical to uninterrupted ones.
        - ``resume_from=<Checkpoint>`` first replays to the saved cycle
          and verifies every recorded state digest
          (:func:`~repro.sim.checkpoint.verify_against` — a mismatch is
          a typed :class:`CheckpointDivergenceError`), then continues
          normally.  The Soc must be freshly built from the same
          spec/arguments the checkpoint's run used.
        """
        seen_cores = set()
        finish: Dict[int, int] = {}
        for core_id, thread in assignments:
            if core_id in seen_cores:
                raise ValueError(f"core {core_id} assigned twice")
            seen_cores.add(core_id)
            proc = self.cores[core_id].run(thread)

            def waiter(p=proc, c=core_id):
                yield p
                finish[c] = self.sim.now

            self.sim.spawn(waiter(), name=f"join.core{core_id}")
        if watchdog is not None:
            watchdog.arm()
        try:
            if resume_from is not None:
                from repro.sim.checkpoint import verify_against
                self.sim.run(until=resume_from.cycle)
                verify_against(self, resume_from)
            if checkpoint_every:
                while True:
                    self.sim.run(until=self.sim.now + checkpoint_every)
                    if not self.sim.pending_events:
                        break
                    if on_checkpoint is not None:
                        on_checkpoint(self)
            else:
                self.sim.run()
        finally:
            if watchdog is not None:
                watchdog.disarm()
        if len(finish) != len(assignments):
            stuck = sorted(c for c, _ in assignments if c not in finish)
            raise_liveness(
                self, "deadlock",
                f"cores {stuck} never finished: the event queue drained "
                f"with {self.sim.live_processes} process(es) still blocked "
                "on handshakes that can never fire",
                dump_dir=watchdog.dump_dir if watchdog is not None else None)
        # With the event queue empty, every port transaction must have
        # completed; a leaked one is a model bug worth failing loudly on.
        self.ports.drain()
        return max(finish.values()) if finish else 0

    # -- checkpoint/restore -----------------------------------------------------

    def save_checkpoint(self, path, spec=None, label: str = ""):
        """Write a versioned, content-digested checkpoint of this SoC.

        Call between engine runs (e.g. from a ``run_threads``
        ``on_checkpoint`` hook).  ``spec`` (a picklable
        :class:`~repro.harness.orchestrator.RunSpec`) makes the file
        self-resuming via :meth:`resume`; without it the checkpoint can
        still be validated and resumed by a caller who rebuilds the
        experiment.  Returns the saved
        :class:`~repro.sim.checkpoint.Checkpoint`.
        """
        from repro.sim.checkpoint import capture
        return capture(self, spec=spec, label=label).save(path)

    @staticmethod
    def resume(path):
        """Resume a spec-carrying checkpoint file to completion.

        Rebuilds the experiment from the embedded spec, replays to the
        saved cycle under per-subsystem digest verification, and runs to
        the end; returns the
        :class:`~repro.harness.techniques.ExperimentResult`.  Raises the
        typed errors in :mod:`repro.sim.checkpoint` on corrupt,
        spec-less, or diverging checkpoints.
        """
        from repro.sim.checkpoint import resume_checkpoint
        return resume_checkpoint(path)

    # -- port lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Clear per-port telemetry (counters and traces) between
        measurement phases; requires all ports quiescent."""
        self.ports.reset()

    def drain(self) -> None:
        """Assert every port is quiescent (no transaction in flight)."""
        self.ports.drain()

    def port_telemetry(self) -> Dict[str, Dict[str, float]]:
        """Per-port tap snapshot (requests/responses/stalls/kind mix)."""
        return self.ports.telemetry()

    # -- reporting ------------------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, float]:
        """Flat, picklable dump of every counter and histogram summary.

        This is the stats-dict form experiment results cross process
        boundaries in (the orchestrator's workers return it verbatim).
        """
        return self.stats.snapshot()
