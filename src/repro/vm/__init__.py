"""Virtual memory substrate: Sv39-like paging, TLBs, walker, OS model.

The paper's key systems claim is that MAPLE is *fully virtual-memory
compliant*: cores reach it through an OS-mapped MMIO page, and MAPLE
translates the pointers it is given with its own TLB and hardware page
table walker, raising page faults to a Linux driver and honoring TLB
shootdowns.  This package provides all of that: page tables that live in
simulated physical memory (so walks have real memory timing), 16-entry
fully-associative TLBs, a walker, and a small OS with frame allocation,
mmap, fault handling, and shootdown broadcast.
"""

from repro.vm.address import (
    PAGE_SHIFT,
    page_offset,
    page_round_up,
    vpn_indices,
)
from repro.vm.alloc import SimArray, alloc_array
from repro.vm.os_model import AddressSpace, PageFault, SegmentationFault, SimOS
from repro.vm.page_table import (
    PTE_R,
    PTE_U,
    PTE_V,
    PTE_W,
    PageTable,
    pte_is_leaf,
    pte_is_valid,
    pte_ppn,
)
from repro.vm.ptw import PageTableWalker, TranslationFault
from repro.vm.tlb import Tlb

__all__ = [
    "AddressSpace",
    "PAGE_SHIFT",
    "PageFault",
    "PageTable",
    "PageTableWalker",
    "PTE_R",
    "PTE_U",
    "PTE_V",
    "PTE_W",
    "SegmentationFault",
    "SimArray",
    "SimOS",
    "Tlb",
    "alloc_array",
    "TranslationFault",
    "page_offset",
    "page_round_up",
    "pte_is_leaf",
    "pte_is_valid",
    "pte_ppn",
    "vpn_indices",
]
