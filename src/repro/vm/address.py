"""Sv39-style virtual address arithmetic.

39-bit virtual addresses, 4 KB pages, three translation levels of 9 bits
each — the scheme Ariane implements and SMP Linux uses on RV64.
"""

from __future__ import annotations

from typing import Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
LEVELS = 3
VPN_BITS = 9
ENTRIES_PER_TABLE = 1 << VPN_BITS
VA_BITS = PAGE_SHIFT + LEVELS * VPN_BITS  # 39


def page_number(vaddr: int) -> int:
    return vaddr >> PAGE_SHIFT


def page_base(vaddr: int) -> int:
    return vaddr & ~(PAGE_SIZE - 1)


def page_offset(vaddr: int) -> int:
    return vaddr & (PAGE_SIZE - 1)


def page_round_up(nbytes: int) -> int:
    """Round a size up to a whole number of pages."""
    return (nbytes + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def vpn_indices(vaddr: int) -> Tuple[int, int, int]:
    """(vpn2, vpn1, vpn0): table indices from root to leaf."""
    if not (0 <= vaddr < (1 << VA_BITS)):
        raise ValueError(f"address {vaddr:#x} outside the {VA_BITS}-bit space")
    vpn = vaddr >> PAGE_SHIFT
    return (
        (vpn >> (2 * VPN_BITS)) & (ENTRIES_PER_TABLE - 1),
        (vpn >> VPN_BITS) & (ENTRIES_PER_TABLE - 1),
        vpn & (ENTRIES_PER_TABLE - 1),
    )
