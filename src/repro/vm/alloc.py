"""User-level array views over simulated virtual memory.

Workload data (CSR arrays, dense vectors, frontiers) lives in the simulated
address space so that every element has a real virtual address that cores
load/store with timing, and that MAPLE can translate and fetch.  The
functional accessors here are zero-time and used only for dataset setup and
result checking.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.vm.os_model import AddressSpace, SimOS

WORD_BYTES = 8


class SimArray:
    """A 1-D array of 8-byte elements at a virtual base address."""

    def __init__(self, os: SimOS, aspace: AddressSpace, base_vaddr: int,
                 length: int, name: str = "array"):
        self._os = os
        self.aspace = aspace
        self.base = base_vaddr
        self.length = length
        self.name = name

    def addr(self, index: int) -> int:
        """Virtual address of element ``index`` (bounds-checked)."""
        if not 0 <= index < self.length:
            raise IndexError(f"{self.name}[{index}] out of range 0..{self.length - 1}")
        return self.base + WORD_BYTES * index

    # -- functional (zero-time) access, for setup and verification ----------

    def read(self, index: int):
        paddr = self._translate(self.addr(index))
        return self._os.memsys.mem.read_word(paddr)

    def write(self, index: int, value) -> None:
        paddr = self._translate(self.addr(index))
        self._os.memsys.mem.write_word(paddr, value)

    def fill(self, values: Iterable) -> None:
        for index, value in enumerate(values):
            self.write(index, value)

    def to_list(self) -> List:
        return [self.read(index) for index in range(self.length)]

    def _translate(self, vaddr: int) -> int:
        paddr = self.aspace.page_table.lookup(vaddr)
        if paddr is None:
            raise RuntimeError(
                f"functional access to unmapped {self.name} address {vaddr:#x}; "
                "lazy arrays must be touched through the timed path first"
            )
        return paddr

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"<SimArray {self.name} len={self.length} @ {self.base:#x}>"


def alloc_array(os: SimOS, aspace: AddressSpace, data_or_length,
                name: str = "array", lazy: bool = False) -> SimArray:
    """Allocate (and optionally initialize) an array in ``aspace``.

    ``data_or_length`` is either an integer length (zero-initialized) or a
    sequence whose contents are copied in.
    """
    if isinstance(data_or_length, int):
        length, data = data_or_length, None
    else:
        data = list(data_or_length)
        length = len(data)
    if length <= 0:
        raise ValueError("array must have positive length")
    base = os.mmap(aspace, length * WORD_BYTES, lazy=lazy, name=name)
    array = SimArray(os, aspace, base, length, name)
    if data is not None:
        if lazy:
            raise ValueError("cannot pre-fill a lazily mapped array")
        array.fill(data)
    return array
