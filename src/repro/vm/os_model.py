"""A small SMP-Linux-like OS model.

Provides what the paper's software stack needs from the kernel:

- physical frame allocation and per-process page tables,
- ``mmap`` (eager or lazy/demand-paged) and ``munmap`` with TLB shootdown
  broadcast to every registered TLB — cores' *and* MAPLE's (§3.5),
- device page mapping, which is how a user thread gains protected access
  to a MAPLE instance's MMIO page (§3.6),
- a page-fault handler with a trap cost, invoked by core MMUs and by the
  MAPLE driver when MAPLE's walker faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.mem.hierarchy import MemorySystem
from repro.params import SoCConfig
from repro.sim import Simulator
from repro.vm.address import PAGE_SIZE, page_base, page_round_up
from repro.vm.page_table import PTE_R, PTE_U, PTE_W, PageTable
from repro.vm.tlb import Tlb


class PageFault(Exception):
    """Recoverable fault: the OS can map the page and retry."""

    def __init__(self, vaddr: int):
        super().__init__(f"page fault at {vaddr:#x}")
        self.vaddr = vaddr


class SegmentationFault(Exception):
    """Unrecoverable fault: access outside any VMA."""

    def __init__(self, vaddr: int):
        super().__init__(f"segmentation fault at {vaddr:#x}")
        self.vaddr = vaddr


@dataclass
class Vma:
    """A virtual memory area, as in Linux's mm."""

    start: int
    end: int
    flags: int
    lazy: bool
    name: str = "anon"

    def covers(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end


class AddressSpace:
    """One process's virtual address space."""

    _NEXT_VADDR = 0x1000_0000

    def __init__(self, asid: int, page_table: PageTable):
        self.asid = asid
        self.page_table = page_table
        self.vmas: List[Vma] = []
        self._brk = AddressSpace._NEXT_VADDR

    @property
    def root_paddr(self) -> int:
        return self.page_table.root_paddr

    def find_vma(self, vaddr: int) -> Optional[Vma]:
        for vma in self.vmas:
            if vma.covers(vaddr):
                return vma
        return None

    def reserve(self, nbytes: int) -> int:
        """Carve a page-aligned virtual range out of the bump allocator."""
        start = self._brk
        self._brk += page_round_up(nbytes)
        return start


class SimOS:
    """Kernel services shared by all cores and devices."""

    #: Cost of a trap into the kernel plus fault handling (cycles).  The
    #: paper does not quantify this; 500 cycles is a conservative Linux-ish
    #: figure and only lazy mappings ever pay it.
    FAULT_HANDLING_CYCLES = 500

    # Physical layout: RAM frames from 16 MB up; device MMIO high above RAM.
    _FRAME_BASE = 16 * 1024 * 1024
    MMIO_BASE = 1 << 40

    def __init__(self, sim: Simulator, memsys: MemorySystem, config: SoCConfig):
        self._sim = sim
        self.memsys = memsys
        self.config = config
        self._next_frame = self._FRAME_BASE
        self._next_asid = 0
        self.address_spaces: Dict[int, AddressSpace] = {}
        self._tlbs: List[Tlb] = []
        self._shootdown_callbacks: List[Callable[[int], None]] = []
        #: Pages the swap model (fault injection) has unmapped, keyed by
        #: ``(asid, page_vaddr)`` and holding the original frame so the
        #: fault path restores the *same* physical page — data survives
        #: the evict/fault/remap round trip exactly as swap-in does.
        self._evicted: Dict[tuple, int] = {}
        self.stats = memsys.stats.scoped("os")

    # -- physical frames ------------------------------------------------------

    def alloc_frame(self) -> int:
        frame = self._next_frame
        self._next_frame += PAGE_SIZE
        return frame

    # -- address spaces ---------------------------------------------------------

    def create_address_space(self) -> AddressSpace:
        root = self.alloc_frame()
        table = PageTable(self.memsys.mem, root, self.alloc_frame)
        aspace = AddressSpace(self._next_asid, table)
        self.address_spaces[aspace.asid] = aspace
        self._next_asid += 1
        return aspace

    def mmap(self, aspace: AddressSpace, nbytes: int, lazy: bool = False,
             name: str = "anon") -> int:
        """Allocate a virtual range; eager mappings get frames immediately."""
        if nbytes <= 0:
            raise ValueError("mmap of non-positive size")
        start = aspace.reserve(nbytes)
        end = start + page_round_up(nbytes)
        flags = PTE_R | PTE_W | PTE_U
        aspace.vmas.append(Vma(start, end, flags, lazy, name))
        if not lazy:
            for vaddr in range(start, end, PAGE_SIZE):
                aspace.page_table.map_page(vaddr, self.alloc_frame(), flags)
        self.stats.bump("mmap_pages", (end - start) // PAGE_SIZE)
        return start

    def munmap(self, aspace: AddressSpace, start: int, nbytes: int) -> None:
        """Unmap a range and broadcast shootdowns (the driver's callback)."""
        end = start + page_round_up(nbytes)
        aspace.vmas = [v for v in aspace.vmas if not (v.start >= start and v.end <= end)]
        for vaddr in range(page_base(start), end, PAGE_SIZE):
            aspace.page_table.unmap_page(vaddr)
            self.shootdown(vaddr)

    def map_device_page(self, aspace: AddressSpace, device_page_paddr: int,
                        name: str = "mmio") -> int:
        """Map one device page (e.g. a MAPLE instance) into user space."""
        if device_page_paddr % PAGE_SIZE:
            raise ValueError("device page must be page aligned")
        vaddr = aspace.reserve(PAGE_SIZE)
        flags = PTE_R | PTE_W | PTE_U
        aspace.vmas.append(Vma(vaddr, vaddr + PAGE_SIZE, flags, False, name))
        aspace.page_table.map_page(vaddr, device_page_paddr, flags)
        self.stats.bump("device_pages")
        return vaddr

    # -- TLB shootdown ---------------------------------------------------------

    def register_tlb(self, tlb: Tlb) -> None:
        self._tlbs.append(tlb)

    def register_shootdown_callback(self, callback: Callable[[int], None]) -> None:
        """MAPLE's driver registers here to keep its MMU coherent (§3.5)."""
        self._shootdown_callbacks.append(callback)

    def shootdown(self, vaddr: int) -> None:
        for tlb in self._tlbs:
            tlb.invalidate_page(vaddr)
        for callback in self._shootdown_callbacks:
            callback(vaddr)
        self.stats.bump("shootdowns")

    # -- page eviction (the swap model behind injected page faults) ------------

    def evict_page(self, aspace: AddressSpace, vaddr: int) -> bool:
        """Unmap one resident page as if swapped out (fault injection).

        The PTE is invalidated and a shootdown broadcast, so the next
        touch — from a core MMU *or* MAPLE's walker — takes the full
        fault path (§3.5/§4); the frame is remembered and restored by
        :meth:`handle_fault`, so contents survive.  Returns ``False``
        when the page was not resident (nothing to evict).
        """
        page = page_base(vaddr)
        paddr = aspace.page_table.lookup(page)
        if paddr is None:
            return False
        if paddr >= self.MMIO_BASE:
            raise ValueError(f"cannot evict device page {page:#x}")
        aspace.page_table.unmap_page(page)
        self._evicted[(aspace.asid, page)] = paddr
        self.shootdown(page)
        self.stats.bump("evictions")
        return True

    def evicted_pages(self) -> int:
        """Pages currently swapped out (watchdog/diagnostic probes)."""
        return len(self._evicted)

    def restore_evicted(self) -> int:
        """Map every still-evicted page back in (process-exit semantics,
        and the injector's cleanup so functional result checks see a
        fully resident address space).  Returns the number restored."""
        restored = 0
        for (asid, page), frame in sorted(self._evicted.items()):
            aspace = self.address_spaces[asid]
            vma = aspace.find_vma(page)
            flags = vma.flags if vma is not None else PTE_R | PTE_W | PTE_U
            aspace.page_table.map_page(page, frame, flags)
            restored += 1
        self._evicted.clear()
        return restored

    # -- fault handling ----------------------------------------------------------

    def handle_fault(self, aspace: AddressSpace, vaddr: int):
        """Generator: the kernel fault path.

        Maps the page and returns normally when the access hit a lazy VMA
        or an evicted (swapped-out) page; raises
        :class:`SegmentationFault` otherwise.
        """
        self.stats.bump("faults")
        yield self.FAULT_HANDLING_CYCLES
        vma = aspace.find_vma(vaddr)
        if vma is None:
            raise SegmentationFault(vaddr)
        page = page_base(vaddr)
        if aspace.page_table.lookup(vaddr) is None:
            frame = self._evicted.pop((aspace.asid, page), None)
            if frame is not None:
                # Swap-in: the original frame comes back, data intact.
                aspace.page_table.map_page(page, frame, vma.flags)
                self.stats.bump("swap_ins")
            else:
                aspace.page_table.map_page(page, self.alloc_frame(), vma.flags)
                self.stats.bump("demand_mapped_pages")
