"""Radix page tables stored in simulated physical memory.

Page-table entries are 64-bit words following the RISC-V PTE layout
(V/R/W/U permission bits, PPN starting at bit 10).  Because tables live in
:class:`~repro.mem.backing.PhysicalMemory`, the hardware walkers in
:mod:`repro.vm.ptw` produce real memory traffic with real timing — page
table walks are part of the latency MAPLE must tolerate (§3.5).

This module offers *functional* (zero-time) construction and mutation used
by the OS; the timed read path is the walker's.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mem.backing import PhysicalMemory
from repro.vm.address import (ENTRIES_PER_TABLE, PAGE_SHIFT, PAGE_SIZE,
                              page_offset, vpn_indices)

PTE_V = 0x1  # valid
PTE_R = 0x2  # readable (leaf)
PTE_W = 0x4  # writable
PTE_U = 0x8  # user accessible
_PPN_SHIFT = 10


def make_pte(ppn: int, flags: int) -> int:
    return (ppn << _PPN_SHIFT) | flags


def pte_is_valid(pte: int) -> bool:
    return bool(pte & PTE_V)


def pte_is_leaf(pte: int) -> bool:
    return bool(pte & (PTE_R | PTE_W))


def pte_ppn(pte: int) -> int:
    return pte >> _PPN_SHIFT


def pte_flags(pte: int) -> int:
    return pte & ((1 << _PPN_SHIFT) - 1)


class PageTable:
    """A three-level radix tree rooted at ``root_paddr``.

    ``alloc_frame`` supplies physical frames for intermediate tables.
    """

    def __init__(self, mem: PhysicalMemory, root_paddr: int,
                 alloc_frame: Callable[[], int]):
        if root_paddr % PAGE_SIZE:
            raise ValueError("page table root must be page aligned")
        self.mem = mem
        self.root_paddr = root_paddr
        self._alloc_frame = alloc_frame
        # vpn -> leaf PTE address.  Intermediate tables are allocated once
        # and never freed, so a leaf slot's address is stable; only the PTE
        # *word* changes, and that is still read from memory on every
        # lookup.  Negative results are not cached (map_page can create the
        # missing intermediate levels at any time).
        self._leaf_addr_cache: dict = {}
        self._zero_table(root_paddr)

    def _zero_table(self, table_paddr: int) -> None:
        for index in range(ENTRIES_PER_TABLE):
            self.mem.write_word(table_paddr + 8 * index, 0)

    def _entry_addr(self, table_paddr: int, index: int) -> int:
        return table_paddr + 8 * index

    def map_page(self, vaddr: int, paddr: int, flags: int = PTE_R | PTE_W | PTE_U) -> None:
        """Install a 4 KB leaf mapping vaddr's page -> paddr's frame."""
        if paddr % PAGE_SIZE:
            raise ValueError(f"physical frame {paddr:#x} not page aligned")
        vpn2, vpn1, vpn0 = vpn_indices(vaddr)
        table = self.root_paddr
        for index in (vpn2, vpn1):
            entry_addr = self._entry_addr(table, index)
            pte = self.mem.read_word(entry_addr)
            if not pte_is_valid(pte):
                next_table = self._alloc_frame()
                self._zero_table(next_table)
                self.mem.write_word(entry_addr, make_pte(next_table >> PAGE_SHIFT, PTE_V))
                table = next_table
            else:
                if pte_is_leaf(pte):
                    raise ValueError("superpage in the middle of a walk")
                table = pte_ppn(pte) << PAGE_SHIFT
        leaf_addr = self._entry_addr(table, vpn0)
        self.mem.write_word(leaf_addr, make_pte(paddr >> PAGE_SHIFT, flags | PTE_V))

    def unmap_page(self, vaddr: int) -> bool:
        """Remove a leaf mapping. Returns False if it was not mapped."""
        leaf_addr = self._leaf_entry_addr(vaddr)
        if leaf_addr is None:
            return False
        pte = self.mem.read_word(leaf_addr)
        if not pte_is_valid(pte):
            return False
        self.mem.write_word(leaf_addr, 0)
        return True

    def lookup(self, vaddr: int) -> Optional[int]:
        """Functional translation (no timing). None if unmapped."""
        leaf_addr = self._leaf_entry_addr(vaddr)
        if leaf_addr is None:
            return None
        pte = self.mem.read_word(leaf_addr)
        if not pte_is_valid(pte) or not pte_is_leaf(pte):
            return None
        return (pte_ppn(pte) << PAGE_SHIFT) | page_offset(vaddr)

    def _leaf_entry_addr(self, vaddr: int) -> Optional[int]:
        vpn = vaddr >> PAGE_SHIFT
        cached = self._leaf_addr_cache.get(vpn)
        if cached is not None:
            return cached
        vpn2, vpn1, vpn0 = vpn_indices(vaddr)
        table = self.root_paddr
        for index in (vpn2, vpn1):
            pte = self.mem.read_word(self._entry_addr(table, index))
            if not pte_is_valid(pte) or pte_is_leaf(pte):
                return None
            table = pte_ppn(pte) << PAGE_SHIFT
        leaf_addr = self._entry_addr(table, vpn0)
        self._leaf_addr_cache[vpn] = leaf_addr
        return leaf_addr
