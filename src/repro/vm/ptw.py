"""Hardware page table walker with memory-hierarchy timing.

A walk issues one timed read per level through the shared LLC path —
page-table lines cache in the L2, so a warm walk costs three L2 hits while
a cold one pays DRAM.  On an invalid or non-leaf final PTE the walker
reports a :class:`TranslationFault` carrying the faulting address, which
the OS (or the MAPLE driver, §3.5) resolves.

The walker consumes the same memory interface as its owner: constructed
with a :class:`~repro.sim.port.Port` (a core's or MAPLE's memory port),
each PTE read is a timed ``ptw_read`` transaction on that port, so walk
traffic shows up in the owner's telemetry tap.  Constructing it directly
with a :class:`~repro.mem.hierarchy.MemorySystem` keeps working for
standalone use (the read goes straight down the LLC path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mem.dram import is_poisoned
from repro.sim.port import DataIntegrityError
from repro.sim.stats import ScopedStats
from repro.vm.address import PAGE_SHIFT, page_offset, vpn_indices
from repro.vm.page_table import pte_flags, pte_is_leaf, pte_is_valid, pte_ppn


@dataclass
class TranslationFault(Exception):
    """A page fault discovered by the walker."""

    vaddr: int
    level: int

    def __str__(self) -> str:
        return f"page fault at {self.vaddr:#x} (level {self.level})"


class PageTableWalker:
    """Walks a radix table rooted wherever the MMU's root register points."""

    def __init__(self, mem, stats: Optional[ScopedStats] = None,
                 name: str = "ptw"):
        self._mem = mem
        self._stats = stats
        self.name = name
        #: Walks currently in flight (watchdog dumps report this so a hang
        #: inside a translation is distinguishable from one in the fetch).
        self.inflight = 0
        if hasattr(mem, "load_llc"):  # a MemorySystem, used directly
            self._read_pte = mem.load_llc
        else:  # a memory Port: PTE reads are ptw_read transactions
            self._read_pte = self._read_via_port

    def _read_via_port(self, paddr: int):
        return self._mem.request("ptw_read", paddr)

    def walk(self, root_paddr: int, vaddr: int):
        """Generator: translate ``vaddr``; returns (paddr, flags).

        Raises :class:`TranslationFault` on invalid mappings.  Timing: one
        LLC-path read per level.
        """
        if self._stats:
            self._stats.bump("walks")
        table = root_paddr
        indices = vpn_indices(vaddr)
        self.inflight += 1
        try:
            for level, index in enumerate(indices):
                pte = yield from self._read_pte(table + 8 * index)
                if is_poisoned(pte):
                    # Not a page fault the OS could resolve: a mangled
                    # PTE would translate to the wrong frame, so it must
                    # surface as an integrity error, never a retry-able
                    # TranslationFault.
                    raise DataIntegrityError(
                        f"poisoned PTE at {table + 8 * index:#x} during "
                        f"walk of {vaddr:#x}",
                        component="ptw", kind="ptw_read",
                        addr=table + 8 * index)
                if not isinstance(pte, int) or not pte_is_valid(pte):
                    if self._stats:
                        self._stats.bump("faults")
                    raise TranslationFault(vaddr, level)
                if pte_is_leaf(pte):
                    if level != len(indices) - 1:
                        # Superpages are not produced by our OS; treat as fault.
                        if self._stats:
                            self._stats.bump("faults")
                        raise TranslationFault(vaddr, level)
                    frame = pte_ppn(pte) << PAGE_SHIFT
                    return frame | page_offset(vaddr), pte_flags(pte)
                table = pte_ppn(pte) << PAGE_SHIFT
            if self._stats:
                self._stats.bump("faults")
            raise TranslationFault(vaddr, len(indices) - 1)
        finally:
            self.inflight -= 1
