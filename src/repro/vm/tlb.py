"""Fully-associative TLB with LRU replacement.

Both the Ariane cores and MAPLE use 16-entry fully-associative TLBs
(§3.5).  Entries map virtual page number -> (physical frame base, flags).
Shootdowns arrive as :meth:`invalidate_page` / :meth:`flush` calls from the
OS broadcast list.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.sim.stats import ScopedStats
from repro.vm.address import PAGE_SHIFT, page_offset


class Tlb:
    """vpn -> (frame_paddr, flags), true LRU."""

    def __init__(self, entries: int, stats: Optional[ScopedStats] = None,
                 name: str = "tlb"):
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.name = name
        self.capacity = entries
        self._entries: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self._stats = stats
        # Bound handles: translate() runs once per memory instruction.
        self._c_hits = stats.counter("hits") if stats else None
        self._c_misses = stats.counter("misses") if stats else None

    def translate(self, vaddr: int) -> Optional[Tuple[int, int]]:
        """(paddr, flags) on a hit, None on a miss. Hits refresh LRU."""
        vpn = vaddr >> PAGE_SHIFT
        entry = self._entries.get(vpn)
        if entry is None:
            if self._c_misses is not None:
                self._c_misses.value += 1
            return None
        self._entries.move_to_end(vpn)
        if self._c_hits is not None:
            self._c_hits.value += 1
        frame, flags = entry
        return frame | page_offset(vaddr), flags

    def insert(self, vaddr: int, frame_paddr: int, flags: int) -> None:
        vpn = vaddr >> PAGE_SHIFT
        if len(self._entries) >= self.capacity and vpn not in self._entries:
            self._entries.popitem(last=False)
        self._entries[vpn] = (frame_paddr, flags)
        self._entries.move_to_end(vpn)

    def invalidate_page(self, vaddr: int) -> bool:
        """Shootdown of one page. True if an entry was dropped."""
        return self._entries.pop(vaddr >> PAGE_SHIFT, None) is not None

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"<Tlb {self.name} {len(self._entries)}/{self.capacity}>"
