"""Shared pytest configuration: deterministic Hypothesis profiles.

Property tests must behave identically on every machine and every rerun
— a fuzz gate that only fails sometimes is worse than none.  Three
profiles, selected via ``HYPOTHESIS_PROFILE`` (CI pins ``ci``):

- ``dev`` (default): Hypothesis's stock settings plus a fixed
  ``derandomize=True`` so local runs are reproducible too;
- ``ci``: derandomized, no deadline (shared runners are noisy), and a
  bounded example count so the tier-1 wall time stays predictable;
- ``thorough``: 4x the examples for local soak runs.
"""

import os

from hypothesis import settings

settings.register_profile("dev", derandomize=True, deadline=None)
settings.register_profile("ci", derandomize=True, deadline=None,
                          max_examples=100, print_blob=True)
settings.register_profile("thorough", derandomize=True, deadline=None,
                          max_examples=400)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
