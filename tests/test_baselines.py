"""Tests for the comparator models: SW queue, DeSC, DROPLET."""

import pytest

from repro.baselines import DescBackend, DropletPrefetcher, SwQueueRing
from repro.cpu import Alu, Load, Thread
from repro.system import Soc


def build():
    soc = Soc()
    return soc, soc.new_process()


# -- shared-memory software queue -------------------------------------------------

def test_swqueue_transfers_values_in_order():
    soc, aspace = build()
    ring = SwQueueRing(soc, aspace, capacity=8)
    got = []

    def producer():
        backend = ring.producer()
        for i in range(20):
            yield from backend.produce(i * 3)
        yield from backend.flush()

    def consumer():
        backend = ring.consumer()
        for _ in range(20):
            got.append((yield from backend.consume()))
        yield from backend.flush()

    soc.run_threads([(0, Thread(producer(), aspace, "p")),
                     (1, Thread(consumer(), aspace, "c"))])
    assert got == [i * 3 for i in range(20)]


def test_swqueue_produce_ptr_loads_then_pushes():
    soc, aspace = build()
    data = soc.array(aspace, [5.0, 6.0], name="d")
    ring = SwQueueRing(soc, aspace, capacity=8)
    got = []
    times = {}

    def producer():
        backend = ring.producer()
        start = soc.sim.now
        yield from backend.produce_ptr(data.addr(1))
        times["produce"] = soc.sim.now - start
        yield from backend.flush()

    def consumer():
        backend = ring.consumer()
        got.append((yield from backend.consume()))

    soc.run_threads([(0, Thread(producer(), aspace, "p")),
                     (1, Thread(consumer(), aspace, "c"))])
    assert got == [6.0]
    # The Access thread paid the DRAM miss itself — the decisive stall.
    assert times["produce"] > soc.config.dram_latency


def test_swqueue_backpressure_when_consumer_lags():
    soc, aspace = build()
    ring = SwQueueRing(soc, aspace, capacity=4, publish_interval=1)
    times = {}

    def producer():
        backend = ring.producer()
        for i in range(6):
            yield from backend.produce(i)
        times["done"] = soc.sim.now
        yield from backend.flush()

    def consumer():
        backend = ring.consumer()
        yield Alu(5000)
        times["start_consume"] = soc.sim.now
        for _ in range(6):
            yield from backend.consume()
        yield from backend.flush()

    soc.run_threads([(0, Thread(producer(), aspace, "p")),
                     (1, Thread(consumer(), aspace, "c"))])
    assert times["done"] > times["start_consume"]


def test_swqueue_endpoint_misuse_rejected():
    soc, aspace = build()
    ring = SwQueueRing(soc, aspace)
    with pytest.raises(RuntimeError):
        next(ring.producer().consume())
    with pytest.raises(RuntimeError):
        next(ring.consumer().produce(1))


def test_swqueue_capacity_validation():
    soc, aspace = build()
    with pytest.raises(ValueError):
        SwQueueRing(soc, aspace, capacity=2, publish_interval=4)


def test_swqueue_coherence_traffic_visible():
    soc, aspace = build()
    ring = SwQueueRing(soc, aspace, capacity=8, publish_interval=1)

    def producer():
        backend = ring.producer()
        for i in range(16):
            yield from backend.produce(i)
        yield from backend.flush()

    def consumer():
        backend = ring.consumer()
        for _ in range(16):
            yield from backend.consume()
        yield from backend.flush()

    soc.run_threads([(0, Thread(producer(), aspace, "p")),
                     (1, Thread(consumer(), aspace, "c"))])
    # The ring ping-pongs lines between the two L1s.
    coherence_events = (soc.stats.get("coherence.invalidations")
                        + soc.stats.get("coherence.forwards"))
    assert coherence_events >= 6


# -- DeSC ----------------------------------------------------------------------------

def test_desc_produce_consume_order_with_mixed_fills():
    soc, aspace = build()
    data = soc.array(aspace, [float(i) for i in range(64)], name="d")
    engine = DescBackend(soc, aspace, supply_core_id=0)
    got = []

    def supply():
        yield from engine.produce(100)          # immediate value
        yield from engine.produce_ptr(data.addr(32))  # slow DRAM fetch
        yield from engine.produce(200)          # immediate value again

    def compute():
        for _ in range(3):
            got.append((yield from engine.consume()))

    soc.run_threads([(0, Thread(supply(), aspace, "s")),
                     (1, Thread(compute(), aspace, "c"))])
    # Program order preserved even though the middle fill arrived last.
    assert got == [100, 32.0, 200]


def test_desc_fetches_overlap():
    soc, aspace = build()
    n = 12
    data = soc.array(aspace, [float(i) for i in range(n * 8)], name="d")
    engine = DescBackend(soc, aspace, supply_core_id=0)

    def supply():
        for i in range(n):
            yield from engine.produce_ptr(data.addr(8 * i))

    def compute():
        for _ in range(n):
            yield from engine.consume()

    elapsed = soc.run_threads([(0, Thread(supply(), aspace, "s")),
                               (1, Thread(compute(), aspace, "c"))])
    assert elapsed < 0.6 * n * soc.config.dram_latency  # MLP visible


def test_desc_store_ships_to_supply_and_drains():
    soc, aspace = build()
    out = soc.array(aspace, 8, name="out")
    engine = DescBackend(soc, aspace, supply_core_id=0)

    def compute():
        yield from engine.store(out.addr(2), 9.5)
        yield from engine.drain_stores()

    soc.run_threads([(1, Thread(compute(), aspace, "c"))])
    assert out.read(2) == 9.5
    assert soc.stats.get("desc.stores_via_supply") == 1


def test_desc_load_fence_blocks_behind_pending_stores():
    soc, aspace = build()
    out = soc.array(aspace, 8 * 20, name="out")
    engine = DescBackend(soc, aspace, supply_core_id=0)
    times = {}

    def compute():
        # A store that misses (cold line) keeps the store queue busy.
        yield from engine.store(out.addr(8 * 19), 1)
        start = soc.sim.now
        yield from engine.load_fence()
        times["fence"] = soc.sim.now - start

    soc.run_threads([(1, Thread(compute(), aspace, "c"))])
    assert times["fence"] > 50  # waited for the store to resolve
    assert soc.stats.get("desc.disambiguation_stalls") > 0


def test_desc_fetch_add_returns_old_value():
    soc, aspace = build()
    counter = soc.array(aspace, 1, name="c")
    counter.write(0, 10)
    engine = DescBackend(soc, aspace, supply_core_id=0)
    got = []

    def compute():
        got.append((yield from engine.fetch_add(counter.addr(0), 1)))
        got.append((yield from engine.fetch_add(counter.addr(0), 1)))

    soc.run_threads([(1, Thread(compute(), aspace, "c"))])
    assert got == [10, 11]
    assert counter.read(0) == 12


# -- DROPLET -----------------------------------------------------------------------------

def test_droplet_dereferences_once_per_line():
    soc, aspace = build()
    b = soc.array(aspace, [i * 8 for i in range(8)], name="B")
    a = soc.array(aspace, [float(i) for i in range(64)], name="A")
    prefetcher = DropletPrefetcher(soc.memsys)
    prefetcher.register_indirection(aspace, b, a)

    def program():
        for i in range(8):
            idx = yield Load(b.addr(i))
            yield Load(a.addr(idx))
        # Re-stream B after eviction pressure would re-fill its line; the
        # prefetcher must not re-dereference (done_lines).
        for i in range(8):
            yield Load(b.addr(i))

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert soc.stats.get("droplet.dereferences") <= 8


def test_droplet_prefetch_queue_drops_excess():
    soc, aspace = build()
    # One B line holds 8 indices; a queue of 2 must drop most of them.
    b = soc.array(aspace, [i * 8 for i in range(8)], name="B")
    a = soc.array(aspace, [0.0] * 64, name="A")
    prefetcher = DropletPrefetcher(soc.memsys, prefetch_queue=2)
    prefetcher.register_indirection(aspace, b, a)

    def program():
        yield Load(b.addr(0))

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert soc.stats.get("droplet.dropped") >= 6


def test_droplet_requires_mapped_index_array():
    soc, aspace = build()
    lazy = soc.array(aspace, 8, name="lazy", lazy=True)
    a = soc.array(aspace, 8, name="A")
    prefetcher = DropletPrefetcher(soc.memsys)
    with pytest.raises(ValueError, match="mapped"):
        prefetcher.register_indirection(aspace, lazy, a)


def test_droplet_speeds_up_the_gather_microbenchmark():
    def run(with_droplet):
        soc = Soc()
        aspace = soc.new_process()
        n = 32
        b = soc.array(aspace, [(i * 8) % (n * 8) for i in range(n)], name="B")
        a = soc.array(aspace, [0.0] * (n * 8), name="A")
        if with_droplet:
            pf = DropletPrefetcher(soc.memsys)
            pf.register_indirection(aspace, b, a)

        def program():
            for i in range(n):
                idx = yield Load(b.addr(i))
                yield Load(a.addr(idx))

        return soc.run_threads([(0, Thread(program(), aspace, "t"))])

    assert run(True) < run(False)
