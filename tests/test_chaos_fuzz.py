"""The chaos gate: >=150 seeded kill/corrupt cases against the harness.

Each case draws one adversity (worker SIGKILL/SIGSTOP/hang, retry
exhaustion, cache/checkpoint truncation or bit-flip, injected ENOSPC)
from ``repro.harness.chaosfuzz`` and asserts the robustness contract:
completing runs match the golden serial baseline bit for bit, failures
surface as typed structured errors with JSON dumps, corrupt files land
in quarantine, and no orphan processes or stray tmp/lock files remain.

Set ``REPRO_CHAOS_DIR`` to keep each case's working directory (dumps,
quarantined files, the campaign report) for CI artifact upload; without
it everything lands in pytest's tmp_path.
"""

import os
from pathlib import Path

import pytest

from repro.harness.chaosfuzz import (
    CHAOS_MASTER_SEED,
    FAMILIES,
    N_CASES,
    chaos_case,
    run_chaos_case,
)


def _workdir(tmp_path: Path, case: int) -> Path:
    env = os.environ.get("REPRO_CHAOS_DIR")
    root = Path(env) if env else tmp_path
    return root / f"case-{case:03d}"


def test_gate_is_at_least_150_cases():
    assert N_CASES >= 150


def test_cases_are_reproducible():
    """A failing case number must mean the same adversity everywhere."""
    assert chaos_case(11) == chaos_case(11)
    assert chaos_case(12, CHAOS_MASTER_SEED) == chaos_case(12)


def test_every_family_is_drawn():
    drawn = {chaos_case(case).family for case in range(N_CASES)}
    assert drawn == set(FAMILIES)


@pytest.mark.parametrize("case", range(N_CASES))
def test_chaos_case(case, tmp_path):
    outcome = run_chaos_case(case, _workdir(tmp_path, case))
    assert outcome.ok
    assert outcome.family == chaos_case(case).family
    if outcome.oracle == "typed-error":
        assert outcome.typed_error  # failures are always typed
