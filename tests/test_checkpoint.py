"""Checkpoint/restore: bit-identity across the differential-fuzz matrix.

The checkpoint layer's whole contract is "a resumed run *is* the
uninterrupted run".  This suite pins it three ways on every config in
the differential-fuzz matrix (``test_fuzz_differential.random_case``,
with the reliable-port axis added on every third case):

1. a run checkpointed every ~cycles/3 produces exactly the
   uninterrupted run's cycles, event count, and stats dump (the engine
   chunking is invisible);
2. resuming from the first mid-run checkpoint — replaying to the saved
   cycle under per-subsystem digest verification, then continuing —
   finishes with the identical triple;
3. on every fifth case the resume additionally happens in a **fresh
   Python process** (subprocess loading the checkpoint file), so no
   in-process state can be silently carrying the match.

Plus the Fig. 14 gate (the 25-cycle consume round trip survives a
mid-trace checkpoint), the typed-error surface (corrupt, unresumable,
divergent), and the spec-carrying ``Soc.resume`` path.
"""

import json
import os
import shutil
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

try:
    from tests.test_fuzz_differential import N_CASES, random_case
except ImportError:  # run with the tests dir itself on sys.path
    from test_fuzz_differential import N_CASES, random_case

from repro.harness.orchestrator import RunSpec, execute_spec, spec_key
from repro.harness.techniques import run_workload
from repro.sim.checkpoint import (
    Checkpoint,
    CheckpointCorruptError,
    CheckpointDivergenceError,
    CheckpointUnresumableError,
    capture,
    digest_of,
)
from repro.system import Soc

REPO = Path(__file__).resolve().parent.parent

RELIABLE_EVERY = 3        # every 3rd case also arms reliable ports
FRESH_PROCESS_EVERY = 5   # every 5th case resumes in a fresh process


def case_args(case: int):
    """The differential-fuzz case, with the reliable-port axis mixed in."""
    config, workload, technique, threads, dataset, seed = random_case(case)
    if case % RELIABLE_EVERY == 0:
        config = config.with_overrides(reliable_ports=True)
    return config, workload, technique, threads, dataset, seed


def _triple(result):
    return (result.cycles, result.soc.sim.events_executed,
            result.soc.stats_snapshot())


def run_uninterrupted(case: int):
    config, workload, technique, threads, dataset, seed = case_args(case)
    return _triple(run_workload(workload, technique, config=config,
                                threads=threads, dataset=dataset, seed=seed,
                                check=True))


# Child script for the fresh-process leg: re-derives the case from its
# number, loads the checkpoint file, resumes, prints the triple.
_RESUME_CHILD = """\
import json, sys
from test_checkpoint import case_args
from repro.harness.techniques import run_workload
from repro.sim.checkpoint import Checkpoint, digest_of
case = int(sys.argv[1])
ckpt = Checkpoint.load(sys.argv[2])
config, workload, technique, threads, dataset, seed = case_args(case)
r = run_workload(workload, technique, config=config, threads=threads,
                 dataset=dataset, seed=seed, check=True, resume_from=ckpt)
print(json.dumps({"cycles": r.cycles,
                  "events": r.soc.sim.events_executed,
                  "stats": digest_of(r.soc.stats_snapshot())}))
"""


@pytest.mark.parametrize("case", range(N_CASES))
def test_checkpoint_roundtrip_bit_identity(case, tmp_path):
    baseline = run_uninterrupted(case)
    config, workload, technique, threads, dataset, seed = case_args(case)
    every = max(1, baseline[0] // 3)

    # Leg 1: the checkpointed run itself changes nothing.
    saved = {}
    mid_path = tmp_path / "mid.ckpt.json"

    def hook(path, ckpt):
        if "first" not in saved:
            saved["first"] = ckpt
            shutil.copyfile(path, mid_path)

    checkpointed = run_workload(
        workload, technique, config=config, threads=threads, dataset=dataset,
        seed=seed, check=True, checkpoint_every=every,
        checkpoint_path=str(tmp_path / "run.ckpt.json"), on_checkpoint=hook)
    assert _triple(checkpointed) == baseline, \
        f"checkpointing perturbed case {case}"

    ckpt = saved["first"]
    assert 0 < ckpt.cycle < baseline[0], "checkpoint must be mid-run"

    # Leg 2: resume from the mid-run checkpoint (verified replay), same
    # process, fresh Soc.
    resumed = run_workload(workload, technique, config=config,
                           threads=threads, dataset=dataset, seed=seed,
                           check=True, resume_from=ckpt)
    assert _triple(resumed) == baseline, f"resume diverged in case {case}"

    # Leg 3 (subset): resume in a fresh Python process from the file.
    if case % FRESH_PROCESS_EVERY == 0:
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}{REPO / 'tests'}"
        proc = subprocess.run(
            [sys.executable, "-c", _RESUME_CHILD, str(case), str(mid_path)],
            capture_output=True, text=True, env=env, timeout=300)
        assert proc.returncode == 0, proc.stderr
        out = json.loads(proc.stdout.strip().splitlines()[-1])
        assert out["cycles"] == baseline[0]
        assert out["events"] == baseline[1]
        assert out["stats"] == digest_of(baseline[2])


# -- Fig. 14 through a mid-trace checkpoint ---------------------------------------


def _fig14_probe_soc():
    """The Fig. 14 measurement probe (mirrors ``harness.figures.fig14``)."""
    from repro.cpu import Alu, Thread
    from repro.params import FPGA_CONFIG

    soc = Soc(FPGA_CONFIG)
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    measured = {}

    def probe():
        handle = yield from api.open(0)
        yield from handle.produce(1)
        yield Alu(500)  # let the fill land: measure a non-blocking consume
        start = soc.sim.now
        yield from handle.consume()
        measured["cycles"] = soc.sim.now - start

    return soc, [(0, Thread(probe(), aspace, "probe"))], measured


def test_fig14_roundtrip_is_25_through_mid_trace_checkpoint():
    soc_a, threads_a, measured_a = _fig14_probe_soc()
    saved = {}

    def hook(live):
        if "ckpt" not in saved:
            saved["ckpt"] = capture(live, label="fig14-mid")

    soc_a.run_threads(threads_a, checkpoint_every=200, on_checkpoint=hook)
    assert measured_a["cycles"] == 25

    ckpt = saved["ckpt"]
    assert 0 < ckpt.cycle < 500  # mid-trace: before the measured consume

    soc_b, threads_b, measured_b = _fig14_probe_soc()
    soc_b.run_threads(threads_b, resume_from=ckpt)
    assert measured_b["cycles"] == 25


# -- typed error surface ----------------------------------------------------------


def _small_checkpoint():
    return Checkpoint(cycle=5, events_executed=10,
                      digests={"engine": "00", "stats": "11"},
                      stats={"a": 1.0}, label="unit")


def test_checkpoint_save_load_roundtrip(tmp_path):
    path = tmp_path / "c.ckpt.json"
    saved = _small_checkpoint().save(path)
    loaded = Checkpoint.load(path)
    assert loaded.content_digest() == saved.content_digest()
    assert loaded.cycle == 5 and not loaded.resumable


def test_corrupt_checkpoint_files_raise_typed(tmp_path):
    path = tmp_path / "c.ckpt.json"
    _small_checkpoint().save(path)
    pristine = path.read_text()

    path.write_text(pristine[: len(pristine) // 2])    # truncated
    with pytest.raises(CheckpointCorruptError):
        Checkpoint.load(path)

    body = json.loads(pristine)
    body["cycle"] = 6                                  # tampered content
    path.write_text(json.dumps(body))
    with pytest.raises(CheckpointCorruptError, match="digest mismatch"):
        Checkpoint.load(path)

    body = json.loads(pristine)
    body["kind"] = "something-else"                    # wrong kind
    path.write_text(json.dumps(body))
    with pytest.raises(CheckpointCorruptError, match="not a checkpoint"):
        Checkpoint.load(path)

    body = json.loads(pristine)
    body["schema"] = 999                               # future schema
    path.write_text(json.dumps(body))
    with pytest.raises(CheckpointCorruptError, match="schema"):
        Checkpoint.load(path)

    with pytest.raises(CheckpointCorruptError):        # missing file
        Checkpoint.load(tmp_path / "nope.ckpt.json")


def test_spec_less_checkpoint_is_typed_unresumable():
    ckpt = _small_checkpoint()
    assert not ckpt.resumable
    with pytest.raises(CheckpointUnresumableError):
        ckpt.spec()


def test_divergent_replay_raises_typed_and_names_subsystems(tmp_path):
    """Resume under different timing must fail verified replay — the
    error names the subsystems whose digests disagree."""
    saved = {}

    def hook(path, ckpt):
        saved.setdefault("first", ckpt)

    baseline = run_workload("spmv", "maple-decouple", threads=2, check=True,
                            checkpoint_every=10_000,
                            checkpoint_path=str(tmp_path / "c.ckpt.json"),
                            on_checkpoint=hook)
    assert baseline.cycles > 10_000 and "first" in saved

    with pytest.raises(CheckpointDivergenceError) as exc:
        run_workload("spmv", "maple-decouple", threads=2, check=True,
                     hop_latency_override=3, resume_from=saved["first"])
    assert exc.value.mismatched  # at least one subsystem named
    assert "diverges from checkpoint" in str(exc.value)


# -- the spec-carrying Soc.save_checkpoint / Soc.resume path ----------------------


def test_soc_resume_from_spec_checkpoint_file(tmp_path):
    spec = RunSpec("spmv", "lima", threads=1)
    golden = execute_spec(spec)

    path = tmp_path / "spec.ckpt.json"
    execute_spec(replace(spec, checkpoint_every=15_000),
                 checkpoint_path=str(path))
    ckpt = Checkpoint.load(path)
    assert ckpt.resumable and ckpt.spec_key == spec_key(spec)
    assert 0 < ckpt.cycle < golden.cycles

    result = Soc.resume(str(path))
    assert result.cycles == golden.cycles
    assert result.soc.sim.events_executed == golden.events_executed
    assert digest_of(result.soc.stats_snapshot()) == digest_of(golden.stats)
