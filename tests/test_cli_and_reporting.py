"""Tests for the CLI figure runner and reporting helpers."""

import pytest

from repro.harness.__main__ import main, _TARGETS, _render
from repro.harness.figures import FigureResult, Series


def test_cli_fast_targets(capsys):
    assert main(["table1", "table2", "table3", "area", "fig14"]) == 0
    out = capsys.readouterr().out
    assert "MAPLE" in out
    assert "Table 2" in out
    assert "round-trip" in out
    assert "overhead vs served cores" in out


def test_cli_rejects_unknown_target():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_render_covers_every_target_name():
    for target in _TARGETS:
        # Fast targets render here; slow ones only need to be reachable.
        if target in ("table1", "table2", "table3", "area", "fig14"):
            assert _render(target, scale=1)


def test_render_unknown_target_raises():
    with pytest.raises(ValueError):
        _render("fig99", scale=1)


def test_figure_result_render_layout():
    result = FigureResult(
        "figX", "demo", ("a", "b"),
        [Series("one", {"a": 1.0, "b": 4.0}),
         Series("two", {"a": 2.0, "b": 2.0})],
        notes="hello")
    text = result.render()
    assert "figX: demo" in text
    assert "geomean" in text
    assert "2.00" in text
    assert "note: hello" in text


def test_figure_result_series_lookup():
    result = FigureResult("f", "t", ("a",), [Series("s", {"a": 1.0})])
    assert result.series_by_label("s").values["a"] == 1.0
    with pytest.raises(KeyError):
        result.series_by_label("missing")
