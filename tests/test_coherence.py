"""Unit tests for the shared MESI state machine (mem/coherence.py).

These exercise the transition table and the :class:`CoherenceBook`
directly — no simulator, no timing — so protocol bugs surface as tiny
failures here before they become fuzz-run mysteries.
"""

import pytest

from repro.mem import Cache, CoherenceBook, CoherenceError, LineState
from repro.mem.coherence import TRANSITIONS, transition
from repro.sim import Stats

LINE = 64


def L(n):
    return n * LINE


def make_book(num_cores=2, with_l2=True, l1_size=1024, l2_size=4096):
    stats = Stats()
    book = CoherenceBook(stats)
    l1s = {}
    for core in range(num_cores):
        l1s[core] = Cache(l1_size, 4, LINE, name=f"l1.{core}")
        book.register_l1(core, l1s[core])
    l2 = None
    if with_l2:
        l2 = Cache(l2_size, 8, LINE, name="l2")
        book.attach_l2(l2)
    return book, l1s, l2, stats


def fill(book, l2, core, line):
    """An L2-backed fill, as the hierarchy performs it."""
    if l2 is not None:
        l2.insert(line)
    return book.fill(core, line)


# -- transition table ---------------------------------------------------------


def test_transition_table_covers_documented_protocol():
    S = LineState
    assert transition(S.INVALID, "fill_exclusive") is S.EXCLUSIVE
    assert transition(S.INVALID, "fill_shared") is S.SHARED
    assert transition(S.EXCLUSIVE, "share") is S.SHARED
    for start in (S.SHARED, S.EXCLUSIVE, S.MODIFIED):
        assert transition(start, "store") is S.MODIFIED
        assert transition(start, "downgrade") is S.SHARED
        assert transition(start, "invalidate") is S.INVALID


def test_illegal_transitions_raise():
    with pytest.raises(CoherenceError):
        transition(LineState.INVALID, "store")
    with pytest.raises(CoherenceError):
        transition(LineState.INVALID, "downgrade")
    with pytest.raises(CoherenceError):
        transition(LineState.MODIFIED, "share")
    with pytest.raises(CoherenceError):
        transition(LineState.SHARED, "no_such_event")


def test_every_table_entry_names_a_real_state_pair():
    for (state, event), nxt in TRANSITIONS.items():
        assert isinstance(state, LineState)
        assert isinstance(nxt, LineState)
        assert isinstance(event, str)
        # Nothing ever transitions *into* INVALID except invalidate.
        if nxt is LineState.INVALID:
            assert event == "invalidate"


def test_state_ordering_is_strength_ordering():
    # insert()'s conservative merge relies on I < S < E < M.
    assert (LineState.INVALID < LineState.SHARED
            < LineState.EXCLUSIVE < LineState.MODIFIED)


# -- book: fills --------------------------------------------------------------


def test_solo_fill_takes_exclusive_with_ownership():
    book, l1s, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    assert l1s[0].state_of(L(1)) is LineState.EXCLUSIVE
    assert book.owner_of(L(1)) == 0
    assert book.sharers_of(L(1)) == {0}


def test_joining_fill_degrades_exclusive_to_shared():
    book, l1s, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    fill(book, l2, 1, L(1))
    assert l1s[0].state_of(L(1)) is LineState.SHARED
    assert l1s[1].state_of(L(1)) is LineState.SHARED
    assert book.owner_of(L(1)) is None  # silent E->S clears ownership
    assert book.sharers_of(L(1)) == {0, 1}


def test_refill_of_held_line_never_downgrades():
    book, l1s, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    book.store(0, L(1))
    fill(book, l2, 0, L(1))  # prefetch/demand overlap re-fill
    assert l1s[0].state_of(L(1)) is LineState.MODIFIED
    assert book.owner_of(L(1)) == 0


def test_fill_dropped_when_l2_lost_the_line():
    book, l1s, l2, stats = make_book()
    # The L2 never got (or already evicted) the line: the fill must not
    # install an L1 copy that would break inclusion.
    assert book.fill(0, L(1)) is None
    assert not l1s[0].contains(L(1))
    assert book.sharers_of(L(1)) == set()
    assert stats.get("coherence.dropped_fills") == 1


def test_l1_victim_is_dropped_from_the_book():
    book, l1s, l2, _ = make_book(l1_size=256)  # 1 set, 4 ways
    for n in range(5):
        fill(book, l2, 0, L(n))
    assert not l1s[0].contains(L(0))
    assert book.sharers_of(L(0)) == set()  # victim's sharer record gone
    assert book.sharers_of(L(4)) == {0}


# -- book: stores and single-writer -------------------------------------------


def test_store_requires_sharing():
    book, _, l2, _ = make_book()
    with pytest.raises(CoherenceError, match="not a sharer"):
        book.store(0, L(1))


def test_store_while_another_core_owns_raises():
    book, _, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    book.store(0, L(1))
    # Force core 1 into the sharer set without the protocol's upgrade
    # path having run — the book must catch the single-writer breach.
    fill(book, l2, 1, L(1))
    # The joining fill downgraded nothing (owner holds M, not E), so
    # ownership survives and a conflicting store is illegal.
    with pytest.raises(CoherenceError, match="single-writer"):
        book.store(1, L(1))


def test_downgrade_then_store_transfers_ownership():
    book, l1s, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    book.store(0, L(1))
    fill(book, l2, 1, L(1))
    book.downgrade(0, L(1))
    assert l1s[0].state_of(L(1)) is LineState.SHARED
    book.store(1, L(1))
    assert book.owner_of(L(1)) == 1
    assert l1s[1].state_of(L(1)) is LineState.MODIFIED


def test_m_downgrade_marks_l2_dirty():
    book, _, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    book.store(0, L(1))
    assert l2.state_of(L(1)) is LineState.SHARED
    book.downgrade(0, L(1))
    assert l2.state_of(L(1)) is LineState.MODIFIED


def test_invalidate_counts_split_by_recall_flag():
    book, l1s, l2, stats = make_book()
    fill(book, l2, 0, L(1))
    fill(book, l2, 1, L(1))
    book.invalidate(1, L(1))
    book.invalidate(0, L(1), recall=True)
    assert stats.get("coherence.invalidations") == 1
    assert stats.get("coherence.recalls") == 1
    assert not l1s[0].contains(L(1)) and not l1s[1].contains(L(1))
    assert book.pending_lines() == 0  # empty entry removed


# -- sharding -----------------------------------------------------------------


def test_sharding_partitions_lines_by_slice_fn():
    book, _, l2, _ = make_book()
    book.shard(2, lambda line: (line // LINE) % 2)
    fill(book, l2, 0, L(2))   # even -> slice 0
    fill(book, l2, 0, L(3))   # odd  -> slice 1
    assert set(book.shard_lines(0)) == {L(2)}
    assert set(book.shard_lines(1)) == {L(3)}
    assert book.sharers_of(L(2)) == {0} and book.sharers_of(L(3)) == {0}


def test_resharding_a_live_book_is_illegal():
    book, _, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    with pytest.raises(CoherenceError, match="reshard"):
        book.shard(4, lambda line: 0)


# -- quiescence audit ---------------------------------------------------------


def test_check_passes_on_a_consistent_book():
    book, _, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    book.store(0, L(1))
    fill(book, l2, 1, L(2))
    assert book.check() == []


def test_check_catches_untracked_resident_line():
    book, l1s, l2, _ = make_book()
    l1s[0].insert(L(1))  # behind the book's back
    problems = book.check()
    assert any("untracked" in p for p in problems)


def test_check_catches_inclusion_violation():
    book, _, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    l2.invalidate(L(1))  # L2 loses the line, L1 keeps it
    problems = book.check()
    assert any("inclusive L2" in p for p in problems)


def test_check_catches_phantom_sharer():
    book, l1s, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    l1s[0].invalidate(L(1))  # tag array cleared behind the book's back
    problems = book.check()
    assert any("holds no copy" in p for p in problems)


def test_telemetry_shape():
    book, _, l2, _ = make_book()
    fill(book, l2, 0, L(1))
    tele = book.telemetry()
    assert set(tele) == {"forwards", "invalidations", "recalls",
                         "dropped_fills", "tracked_lines"}
    assert tele["tracked_lines"] == 1
