"""Coherence protocol fuzzing: the directory-backed MESI stack under
random workloads with the quiescence audit armed.

Every case runs with ``directory=True`` and ``directory_mem_traffic=True``
on deliberately tiny caches (1 KB L1s, 4-8 KB shared L2), so capacity
evictions, inclusive recalls, dirty writebacks, and DRAM refills all
fire constantly — the protocol paths a comfortable cache never
exercises.  Each case arms the :class:`~repro.sim.invariants.
InvariantChecker` (``check_invariants=True``), whose quiescence audit
now includes :meth:`~repro.mem.coherence.CoherenceBook.check`:
single-writer, book-vs-tag-array agreement, and L1⊆L2 inclusion.

A case passes iff the run completes (no ``CoherenceError`` /
``DirectoryError`` escaped), the functional output matches the numpy
reference, and the audit finds nothing.  The sweep-level test then
asserts the protocol's memory-plane traffic was actually visible:
``dir_refill`` and ``dir_writeback`` messages must appear in the
``mem.slice*`` port taps across the sweep — traffic that taps cannot
see is traffic faults cannot reach.

Everything derives from ``MASTER_SEED`` so a failing case number
reproduces exactly.
"""

import random

import numpy as np
import pytest

from repro.cpu import Load, Store, Thread
from repro.datasets.sparse import random_csr
from repro.harness.techniques import run_workload
from repro.kernels.sdhp import _make_dataset as make_sdhp_dataset
from repro.kernels.spmv import SpmvDataset
from repro.params import SoCConfig
from repro.sim.invariants import InvariantChecker
from repro.system import Soc

MASTER_SEED = 20260807
N_CASES = 100

#: Aggregated memory-plane message counts across the parametrized sweep
#: (asserted non-empty by test_sweep_saw_memory_plane_traffic, which
#: runs after the cases in file order).
_SWEEP_TRAFFIC = {"dir_refill": 0, "dir_writeback": 0, "cases": 0}


def random_coherence_config(rng: random.Random) -> SoCConfig:
    """A directory-on config with caches tiny enough to thrash."""
    mesh_side = rng.choice((2, 3, 3, 4))
    return SoCConfig(
        name=f"cohfuzz-{rng.randrange(1 << 30)}",
        num_cores=rng.choice((2, 4)),
        mesh_cols=mesh_side, mesh_rows=mesh_side,
        maple_instances=rng.choice((1, 1, 2)),
        maple_placement=("per-quadrant" if mesh_side >= 3 else "legacy"),
        l1_size=1024, l1_ways=rng.choice((2, 4)),
        l2_size=rng.choice((4, 8)) * 1024,
        l2_latency=rng.choice((20, 30)),
        dram_latency=rng.choice((100, 300)),
        dram_max_inflight=rng.choice((4, 8)),
        store_buffer_entries=rng.choice((4, 8)),
        directory=True,
        directory_slices=rng.choice((1, 2, 4)),
        directory_mem_traffic=True,
        mem_ctrl_tile=rng.randrange(mesh_side * mesh_side),
        reliable_ports=rng.random() < 0.25,
    )


def random_case(case: int):
    rng = random.Random(MASTER_SEED + case)
    config = random_coherence_config(rng)
    workload = rng.choice(("spmv", "spmv", "sdhp"))
    technique = rng.choice(("doall", "doall", "maple-decouple"))
    threads = 2 if technique == "maple-decouple" else rng.choice((1, 2))
    seed = rng.randrange(10_000)
    if workload == "spmv":
        cols = rng.choice((128, 256))
        matrix = random_csr(rows=rng.randrange(4, 10), cols=cols,
                            nnz_per_row=rng.randrange(2, 6), seed=seed)
        x = np.random.default_rng(seed + 1).uniform(1.0, 2.0, size=cols)
        dataset = SpmvDataset(matrix, x)
    else:
        matrix = random_csr(rows=rng.randrange(2, 6),
                            cols=rng.choice((256, 512)),
                            nnz_per_row=rng.randrange(2, 8), seed=seed)
        dataset = make_sdhp_dataset(matrix, seed=seed + 1)
    return config, workload, technique, threads, dataset, seed


def _mem_plane_counts(soc):
    """(refills, writebacks) sent over the ``dir.slice*.mem`` ports and
    served at the memory controller (``by_kind`` counts on the
    requesting side; the ``mem.slice*`` peers count them as served)."""
    refills = writebacks = served = 0
    for name, tap in soc.port_telemetry().items():
        if name.startswith("dir.slice") and name.endswith(".mem"):
            refills += tap["by_kind"].get("dir_refill", 0)
            writebacks += tap["by_kind"].get("dir_writeback", 0)
        elif name.startswith("mem.slice"):
            served += tap["served"]
    assert served == refills + writebacks, (
        f"memory plane lost messages: {refills}+{writebacks} sent, "
        f"{served} served")
    return refills, writebacks


def _run_thrash_case(case, rng, config):
    """A store-heavy false-sharing thrash: cores interleave writes over
    an array bigger than the L2, so MODIFIED lines stream out of both
    cache levels (the workload the read-mostly kernels never produce).
    Returns the quiesced Soc; the functional oracle is exact because
    each core owns a disjoint index partition."""
    soc = Soc(config)
    checker = InvariantChecker(soc).install()
    aspace = soc.new_process()
    words = 1024  # 128 lines: 2x a 4 KB L2, 8x the 1 KB L1s
    arr = soc.array(aspace, [0.0] * words, name="thrash")
    ncores = len(soc.cores)

    def prog(me):
        indices = list(range(me, words, ncores))
        rng_local = random.Random(MASTER_SEED + case * 100 + me)
        rng_local.shuffle(indices)
        for i in indices:
            yield Store(arr.addr(i), float(me * 10_000 + i))
            if rng_local.random() < 0.3:
                yield Load(arr.addr(rng_local.randrange(words)))

    soc.run_threads([(c, Thread(prog(c), aspace, f"thrash{c}"))
                     for c in range(ncores)])
    soc.drain()
    checker.verify()
    for i in range(words):
        expected = float((i % ncores) * 10_000 + i)
        assert arr.read(i) == expected, f"case {case}: thrash[{i}] corrupted"
    return soc


@pytest.mark.parametrize("case", range(N_CASES))
def test_coherence_fuzz_case(case):
    config, workload, technique, threads, dataset, seed = random_case(case)
    # Completing the run IS most of the assertion: any illegal MESI
    # transition raises CoherenceError at the event that caused it, any
    # double-grant raises DirectoryError, and verify() raises
    # InvariantViolation on a bad quiescent state.
    if case % 5 == 0:
        # One case in five swaps the kernel for the store-thrash program
        # (dirty-eviction pressure the kernels' read-heavy sets lack).
        rng = random.Random(MASTER_SEED + case)
        soc = _run_thrash_case(case, rng, random_coherence_config(rng))
    else:
        result = run_workload(workload, technique, config=config,
                              threads=threads, dataset=dataset, seed=seed,
                              check=True, check_invariants=True)
        assert result.invariants_checked is not None, \
            f"case {case}: audit skipped"
        soc = result.soc
    refills, writebacks = _mem_plane_counts(soc)
    snapshot = soc.stats_snapshot()
    # Every refill/writeback the directory counted crossed a real port.
    assert refills == snapshot.get("directory.refills", 0), f"case {case}"
    assert writebacks == snapshot.get("directory.writebacks", 0), f"case {case}"
    # Tiny caches + real traffic must miss the L2 — and with the memory
    # plane armed, every one of those misses is a visible message.
    assert refills > 0, f"case {case}: no dir_refill traffic on the taps"
    _SWEEP_TRAFFIC["dir_refill"] += refills
    _SWEEP_TRAFFIC["dir_writeback"] += writebacks
    _SWEEP_TRAFFIC["cases"] += 1


def test_sweep_saw_memory_plane_traffic():
    """The fuzz sweep exercised both protocol message kinds end to end
    (runs after the parametrized cases in file order)."""
    assert _SWEEP_TRAFFIC["cases"] == N_CASES
    assert _SWEEP_TRAFFIC["dir_refill"] > 0
    assert _SWEEP_TRAFFIC["dir_writeback"] > 0, (
        "no dirty L2 victim ever wrote back across the sweep — the "
        "writeback path is dead or the caches are not small enough")


def test_dirty_l2_victim_writes_back_over_the_noc():
    """Deterministic message-sequence check (no fuzz luck involved):
    store-thrash a 4 KB L2 so MODIFIED victims must stream back to the
    memory controller as ``dir_writeback`` messages."""
    soc = Soc(SoCConfig(
        name="wb-direct", num_cores=1, mesh_cols=2, mesh_rows=2,
        l1_size=1024, l2_size=4096,
        directory=True, directory_slices=2, directory_mem_traffic=True))
    aspace = soc.new_process()
    # 4 KB L2 = 64 lines; 1024 words = 128 lines: every line is filled,
    # dirtied by the store, and later evicted MODIFIED.
    arr = soc.array(aspace, [0.0] * 1024, name="thrash")

    def prog():
        for i in range(1024):
            yield Store(arr.addr(i), float(i))

    soc.run_threads([(0, Thread(prog(), aspace, "thrash"))])
    soc.drain()
    refills, writebacks = _mem_plane_counts(soc)
    snapshot = soc.stats_snapshot()
    assert refills == snapshot["directory.refills"] > 0
    assert writebacks == snapshot["directory.writebacks"] > 0
    # Every MODIFIED L2 victim (l2.writebacks) became a NoC message.
    assert writebacks == snapshot["l2.writebacks"]


def test_refills_ride_the_memory_plane():
    """With the memory plane armed, every L2 miss is a ``dir_refill``
    served at the memory-controller tile; DRAM reads happen server-side."""
    soc = Soc(SoCConfig(
        name="refill-direct", num_cores=1, mesh_cols=2, mesh_rows=2,
        directory=True, directory_mem_traffic=True, mem_ctrl_tile=3))
    aspace = soc.new_process()
    arr = soc.array(aspace, [1.0] * 256, name="seq")

    def prog():
        for i in range(0, 256, 8):  # one load per line
            yield Load(arr.addr(i))

    soc.run_threads([(0, Thread(prog(), aspace, "seq"))])
    soc.drain()
    refills, _ = _mem_plane_counts(soc)
    snapshot = soc.stats_snapshot()
    assert refills == snapshot["directory.refills"]
    assert snapshot["l2.misses"] > 0
    assert refills >= snapshot["l2.misses"]  # page-table fills add more


@pytest.mark.slow
@pytest.mark.parametrize("case", range(10))
def test_coherence_fuzz_16x16(case):
    """The nightly large-mesh variant: 16x16, per-quadrant MAPLEs, four
    home slices, memory plane armed, audit on."""
    rng = random.Random(MASTER_SEED + 7000 + case)
    config = SoCConfig(
        name=f"cohfuzz16-{case}", num_cores=8,
        mesh_cols=16, mesh_rows=16, maple_instances=4,
        maple_placement="per-quadrant",
        l1_size=1024, l2_size=8 * 1024,
        directory=True, directory_slices=4, directory_mem_traffic=True,
        mem_ctrl_tile=rng.randrange(256),
        reliable_ports=case % 2 == 0)
    matrix = random_csr(rows=8, cols=256, nnz_per_row=4,
                        seed=rng.randrange(10_000))
    x = np.random.default_rng(case).uniform(1.0, 2.0, size=256)
    result = run_workload("spmv", "maple-decouple", config=config,
                          threads=8, dataset=SpmvDataset(matrix, x),
                          check=True, check_invariants=True)
    refills, _ = _mem_plane_counts(result.soc)
    assert refills > 0
