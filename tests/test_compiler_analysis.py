"""Tests for the slicing analysis: depths, terminality, RMW, chains."""

from repro.compiler import analyze
from repro.compiler.analysis import ADDRESS, BOUND, COND, VALUE
from repro.compiler.ir import (
    Bin,
    ComputeStmt,
    Const,
    ForStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    Var,
)
from repro.kernels.bfs import build_bfs_level_kernel
from repro.kernels.sdhp import build_sdhp_kernel
from repro.kernels.spmm import build_spmm_kernel
from repro.kernels.spmv import build_spmv_kernel


def load_by_array(analysis, array, nth=0):
    found = [info for info in analysis.loads.values()
             if info.stmt.array == array]
    return found[nth]


# -- depth classification -------------------------------------------------------

def test_spmv_depths():
    analysis = analyze(build_spmv_kernel())
    assert load_by_array(analysis, "col_idx").depth == 0
    assert load_by_array(analysis, "vals").depth == 0
    assert load_by_array(analysis, "x").depth == 1  # the IMA


def test_depth_propagates_through_computes():
    kernel = Kernel("k", ["b", "a", "out"], ["n"], [
        ForStmt("i", Const(0), Var("n"), [
            LoadStmt("t", "b", Var("i")),
            ComputeStmt("t2", Bin("+", Var("t"), Const(4))),
            LoadStmt("v", "a", Var("t2")),  # still an IMA through t2
            StoreStmt("out", Var("i"), Var("v")),
        ])])
    analysis = analyze(kernel)
    assert load_by_array(analysis, "a").depth == 1


def test_two_level_indirection_depth():
    kernel = Kernel("k", ["b", "m", "a", "out"], ["n"], [
        ForStmt("i", Const(0), Var("n"), [
            LoadStmt("t", "b", Var("i")),
            LoadStmt("u", "m", Var("t")),
            LoadStmt("v", "a", Var("u")),
            StoreStmt("out", Var("i"), Var("v")),
        ])])
    analysis = analyze(kernel)
    assert load_by_array(analysis, "m").depth == 1
    assert load_by_array(analysis, "a").depth == 2


# -- use categories and terminality --------------------------------------------------

def test_spmv_terminal_ima():
    analysis = analyze(build_spmv_kernel())
    x = load_by_array(analysis, "x")
    assert x.terminal
    assert x.categories == {VALUE}
    col = load_by_array(analysis, "col_idx")
    assert not col.terminal
    assert ADDRESS in col.categories


def test_bound_feeding_loads_categorized():
    analysis = analyze(build_spmv_kernel())
    row0 = load_by_array(analysis, "row_ptr", 0)
    assert BOUND in row0.categories


def test_bfs_dist_load_is_terminal_condition():
    analysis = analyze(build_bfs_level_kernel())
    dist = load_by_array(analysis, "dist")
    assert dist.depth == 1
    assert dist.terminal
    assert COND in dist.categories


# -- RMW detection ----------------------------------------------------------------------

def test_spmm_indirect_rmw_blocks_decoupling():
    analysis = analyze(build_spmm_kernel())
    assert analysis.indirect_rmw
    assert not analysis.decouplable
    assert "RMW" in analysis.reason


def test_bfs_benign_annotation_permits_decoupling():
    analysis = analyze(build_bfs_level_kernel())
    assert not analysis.indirect_rmw  # annotated benign
    assert analysis.decouplable


def test_unannotated_bfs_like_kernel_would_be_rmw():
    kernel = build_bfs_level_kernel()
    bare = Kernel(kernel.name, kernel.arrays, kernel.params,
                  build_bfs_level_kernel().body, benign_race_arrays=())
    analysis = analyze(bare)
    assert analysis.indirect_rmw


def test_sdhp_and_spmv_decouplable():
    assert analyze(build_sdhp_kernel()).decouplable
    assert analyze(build_spmv_kernel()).decouplable


def test_kernel_without_imas_not_decouplable():
    kernel = Kernel("dense", ["a", "out"], ["n"], [
        ForStmt("i", Const(0), Var("n"), [
            LoadStmt("v", "a", Var("i")),
            StoreStmt("out", Var("i"), Var("v")),
        ])])
    analysis = analyze(kernel)
    assert not analysis.decouplable
    assert "no terminal" in analysis.reason


# -- chain matching ---------------------------------------------------------------------------

def test_spmv_chain_is_lima_compatible():
    analysis = analyze(build_spmv_kernel())
    chain = load_by_array(analysis, "x").chain
    assert chain is not None
    assert chain.lima_compatible
    assert chain.index_load.array == "col_idx"
    assert chain.offset_expr is None


def test_spmm_chain_has_loop_invariant_offset():
    analysis = analyze(build_spmm_kernel())
    t_load = load_by_array(analysis, "t")
    chain = t_load.chain
    assert chain is not None
    assert chain.lima_compatible
    assert chain.offset_expr is not None  # c*rows folded into the base


def test_bfs_chain_over_neighbors():
    analysis = analyze(build_bfs_level_kernel())
    chain = load_by_array(analysis, "dist").chain
    assert chain is not None
    assert chain.index_load.array == "neighbors"
    assert chain.lima_compatible


def test_no_chain_for_two_level_indirection():
    kernel = Kernel("k", ["b", "m", "a", "out"], ["n"], [
        ForStmt("i", Const(0), Var("n"), [
            LoadStmt("t", "b", Var("i")),
            LoadStmt("u", "m", Var("t")),
            LoadStmt("v", "a", Var("u")),
            StoreStmt("out", Var("i"), Var("v")),
        ])])
    analysis = analyze(kernel)
    # a's feeder (m) is itself indirect -> no simple A[B[i]] chain.
    assert load_by_array(analysis, "a").chain is None


# -- slice membership -------------------------------------------------------------------------------

def test_spmv_slice_membership():
    analysis = analyze(build_spmv_kernel())
    col = load_by_array(analysis, "col_idx").stmt.stmt_id
    vals = load_by_array(analysis, "vals").stmt.stmt_id
    x = load_by_array(analysis, "x").stmt.stmt_id
    assert col in analysis.in_access
    assert col not in analysis.in_execute  # address-only
    assert vals in analysis.in_execute
    assert vals not in analysis.in_access  # value-only
    assert x in analysis.in_access and x in analysis.in_execute  # ptr/consume
