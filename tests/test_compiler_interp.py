"""Tests for lowering/interpretation: plans executed on live SoCs."""

import pytest

from repro.compiler import Technique, analyze, plan_for
from repro.compiler.interp import (
    AccessRole,
    DoallRole,
    ExecuteRole,
    LimaRole,
    MapleBackend,
    PrefetchRole,
    Runtime,
    interpret,
)
from repro.compiler.ir import (
    Bin,
    ComputeStmt,
    Const,
    ForStmt,
    IfStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    Var,
)
from repro.core.api import QueueHandle
from repro.cpu import Thread
from repro.system import Soc


def tiny_soc():
    soc = Soc()
    return soc, soc.new_process()


def gather_kernel():
    """out[i] = a[b[i]] * 2 — the minimal IMA kernel."""
    return Kernel("gather", ["b", "a", "out"], ["lo", "hi"], [
        ForStmt("i", Var("lo"), Var("hi"), [
            LoadStmt("t", "b", Var("i")),
            LoadStmt("v", "a", Var("t")),
            ComputeStmt("r", Bin("*", Var("v"), Const(2))),
            StoreStmt("out", Var("i"), Var("r")),
        ])])


def bind_gather(soc, aspace, n=12):
    arrays = {
        "b": soc.array(aspace, [(7 * i) % n for i in range(n)], "b"),
        "a": soc.array(aspace, [float(i + 1) for i in range(n)], "a"),
        "out": soc.array(aspace, n, "out"),
    }
    expected = [float((7 * i) % n + 1) * 2 for i in range(n)]
    return arrays, expected


def test_doall_interpretation_computes_correct_result():
    soc, aspace = tiny_soc()
    arrays, expected = bind_gather(soc, aspace)
    kernel = gather_kernel()
    plan = plan_for(analyze(kernel), Technique.DOALL)
    runtime = Runtime(arrays, {"lo": 0, "hi": 12})
    soc.run_threads([(0, Thread(interpret(kernel, runtime, DoallRole(plan)),
                                aspace, "t"))])
    assert arrays["out"].to_list() == expected


def test_partitioned_doall_covers_disjoint_ranges():
    soc, aspace = tiny_soc()
    arrays, expected = bind_gather(soc, aspace)
    kernel = gather_kernel()
    plan = plan_for(analyze(kernel), Technique.DOALL)
    threads = []
    for tid, (lo, hi) in enumerate([(0, 6), (6, 12)]):
        runtime = Runtime(arrays, {"lo": lo, "hi": hi})
        threads.append((tid, Thread(
            interpret(kernel, runtime, DoallRole(plan)), aspace, f"t{tid}")))
    soc.run_threads(threads)
    assert arrays["out"].to_list() == expected


def test_maple_decoupled_interpretation_end_to_end():
    soc, aspace = tiny_soc()
    arrays, expected = bind_gather(soc, aspace)
    kernel = gather_kernel()
    plan = plan_for(analyze(kernel), Technique.MAPLE_DECOUPLE)
    assert not plan.fallback_doall
    api = soc.driver.attach(aspace)
    runtime = Runtime(arrays, {"lo": 0, "hi": 12})

    def access():
        handle = yield from api.open(0)
        role = AccessRole(plan, MapleBackend(handle))
        yield from interpret(kernel, runtime, role)

    def execute():
        role = ExecuteRole(plan, MapleBackend(QueueHandle(api, 0)))
        yield from interpret(kernel, runtime, role)

    soc.run_threads([(0, Thread(access(), aspace, "a")),
                     (1, Thread(execute(), aspace, "e"))])
    assert arrays["out"].to_list() == expected
    assert soc.stats.get("maple0.produce_ptrs") == 12


def test_prefetch_role_emits_prefetches_and_stays_correct():
    soc, aspace = tiny_soc()
    arrays, expected = bind_gather(soc, aspace)
    kernel = gather_kernel()
    plan = plan_for(analyze(kernel), Technique.SW_PREFETCH)
    runtime = Runtime(arrays, {"lo": 0, "hi": 12})
    role = PrefetchRole(plan, distance=3)
    soc.run_threads([(0, Thread(interpret(kernel, runtime, role), aspace, "t"))])
    assert arrays["out"].to_list() == expected
    # distance-3 over 12 iterations -> 9 prefetches (bounds-guarded).
    assert soc.cores[0].stats.get("prefetches") == 9


def test_prefetch_distance_validation():
    plan = plan_for(analyze(gather_kernel()), Technique.SW_PREFETCH)
    with pytest.raises(ValueError):
        PrefetchRole(plan, distance=0)


def test_lima_role_end_to_end():
    soc, aspace = tiny_soc()
    arrays, expected = bind_gather(soc, aspace)
    kernel = gather_kernel()
    plan = plan_for(analyze(kernel), Technique.LIMA_PREFETCH)
    assert not plan.fallback_doall
    api = soc.driver.attach(aspace)
    runtime = Runtime(arrays, {"lo": 0, "hi": 12})

    def program():
        handle = yield from api.open(0)
        chain = plan.lima_chains[0]
        role = LimaRole(plan, {chain.ima_load.stmt_id: handle})
        yield from interpret(kernel, runtime, role)

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert arrays["out"].to_list() == expected
    assert soc.stats.get("maple0.lima_elements") == 12
    # The address-only index load was dropped from the core entirely.
    assert soc.cores[0].stats.get("loads") < 30


def test_lima_role_requires_handles_for_all_chains():
    plan = plan_for(analyze(gather_kernel()), Technique.LIMA_PREFETCH)
    with pytest.raises(ValueError, match="handle"):
        LimaRole(plan, handles={})


def test_if_statement_executes_conditionally():
    soc, aspace = tiny_soc()
    kernel = Kernel("cond", ["a", "out"], ["n"], [
        ForStmt("i", Const(0), Var("n"), [
            LoadStmt("v", "a", Var("i")),
            IfStmt(Bin("<", Var("v"), Const(5)), [
                StoreStmt("out", Var("i"), Const(1)),
            ]),
        ])])
    arrays = {
        "a": soc.array(aspace, [3, 7, 2, 9], "a"),
        "out": soc.array(aspace, 4, "out"),
    }
    plan = plan_for(analyze(kernel), Technique.DOALL)
    runtime = Runtime(arrays, {"n": 4})
    soc.run_threads([(0, Thread(interpret(kernel, runtime, DoallRole(plan)),
                                aspace, "t"))])
    assert arrays["out"].to_list() == [1, 0, 1, 0]


def test_runtime_with_params_is_non_destructive():
    runtime = Runtime({}, {"a": 1})
    other = runtime.with_params(b=2)
    assert other.params == {"a": 1, "b": 2}
    assert runtime.params == {"a": 1}


def test_runtime_unknown_array_raises():
    runtime = Runtime({})
    with pytest.raises(KeyError, match="not bound"):
        runtime.array("missing")
