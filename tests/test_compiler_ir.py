"""Tests for the kernel IR: expressions, validation, traversal."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler.ir import (
    Bin,
    ComputeStmt,
    Const,
    FetchAddStmt,
    ForStmt,
    IfStmt,
    Kernel,
    LoadStmt,
    StoreStmt,
    Var,
    eval_expr,
    expr_equal,
    expr_vars,
)


# -- expressions ---------------------------------------------------------------

def test_eval_const_and_var():
    assert eval_expr(Const(5), {}) == 5
    assert eval_expr(Var("x"), {"x": 3}) == 3


def test_eval_unbound_var_raises():
    with pytest.raises(NameError, match="unbound"):
        eval_expr(Var("missing"), {})


def test_eval_bin_ops():
    env = {"a": 7, "b": 2}
    assert eval_expr(Bin("+", Var("a"), Var("b")), env) == 9
    assert eval_expr(Bin("-", Var("a"), Var("b")), env) == 5
    assert eval_expr(Bin("*", Var("a"), Var("b")), env) == 14
    assert eval_expr(Bin("//", Var("a"), Var("b")), env) == 3
    assert eval_expr(Bin("min", Var("a"), Var("b")), env) == 2
    assert eval_expr(Bin("==", Var("a"), Const(7)), env) is True
    assert eval_expr(Bin("<", Var("b"), Var("a")), env) is True


def test_eval_unknown_op_raises():
    with pytest.raises(ValueError, match="operator"):
        eval_expr(Bin("^", Const(1), Const(2)), {})


def test_expr_vars_collects_all_names():
    expr = Bin("+", Bin("*", Var("i"), Const(8)), Var("t"))
    assert expr_vars(expr) == {"i", "t"}
    assert expr_vars(Const(1)) == set()


def test_expr_equal_is_structural():
    a = Bin("+", Var("i"), Const(1))
    b = Bin("+", Var("i"), Const(1))
    c = Bin("+", Var("i"), Const(2))
    assert expr_equal(a, b)
    assert not expr_equal(a, c)


@given(st.integers(min_value=-100, max_value=100),
       st.integers(min_value=-100, max_value=100))
def test_eval_matches_python(a, b):
    env = {"a": a, "b": b}
    assert eval_expr(Bin("+", Var("a"), Var("b")), env) == a + b
    assert eval_expr(Bin("max", Var("a"), Var("b")), env) == max(a, b)


# -- kernel construction / validation -----------------------------------------------

def tiny_kernel():
    return Kernel(
        name="copy",
        arrays=["src", "dst"],
        params=["n"],
        body=[ForStmt("i", Const(0), Var("n"), [
            LoadStmt("t", "src", Var("i")),
            StoreStmt("dst", Var("i"), Var("t")),
        ])],
    )


def test_stmt_ids_assigned_in_program_order():
    kernel = tiny_kernel()
    ids = [stmt.stmt_id for stmt, _p in kernel.all_statements()]
    assert ids == [0, 1, 2]


def test_walk_reports_parents():
    kernel = tiny_kernel()
    stmts = list(kernel.all_statements())
    loop, parents = stmts[0]
    assert parents == ()
    load, parents = stmts[1]
    assert parents == (loop,)


def test_undeclared_array_rejected():
    with pytest.raises(ValueError, match="undeclared array"):
        Kernel("bad", ["a"], [], [LoadStmt("t", "nope", Const(0))])


def test_unbound_name_rejected():
    with pytest.raises(ValueError, match="unbound"):
        Kernel("bad", ["a"], [], [LoadStmt("t", "a", Var("i"))])


def test_unbound_loop_bound_rejected():
    with pytest.raises(ValueError, match="unbound"):
        Kernel("bad", ["a"], [], [ForStmt("i", Const(0), Var("n"), [])])


def test_temp_scoping_follows_program_order():
    # Using a temp before its definition is rejected.
    with pytest.raises(ValueError, match="unbound"):
        Kernel("bad", ["a"], [], [
            StoreStmt("a", Const(0), Var("t")),
            LoadStmt("t", "a", Const(0)),
        ])


def test_loop_scoped_temp_not_visible_outside():
    with pytest.raises(ValueError, match="unbound"):
        Kernel("bad", ["a"], ["n"], [
            ForStmt("i", Const(0), Var("n"), [LoadStmt("t", "a", Var("i"))]),
            StoreStmt("a", Const(0), Var("t")),
        ])


def test_accumulator_seeded_before_loop_is_visible_after():
    Kernel("ok", ["a"], ["n"], [
        ComputeStmt("acc", Const(0)),
        ForStmt("i", Const(0), Var("n"), [
            LoadStmt("v", "a", Var("i")),
            ComputeStmt("acc", Bin("+", Var("acc"), Var("v"))),
        ]),
        StoreStmt("a", Const(0), Var("acc")),
    ])


def test_fetchadd_validates_and_binds_dest():
    Kernel("ok", ["counter", "out"], [], [
        FetchAddStmt("slot", "counter", Const(0), Const(1)),
        StoreStmt("out", Var("slot"), Const(1)),
    ])
    with pytest.raises(ValueError, match="undeclared array"):
        Kernel("bad", ["out"], [], [
            FetchAddStmt("slot", "counter", Const(0), Const(1)),
        ])


def test_if_condition_names_checked():
    with pytest.raises(ValueError, match="unbound"):
        Kernel("bad", ["a"], [], [IfStmt(Var("cond"), [])])


def test_non_statement_rejected():
    with pytest.raises(TypeError):
        Kernel("bad", ["a"], [], ["not a statement"])
