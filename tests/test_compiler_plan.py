"""Tests for per-technique slicing plans."""


from repro.compiler import Technique, analyze, plan_for
from repro.compiler.ir import ForStmt, IfStmt, LoadStmt, StoreStmt, expr_vars
from repro.compiler.plan import LoadAction
from repro.kernels.bfs import build_bfs_level_kernel
from repro.kernels.sdhp import build_sdhp_kernel
from repro.kernels.spmm import build_spmm_kernel
from repro.kernels.spmv import build_spmv_kernel


def load_id(kernel, array, nth=0):
    found = [stmt.stmt_id for stmt, _p in kernel.all_statements()
             if isinstance(stmt, LoadStmt) and stmt.array == array]
    return found[nth]


def test_doall_plan_runs_everything():
    kernel = build_spmv_kernel()
    plan = plan_for(analyze(kernel), Technique.DOALL)
    all_ids = {stmt.stmt_id for stmt, _p in kernel.all_statements()}
    assert plan.execute_stmts == all_ids
    assert all(action is LoadAction.LOAD for action in plan.execute_actions.values())
    assert not plan.fallback_doall


def test_maple_plan_spmv_actions():
    kernel = build_spmv_kernel()
    plan = plan_for(analyze(kernel), Technique.MAPLE_DECOUPLE)
    x = load_id(kernel, "x")
    col = load_id(kernel, "col_idx")
    vals = load_id(kernel, "vals")
    assert plan.access_actions[x] is LoadAction.PRODUCE_PTR
    assert plan.execute_actions[x] is LoadAction.CONSUME
    assert plan.access_actions[col] is LoadAction.LOAD
    assert plan.execute_actions[col] is LoadAction.SKIP
    assert plan.access_actions[vals] is LoadAction.SKIP
    assert plan.execute_actions[vals] is LoadAction.LOAD


def test_queue_op_parity_between_slices():
    """Every produce on the Access side has exactly one matching consume on
    the Execute side, at the same statement — the FIFO protocol invariant."""
    for kernel in (build_spmv_kernel(), build_sdhp_kernel(),
                   build_bfs_level_kernel()):
        for technique in (Technique.MAPLE_DECOUPLE, Technique.SW_DECOUPLE,
                          Technique.DESC_DECOUPLE):
            plan = plan_for(analyze(kernel), technique)
            assert not plan.fallback_doall
            produces = {sid for sid, a in plan.access_actions.items()
                        if a in (LoadAction.PRODUCE_PTR,
                                 LoadAction.LOAD_AND_PRODUCE)}
            consumes = {sid for sid, a in plan.execute_actions.items()
                        if a is LoadAction.CONSUME}
            assert produces == consumes, (kernel.name, technique)


def test_slices_have_their_definitions():
    """Closure property: every expression a slice evaluates only uses
    names defined by statements in that slice (or loop vars / params)."""
    for kernel in (build_spmv_kernel(), build_sdhp_kernel(),
                   build_bfs_level_kernel()):
        analysis = analyze(kernel)
        for technique in (Technique.MAPLE_DECOUPLE, Technique.DESC_DECOUPLE):
            plan = plan_for(analysis, technique)
            for which, stmts, actions in (
                    ("access", plan.access_stmts, plan.access_actions),
                    ("execute", plan.execute_stmts, plan.execute_actions)):
                defined = set(kernel.params)
                for stmt, _p in kernel.all_statements():
                    if stmt.stmt_id not in stmts:
                        continue
                    if isinstance(stmt, ForStmt):
                        defined.add(stmt.var)
                for stmt, _p in kernel.all_statements():
                    if stmt.stmt_id not in stmts:
                        continue
                    if hasattr(stmt, "dest"):
                        defined.add(stmt.dest)
                for stmt, _p in kernel.all_statements():
                    if stmt.stmt_id not in stmts:
                        continue
                    needed = set()
                    if isinstance(stmt, LoadStmt):
                        if actions.get(stmt.stmt_id) in (
                                LoadAction.LOAD, LoadAction.LOAD_AND_PRODUCE,
                                LoadAction.PRODUCE_PTR):
                            needed = expr_vars(stmt.index)
                    elif isinstance(stmt, StoreStmt):
                        needed = expr_vars(stmt.index) | expr_vars(stmt.value)
                    elif isinstance(stmt, ForStmt):
                        needed = expr_vars(stmt.lo) | expr_vars(stmt.hi)
                    elif isinstance(stmt, IfStmt):
                        needed = expr_vars(stmt.cond)
                    missing = needed - defined
                    assert not missing, (kernel.name, technique, which,
                                         stmt, missing)


def test_sw_decouple_loads_imas_on_access_side():
    kernel = build_spmv_kernel()
    plan = plan_for(analyze(kernel), Technique.SW_DECOUPLE)
    x = load_id(kernel, "x")
    assert plan.access_actions[x] is LoadAction.LOAD_AND_PRODUCE  # stalls!


def test_desc_execute_has_no_memory_loads():
    kernel = build_spmv_kernel()
    plan = plan_for(analyze(kernel), Technique.DESC_DECOUPLE)
    assert plan.store_via_supply
    for sid, action in plan.execute_actions.items():
        assert action in (LoadAction.CONSUME, LoadAction.SKIP)


def test_bfs_indirect_bounds_forwarded_not_replicated():
    kernel = build_bfs_level_kernel()
    plan = plan_for(analyze(kernel), Technique.MAPLE_DECOUPLE)
    row0 = load_id(kernel, "row_ptr", 0)
    assert plan.access_actions[row0] is LoadAction.LOAD_AND_PRODUCE
    assert plan.execute_actions[row0] is LoadAction.CONSUME


def test_spmm_decoupling_falls_back():
    plan = plan_for(analyze(build_spmm_kernel()), Technique.MAPLE_DECOUPLE)
    assert plan.fallback_doall
    assert "RMW" in plan.fallback_reason
    assert not plan.access_stmts


def test_sw_prefetch_plan_has_chains():
    plan = plan_for(analyze(build_spmv_kernel()), Technique.SW_PREFETCH)
    assert not plan.fallback_doall
    assert len(plan.prefetch_chains) == 1
    assert plan.prefetch_chains[0].ima_load.array == "x"


def test_lima_queue_plan_spmv():
    kernel = build_spmv_kernel()
    plan = plan_for(analyze(kernel), Technique.LIMA_PREFETCH)
    assert not plan.fallback_doall
    assert plan.lima_mode == "queue"
    x = load_id(kernel, "x")
    col = load_id(kernel, "col_idx")
    assert plan.execute_actions[x] is LoadAction.CONSUME
    assert plan.execute_actions[col] is LoadAction.SKIP  # address-only
    # SPMV's inner loop has load-defined bounds -> lookahead recipe exists.
    assert x in plan.lima_lookahead
    assert len(plan.lima_lookahead[x].bound_loads) == 2


def test_lima_queue_refuses_rmw_kernels():
    plan = plan_for(analyze(build_spmm_kernel()), Technique.LIMA_PREFETCH)
    assert plan.fallback_doall
    assert "LIMA_LLC" in plan.fallback_reason


def test_lima_llc_accepts_rmw_kernels():
    plan = plan_for(analyze(build_spmm_kernel()), Technique.LIMA_LLC)
    assert not plan.fallback_doall
    assert plan.lima_mode == "llc"
    # Demand loads stay loads in speculative mode (coherence preserved).
    t_chain = plan.lima_chains[0]
    assert plan.execute_actions[t_chain.ima_load.stmt_id] is LoadAction.LOAD


def test_sdhp_flat_loop_has_no_lookahead():
    kernel = build_sdhp_kernel()
    plan = plan_for(analyze(kernel), Technique.LIMA_PREFETCH)
    assert not plan.fallback_doall
    assert not plan.lima_lookahead  # top-level loop: one run covers all


def test_bfs_lima_has_no_lookahead_but_works():
    # BFS bounds come from row_ptr[v] with v itself loaded -> the simple
    # shift-the-outer-var recipe does not apply.
    plan = plan_for(analyze(build_bfs_level_kernel()), Technique.LIMA_PREFETCH)
    assert not plan.fallback_doall
    assert not plan.lima_lookahead
