"""Tests for the in-order core model."""

import pytest

from repro.cpu import Alu, Amo, Load, Prefetch, Store, Sync, Thread
from repro.params import SoCConfig
from repro.system import Soc
from repro.vm.os_model import SegmentationFault


def build(**overrides):
    soc = Soc(SoCConfig().with_overrides(**overrides) if overrides else None)
    aspace = soc.new_process()
    return soc, aspace


def run_program(soc, aspace, program, core=0):
    return soc.run_threads([(core, Thread(program, aspace, "t"))])


def test_alu_costs_its_cycles():
    soc, aspace = build()

    def program():
        yield Alu(10)
        yield Alu(5)

    elapsed = run_program(soc, aspace, program())
    assert elapsed == 15
    assert soc.cores[0].stats.get("alu_ops") == 2
    assert soc.cores[0].stats.get("instructions") == 2


def test_alu_validation():
    with pytest.raises(ValueError):
        Alu(0)


def test_load_returns_stored_value_and_counts():
    soc, aspace = build()
    arr = soc.array(aspace, [7.5, 8.5], name="a")
    got = []

    def program():
        got.append((yield Load(arr.addr(1))))

    run_program(soc, aspace, program())
    assert got == [8.5]
    core = soc.cores[0]
    assert core.stats.get("loads") == 1
    assert core.stats.histogram("load_latency").count == 1


def test_store_buffer_makes_stores_cheap():
    soc, aspace = build()
    arr = soc.array(aspace, 16, name="a")
    times = []

    def program():
        yield Load(arr.addr(8))  # warm the TLB (translation is blocking)
        start = soc.sim.now
        yield Store(arr.addr(0), 42)
        times.append(soc.sim.now - start)

    run_program(soc, aspace, program())
    assert arr.read(0) == 42
    # The store retires into the buffer after translation, far below a
    # DRAM write-allocate miss.
    assert times[0] < 50


def test_store_buffer_backpressure_when_full():
    soc, aspace = build(store_buffer_entries=2)
    cfg = soc.config
    # Each store misses a distinct line -> each drain takes ~DRAM latency.
    arr = soc.array(aspace, 8 * 32, name="a")

    def program():
        for i in range(8):
            yield Store(arr.addr(8 * i), i)

    elapsed = run_program(soc, aspace, program())
    # 8 stores through a 2-deep buffer cannot all hide: the run must wait
    # for several DRAM round trips.
    assert elapsed > 2 * cfg.dram_latency


def test_store_value_visible_immediately_to_other_core():
    soc, aspace = build()
    arr = soc.array(aspace, 8, name="a")
    got = {}

    def writer():
        yield Store(arr.addr(0), 99)
        yield Alu(1)

    def reader():
        yield Alu(50)  # store retired by now
        got["v"] = yield Load(arr.addr(0))

    soc.run_threads([(0, Thread(writer(), aspace, "w")),
                     (1, Thread(reader(), aspace, "r"))])
    assert got["v"] == 99


def test_prefetch_is_nonblocking_and_counted():
    soc, aspace = build()
    arr = soc.array(aspace, 64, name="a")

    def program():
        yield Load(arr.addr(63))  # warm the TLB; different line than addr(0)
        start = soc.sim.now
        yield Prefetch(arr.addr(0))
        issue_time = soc.sim.now - start
        assert issue_time < 20  # issue slot only, not the miss
        yield Alu(600)
        yield Load(arr.addr(0))

    run_program(soc, aspace, program())
    core = soc.cores[0]
    assert core.stats.get("prefetches") == 1
    # The later demand load hit the prefetched line.
    hist = core.stats.histogram("load_latency")
    assert hist.samples[-1] <= soc.config.l1_latency + 1


def test_mshr_serializes_demand_behind_prefetch():
    soc, aspace = build(core_mshrs=1)
    arr = soc.array(aspace, 64, name="a")
    lat = {}

    def program():
        yield Load(arr.addr(63))          # warm the TLB
        yield Prefetch(arr.addr(0))       # occupies the only MSHR
        start = soc.sim.now
        yield Load(arr.addr(8))           # different line: must wait
        lat["demand"] = soc.sim.now - start

    run_program(soc, aspace, program())
    # The demand miss waited for the prefetch fill before starting.
    assert lat["demand"] > 1.5 * soc.config.dram_latency


def test_amo_is_atomic_across_cores():
    soc, aspace = build()
    counter = soc.array(aspace, 1, name="c")

    def bump():
        for _ in range(25):
            yield Amo(counter.addr(0), lambda v: v + 1)

    soc.run_threads([(0, Thread(bump(), aspace, "a")),
                     (1, Thread(bump(), aspace, "b"))])
    assert counter.read(0) == 50


def test_sync_instruction_uses_barrier():
    soc, aspace = build()
    barrier = soc.barrier(2)
    times = []

    def program(delay):
        yield Alu(delay)
        yield Sync(barrier)
        times.append(soc.sim.now)

    soc.run_threads([(0, Thread(program(5), aspace, "a")),
                     (1, Thread(program(60), aspace, "b"))])
    assert times == [60, 60]


def test_segfault_propagates_out_of_thread():
    soc, aspace = build()

    def program():
        yield Load(0x7000_0000)  # no VMA there

    with pytest.raises(SegmentationFault):
        run_program(soc, aspace, program())


def test_lazy_page_faults_are_transparent():
    soc, aspace = build()
    arr = soc.array(aspace, 8, name="lazy", lazy=True)
    got = {}

    def program():
        yield Store(arr.addr(0), 5)
        got["v"] = yield Load(arr.addr(0))

    run_program(soc, aspace, program())
    assert got["v"] == 5
    assert soc.stats.get("os.demand_mapped_pages") == 1


def test_tlb_miss_then_hit_latency_difference():
    soc, aspace = build()
    arr = soc.array(aspace, 8, name="a")

    def program():
        yield Load(arr.addr(0))  # cold: PTW + DRAM
        yield Load(arr.addr(1))  # TLB + L1 hit

    run_program(soc, aspace, program())
    hist = soc.cores[0].stats.histogram("load_latency")
    assert hist.samples[0] > hist.samples[1]
    assert hist.samples[1] == soc.config.l1_latency


def test_unknown_instruction_rejected():
    soc, aspace = build()

    def program():
        yield "bogus"

    with pytest.raises(TypeError):
        run_program(soc, aspace, program())
