"""Tests for dataset containers and generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    CsrMatrix,
    kronecker_graph,
    livejournal_surrogate,
    power_law_graph,
    random_csr,
    riscv_tests_matrix,
    riscv_tests_vector,
    wikipedia_surrogate,
    youtube_surrogate,
)
from repro.datasets.graphs import reference_bfs


def test_csr_roundtrip_through_dense():
    dense = np.array([[0, 1.5, 0], [2.0, 0, 0], [0, 0, 3.0]])
    csr = CsrMatrix.from_dense(dense)
    assert csr.nnz == 3
    np.testing.assert_allclose(csr.to_dense(), dense)


def test_csr_validation_catches_bad_extents():
    with pytest.raises(ValueError):
        CsrMatrix(2, 2, [0, 1], [0], [1.0])  # row_ptr too short
    with pytest.raises(ValueError):
        CsrMatrix(2, 2, [0, 2, 1], [0, 1], [1.0, 2.0])  # decreasing
    with pytest.raises(ValueError):
        CsrMatrix(2, 2, [0, 1, 2], [0, 5], [1.0, 2.0])  # col out of range


def test_csr_row_of_nnz():
    dense = np.array([[1, 1, 0], [0, 0, 0], [0, 0, 1]])
    csr = CsrMatrix.from_dense(dense)
    assert list(csr.row_of_nnz()) == [0, 0, 2]


def test_csr_to_csc_preserves_matrix():
    csr = random_csr(10, 12, nnz_per_row=3, seed=5)
    csc = csr.to_csc()
    np.testing.assert_allclose(csc.to_dense(), csr.to_dense())


def test_random_csr_is_deterministic():
    a = random_csr(20, 50, 4, seed=9)
    b = random_csr(20, 50, 4, seed=9)
    np.testing.assert_array_equal(a.col_idx, b.col_idx)
    np.testing.assert_array_equal(a.values, b.values)
    c = random_csr(20, 50, 4, seed=10)
    assert not np.array_equal(a.col_idx, c.col_idx)


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=30),
       st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=100))
@settings(max_examples=25)
def test_random_csr_always_valid(rows, cols, nnz, seed):
    csr = random_csr(rows, cols, nnz, seed)
    # __post_init__ validates; additionally every row is sorted.
    for row in range(rows):
        segment = csr.col_idx[csr.row_ptr[row]:csr.row_ptr[row + 1]]
        assert list(segment) == sorted(segment)
        assert len(set(segment)) == len(segment)  # no duplicate columns


def test_power_law_graph_structure():
    graph = power_law_graph(200, avg_degree=6, seed=3)
    assert graph.num_vertices == 200
    assert graph.num_edges > 200  # self-loops removed, most edges survive
    in_degrees = np.bincount(graph.neighbors, minlength=graph.num_vertices)
    assert in_degrees.max() > 5 * in_degrees.mean()  # hubs exist


def test_power_law_graph_no_self_loops():
    graph = power_law_graph(100, avg_degree=4, seed=1)
    for vertex in range(graph.num_vertices):
        assert vertex not in graph.neighbors_of(vertex)


def test_surrogates_have_expected_relative_density():
    wiki = wikipedia_surrogate(scale=512)
    you = youtube_surrogate(scale=512)
    live = livejournal_surrogate(scale=512)
    assert live.num_edges > wiki.num_edges > you.num_edges


def test_kronecker_graph_deterministic_and_valid():
    a = kronecker_graph(8, edges_per_vertex=4, seed=5)
    b = kronecker_graph(8, edges_per_vertex=4, seed=5)
    assert a.num_vertices == 256
    np.testing.assert_array_equal(a.neighbors, b.neighbors)


def test_kronecker_initiator_validation():
    with pytest.raises(ValueError):
        kronecker_graph(4, 2, seed=1, initiator=(0.5, 0.5, 0.5, 0.5))
    with pytest.raises(ValueError):
        kronecker_graph(0, 2, seed=1)


def test_kronecker_degree_skew():
    graph = kronecker_graph(9, edges_per_vertex=8, seed=2)
    degrees = np.diff(graph.row_ptr)
    assert degrees.max() > 4 * max(degrees.mean(), 1)


def test_reference_bfs_small_chain():
    # 0 -> 1 -> 2, and 3 unreachable
    from repro.datasets.graphs import Graph
    graph = Graph("chain", 4, [0, 1, 2, 2, 2], [1, 2])
    assert reference_bfs(graph, 0) == [0, 1, 2, -1]


def test_reference_bfs_matches_networkx_style_on_random_graph():
    graph = power_law_graph(100, avg_degree=5, seed=7)
    dist = reference_bfs(graph, 0)
    # sanity: root is 0, every reachable vertex has a parent one closer.
    assert dist[0] == 0
    for vertex in range(graph.num_vertices):
        if dist[vertex] > 0:
            assert any(dist[p] == dist[vertex] - 1
                       for p in range(graph.num_vertices)
                       if vertex in graph.neighbors_of(p))


def test_riscv_tests_defaults_exceed_caches():
    matrix = riscv_tests_matrix()
    vector = riscv_tests_vector()
    assert len(vector) == matrix.cols
    assert len(vector) * 8 > 64 * 1024  # dense operand > L2
