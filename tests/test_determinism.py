"""Golden determinism: the fast-path engine changes nothing observable.

The optimized event loop in :mod:`repro.sim.engine` (slot event records,
same-cycle ready deque, batch drain) must execute the exact event order
of the seed ``(time, seq, lambda)`` heapq engine, which is preserved
verbatim as :class:`repro.sim.reference.ReferenceSimulator`.  This runs
a small fig8 workload twice on the fast engine (run-to-run determinism)
and once on the reference engine (cross-engine equivalence), comparing
final cycle counts, executed-event totals, and the full statistics dump.
"""

import repro.system.soc as soc_module
from repro.harness.techniques import run_workload
from repro.sim.reference import ReferenceSimulator


def _run_golden():
    result = run_workload("spmv", "maple-decouple", threads=4)
    sim = result.soc.sim
    return result.cycles, sim.events_executed, result.soc.stats.snapshot()


def test_fast_engine_is_deterministic_run_to_run():
    cycles_a, events_a, stats_a = _run_golden()
    cycles_b, events_b, stats_b = _run_golden()
    assert cycles_a == cycles_b
    assert events_a == events_b
    assert stats_a == stats_b


def test_fast_engine_matches_reference_engine(monkeypatch):
    cycles_fast, events_fast, stats_fast = _run_golden()

    monkeypatch.setattr(soc_module, "Simulator", ReferenceSimulator)
    cycles_ref, events_ref, stats_ref = _run_golden()

    assert cycles_fast == cycles_ref
    assert events_fast == events_ref
    # The whole Stats dump — every counter and histogram across cores,
    # caches, NoC planes, and MAPLE units — must be bit-identical.
    assert stats_fast == stats_ref
