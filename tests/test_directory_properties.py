"""Property tests for the sliced-L2 home-node directory.

Hypothesis drives random write-sharing interleavings (several cores,
random load/store sequences over a small shared array) across mesh
geometries from 2x2 to 8x8 and 1-4 directory slices, and checks the
protocol's load-bearing invariants:

- **Single writer, ever.**  :meth:`Directory._grant` raises
  :class:`DirectoryError` the moment a grant would coexist with another
  dirty copy, so *any* interleaving that completes proves the invariant
  held at every grant.  The post-run ledger must also be consistent:
  every owned line's owner still shares it, and no non-owner holds it
  dirty.
- **Invalidation accounting.**  Each upgrade invalidates exactly the
  sharer set the home observed (the audit ring records it), so the
  ``directory.invalidations`` counter must equal the summed audit sharer
  counts — and every invalidation/recall must have crossed the NoC as a
  message served by some ``core*.inval`` port tap.
- **Silent-grant neutrality.**  With one core there is never another
  sharer, so the directory must add *zero* messages and zero cycles:
  a single-core run is cycle- and event-identical with the directory on
  or off.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import Load, Store, Thread
from repro.mem import LineState
from repro.mem.directory import Directory, interleaved_home_tiles
from repro.params import SoCConfig
from repro.system import Soc

#: One op: (is_store, word index into a 32-word shared array, value).
#: 32 words span several cache lines, so home slices and sharer sets
#: both get exercised without the state space exploding.
_OP = st.tuples(st.booleans(), st.integers(0, 31), st.integers(1, 9))
_PROGRAM = st.lists(_OP, min_size=1, max_size=10)
_SIDES = st.sampled_from((2, 2, 3, 4, 8))
_SLICES = st.sampled_from((1, 2, 4))


def _build_soc(side: int, slices: int, n_threads: int,
               directory: bool = True) -> Soc:
    return Soc(SoCConfig(
        name=f"dirprop-{side}x{side}",
        num_cores=min(n_threads, side * side - 1),
        mesh_cols=side, mesh_rows=side, maple_instances=1,
        maple_placement="per-quadrant" if side >= 3 else "legacy",
        directory=directory, directory_slices=slices))


def _run_sharing(soc: Soc, programs):
    """Run one random program per core over one shared array; quiesce."""
    aspace = soc.new_process()
    arr = soc.array(aspace, [0.0] * 32, name="shared")

    def prog(ops, me):
        for is_store, idx, val in ops:
            if is_store:
                yield Store(arr.addr(idx), float(me * 1000 + val))
            else:
                yield Load(arr.addr(idx))

    cycles = soc.run_threads(
        [(c, Thread(prog(ops, c), aspace, f"t{c}"))
         for c, ops in enumerate(programs[:len(soc.cores)])])
    soc.drain()
    return cycles


@settings(max_examples=40)
@given(side=_SIDES, slices=_SLICES,
       programs=st.lists(_PROGRAM, min_size=2, max_size=4))
def test_never_two_simultaneous_owners(side, slices, programs):
    soc = _build_soc(side, slices, len(programs))
    # Any grant that would coexist with another dirty copy raises
    # DirectoryError inside this run — completing it IS the invariant.
    _run_sharing(soc, programs)
    for line, owner in soc.directory.owners.items():
        sharers = soc.memsys.sharers_of(line)
        assert owner in sharers, (
            f"line {line:#x} owned by core {owner} who no longer shares it")
        for other in sharers - {owner}:
            assert soc.memsys.l1s[other].state_of(line) is not \
                LineState.MODIFIED, (
                f"line {line:#x}: non-owner core {other} is dirty")


@settings(max_examples=40)
@given(side=_SIDES, slices=_SLICES,
       programs=st.lists(_PROGRAM, min_size=2, max_size=4))
def test_invalidation_count_matches_sharer_sets(side, slices, programs):
    soc = _build_soc(side, slices, len(programs))
    _run_sharing(soc, programs)
    tele = soc.directory.telemetry()
    audited = sum(len(detail) for _, event, _, _, detail in
                  soc.directory.audit if event == "upgrade")
    assert tele["invalidations"] == audited
    # Every invalidation and recall crossed the NoC as a real message.
    served = sum(t["served"] for name, t in soc.port_telemetry().items()
                 if name.endswith(".inval"))
    assert served == tele["invalidations"] + tele["transfers"]
    assert soc.stats_snapshot()["directory.invalidations"] == \
        tele["invalidations"]


@settings(max_examples=25)
@given(slices=_SLICES, program=_PROGRAM)
def test_single_core_run_identical_with_directory_on_or_off(slices, program):
    results = {}
    for directory in (False, True):
        soc = _build_soc(2, slices, 1, directory=directory)
        cycles = _run_sharing(soc, [program])
        results[directory] = (cycles, soc.sim.events_executed)
    assert results[True] == results[False], (
        f"directory changed a single-core run: {results}")


def test_home_tiles_interleave_across_the_mesh():
    tiles = interleaved_home_tiles(8, 8, 4)
    assert len(tiles) == len(set(tiles)) == 4
    assert all(0 <= t < 64 for t in tiles)
    # One home per quadrant, so slices sit in distinct mesh quadrants.
    quadrants = {(t % 8 >= 4, t // 8 >= 4) for t in tiles}
    assert len(quadrants) == 4


def test_directory_requires_a_home_tile():
    with pytest.raises(ValueError, match="home tile"):
        Directory(None, None, None, None, [], {}, None, None)
