"""Unit tests for the ECC + poison-propagation model.

The DRAM flip hook (``MemorySystem.flip(addr) -> None | (nflips, leaf,
bit)``) is driven directly here, so each test controls exactly which
read takes a flip.  Policy under test (SECDED):

- ECC on, single-bit flip: corrected in place, data unchanged;
- ECC on, double-bit flip: detected-but-uncorrectable — the line (or
  word) is *poisoned*; demand paths scrub + re-fetch up to the
  configured limit, then raise a typed :class:`DataIntegrityError`;
  speculative prefetches simply drop the poisoned fill;
- ECC off: the flip lands silently — on a coherent fill it corrupts
  backing memory so the wrong value persists into program output (what
  the negative-control oracle must catch).

The scratchpad SRAM runs the same policy per slot
(:meth:`HwQueue.corrupt_slot`).
"""

import pytest

from repro.core.queues import HwQueue
from repro.mem import MemorySystem
from repro.mem.dram import Poison, is_poisoned
from repro.params import SoCConfig
from repro.sim import DataIntegrityError, Simulator, Stats, corrupt_value


def make_system(**overrides):
    cfg = SoCConfig().with_overrides(**overrides) if overrides else SoCConfig()
    sim = Simulator()
    stats = Stats()
    ms = MemorySystem(sim, cfg, stats)
    ms.add_core(0)
    return sim, ms, stats


def run_access(sim, gen):
    box = {}

    def wrapper():
        box["value"] = yield from gen

    sim.spawn(wrapper())
    sim.run()
    return box.get("value")


def flip_once(fate):
    """A flip hook that fires on the first read only — so the re-fetch
    (a fresh DRAM access, hence a fresh fate draw) comes back clean."""
    armed = {"on": True}

    def flip(addr):
        if armed["on"]:
            armed["on"] = False
            return fate
        return None

    return flip


# -- coherent fills (load/store/amo) ----------------------------------------------


def test_single_flip_on_fill_is_corrected():
    sim, ms, stats = make_system()
    ms.mem.write_word(0x1000, 42)
    ms.flip = flip_once((1, 0.0, 0.4))
    assert run_access(sim, ms.load(0, 0x1000)) == 42
    assert stats.get("ecc.corrected") == 1
    assert stats.get("ecc.poisoned") == 0


def test_double_flip_on_fill_is_scrubbed_and_refetched():
    sim, ms, stats = make_system()
    ms.mem.write_word(0x1000, 42)
    ms.flip = flip_once((2, 0.0, 0.4))
    assert run_access(sim, ms.load(0, 0x1000)) == 42
    assert stats.get("ecc.poisoned") == 1
    assert stats.get("ecc.refetches") == 1
    assert ms.debug_state()["l2_poisoned"] == []   # scrubbed, not resident


def test_persistent_double_flips_raise_typed_error():
    sim, ms, stats = make_system()
    ms.flip = lambda addr: (2, 0.0, 0.4)           # every fetch poisons
    with pytest.raises(DataIntegrityError) as exc:
        run_access(sim, ms.load(0, 0x2000))
    err = exc.value
    assert err.component == "core0.l1"
    assert err.kind == "dram_poison"
    assert err.attempts == ms.config.poison_refetch_limit + 1
    # One scrub per poisoned attempt, the final one included.
    assert stats.get("ecc.refetches") == ms.config.poison_refetch_limit + 1


def test_without_ecc_a_fill_flip_corrupts_backing_memory():
    sim, ms, stats = make_system(ecc=False)
    ms.mem.write_word(0x1000, 42)
    ms.flip = flip_once((1, 0.0, 0.4))
    value = run_access(sim, ms.load(0, 0x1000))
    assert value != 42                             # silently wrong...
    assert ms.mem.read_word(0x1000) == value       # ...and persistent
    assert stats.get("ecc.silent") == 1
    assert stats.get("ecc.corrected") == 0


# -- device word/line paths (MAPLE, LIMA) -----------------------------------------


def test_dram_word_double_flip_returns_poison_marker():
    sim, ms, stats = make_system()
    ms.mem.write_word(0x3000, 7)
    ms.flip = lambda addr: (2, 0.0, 0.1)
    value = run_access(sim, ms.load_dram(0x3000))
    assert is_poisoned(value)
    assert value.addr == 0x3000
    assert stats.get("ecc.poisoned") == 1
    ms.flip = None                                 # device re-fetch is clean
    assert run_access(sim, ms.load_dram(0x3000)) == 7


def test_dram_word_single_flip_is_corrected():
    sim, ms, stats = make_system()
    ms.mem.write_word(0x3000, 7)
    ms.flip = lambda addr: (1, 0.0, 0.1)
    assert run_access(sim, ms.load_dram(0x3000)) == 7
    assert stats.get("ecc.corrected") == 1


def test_dram_line_double_flip_poisons_one_word():
    sim, ms, stats = make_system()
    for i in range(8):
        ms.mem.write_word(0x4000 + 8 * i, i)
    ms.flip = flip_once((2, 0.5, 0.1))             # leaf 0.5 -> word 4
    words = run_access(sim, ms.load_dram_line(0x4000))
    assert [is_poisoned(w) for w in words].count(True) == 1
    assert is_poisoned(words[4])
    assert [w for w in words if not is_poisoned(w)] == [0, 1, 2, 3, 5, 6, 7]


def test_llc_load_refetches_past_poison():
    sim, ms, stats = make_system()
    ms.mem.write_word(0x5000, 11)
    ms.flip = flip_once((2, 0.0, 0.1))
    assert run_access(sim, ms.load_llc(0x5000)) == 11
    assert stats.get("ecc.refetches") == 1


# -- speculative prefetches drop poison -------------------------------------------


def test_poisoned_l1_prefetch_is_dropped_not_consumed():
    sim, ms, stats = make_system()
    ms.mem.write_word(0x6000, 13)
    ms.flip = flip_once((2, 0.0, 0.1))
    ms.prefetch_l1(0, 0x6000)
    sim.run()
    assert stats.get("ecc.prefetch_drops") == 1
    line = 0x6000 & ~(ms.config.line_size - 1)
    assert not ms.l1s[0].contains(line)
    assert not ms.l2.contains(line)
    assert run_access(sim, ms.load(0, 0x6000)) == 13   # demand path clean


def test_poisoned_l2_prefetch_is_dropped():
    sim, ms, stats = make_system()
    ms.mem.write_word(0x7000, 17)
    ms.flip = flip_once((2, 0.0, 0.1))
    ms.prefetch_l2(0x7000)
    sim.run()
    assert stats.get("ecc.prefetch_drops") == 1
    assert not ms.l2.contains(0x7000 & ~(ms.config.line_size - 1))
    assert run_access(sim, ms.load(0, 0x7000)) == 17


# -- scratchpad SRAM (HwQueue) ----------------------------------------------------


def make_queue(capacity=4, ecc=True):
    sim = Simulator()
    stats = Stats()
    return sim, HwQueue(sim, 0, capacity, stats.scoped("q"), ecc=ecc)


def drive(sim, gen):
    box = {}

    def wrapper():
        box["value"] = yield from gen

    sim.spawn(wrapper())
    sim.run()
    return box.get("value")


def test_corrupt_slot_outcomes_follow_the_ecc_policy():
    sim, queue = make_queue()
    assert queue.corrupt_slot(0, 1, 0.0, 0.1) == "dead"    # empty slot
    index = drive(sim, queue.reserve())
    assert queue.corrupt_slot(index, 1, 0.0, 0.1) == "dead"  # reserved, no data
    queue.fill(index, 123)
    assert queue.corrupt_slot(index, 1, 0.0, 0.1) == "corrected"
    assert drive(sim, queue.pop()) == 123
    assert queue.ecc_corrected == 1


def test_double_flip_poisons_the_slot():
    sim, queue = make_queue()
    index = drive(sim, queue.reserve())
    queue.fill(index, 123)
    assert queue.corrupt_slot(index, 2, 0.0, 0.1) == "poisoned"
    assert queue.ecc_poisoned == 1
    assert is_poisoned(drive(sim, queue.pop()))


def test_without_ecc_the_slot_is_silently_corrupted():
    sim, queue = make_queue(ecc=False)
    index = drive(sim, queue.reserve())
    queue.fill(index, 123)
    assert queue.corrupt_slot(index, 1, 0.0, 0.25) == "silent"
    assert queue.silent_corruptions == 1
    value = drive(sim, queue.pop())
    assert value != 123 and not is_poisoned(value)


# -- primitives -------------------------------------------------------------------


def test_corrupt_value_bit_flips_are_involutions_on_ints():
    once = corrupt_value(42, 0.0, 0.3)
    assert once != 42
    assert corrupt_value(once, 0.0, 0.3) == 42     # same bit flips back


def test_corrupt_value_covers_the_payload_shapes():
    assert corrupt_value(True, 0.0, 0.1) is False
    assert corrupt_value(1.5, 0.0, 0.3) != 1.5
    mangled = corrupt_value((7, 2.5, "tag"), 0.1, 0.3)
    assert isinstance(mangled, tuple) and len(mangled) == 3
    assert mangled != (7, 2.5, "tag")
    assert mangled[2] == "tag"                     # strings pass through
    assert corrupt_value(None, 0.0, 0.1) is None


def test_poison_markers_compare_and_nest():
    assert Poison(0x40) == Poison(0x40)
    assert Poison(0x40) != Poison(0x80)
    assert is_poisoned(Poison(0x40))
    assert is_poisoned([1, (2, Poison(0x40)), 3])
    assert not is_poisoned([1, (2, 3)])
