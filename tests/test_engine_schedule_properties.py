"""Hypothesis property test: randomized schedules on both engines.

The timing-wheel engine (``repro.sim.engine.Simulator``) must be
observationally identical to the verbatim seed engine
(``repro.sim.reference.ReferenceSimulator``) on *any* schedule, not just
the workload-shaped ones the differential fuzz replays.  Hypothesis
drives both engines through generated schedule programs that stress the
structures where the two implementations actually differ:

- far-future delays that overflow the initial wheel (heap fallback) and
  delays past the growth cap;
- delay-0 storms (same-cycle ready-deque recursion);
- same-cycle spawn/join interleavings (completion vs joiner ordering);
- signal fan-out (one fire waking many waiters in insertion order).

The observable is a single append-ordered log of every action each
process performs, tagged with the simulated time it ran at — i.e. the
exact global event order — plus the final clock and live-process count.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.reference import ReferenceSimulator
from repro.sim.signal import Signal

N_SIGNALS = 3

#: Delay mix: same-cycle storms, small steps, just-past-initial-wheel
#: (size 1024), past the growth cap (8192), and deep heap-only futures.
_delays = st.one_of(
    st.just(0),
    st.integers(0, 3),
    st.integers(1020, 1040),
    st.integers(8185, 8200),
    st.integers(100_000, 100_040),
)

_leaf_action = st.one_of(
    st.tuples(st.just("delay"), _delays),
    st.tuples(st.just("fire"), st.integers(0, N_SIGNALS - 1)),
    st.tuples(st.just("wait"), st.integers(0, N_SIGNALS - 1)),
)

#: A child program is a short list of leaf actions; a top-level program
#: may additionally spawn children and join them.
_child_program = st.lists(_leaf_action, max_size=4)

_top_action = st.one_of(
    _leaf_action,
    st.tuples(st.just("spawn"), _child_program),
    st.tuples(st.just("join"), st.integers(0, 3)),
)

_top_program = st.lists(_top_action, max_size=6)
_schedule = st.lists(_top_program, min_size=1, max_size=5)


def _run_schedule(sim_cls, schedule):
    sim = sim_cls()
    signals = [Signal(sim, name=f"sig{i}") for i in range(N_SIGNALS)]
    log = []

    def interpret(program, name):
        children = []
        for step, action in enumerate(program):
            tag = action[0]
            if tag == "delay":
                log.append((name, step, "delay", action[1], sim.now))
                yield action[1]
            elif tag == "fire":
                sig = signals[action[1]]
                if not sig.fired:
                    log.append((name, step, "fire", action[1], sim.now))
                    sig.fire((name, step))
            elif tag == "wait":
                log.append((name, step, "wait", action[1], sim.now))
                value = yield signals[action[1]]
                log.append((name, step, "woke", value, sim.now))
            elif tag == "spawn":
                child = f"{name}.{len(children)}"
                log.append((name, step, "spawn", child, sim.now))
                children.append(
                    sim.spawn(interpret(action[1], child), name=child))
            elif tag == "join":
                if children:
                    target = action[1] % len(children)
                    log.append((name, step, "join", target, sim.now))
                    result = yield children[target]
                    log.append((name, step, "joined", result, sim.now))
        log.append((name, "end", sim.now))
        return name

    for index, program in enumerate(schedule):
        sim.spawn(interpret(program, f"p{index}"), name=f"p{index}")
    sim.run()
    # Processes left blocked on never-fired signals / never-joined
    # children are part of the observable: both engines must strand the
    # exact same set.
    return log, sim.now, sim.live_processes


@settings(max_examples=60)
@given(_schedule)
def test_engines_agree_on_randomized_schedules(schedule):
    fast = _run_schedule(Simulator, schedule)
    seed = _run_schedule(ReferenceSimulator, schedule)
    assert fast == seed


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=30)
def test_engines_agree_on_signal_fanout(seed_value):
    """Dedicated fan-out shape: many same-cycle waiters, one late fire.

    Wakeups must resume waiters in insertion order on both engines even
    when the firing process sits past the wheel horizon (heap path).
    """
    import random
    rng = random.Random(seed_value)
    n_waiters = rng.randrange(1, 12)
    fire_delay = rng.choice([0, 1, 1025, 8193, 100_001])
    waiter_delays = [rng.choice([0, 0, 1, 2]) for _ in range(n_waiters)]

    def run(sim_cls):
        sim = sim_cls()
        sig = Signal(sim, name="fanout")
        log = []

        def waiter(i):
            yield waiter_delays[i]
            log.append(("wait", i, sim.now))
            value = yield sig
            log.append(("woke", i, value, sim.now))

        def firer():
            yield fire_delay
            sig.fire("payload")
            log.append(("fired", sim.now))

        for i in range(n_waiters):
            sim.spawn(waiter(i), name=f"w{i}")
        sim.spawn(firer(), name="firer")
        sim.run()
        return log, sim.now, sim.live_processes

    assert run(Simulator) == run(ReferenceSimulator)
