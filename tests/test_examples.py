"""Smoke tests: the fast example scripts must run end-to-end.

(The BFS prefetching example simulates a full-size graph and is exercised
by the benchmark suite instead.)
"""

import runpy
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "overlap factor" in out


def test_decoupled_spmv(capsys):
    run_example("decoupled_spmv.py")
    out = capsys.readouterr().out
    assert "decouplable: True" in out
    assert "MAPLE decoupling" in out


def test_pipeline_stages(capsys):
    run_example("pipeline_stages.py")
    out = capsys.readouterr().out
    assert "3-stage pipeline" in out


def test_area_and_taxonomy(capsys):
    run_example("area_and_taxonomy.py")
    out = capsys.readouterr().out
    assert "paper: 1.1%" in out
    assert "Table 2" in out
