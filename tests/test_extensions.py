"""Tests for the paper's extension points (§3.6 "Efficient", §7).

- coherent (LLC-path) pointer produce, selected by opcode;
- multi-stage pipelining over multiple queues across >2 cores.
"""

from repro.core.api import QueueHandle
from repro.cpu import Alu, Store, Thread
from repro.params import SoCConfig
from repro.system import Soc


def build(num_cores=2):
    soc = Soc(SoCConfig(num_cores=num_cores))
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    return soc, aspace, api


def test_coherent_produce_ptr_fetches_via_llc():
    soc, aspace, api = build()
    data = soc.array(aspace, [4.5] * 8, name="A")
    got = []

    def program():
        q = yield from api.open(0)
        # First fetch warms the LLC; the second coherent fetch hits it.
        yield from q.produce_ptr(data.addr(0), coherent=True)
        got.append((yield from q.consume()))
        yield from q.produce_ptr(data.addr(1), coherent=True)
        got.append((yield from q.consume()))

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert got == [4.5, 4.5]
    assert soc.stats.get("l2.hits") >= 1  # second fetch hit the LLC
    paddr = aspace.page_table.lookup(data.addr(0))
    assert soc.memsys.l2.contains(paddr & ~(soc.config.line_size - 1))


def test_noncoherent_produce_ptr_skips_llc():
    soc, aspace, api = build()
    data = soc.array(aspace, [4.5] * 8, name="A")

    def program():
        q = yield from api.open(0)
        yield from q.produce_ptr(data.addr(0))  # DRAM-direct
        yield from q.consume()

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    paddr = aspace.page_table.lookup(data.addr(0))
    assert not soc.memsys.l2.contains(paddr & ~(soc.config.line_size - 1))


def test_coherent_fetch_latency_benefits_from_llc():
    def run(coherent):
        soc, aspace, api = build()
        data = soc.array(aspace, [1.0] * 8, name="A")
        # Warm the LLC through the coherent device path.
        soc.sim.spawn(soc.memsys.load_llc(
            aspace.page_table.lookup(data.addr(0))))
        soc.sim.run()
        times = {}

        def program():
            q = yield from api.open(0)
            start = soc.sim.now
            yield from q.produce_ptr(data.addr(0), coherent=coherent)
            yield from q.consume()
            times["t"] = soc.sim.now - start

        soc.run_threads([(0, Thread(program(), aspace, "t"))])
        return times["t"]

    assert run(True) < run(False)  # LLC hit vs forced DRAM round trip


def test_three_stage_pipeline_across_three_cores():
    soc, aspace, api = build(num_cores=3)
    n = 24
    data = soc.array(aspace, [float(i) for i in range(n * 8)], name="data")
    out = soc.array(aspace, n, name="out")
    indices = [(5 * i) % (n * 8) for i in range(n)]

    def fetch():
        q0 = yield from api.open(0)
        for idx in indices:
            yield from q0.produce_ptr(data.addr(idx))

    def transform():
        q0 = QueueHandle(api, 0)
        q1 = yield from api.open(1)
        for _ in range(n):
            value = yield from q0.consume()
            yield Alu(2)
            yield from q1.produce(value + 100)

    def reduce():
        q1 = QueueHandle(api, 1)
        for i in range(n):
            value = yield from q1.consume()
            yield Store(out.addr(i), value)

    elapsed = soc.run_threads([
        (0, Thread(fetch(), aspace, "s0")),
        (1, Thread(transform(), aspace, "s1")),
        (2, Thread(reduce(), aspace, "s2")),
    ])
    assert out.to_list() == [float(idx) + 100 for idx in indices]
    # The stages overlap: far below the serialized DRAM bound.
    assert elapsed < 0.5 * n * soc.config.dram_latency


def test_pipeline_backpressure_holds_across_stages():
    """A slow final stage must throttle the whole pipeline without
    deadlock or loss."""
    soc, aspace, api = build(num_cores=3)
    n = 50
    out = soc.array(aspace, n, name="out")

    def stage0():
        q0 = yield from api.open(0)
        for i in range(n):
            yield from q0.produce(i)

    def stage1():
        q0 = QueueHandle(api, 0)
        q1 = yield from api.open(1)
        for _ in range(n):
            value = yield from q0.consume()
            yield from q1.produce(value)

    def slow_stage2():
        q1 = QueueHandle(api, 1)
        for i in range(n):
            value = yield from q1.consume()
            yield Alu(200)  # much slower than the upstream stages
            yield Store(out.addr(i), value)

    soc.run_threads([
        (0, Thread(stage0(), aspace, "s0")),
        (1, Thread(stage1(), aspace, "s1")),
        (2, Thread(slow_stage2(), aspace, "s2")),
    ])
    assert out.to_list() == list(range(n))
    assert soc.stats.get("maple0.produce_backpressure") >= 1
