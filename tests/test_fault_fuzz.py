"""Fault-fuzz gate: the SoC survives injected faults, provably.

Three layers ride every case (see ``repro.harness.faultfuzz``):

1. a random seeded :class:`FaultPlan` perturbs ports, DRAM, the TLBs,
   and the OS (shootdowns, page eviction, preemption);
2. numerical results are still checked against the numpy reference
   (``check=True``) — latency faults must never corrupt data;
3. queue shadows + the quiescence audit + the liveness watchdog are all
   armed — any protocol violation or hang fails loudly, with a
   diagnosis.

Plus the negative controls: a deliberately wedged pipeline (a CONSUME
nobody PRODUCEs) must be *caught* — the deadlock diagnosis and the
watchdog stall detector both name the stuck port and write a JSON dump —
and a fault-free run with the whole observation layer armed must be
cycle-identical to a bare run (the robustness layer is timing-invisible).
"""

import json

import pytest

from repro.cpu.core import Thread
from repro.harness.faultfuzz import (
    FUZZ_MASTER_SEED,
    FUZZ_WATCHDOG,
    fuzz_case,
    fuzz_specs,
    run_fuzz_case,
)
from repro.harness.orchestrator import Orchestrator
from repro.harness.techniques import run_workload
from repro.params import SoCConfig
from repro.sim import FaultPlan, LivenessError, Watchdog
from repro.system.soc import Soc

N_FUZZ_CASES = 240


# -- the sweep ------------------------------------------------------------------


@pytest.mark.parametrize("case", range(N_FUZZ_CASES))
def test_faulted_run_is_correct_and_quiescent(case):
    """Random (config, kernel, technique, fault-plan): correct results,
    invariants hold on drain, watchdog silent.  ``run_fuzz_case`` raises
    on any violation; the asserts here pin that the layers really ran."""
    result = run_fuzz_case(case)
    assert result.cycles > 0
    ports, queues = result.invariants_checked
    assert ports > 0 and queues > 0
    assert result.fault_plan is not None


def test_fuzz_case_generation_is_pure():
    a, b = fuzz_case(17), fuzz_case(17)
    assert a.describe() == b.describe()
    assert a.plan == b.plan and a.config == b.config
    assert fuzz_case(18).describe() != a.describe()


def test_fault_replay_is_deterministic():
    """Same case number -> bit-identical cycles, fault log, and stats."""
    first = run_fuzz_case(3)
    second = run_fuzz_case(3)
    assert first.cycles == second.cycles
    assert first.fault_events == second.fault_events
    assert first.soc.stats_snapshot() == second.soc.stats_snapshot()


def test_master_seed_changes_the_sweep():
    baseline = fuzz_case(0, master_seed=FUZZ_MASTER_SEED)
    other = fuzz_case(0, master_seed=FUZZ_MASTER_SEED + 1)
    assert baseline.describe() != other.describe()


# -- the observation layer is timing-invisible -----------------------------------


def test_armed_but_faultless_run_is_cycle_identical():
    """Invariant shadows + watchdog + an *empty* fault plan change
    nothing: same cycle count and same model stats as a bare run."""
    bare = run_workload("spmv", "maple-decouple", threads=2, seed=7)
    armed = run_workload("spmv", "maple-decouple", threads=2, seed=7,
                         fault_plan=FaultPlan(seed=0),
                         check_invariants=True,
                         watchdog=dict(FUZZ_WATCHDOG))
    assert armed.cycles == bare.cycles
    assert armed.fault_events == 0
    assert armed.invariants_checked[0] > 0
    assert armed.soc.stats_snapshot() == bare.soc.stats_snapshot()


# -- orchestrator integration ----------------------------------------------------


def test_fuzz_specs_parallel_equals_serial():
    specs = fuzz_specs(6)
    serial = Orchestrator(jobs=1).run(specs)
    parallel = Orchestrator(jobs=4, timeout=300).run(specs)
    assert [r.identity() for r in serial] == [r.identity() for r in parallel]
    assert all(r.fault_seed is not None for r in serial)
    assert all(r.invariants_checked for r in serial)


def test_fuzz_specs_are_replayable_cells():
    specs = fuzz_specs(4)
    again = fuzz_specs(4)
    assert specs == again
    assert all(s.check_invariants and s.watchdog for s in specs)


# -- negative controls: a wedged pipeline must be caught -------------------------


def _wedged_soc():
    """A SoC with one thread blocked forever on CONSUME of queue 0."""
    soc = Soc(SoCConfig(name="wedge", num_cores=2, mesh_cols=2, mesh_rows=2))
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)

    def program():
        handle = yield from api.open(0)
        value = yield from handle.consume()  # never produced: wedged
        return value

    return soc, [(0, Thread(program(), aspace, "wedged"))]


def test_deadlock_is_diagnosed_with_stuck_port(tmp_path):
    """Queue drains with the consumer still blocked: the deadlock
    diagnosis names the busy port and writes a dump."""
    soc, assignments = _wedged_soc()
    with pytest.raises(LivenessError) as exc:
        soc.run_threads(assignments,
                        watchdog=Watchdog(soc, dump_dir=str(tmp_path)))
    err = exc.value
    assert "core0.mem" in str(err)
    assert err.diagnosis["reason"] == "deadlock"
    assert any("core0.mem" in p for p in err.diagnosis["busy_ports"])
    assert err.dump_path is not None
    dumped = json.loads((tmp_path / err.dump_path.split("/")[-1]).read_text())
    assert dumped["reason"] == "deadlock"
    assert any("core0.mem" in p for p in dumped["busy_ports"])


def test_watchdog_trips_on_livelock_naming_stuck_port(tmp_path):
    """With unrelated events keeping the simulator alive, the *watchdog*
    (not the post-drain check) must trip on the no-progress window."""
    soc, assignments = _wedged_soc()

    def spinner():
        while True:
            yield 500

    soc.sim.spawn(spinner(), name="noise.spinner")
    monitor = Watchdog(soc, check_interval=1000, stall_window=20_000,
                       dump_dir=str(tmp_path))
    with pytest.raises(LivenessError) as exc:
        soc.run_threads(assignments, watchdog=monitor)
    err = exc.value
    assert err.diagnosis["reason"] == "stall"
    assert any("core0.mem" in p for p in err.diagnosis["busy_ports"])
    assert err.dump_path is not None


def test_watchdog_max_cycles_is_a_hard_ceiling():
    soc, assignments = _wedged_soc()

    def spinner():
        while True:
            yield 500

    soc.sim.spawn(spinner(), name="noise.spinner")
    monitor = Watchdog(soc, check_interval=1000, stall_window=10**9,
                       max_cycles=30_000)
    with pytest.raises(LivenessError) as exc:
        soc.run_threads(assignments, watchdog=monitor)
    assert exc.value.diagnosis["reason"] == "timeout"
