"""Regression tests for the paper's hairiest OS-interaction corners.

Two scenarios the paper calls out as hardware/OS co-design risks, pinned
here as deterministic fault-plan runs:

- **Page fault mid-LIMA** (§3.5): a page MAPLE's in-memory-accelerator
  chains are actively streaming gets evicted; the MAPLE MMU must trap,
  the driver must resolve via the OS fault path, and the walk must
  retry — including the page being evicted *again* before the retry.
- **TLB shootdown mid-produce** (§3.5): ``munmap``-driven shootdowns
  land while the Produce pipeline holds translations; MAPLE's TLB is
  invalidated through the same Linux callback path as the cores', and
  in-flight fetches must still fill their reserved slots in order.

Both must end with correct numerical results, clean invariants, no
watchdog trip — and deterministically, so they double as replay pins.
"""

from repro.harness.techniques import run_workload
from repro.sim.faults import FaultPlan, PageEvictFault, ShootdownFault

WATCHDOG = {"check_interval": 2000, "stall_window": 100_000,
            "max_cycles": 20_000_000}


def test_page_fault_during_lima_resolves_and_stays_correct():
    plan = FaultPlan(seed=11, evict=PageEvictFault(cycles=600))
    result = run_workload("spmv", "lima", threads=1, seed=3, check=True,
                          fault_plan=plan, check_invariants=True,
                          watchdog=dict(WATCHDOG))
    snapshot = result.soc.stats_snapshot()
    # The faults hit the accelerator itself, not just the cores: MAPLE's
    # MMU took page faults mid-chain and the OS swapped the pages back.
    assert snapshot["maple0.page_faults"] > 0
    assert snapshot["os.swap_ins"] > 0
    assert result.soc.os.evicted_pages() == 0
    ports, queues = result.invariants_checked
    assert ports > 0 and queues > 0


def test_page_fault_during_lima_is_deterministic():
    plan = FaultPlan(seed=11, evict=PageEvictFault(cycles=600))
    runs = [run_workload("spmv", "lima", threads=1, seed=3, check=True,
                         fault_plan=plan, check_invariants=True,
                         watchdog=dict(WATCHDOG)) for _ in range(2)]
    assert runs[0].cycles == runs[1].cycles
    assert runs[0].fault_events == runs[1].fault_events


def test_tlb_shootdown_during_produce_keeps_queues_coherent():
    plan = FaultPlan(seed=12, shootdown=ShootdownFault(cycles=500))
    result = run_workload("spmv", "maple-decouple", threads=2, seed=3,
                          check=True, fault_plan=plan,
                          check_invariants=True, watchdog=dict(WATCHDOG))
    snapshot = result.soc.stats_snapshot()
    # Shootdowns reached the accelerator's TLB (the §3.5 callback path)...
    assert snapshot["maple0.shootdowns"] > 0
    # ...and the decoupled pipeline still filled every slot in order
    # (the invariant shadows would have raised otherwise).
    assert result.invariants_checked[1] > 0
    assert snapshot["maple0.produce_ptrs"] > 0


def test_combined_evict_and_shootdown_under_decoupling():
    """The worst case both at once, across the access/execute pair."""
    plan = FaultPlan(seed=13, evict=PageEvictFault(cycles=900),
                     shootdown=ShootdownFault(cycles=700))
    result = run_workload("sdhp", "maple-decouple", threads=2, seed=5,
                          check=True, fault_plan=plan,
                          check_invariants=True, watchdog=dict(WATCHDOG))
    snapshot = result.soc.stats_snapshot()
    assert snapshot["os.evictions"] > 0
    assert snapshot["os.shootdowns"] > 0
    assert result.soc.os.evicted_pages() == 0
