"""Unit tests for the fault-injection layer (``repro.sim.faults``).

The contract under test: plans are pure values (picklable, replayable
from one seed), an empty plan is a guaranteed no-op, installed hooks
actually perturb timing and log every hit, and ``finish`` leaves the
address space fully resident so functional checks still pass.
"""

import pickle

import pytest

from repro.harness.techniques import run_workload
from repro.sim.faults import (
    FaultInjector,
    FaultPlan,
    PageEvictFault,
    PortDelayFault,
    PreemptFault,
    ShootdownFault,
)


# -- plans are pure values -------------------------------------------------------


def test_random_plan_is_deterministic_and_seed_sensitive():
    assert FaultPlan.random(42) == FaultPlan.random(42)
    assert FaultPlan.random(42) != FaultPlan.random(43)
    assert FaultPlan.random(42).stable_dict() == FaultPlan.random(42).stable_dict()


def test_random_plan_is_never_empty_and_describes_itself():
    for seed in range(20):
        plan = FaultPlan.random(seed)
        assert not plan.is_empty()
        assert f"seed={plan.seed}" in plan.describe()


def test_plan_round_trips_through_pickle():
    """Plans cross the orchestrator's worker-pool boundary."""
    plan = FaultPlan.random(7)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert clone.stable_dict() == plan.stable_dict()


def test_empty_plan_is_empty():
    assert FaultPlan(seed=0).is_empty()
    assert not FaultPlan(seed=0, shootdown=ShootdownFault(cycles=100)).is_empty()


# -- installation ---------------------------------------------------------------


def _delay_plan(rate=1.0, cycles=50):
    return FaultPlan(seed=5, port_delays=(
        PortDelayFault(port_pattern="core*.mem", kind_pattern="load",
                       rate=rate, min_cycles=cycles, max_cycles=cycles),))


def test_empty_plan_installs_nothing():
    result = run_workload("spmv", "doall", threads=1, seed=1,
                          fault_plan=FaultPlan(seed=0))
    assert result.soc.fault_injector is None
    assert result.fault_events == 0


def test_double_install_rejected():
    result = run_workload("spmv", "doall", threads=1, seed=1,
                          fault_plan=_delay_plan())
    injector = result.soc.fault_injector
    with pytest.raises(RuntimeError, match="already installed"):
        injector.install()


# -- the faults actually bite ----------------------------------------------------


def test_port_delay_slows_the_run_and_logs_hits():
    base = run_workload("spmv", "doall", threads=1, seed=1)
    slow = run_workload("spmv", "doall", threads=1, seed=1,
                        fault_plan=_delay_plan(), check_invariants=True)
    assert slow.cycles > base.cycles
    hits = [e for e in slow.soc.fault_injector.events if e[1] == "port_delay"]
    assert hits and len(hits) == slow.fault_events
    assert all("core0.mem" in detail for _, _, detail in hits)


def test_port_delay_respects_kind_and_port_patterns():
    plan = FaultPlan(seed=5, port_delays=(
        PortDelayFault(port_pattern="maple*.mem", kind_pattern="nonexistent_*",
                       rate=1.0, min_cycles=50, max_cycles=50),))
    faulted = run_workload("spmv", "doall", threads=1, seed=1, fault_plan=plan)
    base = run_workload("spmv", "doall", threads=1, seed=1)
    # Hooks were installed on matching ports but no kind ever matched:
    # timing must be untouched.
    assert faulted.cycles == base.cycles
    assert faulted.fault_events == 0


def test_eviction_swaps_pages_back_in_before_the_check():
    plan = FaultPlan(seed=9, evict=PageEvictFault(cycles=700))
    result = run_workload("spmv", "doall", threads=1, seed=1,
                          fault_plan=plan, check=True, watchdog=True)
    injector = result.soc.fault_injector
    assert any(kind == "evict" for _, kind, _ in injector.events)
    assert any(kind == "restore" for _, kind, _ in injector.events)
    assert result.soc.os.evicted_pages() == 0
    snapshot = result.soc.stats_snapshot()
    assert snapshot["os.evictions"] > 0
    assert snapshot["os.swap_ins"] > 0


def test_preemption_taxes_the_core():
    plan = FaultPlan(seed=3, preempt=PreemptFault(cycles=500, cost=2000))
    base = run_workload("spmv", "doall", threads=1, seed=1)
    taxed = run_workload("spmv", "doall", threads=1, seed=1, fault_plan=plan)
    assert any(kind == "preempt" for _, kind, _ in
               taxed.soc.fault_injector.events)
    assert taxed.cycles > base.cycles


def test_shootdowns_invalidate_tlbs_without_corrupting_results():
    plan = FaultPlan(seed=4, shootdown=ShootdownFault(cycles=400))
    result = run_workload("spmv", "maple-decouple", threads=2, seed=1,
                          fault_plan=plan, check=True, check_invariants=True)
    snapshot = result.soc.stats_snapshot()
    assert snapshot["os.shootdowns"] > 0
    assert any(kind == "shootdown" for _, kind, _ in
               result.soc.fault_injector.events)


# -- replay ---------------------------------------------------------------------


def test_same_plan_replays_the_same_fault_log():
    plan = FaultPlan.random(77)
    first = run_workload("spmv", "maple-decouple", threads=2, seed=2,
                         fault_plan=plan, check_invariants=True)
    second = run_workload("spmv", "maple-decouple", threads=2, seed=2,
                          fault_plan=plan, check_invariants=True)
    assert first.cycles == second.cycles
    assert first.soc.fault_injector.events == second.soc.fault_injector.events


def test_injector_context_manager_uninstalls():
    from repro.system.soc import Soc

    soc = Soc()
    aspace = soc.new_process()
    with FaultInjector(soc, aspace, _delay_plan()) as injector:
        hooked = [p for p in soc.ports.ports if p.inject is not None]
        assert hooked
    assert injector is soc.fault_injector
    assert all(p.inject is None for p in soc.ports.ports)
