"""Tier-1 pin for the Fig. 14 headline: the ~25-cycle consume round trip.

EXPERIMENTS.md's headline row — "Consume round trip (Fig. 14): ~25
cycles + 1/hop, 25 cycles exactly (analytic == measured)" — was
previously guarded only by the benchmark suite.  This fast test pins it
in tier 1 so any change to the MMIO path, NoC encode/decode, hop
latency, or the MAPLE pipeline that moves the headline number fails
immediately, not at the next benchmark run.
"""

from repro.harness.figures import fig14, roundtrip_config
from repro.params import FPGA_CONFIG


def test_roundtrip_analytic_budget_is_25_cycles():
    result = fig14()
    # The paper's headline figure, segment by segment.
    assert result.total == 25
    segments = dict(result.segments)
    assert segments["core pipeline -> L1 -> L1.5 (request path)"] == 8
    assert segments["MAPLE decode + pipeline + queue pop"] == 3
    assert len(result.segments) == 5


def test_roundtrip_measured_on_live_model_equals_budget():
    result = fig14()
    assert result.measured == result.total == 25


def test_roundtrip_comparisons_from_the_paper_hold():
    result = fig14()
    # Similar to an L2 access, an order of magnitude below DRAM.
    assert abs(result.total - FPGA_CONFIG.l2_latency) <= 10
    assert result.total * 10 <= FPGA_CONFIG.dram_latency + 50


def test_roundtrip_scales_one_cycle_per_extra_hop():
    """"~25 cycles plus one per hop": stretching the request and response
    NoC traversal by one hop each costs exactly two cycles."""
    base = fig14()
    slower = fig14(FPGA_CONFIG.with_overrides(hop_latency=2))
    assert slower.measured == base.measured + 2


def test_fig15_sweep_configs_reproduce_their_targets():
    """The Fig. 15 sweep points are exact round-trip targets, so the
    25-cycle point of the sweep is the same machine as Fig. 14."""
    from repro.system import Soc
    for target in (11, 25, 51, 101):
        soc = Soc(roundtrip_config(FPGA_CONFIG, target))
        assert soc.maples[0].round_trip_cycles(core_tile=0) == target
