"""Differential fuzzing: fast engine vs golden reference, random configs.

``tests/test_determinism.py`` proves the optimized event loop in
:mod:`repro.sim.engine` matches the preserved seed engine
(:class:`repro.sim.reference.ReferenceSimulator`) on one fixed workload.
This suite extends that guarantee across the configuration space the
evaluation sweeps: each case draws a random SoC configuration (mesh
geometry, queue depth, cache/TLB/DRAM parameters, MMIO path and hop
latencies), a random kernel with a small seeded dataset, and a random
execution technique — then runs it on **both** engines and requires
bit-identical cycle counts, executed-event totals, and full statistics
dumps.  Numerical results are additionally validated against the numpy
reference inside ``run_workload`` (``check=True``).

Everything is derived from ``MASTER_SEED``, so a failing case number
reproduces exactly; datasets are deliberately tiny so the whole sweep
(100 cases x 2 engines) stays well under a minute.
"""

import random

import numpy as np
import pytest

import repro.system.soc as soc_module
from repro.datasets.graphs import power_law_graph
from repro.datasets.sparse import CscMatrix, random_csr
from repro.harness.techniques import run_workload
from repro.kernels.sdhp import _make_dataset as make_sdhp_dataset
from repro.kernels.spmm import SpmmDataset
from repro.kernels.spmv import SpmvDataset
from repro.params import SoCConfig
from repro.sim.reference import ReferenceSimulator

MASTER_SEED = 20260806
N_CASES = 100

#: Cheap-to-simulate mix; decoupling/prefetching techniques dominate
#: because they exercise MAPLE's queues, MMU, and NoC paths hardest.
TECHNIQUES = ("doall", "maple-decouple", "maple-decouple", "sw-decouple",
              "lima", "lima-llc", "sw-prefetch", "desc", "droplet")
KERNELS = ("spmv", "spmv", "spmv", "sdhp", "sdhp", "sdhp", "spmm", "bfs")


def random_config(rng: random.Random) -> SoCConfig:
    """A valid random SoCConfig spanning the knobs the sweeps touch.

    The mesh axis reaches 8x8 with up to 4 MAPLE instances under every
    placement policy, so the bit-identity gate covers the multi-MAPLE
    binding and placement code paths, not just the 2x2/3x3 seeds.
    """
    num_queues = rng.choice((4, 8))
    entries = rng.choice((4, 8, 16, 32))
    l1_ways = rng.choice((2, 4))
    mesh_side = rng.choice((2, 2, 3, 4, 8))
    maple_instances = rng.choice((1, 1, 2, 4))
    # MESI backend axis: a third of cases turn the home-node directory
    # on (random slicing), half of those also route L2 refill/writeback
    # over the MEMORY plane — so the bit-identity gate covers both
    # coherence backends and the protocol's NoC traffic.
    directory = rng.choice((False, False, True))
    directory_slices = rng.choice((1, 2, 4))
    directory_mem_traffic = directory and rng.random() < 0.5
    return SoCConfig(
        name=f"fuzz-{rng.randrange(1 << 30)}",
        num_cores=rng.choice((2, 4)),
        mesh_cols=mesh_side,
        mesh_rows=rng.choice((2, 3)) if mesh_side <= 3 else mesh_side,
        maple_instances=maple_instances,
        maple_placement=(rng.choice(("legacy", "edge", "center",
                                     "per-quadrant"))
                         if mesh_side >= 3 else "legacy"),
        hop_latency=rng.choice((1, 2)),
        mmio_path_latency=rng.choice((4, 8)),
        l1_size=rng.choice((4, 8)) * 1024,
        l1_ways=l1_ways,
        l1_latency=rng.choice((1, 2)),
        l2_size=rng.choice((32, 64)) * 1024,
        l2_latency=rng.choice((20, 30)),
        core_mshrs=rng.choice((1, 2)),
        store_buffer_entries=rng.choice((4, 8)),
        dram_latency=rng.choice((100, 300)),
        dram_max_inflight=rng.choice((8, 16)),
        maple_num_queues=num_queues,
        scratchpad_bytes=entries * num_queues * 4,
        maple_tlb_entries=rng.choice((8, 16)),
        maple_max_inflight=rng.choice((8, 32)),
        produce_buffer_entries=rng.choice((2, 4)),
        core_tlb_entries=rng.choice((8, 16)),
        directory=directory,
        directory_slices=directory_slices,
        directory_mem_traffic=directory_mem_traffic,
    )


def random_dataset(rng: random.Random, workload: str):
    """A tiny seeded dataset so each simulation stays in the ~10ms range."""
    seed = rng.randrange(10_000)
    if workload == "spmv":
        cols = rng.choice((128, 256))
        matrix = random_csr(rows=rng.randrange(4, 10), cols=cols,
                            nnz_per_row=rng.randrange(2, 6), seed=seed)
        x = np.random.default_rng(seed + 1).uniform(1.0, 2.0, size=cols)
        return SpmvDataset(matrix, x)
    if workload == "sdhp":
        matrix = random_csr(rows=rng.randrange(2, 6),
                            cols=rng.choice((256, 512)),
                            nnz_per_row=rng.randrange(2, 8), seed=seed)
        return make_sdhp_dataset(matrix, seed=seed + 1)
    if workload == "spmm":
        a_csr = random_csr(rows=8, cols=rng.choice((128, 256)),
                           nnz_per_row=rng.randrange(2, 5), seed=seed)
        a = CscMatrix(a_csr.cols, 8, a_csr.row_ptr, a_csr.col_idx,
                      a_csr.values)
        b_csr = random_csr(rows=rng.randrange(1, 3), cols=8,
                           nnz_per_row=rng.randrange(2, 5), seed=seed + 1)
        b = CscMatrix(8, b_csr.rows, b_csr.row_ptr, b_csr.col_idx,
                      b_csr.values)
        return SpmmDataset(a, b)
    if workload == "bfs":
        return power_law_graph(rng.randrange(48, 129),
                               avg_degree=rng.randrange(3, 6), seed=seed)
    raise AssertionError(workload)


def random_case(case: int):
    """(config, workload, technique, threads, dataset, seed) for one case."""
    rng = random.Random(MASTER_SEED + case)
    config = random_config(rng)
    workload = rng.choice(KERNELS)
    technique = rng.choice(TECHNIQUES)
    decoupled = technique in ("maple-decouple", "sw-decouple", "desc")
    if decoupled:
        threads = 2
    elif technique in ("lima", "lima-llc"):
        # LIMA opens (threads x chains) queues; one thread always fits.
        threads = 1
    else:
        threads = rng.choice((1, 2))
    dataset = random_dataset(rng, workload)
    return config, workload, technique, threads, dataset, rng.randrange(100)


def run_case(case: int):
    config, workload, technique, threads, dataset, seed = random_case(case)
    result = run_workload(workload, technique, config=config,
                          threads=threads, dataset=dataset, seed=seed,
                          check=True)
    return (result.cycles, result.soc.sim.events_executed,
            result.soc.stats_snapshot())


@pytest.mark.parametrize("case", range(N_CASES))
def test_fuzz_fast_engine_matches_reference(case, monkeypatch):
    cycles_fast, events_fast, stats_fast = run_case(case)

    monkeypatch.setattr(soc_module, "Simulator", ReferenceSimulator)
    cycles_ref, events_ref, stats_ref = run_case(case)

    assert cycles_fast == cycles_ref, f"cycle divergence in case {case}"
    assert events_fast == events_ref, f"event-count divergence in case {case}"
    assert stats_fast == stats_ref, f"stats divergence in case {case}"


@pytest.mark.slow
def test_fuzz_16x16_smoke_matches_reference(monkeypatch):
    """One 16x16, 4-MAPLE differential case (the large-mesh CI job's
    bit-identity gate; too slow for every tier-1 run)."""
    config = SoCConfig(name="fuzz-16x16", num_cores=8,
                       mesh_cols=16, mesh_rows=16, maple_instances=4,
                       maple_placement="per-quadrant")
    dataset = random_dataset(random.Random(MASTER_SEED), "spmv")

    def run(engine=None):
        if engine is not None:
            monkeypatch.setattr(soc_module, "Simulator", engine)
        result = run_workload("spmv", "maple-decouple", config=config,
                              threads=8, dataset=dataset, check=True)
        return (result.cycles, result.soc.sim.events_executed,
                result.soc.stats_snapshot())

    fast = run()
    ref = run(ReferenceSimulator)
    assert fast == ref


def test_fuzz_cases_are_reproducible():
    """The case generator itself is deterministic (a failing case number
    must mean the same experiment on every machine)."""
    a = random_case(7)
    b = random_case(7)
    assert a[0] == b[0]  # same SoCConfig (frozen dataclass equality)
    assert a[1:4] == b[1:4]
    assert a[5] == b[5]
