"""Tests for the experiment harness, tables, and figure plumbing."""

import numpy as np
import pytest

from repro.core.taxonomy import TABLE1, techniques_satisfying_all
from repro.datasets.graphs import power_law_graph
from repro.datasets.sparse import random_csr
from repro.harness import HARNESS_TECHNIQUES, run_workload, tables
from repro.harness.figures import (
    Series,
    area_analysis,
    fig14,
    roundtrip_config,
)
from repro.kernels.spmv import SpmvDataset
from repro.params import FPGA_CONFIG


def small_spmv():
    return SpmvDataset(random_csr(6, 128, 3, seed=2), np.linspace(1, 2, 128))


def test_unknown_technique_rejected():
    with pytest.raises(ValueError, match="technique"):
        run_workload("spmv", "magic")


def test_decoupling_requires_even_threads():
    with pytest.raises(ValueError, match="even"):
        run_workload("spmv", "maple-decouple", threads=3)


def test_spmm_decoupling_records_fallback():
    result = run_workload("spmm", "maple-decouple", threads=2, scale=1)
    assert result.fallback_doall
    baseline = run_workload("spmm", "doall", threads=2, scale=1)
    assert result.cycles == baseline.cycles  # identical execution


def test_result_metrics_accessible():
    result = run_workload("spmv", "doall", threads=2, dataset=small_spmv())
    assert result.cycles > 0
    assert result.total_loads() > 0
    assert result.avg_load_latency() > 0
    assert result.workload == "spmv" and result.technique == "doall"


def test_all_techniques_run_on_small_spmv():
    for technique in HARNESS_TECHNIQUES:
        threads = 1 if technique in ("sw-prefetch", "lima", "lima-llc") else 2
        result = run_workload("spmv", technique, threads=threads,
                              dataset=small_spmv())
        assert result.cycles > 0, technique


def test_lima_needs_enough_queues():
    with pytest.raises(ValueError, match="queues"):
        run_workload("spmv", "lima", threads=16,
                     config=FPGA_CONFIG.with_overrides(num_cores=16),
                     dataset=small_spmv())


def test_hop_latency_override_slows_mmio():
    fast = run_workload("spmv", "maple-decouple", threads=2,
                        dataset=small_spmv())
    slow = run_workload("spmv", "maple-decouple", threads=2,
                        dataset=small_spmv(), hop_latency_override=40)
    assert slow.cycles > fast.cycles


def test_roundtrip_config_hits_target():
    from repro.system import Soc
    for target in (11, 25, 51, 101):
        soc = Soc(roundtrip_config(FPGA_CONFIG, target))
        assert soc.maples[0].round_trip_cycles(core_tile=0) == target


def test_fig14_budget_matches_measurement():
    result = fig14()
    assert result.total == result.measured == 25
    assert "TOTAL" in result.render()


def test_series_geomean():
    s = Series("x", {"a": 2.0, "b": 8.0})
    assert s.geomean() == pytest.approx(4.0)


def test_tables_render():
    assert "MAPLE" in tables.table1()
    assert "8KB 4-way" in tables.table2()
    assert "In-Order" in tables.table3()


def test_taxonomy_only_maple_has_all_features():
    assert techniques_satisfying_all() == ["MAPLE"]
    assert sum(1 for row in TABLE1 if row.satisfies_all()) == 1


def test_area_analysis_matches_paper():
    report = area_analysis()
    assert 0.008 < report.overhead_fraction < 0.014
    assert report.maple_mm2 < 0.02
    with pytest.raises(ValueError):
        area_analysis(cores_served=0)


def test_droplet_technique_on_bfs_uses_binding_indirections():
    graph = power_law_graph(96, avg_degree=4, seed=7)
    result = run_workload("bfs", "droplet", threads=2, dataset=graph)
    assert result.soc.stats.get("droplet.registered_regions") == 1


def test_multidataset_figures_geomean_across_variants():
    from repro.harness.figures import PAPER_DATASETS, fig8
    result = fig8(apps=("sdhp",),
                  datasets={"sdhp": PAPER_DATASETS["sdhp"]})
    # SuiteSparse-surrogate and Kronecker variants both decouple well;
    # their geomean must stay in the winning range either way.
    assert result.series_by_label("maple-decoupling").values["sdhp"] > 1.5
    assert result.series_by_label("sw-decoupling").values["sdhp"] < 1.0
