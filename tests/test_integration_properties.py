"""Property-based cross-technique equivalence.

The strongest end-to-end invariant in the system: for randomized inputs,
every latency-tolerance technique must compute bit-identical results to
plain execution — decoupling and prefetching are *performance*
transformations, never semantic ones.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compiler import Technique, analyze, plan_for
from repro.compiler.interp import (
    AccessRole,
    DoallRole,
    ExecuteRole,
    LimaRole,
    MapleBackend,
    PrefetchRole,
    Runtime,
    interpret,
)
from repro.core.api import QueueHandle
from repro.cpu import Thread
from repro.datasets.graphs import power_law_graph
from repro.datasets.sparse import random_csr
from repro.harness import run_workload
from repro.kernels.spmv import SpmvDataset
from repro.system import Soc
from tests.test_compiler_interp import gather_kernel


def run_gather(technique, b_indices, a_values):
    n = len(b_indices)
    soc = Soc()
    aspace = soc.new_process()
    arrays = {
        "b": soc.array(aspace, b_indices, "b"),
        "a": soc.array(aspace, a_values, "a"),
        "out": soc.array(aspace, n, "out"),
    }
    kernel = gather_kernel()
    analysis = analyze(kernel)
    runtime = Runtime(arrays, {"lo": 0, "hi": n})
    if technique == "doall":
        plan = plan_for(analysis, Technique.DOALL)
        threads = [(0, Thread(interpret(kernel, runtime, DoallRole(plan)),
                              aspace, "t"))]
    elif technique == "prefetch":
        plan = plan_for(analysis, Technique.SW_PREFETCH)
        threads = [(0, Thread(
            interpret(kernel, runtime, PrefetchRole(plan, distance=2)),
            aspace, "t"))]
    elif technique == "lima":
        plan = plan_for(analysis, Technique.LIMA_PREFETCH)
        api = soc.driver.attach(aspace)

        def program():
            handle = yield from api.open(0)
            chain = plan.lima_chains[0]
            role = LimaRole(plan, {chain.ima_load.stmt_id: handle})
            yield from interpret(kernel, runtime, role)

        threads = [(0, Thread(program(), aspace, "t"))]
    else:  # maple decoupling
        plan = plan_for(analysis, Technique.MAPLE_DECOUPLE)
        api = soc.driver.attach(aspace)

        def access():
            handle = yield from api.open(0)
            yield from interpret(kernel, runtime,
                                 AccessRole(plan, MapleBackend(handle)))

        def execute():
            role = ExecuteRole(plan, MapleBackend(QueueHandle(api, 0)))
            yield from interpret(kernel, runtime, role)

        threads = [(0, Thread(access(), aspace, "a")),
                   (1, Thread(execute(), aspace, "e"))]
    soc.run_threads(threads)
    return arrays["out"].to_list()


@given(st.data())
@settings(max_examples=12, deadline=None)
def test_all_techniques_agree_on_random_gathers(data):
    n = data.draw(st.integers(min_value=1, max_value=24))
    b = data.draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                           min_size=n, max_size=n))
    a = data.draw(st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=n, max_size=n))
    expected = [a[idx] * 2 for idx in b]
    for technique in ("doall", "maple", "prefetch", "lima"):
        assert run_gather(technique, b, a) == expected, technique


@given(st.integers(min_value=16, max_value=80),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=50))
@settings(max_examples=8, deadline=None)
def test_bfs_techniques_correct_on_random_graphs(n, degree, seed):
    graph = power_law_graph(n, avg_degree=degree, seed=seed)
    # run_workload validates distances against the reference internally.
    run_workload("bfs", "maple-decouple", threads=2, dataset=graph)
    run_workload("bfs", "lima", threads=1, dataset=graph)


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=50))
@settings(max_examples=8, deadline=None)
def test_spmv_decoupling_correct_on_random_matrices(rows, nnz, seed):
    matrix = random_csr(rows, 96, nnz_per_row=nnz, seed=seed)
    rng = np.random.default_rng(seed)
    dataset = SpmvDataset(matrix, rng.uniform(1, 2, size=96))
    run_workload("spmv", "maple-decouple", threads=2, dataset=dataset)
    run_workload("spmv", "desc", threads=2, dataset=dataset)
    run_workload("spmv", "sw-decouple", threads=2, dataset=dataset)
