"""Corruption-fuzz gate: end-to-end data integrity, provably.

Every case runs a random (config, kernel, technique) under a random
seeded corruption plan — lossy links (drops, duplicates, payload bit
flips), DRAM bit flips, scratchpad slot flips — with the full protection
stack armed (reliable ports + SECDED ECC).  Exactly two outcomes are
legal:

1. the run completes, and then the kernel's golden-output oracle
   (``check=True``) has already passed — corruption was corrected,
   retransmitted, or re-fetched, never silently consumed;
2. corruption was unrecoverable (a poisoned scratchpad slot whose
   producing pointer is gone, a persistently poisoned line, an exhausted
   retransmit budget) and surfaced as a typed
   :class:`DataIntegrityError` carrying a structured diagnosis.

Anything else — an oracle failure with protection armed, a hang, an
invariant violation — is a model bug and fails the sweep.

The negative controls run the *same* derivation with the stack disarmed
and a corrupt-only plan: now the oracle (or a crash on a mangled
address) must catch what the protections were suppressing.
"""

import json

import pytest

from repro.harness.integrityfuzz import (
    INTEGRITY_MASTER_SEED,
    classify_integrity_case,
    integrity_case,
    integrity_specs,
    run_negative_control,
)
from repro.harness.orchestrator import Orchestrator
from repro.harness.techniques import run_workload
from repro.params import SoCConfig
from repro.sim import DataIntegrityError, FaultPlan

N_FUZZ_CASES = 200

#: Sweep cases verified to hit unrecoverable scratchpad poison (a
#: double-bit flip on a filled slot whose producing pointer is gone).
KNOWN_UNRECOVERABLE = (3, 16, 40)


# -- the sweep ------------------------------------------------------------------


@pytest.mark.parametrize("case", range(N_FUZZ_CASES))
def test_corrupted_run_passes_oracle_or_fails_typed(case):
    outcome, payload = classify_integrity_case(case)
    if outcome == "completed":
        # check=True already compared against the numpy reference.
        assert payload.cycles > 0
        ports, queues = payload.invariants_checked
        assert ports > 0 and queues > 0
    else:
        assert outcome == "integrity-error"
        assert isinstance(payload, DataIntegrityError)
        assert payload.component is not None
        assert payload.diagnosis is not None
        assert payload.diagnosis["integrity"]["error"] == type(payload).__name__


def test_case_generation_is_pure():
    a, b = integrity_case(17), integrity_case(17)
    assert a.describe() == b.describe()
    assert a.plan == b.plan and a.config == b.config
    assert a.config.reliable_ports and a.config.ecc
    assert integrity_case(18).describe() != a.describe()


def test_corrupted_replay_is_deterministic():
    from repro.harness.integrityfuzz import run_integrity_case
    first = run_integrity_case(0)
    second = run_integrity_case(0)
    assert first.cycles == second.cycles
    assert first.fault_events == second.fault_events
    assert first.soc.stats_snapshot() == second.soc.stats_snapshot()


def test_master_seed_changes_the_sweep():
    baseline = integrity_case(0, master_seed=INTEGRITY_MASTER_SEED)
    other = integrity_case(0, master_seed=INTEGRITY_MASTER_SEED + 1)
    assert baseline.describe() != other.describe()


# -- unrecoverable corruption: typed error + structured dump ----------------------


def test_unrecoverable_corruption_writes_structured_dump(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_WATCHDOG_DUMP_DIR", str(tmp_path))
    case = KNOWN_UNRECOVERABLE[0]
    outcome, err = classify_integrity_case(case)
    assert outcome == "integrity-error"
    assert err.kind == "scratchpad_poison"
    assert err.dump_path is not None
    dumped = json.loads(
        (tmp_path / err.dump_path.split("/")[-1]).read_text())
    assert dumped["integrity"]["error"] == "DataIntegrityError"
    assert dumped["integrity"]["component"] == err.component
    assert dumped["fault_events"] > 0
    assert "busy_ports" in dumped and "engine" in dumped  # watchdog plumbing


@pytest.mark.parametrize("case", KNOWN_UNRECOVERABLE)
def test_known_unrecoverable_cases_stay_unrecoverable(case):
    outcome, err = classify_integrity_case(case)
    assert outcome == "integrity-error"
    assert isinstance(err, DataIntegrityError)
    assert err.component is not None and err.kind is not None


# -- negative controls: disarmed, the oracle must catch it ------------------------


def test_negative_controls_detect_silent_corruption():
    """Stack disarmed + corrupt-only plan over the first ten cases: the
    oracle must catch corruption in most runs (a crash on a mangled
    index also counts as detection); at most a couple may survive on
    inconsequential flips.  Outcomes are seeded, hence exact."""
    outcomes = {"oracle": 0, "crashed": 0, "completed": 0}
    for case in range(10):
        kind, _ = run_negative_control(case)
        outcomes[kind] += 1
    assert outcomes["oracle"] >= 4          # the oracle itself fires
    assert outcomes["oracle"] + outcomes["crashed"] >= 8
    assert outcomes["completed"] <= 2


def test_recoverable_only_plans_never_draw_double_flips():
    for seed in range(50):
        plan = FaultPlan.random_integrity(seed, recoverable_only=True)
        if plan.dram_flips is not None:
            assert plan.dram_flips.double_rate == 0.0
        if plan.queue_flips is not None:
            assert plan.queue_flips.double_rate == 0.0
        assert not plan.is_empty()


# -- the armed stack is timing-invisible ------------------------------------------


def test_armed_stack_without_faults_is_cycle_identical():
    """reliable_ports=True + ecc=True with no plan: same cycle count and
    same model stats as the bare default config (the zero-added-cycles
    contract behind the Fig. 14 and differential-fuzz gates)."""
    bare = run_workload("spmv", "maple-decouple", threads=2, seed=7)
    armed = run_workload(
        "spmv", "maple-decouple", threads=2, seed=7,
        config=SoCConfig().with_overrides(reliable_ports=True, ecc=True))
    assert armed.cycles == bare.cycles
    assert armed.soc.stats_snapshot() == bare.soc.stats_snapshot()


def test_fault_and_integrity_plans_are_mutually_exclusive():
    with pytest.raises(ValueError, match="mutually exclusive"):
        run_workload("spmv", "maple-decouple", threads=2,
                     fault_plan=FaultPlan(seed=1),
                     integrity_plan=FaultPlan(seed=2))


# -- orchestrator integration ----------------------------------------------------


def test_integrity_specs_parallel_equals_serial():
    # Specs 2..7 are the first six cells whose corruption is fully
    # recovered (0 and 1 hit unrecoverable scratchpad poison; see below).
    specs = integrity_specs(8)[2:]
    serial = Orchestrator(jobs=1).run(specs)
    parallel = Orchestrator(jobs=4, timeout=300).run(specs)
    assert [r.identity() for r in serial] == [r.identity() for r in parallel]
    assert all(r.fault_seed is not None for r in serial)
    assert all(r.invariants_checked for r in serial)


def test_unrecoverable_cell_surfaces_with_its_integrity_seed():
    """A cell whose corruption is unrecoverable fails loudly through the
    orchestrator, and the job error names the integrity seed to replay."""
    from repro.harness.orchestrator import OrchestratorError
    spec = integrity_specs(1)[0]
    with pytest.raises(OrchestratorError) as exc:
        Orchestrator(jobs=1, retries=0).run([spec])
    assert exc.value.job_error.fault_seed == spec.integrity_plan.seed
    assert "DataIntegrityError" in exc.value.job_error.exc_type


def test_integrity_specs_are_replayable_cells():
    specs = integrity_specs(4)
    again = integrity_specs(4)
    assert specs == again
    assert all(s.integrity_plan is not None and s.fault_plan is None
               for s in specs)
    assert all("integrity#" in s.label() for s in specs)
