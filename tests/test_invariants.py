"""Unit tests for the invariant-checking layer (``repro.sim.invariants``).

Two halves: the live :class:`QueueShadow` must catch protocol breakage
at the exact event that causes it (double fill, conjured entries, value
mismatch), and the quiescence audit must catch leaked transactions,
leaked credits, and broken flow conservation — each named precisely.
"""

import pytest

from repro.core.queues import HwQueue
from repro.sim import (
    InvariantChecker,
    InvariantViolation,
    QueueShadow,
    Simulator,
    Stats,
)
from repro.system.soc import Soc


def shadowed_queue(capacity=4):
    sim = Simulator()
    queue = HwQueue(sim, 0, capacity, Stats().scoped("q"))
    shadow = QueueShadow(queue)
    queue.observer = shadow
    return sim, queue, shadow


def step(sim, gen):
    box = {}

    def wrapper():
        box["value"] = yield from gen

    sim.spawn(wrapper())
    sim.run()
    return box.get("value")


# -- the shadow is silent on legal traffic ---------------------------------------


def test_shadow_accepts_legal_out_of_order_fills():
    sim, queue, shadow = shadowed_queue()
    i0 = step(sim, queue.reserve())
    i1 = step(sim, queue.reserve())
    queue.fill(i1, "b")
    queue.fill(i0, "a")
    assert step(sim, queue.pop()) == "a"
    assert step(sim, queue.pop()) == "b"
    assert shadow.check_quiescent() == []
    assert (shadow.reserves, shadow.fills, shadow.pops) == (2, 2, 2)


def test_shadow_accepts_reset():
    sim, queue, shadow = shadowed_queue()
    i0 = step(sim, queue.reserve())
    queue.fill(i0, "x")
    assert step(sim, queue.pop()) == "x"
    queue.reset()  # the INIT path: legal once drained
    assert shadow.check_quiescent() == []


def test_quiescence_flags_reset_that_discarded_data():
    sim, queue, shadow = shadowed_queue()
    i0 = step(sim, queue.reserve())
    queue.fill(i0, "x")
    queue.reset()  # discards a produced-but-never-consumed entry
    assert any("flow broken" in p for p in shadow.check_quiescent())


# -- and loud on protocol breakage ----------------------------------------------


def test_shadow_rejects_double_fill():
    sim, queue, shadow = shadowed_queue()
    i0 = step(sim, queue.reserve())
    queue.fill(i0, "first")
    with pytest.raises(InvariantViolation, match="filled twice"):
        shadow.on_fill(queue, i0, "second")


def test_shadow_rejects_fill_without_reservation():
    _, queue, shadow = shadowed_queue()
    with pytest.raises(InvariantViolation, match="no reservation"):
        shadow.on_fill(queue, 3, "ghost")


def test_shadow_rejects_conjured_pop():
    _, queue, shadow = shadowed_queue()
    with pytest.raises(InvariantViolation, match="duplicated or conjured"):
        shadow.on_pop(queue, "ghost")


def test_shadow_rejects_pop_before_fill():
    sim, queue, shadow = shadowed_queue()
    step(sim, queue.reserve())
    with pytest.raises(InvariantViolation, match="popped before its fill"):
        shadow.on_pop(queue, "early")


def test_shadow_rejects_value_mismatch():
    sim, queue, shadow = shadowed_queue()
    i0 = step(sim, queue.reserve())
    queue.fill(i0, "right")
    with pytest.raises(InvariantViolation, match="reordering or loss"):
        shadow.on_pop(queue, "wrong")


def test_quiescence_reports_unfilled_reservation():
    sim, queue, shadow = shadowed_queue()
    step(sim, queue.reserve())
    problems = shadow.check_quiescent()
    assert any("never filled" in p for p in problems)


# -- the SoC-level audit ---------------------------------------------------------


def test_checker_clean_soc_reports_counts():
    soc = Soc()
    checker = InvariantChecker(soc).install()
    ports, queues = checker.verify()
    assert ports == len(soc.ports.ports)
    assert queues == soc.config.maple_num_queues * len(soc.maples)


def test_checker_install_is_idempotent_but_exclusive():
    soc = Soc()
    checker = InvariantChecker(soc).install()
    assert checker.install() is checker  # same checker: fine
    with pytest.raises(RuntimeError, match="already has an observer"):
        InvariantChecker(soc).install()  # a second one: rejected
    checker.uninstall()
    InvariantChecker(soc).install()  # after uninstall: fine again


def test_audit_names_inflight_transaction():
    soc = Soc()
    checker = InvariantChecker(soc).install()

    def handler(msg):
        yield 10**9
        return None

    client = soc.ports.port("unit.leak", tile=0)
    server = soc.ports.port("unit.leak.srv", tile=1)
    server.bind(handler)
    soc.ports.connect(client, server)
    soc.sim.spawn(client.request("poke"))
    soc.sim.run(until=50)
    with pytest.raises(InvariantViolation) as exc:
        checker.verify()
    assert any("unit.leak" in v and "in flight" in v
               for v in exc.value.violations)


def test_audit_names_broken_queue_flow():
    soc = Soc()
    checker = InvariantChecker(soc).install()
    queue = soc.maples[0].scratchpad.queues[0]
    # Cook the books behind the shadow's back: claim a produce that
    # never happened.  The flow-conservation audit must flag it.
    queue.produced += 1
    with pytest.raises(InvariantViolation, match="flow broken"):
        checker.verify()
