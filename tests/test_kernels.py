"""Tests for the workload definitions (datasets, bindings, references)."""

import numpy as np
import pytest

from repro.datasets.graphs import power_law_graph
from repro.datasets.sparse import random_csr
from repro.harness import run_workload
from repro.kernels import ALL_WORKLOADS, BfsWorkload, SpmvWorkload
from repro.kernels.spmv import SpmvDataset
from repro.system import Soc


def test_registry_contains_all_four_paper_workloads():
    assert set(ALL_WORKLOADS) == {"sdhp", "spmm", "spmv", "bfs"}


def test_datasets_are_deterministic():
    for name, cls in ALL_WORKLOADS.items():
        a = cls().default_dataset(seed=3)
        b = cls().default_dataset(seed=3)
        if name == "bfs":
            np.testing.assert_array_equal(a.neighbors, b.neighbors)
        elif name == "spmv":
            np.testing.assert_array_equal(a.matrix.col_idx, b.matrix.col_idx)


def test_spmv_reference_matches_numpy():
    ds = SpmvWorkload().default_dataset()
    dense = ds.matrix.to_dense()
    np.testing.assert_allclose(ds.reference(), dense @ ds.x)


def test_spmv_dataset_shape_validation():
    matrix = random_csr(4, 10, 2, seed=1)
    with pytest.raises(ValueError):
        SpmvDataset(matrix, np.ones(5))


def test_spmv_slice_params_partition_rows():
    soc = Soc()
    aspace = soc.new_process()
    binding = SpmvWorkload().bind(soc, aspace,
                                  SpmvWorkload().default_dataset())
    parts = [binding.slice_params(t, 4) for t in range(4)]
    # Contiguous, disjoint, covering.
    assert parts[0]["row_lo"] == 0
    assert parts[-1]["row_hi"] == binding.total_iterations
    for left, right in zip(parts, parts[1:]):
        assert left["row_hi"] == right["row_lo"]
    with pytest.raises(ValueError):
        binding.slice_params(4, 4)


def test_small_custom_datasets_run_correctly():
    """Tiny datasets exercise the full stack quickly for every loop kernel."""
    spmv = SpmvDataset(random_csr(6, 64, 3, seed=2),
                       np.linspace(1, 2, 64))
    result = run_workload("spmv", "doall", threads=2, dataset=spmv)
    assert result.cycles > 0  # run_workload validated the result already


def test_bfs_small_graph_all_techniques_correct():
    graph = power_law_graph(96, avg_degree=4, seed=5)
    for technique in ("doall", "maple-decouple", "sw-decouple", "desc",
                      "droplet", "sw-prefetch", "lima"):
        threads = 1 if technique in ("sw-prefetch", "lima") else 2
        run_workload("bfs", technique, threads=threads, dataset=graph)
        # run_workload raises if distances differ from reference_bfs.


def test_bfs_binding_initial_state():
    soc = Soc()
    aspace = soc.new_process()
    graph = power_law_graph(64, avg_degree=3, seed=1)
    binding = BfsWorkload().bind(soc, aspace, graph, root=5)
    assert binding.dist.read(5) == 0
    assert binding.frontier_a.read(0) == 5
    assert binding.count_cur.read(0) == 1
    assert binding.dist.read(0) == -1


def test_bfs_four_thread_doall_matches_reference():
    graph = power_law_graph(128, avg_degree=4, seed=9)
    result = run_workload("bfs", "doall", threads=4, dataset=graph)
    assert result.cycles > 0


def test_spmm_small_dataset_correct_under_lima_llc():
    from repro.kernels.spmm import SpmmDataset
    from repro.datasets.sparse import CscMatrix
    a_csr = random_csr(rows=6, cols=128, nnz_per_row=3, seed=4)
    a = CscMatrix(128, 6, a_csr.row_ptr, a_csr.col_idx, a_csr.values)
    b_csr = random_csr(rows=3, cols=6, nnz_per_row=2, seed=5)
    b = CscMatrix(6, 3, b_csr.row_ptr, b_csr.col_idx, b_csr.values)
    run_workload("spmm", "lima-llc", threads=1, dataset=SpmmDataset(a, b))


def test_sdhp_kronecker_variant():
    from repro.kernels import SdhpWorkload
    ds = SdhpWorkload().default_dataset(scale=2, kind="kronecker")
    assert ds.matrix.nnz > 100
    ref = ds.reference()
    assert len(ref) == ds.matrix.nnz


def test_workload_results_deterministic_across_runs():
    spmv = SpmvDataset(random_csr(6, 64, 3, seed=2), np.linspace(1, 2, 64))
    a = run_workload("spmv", "maple-decouple", threads=2, dataset=spmv)
    b = run_workload("spmv", "maple-decouple", threads=2, dataset=spmv)
    assert a.cycles == b.cycles  # simulation is exactly reproducible
