"""Large-mesh scaling guarantees (MemPool-class meshes, §6 scaling).

The simulator's scaling contract has three legs, each enforced here:

1. **Events scale with traffic, not tiles.**  Components are
   event-driven (nothing polls on ``yield 1``), so the same workload on
   a mostly-idle 32x32 mesh must execute essentially the same number of
   events as on a 4x4 — we allow 1% for the extra boot/quiesce work of
   1000+ idle ports.

2. **Quiescence checking is O(busy), not O(ports).**  ``drain()`` on a
   32x32 mesh (>1024 registered ports) consults only the busy-port
   index, which is empty after a clean run — it must not walk the full
   registry, and it runs zero simulation events.

3. **Placement policy actually moves latency.**  Per-quadrant MAPLE
   placement must yield strictly lower mean core->MAPLE hop distance
   than parking the accelerators on the edge (corners first), and the
   driver's reported mean must match the analytic Manhattan-distance
   computation done independently here.

Plus the end-to-end acceptance check for the sliced-L2 directory: on a
16x16 4-MAPLE mesh with ``directory=True``, a write-sharing workload
makes invalidation traffic *visible in per-port tap counters* — the
protocol rides real NoC ports, not a zero-cost side channel.
"""

import pytest

from repro.cpu import Load, Store, Thread
from repro.harness.techniques import run_workload
from repro.system import Soc
from repro.system.soc import stress_mesh_config

#: One deliberately small workload reused across mesh sizes, so any
#: event-count difference comes from the mesh, not the dataset.
_WORKLOAD = dict(workload="spmv", technique="maple-decouple", threads=2)


def _run_on_side(side: int):
    cfg = stress_mesh_config(side, maple_instances=1)
    return run_workload(_WORKLOAD["workload"], _WORKLOAD["technique"],
                        config=cfg, threads=_WORKLOAD["threads"],
                        seed=7, check=True)


def test_idle_32x32_executes_same_events_as_4x4():
    small = _run_on_side(4)
    big = _run_on_side(32)
    ratio = big.soc.sim.events_executed / small.soc.sim.events_executed
    assert ratio <= 1.01, (
        f"32x32 executed {ratio:.3f}x the events of 4x4 "
        f"({big.soc.sim.events_executed} vs {small.soc.sim.events_executed}); "
        f"idle tiles are generating work")


def test_drain_on_1024_port_mesh_is_o_busy():
    result = _run_on_side(32)
    soc = result.soc
    # The mesh really is at the scale the contract claims.
    assert soc.mesh.size == 1024
    assert len(soc.ports.ports) >= 1024
    # After a clean run the busy index is empty: drain() inspects that
    # set, not the 1024+ port list, and schedules no simulation events.
    assert not soc.ports._busy_ports
    events_before = soc.sim.events_executed
    soc.drain()
    assert soc.sim.events_executed == events_before


def _mean_hops_analytic(soc: Soc) -> float:
    """Independent Manhattan-distance recomputation of the driver's
    core->assigned-MAPLE mean (min hops, instance id as tiebreak)."""
    cols = soc.config.mesh_cols
    total = 0
    tiles = sorted(soc.core_tiles.values())
    for tile in tiles:
        x, y = tile % cols, tile // cols
        best = min(
            (abs(x - mt % cols) + abs(y - mt // cols), inst)
            for inst, mt in enumerate(soc.maple_tiles))
        total += best[0]
    return total / len(tiles)


def test_per_quadrant_beats_edge_placement_on_16x16():
    hops = {}
    for policy in ("edge", "per-quadrant"):
        cfg = stress_mesh_config(16, maple_instances=4).with_overrides(
            maple_placement=policy)
        soc = Soc(cfg)
        simulated = soc.driver.mean_hops()
        analytic = _mean_hops_analytic(soc)
        assert simulated == pytest.approx(analytic), (
            f"{policy}: driver reports {simulated}, analytic {analytic}")
        hops[policy] = simulated
    assert hops["per-quadrant"] < hops["edge"], hops


def test_directory_invalidations_visible_in_port_taps():
    """Acceptance criterion: on a 16x16 4-MAPLE mesh with the sliced-L2
    directory enabled, write-sharing traffic shows up in the per-port
    tap counters of the ``core*.inval`` NoC ports."""
    cfg = stress_mesh_config(16, maple_instances=4).with_overrides(
        maple_placement="per-quadrant", directory=True)
    soc = Soc(cfg)
    aspace = soc.new_process()
    arr = soc.array(aspace, [0.0] * 64, name="shared")

    def writer(me):
        for i in range(32):
            yield Store(arr.addr(i % 8), float(me * 100 + i))
            yield Load(arr.addr((i + 1) % 8))

    soc.run_threads([(c, Thread(writer(c), aspace, f"w{c}"))
                     for c in range(4)])
    soc.drain()

    taps = soc.port_telemetry()
    inval_served = sum(t["served"] for name, t in taps.items()
                      if name.endswith(".inval"))
    assert inval_served > 0, "no invalidation messages crossed the NoC"
    # The directory's own books must agree with what the ports saw:
    # every invalidation and every ownership-transfer recall is one
    # message served by some core's inval port.
    tele = soc.directory.telemetry()
    assert inval_served == tele["invalidations"] + tele["transfers"]
    assert soc.stats_snapshot()["directory.invalidations"] == \
        tele["invalidations"]


@pytest.mark.slow
def test_32x32_multi_maple_sweep_completes():
    """Heavier leg of the scaling suite (large-mesh CI job): every
    placement policy at 32x32 with 4 MAPLEs runs end-to-end, validates
    numerically, and quiesces."""
    for policy in ("edge", "center", "per-quadrant"):
        cfg = stress_mesh_config(32, maple_instances=4).with_overrides(
            maple_placement=policy)
        result = run_workload("spmv", "maple-decouple", config=cfg,
                              threads=8, seed=11, check=True)
        result.soc.drain()
        assert result.cycles > 0


def test_stress_mesh_config_seats_every_tile():
    cfg = stress_mesh_config(8, maple_instances=4)
    assert cfg.num_cores + cfg.maple_instances == 64
    soc = Soc(cfg.with_overrides(maple_placement="per-quadrant"))
    occupied = [soc.mesh.tiles[t].occupant for t in range(soc.mesh.size)]
    assert all(o is not None for o in occupied)
