"""Additional MAPLE engine coverage: INIT, debug reads, error paths."""

import pytest

from repro.core.opcodes import LoadOp, encode_addr
from repro.cpu import Alu, Load, Store, Thread
from repro.params import SoCConfig
from repro.system import Soc


def build():
    soc = Soc(SoCConfig())
    aspace = soc.new_process()
    api = soc.driver.attach(aspace)
    return soc, aspace, api


def test_init_resets_all_queues():
    soc, aspace, api = build()

    def program():
        q0 = yield from api.open(0)
        q1 = yield from api.open(1)
        yield from q0.produce(1)
        yield from q1.produce(2)
        yield Alu(50)
        yield from api.init()
        # After INIT the bindings are cleared and the queues empty.
        occ0 = yield Load(encode_addr(api.page_vaddr, LoadOp.STAT_OCCUPANCY, 0))
        occ1 = yield Load(encode_addr(api.page_vaddr, LoadOp.STAT_OCCUPANCY, 1))
        assert occ0 == 0 and occ1 == 0
        q0b = yield from api.open(0)  # re-open succeeds
        yield from q0b.produce(9)
        value = yield from q0b.consume()
        assert value == 9

    soc.run_threads([(0, Thread(program(), aspace, "t"))])
    assert soc.stats.get("maple0.inits") == 1


def test_fault_vaddr_debug_register():
    soc, aspace, api = build()
    lazy = soc.array(aspace, 8, name="lazy", lazy=True)

    def program():
        q = yield from api.open(0)
        yield from q.produce_ptr(lazy.addr(0))
        yield from q.consume()
        fault_addr = yield Load(encode_addr(api.page_vaddr, LoadOp.FAULT_VADDR))
        assert fault_addr == lazy.addr(0)

    soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_stat_ptr_fetches_counter():
    soc, aspace, api = build()
    data = soc.array(aspace, [1.0] * 8, name="A")

    def program():
        q = yield from api.open(0)
        yield from q.produce_ptr(data.addr(0))
        yield from q.produce_ptr(data.addr(1))
        yield from q.consume()
        yield from q.consume()
        count = yield from q.stat_ptr_fetches()
        assert count == 2

    soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_unaligned_mmio_access_rejected():
    soc, aspace, api = build()

    def program():
        yield Load(api.page_vaddr + 4)  # not 8-byte aligned

    with pytest.raises(ValueError, match="aligned"):
        soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_unimplemented_opcode_raises_maple_error():
    soc, aspace, api = build()

    def program():
        yield Store(encode_addr(api.page_vaddr, 60, 0), 0)  # unused opcode

    with pytest.raises(ValueError):
        # StoreOp(60) does not exist -> ValueError from the enum.
        soc.run_threads([(0, Thread(program(), aspace, "t"))])


def test_round_trip_formula_matches_config():
    soc, aspace, api = build()
    cfg = soc.config
    maple = soc.maples[0]
    hops = soc.mesh.hops(0, maple.tile_id)
    expected = (2 * cfg.mmio_path_latency
                + 2 * (cfg.noc_encode_latency + cfg.noc_decode_latency)
                + 2 * hops * cfg.hop_latency
                + cfg.maple_pipeline_latency)
    assert maple.round_trip_cycles(0) == expected


def test_mmio_registration_collision_between_instances():
    # Two instances must occupy disjoint MMIO pages (registration would
    # raise on overlap).
    soc = Soc(SoCConfig(maple_instances=2))
    a, b = soc.maples
    assert abs(a.page_paddr - b.page_paddr) >= soc.config.page_size
